"""Golden-file tests for the versioned schema — one serialization.

Each ``tests/api/golden/*.json`` file is the frozen dict form of one
schema-v3 document kind.  The round-trip test pins the wire format: any
field rename, reorder-into-different-keys, or type drift shows up as a
golden diff, which is an intentional schema version bump or a bug.  The
cross-surface test then checks the promise in :mod:`repro.api.schema`'s
docstring: facade result, CLI ``--format json`` output and wire payload
are the *same* document.
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.api import schema
from repro.api.errors import InvalidRequest
from repro.cli import main
from repro.cluster import GroundTruth
from repro.models import ExtendedLMOModel, GatherIrregularity

GOLDEN = Path(__file__).parent / "golden"
KB = 1024

KINDS = {
    "prediction": schema.Prediction,
    "prediction_batch": schema.PredictionBatch,
    "measurement": schema.Measurement,
    "estimate_outcome": schema.EstimateOutcome,
    "gather_optimization": schema.GatherOptimization,
    "predict_params": schema.PredictParams,
    "predict_many_params": schema.PredictManyParams,
    "estimate_params": schema.EstimateParams,
    "optimize_params": schema.OptimizeParams,
}


@pytest.fixture(scope="module")
def model():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.22,
                             p_at_m2=0.7)
    return ExtendedLMOModel.from_ground_truth(GroundTruth.random(6, seed=2), irr)


# -- golden round trips -----------------------------------------------------------
def test_every_kind_has_a_golden_file():
    assert {path.stem for path in GOLDEN.glob("*.json")} == set(KINDS)
    assert set(KINDS) == set(schema._KINDS)


@pytest.mark.parametrize("kind", sorted(KINDS))
def test_golden_round_trip(kind):
    doc = json.loads((GOLDEN / f"{kind}.json").read_text())
    obj = schema.parse(doc)  # dispatches on "kind"
    assert type(obj) is KINDS[kind]
    assert obj.to_dict() == doc  # the dict form is frozen
    # ...and the dict form re-parses to an equal object.
    assert schema.parse(obj.to_dict()) == obj


@pytest.mark.parametrize("kind", sorted(KINDS))
def test_golden_survives_json_wire_round_trip(kind):
    doc = json.loads((GOLDEN / f"{kind}.json").read_text())
    wire = json.dumps(schema.parse(doc).to_dict(),
                      separators=(",", ":"), ensure_ascii=True)
    assert json.loads(wire) == doc


# -- envelope validation ----------------------------------------------------------
def test_from_dict_rejects_wrong_version_and_kind():
    doc = json.loads((GOLDEN / "prediction.json").read_text())
    with pytest.raises(InvalidRequest, match="unsupported schema_version"):
        schema.Prediction.from_dict({**doc, "schema_version": 2})
    with pytest.raises(InvalidRequest, match="expected a 'prediction'"):
        schema.Prediction.from_dict({**doc, "kind": "measurement"})
    with pytest.raises(InvalidRequest, match="missing field"):
        schema.Prediction.from_dict({"kind": "prediction"})
    with pytest.raises(InvalidRequest, match="unknown document kind"):
        schema.parse({"kind": "telegram"})
    with pytest.raises(InvalidRequest, match="must be an object"):
        schema.parse([1, 2])


def test_from_dict_ignores_unknown_keys_and_fills_defaults():
    p = schema.Prediction.from_dict({
        "operation": "scatter", "algorithm": "linear", "nbytes": 1024,
        "root": 0, "seconds": 0.001, "added_in_v4": "whatever",
    })
    assert p.regime is None and p.escalation_probability is None
    assert p.nbytes == 1024.0  # coerced to the declared type


def test_derived_speedups_recompute_on_load():
    doc = json.loads((GOLDEN / "gather_optimization.json").read_text())
    lying = {**doc, "speedups": [99.0, 99.0]}  # stored value is ignored
    assert schema.GatherOptimization.from_dict(lying).speedups == (1.0, 2.0)


# -- one serialization across surfaces --------------------------------------------
def test_facade_cli_and_wire_emit_the_same_document(tmp_path, model, capsys):
    path = tmp_path / "model.json"
    api.save_model(model, str(path))
    loaded = api.load_model(str(path))
    facade_doc = api.predict(loaded, "gather", "linear", 64 * KB).to_dict()

    assert main(["predict", "--model-file", str(path), "--operation", "gather",
                 "--algorithm", "linear", "--nbytes", str(64 * KB),
                 "--format", "json"]) == 0
    cli_doc = json.loads(capsys.readouterr().out)
    cli_doc.pop("cache")  # the CLI adds cache stats on top of the document
    assert cli_doc == facade_doc

    # The wire carries to_dict() verbatim (full socket identity is covered
    # in tests/serve/test_server.py); here: the document parses back equal.
    assert schema.parse(facade_doc).to_dict() == facade_doc
