"""Collective algorithms over the simulated cluster.

The registry maps ``(operation, algorithm)`` names to rank-program
factories, mirroring how MPI implementations select among algorithms —
the decision the paper shows must be driven by an accurate model (Fig. 6).
"""

from typing import Callable

from repro.mpi.collectives import advanced, binomial, composite, linear, ring

__all__ = ["ALGORITHMS", "advanced", "binomial", "composite", "linear", "ring", "get_algorithm"]

#: (operation, algorithm) -> rank-program generator function.
ALGORITHMS: dict[tuple[str, str], Callable] = {
    ("scatter", "linear"): linear.scatter,
    ("scatter", "binomial"): binomial.scatter,
    ("scatterv", "linear"): linear.scatterv,
    ("scatterv", "binomial"): binomial.scatterv,
    ("gather", "linear"): linear.gather,
    ("gather", "binomial"): binomial.gather,
    ("gatherv", "linear"): linear.gatherv,
    ("bcast", "linear"): linear.bcast,
    ("bcast", "binomial"): binomial.bcast,
    ("bcast", "pipeline"): advanced.pipeline_bcast,
    ("bcast", "van_de_geijn"): composite.van_de_geijn_bcast,
    ("reduce", "linear"): linear.reduce,
    ("reduce", "binomial"): binomial.reduce,
    ("alltoall", "linear"): linear.alltoall,
    ("allgather", "ring"): ring.allgather,
    ("allgather", "recursive_doubling"): advanced.recursive_doubling_allgather,
    ("allreduce", "recursive_doubling"): advanced.recursive_doubling_allreduce,
    ("allreduce", "reduce_bcast"): advanced.reduce_bcast_allreduce,
    ("allreduce", "rabenseifner"): composite.rabenseifner_allreduce,
    ("reduce_scatter", "ring"): composite.ring_reduce_scatter,
    ("barrier", "binomial"): binomial.barrier,
}


def get_algorithm(operation: str, algorithm: str) -> Callable:
    """Look up a collective implementation, with a helpful error."""
    try:
        return ALGORITHMS[(operation, algorithm)]
    except KeyError:
        known = sorted(f"{op}/{algo}" for op, algo in ALGORITHMS)
        raise KeyError(
            f"unknown collective {operation}/{algorithm}; available: {', '.join(known)}"
        ) from None
