"""Tests for the Hockney model family."""

import numpy as np
import pytest

from repro.cluster import GroundTruth
from repro.models import HeterogeneousHockneyModel, HockneyModel


def test_homogeneous_p2p_formula():
    model = HockneyModel(alpha=50e-6, beta=8e-8, n=4)
    assert model.p2p_time(0, 1, 1000) == pytest.approx(50e-6 + 8e-8 * 1000)


def test_homogeneous_ignores_pair():
    model = HockneyModel(alpha=50e-6, beta=8e-8, n=8)
    assert model.p2p_time(0, 1, 500) == model.p2p_time(6, 3, 500)


def test_homogeneous_validation():
    with pytest.raises(ValueError):
        HockneyModel(alpha=-1e-6, beta=8e-8, n=4)
    with pytest.raises(ValueError):
        HockneyModel(alpha=1e-6, beta=8e-8, n=1)
    model = HockneyModel(alpha=1e-6, beta=8e-8, n=4)
    with pytest.raises(ValueError):
        model.p2p_time(0, 9, 100)
    with pytest.raises(ValueError):
        model.p2p_time(0, 1, -5)


def test_heterogeneous_p2p_uses_pair_parameters():
    gt = GroundTruth.random(5, seed=1)
    model = HeterogeneousHockneyModel.from_ground_truth(gt)
    assert model.p2p_time(0, 3, 2048) == pytest.approx(gt.p2p_time(0, 3, 2048))
    assert model.p2p_time(0, 3, 2048) != model.p2p_time(1, 2, 2048)


def test_from_ground_truth_is_exact_view():
    """alpha_ij = C_i + L_ij + C_j and beta_ij = t_i + 1/b_ij + t_j."""
    gt = GroundTruth.random(4, seed=2)
    model = HeterogeneousHockneyModel.from_ground_truth(gt)
    assert model.alpha[1, 2] == pytest.approx(gt.C[1] + gt.L[1, 2] + gt.C[2])
    assert model.beta[1, 2] == pytest.approx(gt.t[1] + 1 / gt.beta[1, 2] + gt.t[2])


def test_averaged_collapses_to_homogeneous():
    gt = GroundTruth.random(6, seed=3)
    het = HeterogeneousHockneyModel.from_ground_truth(gt)
    hom = het.averaged()
    off = ~np.eye(6, dtype=bool)
    assert hom.n == 6
    assert hom.alpha == pytest.approx(het.alpha[off].mean())
    assert hom.beta == pytest.approx(het.beta[off].mean())
    # Averaging bounds: the homogeneous prediction lies within the
    # heterogeneous extremes for any message size.
    for M in [0, 10_000]:
        times = [het.p2p_time(i, j, M) for i in range(6) for j in range(6) if i != j]
        assert min(times) <= hom.p2p_time(0, 1, M) <= max(times)


def test_heterogeneous_validation():
    with pytest.raises(ValueError):
        HeterogeneousHockneyModel(np.zeros((3, 2)), np.zeros((3, 2)))
    alpha = np.full((3, 3), -1.0)
    with pytest.raises(ValueError):
        HeterogeneousHockneyModel(alpha, np.zeros((3, 3)))
