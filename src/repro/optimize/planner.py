"""Application communication planning: pick every collective's algorithm.

An application is, communication-wise, a sequence of collective calls.
Given an estimated model, the planner chooses an algorithm for each call
from the registered menu (falling back across operations it has formulas
for), and predicts the plan's total communication time — MPI autotuning,
driven by the paper's model instead of exhaustive measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.models.lmo_extended import ExtendedLMOModel

__all__ = ["CollectiveCall", "PlannedCall", "CommunicationPlan", "plan_collectives"]

#: Algorithms the planner may choose from, per operation.
MENU: dict[str, tuple[str, ...]] = {
    "scatter": ("linear", "binomial"),
    "gather": ("linear", "binomial"),
    "bcast": ("linear", "binomial", "pipeline", "van_de_geijn"),
    "allgather": ("ring", "recursive_doubling"),
    "allreduce": ("recursive_doubling", "reduce_bcast", "rabenseifner"),
    "reduce_scatter": ("ring",),
}


@dataclass(frozen=True)
class CollectiveCall:
    """One collective invocation in an application's communication trace."""

    operation: str
    nbytes: int
    root: int = 0
    count: int = 1  # identical repetitions (e.g. per-iteration calls)

    def __post_init__(self) -> None:
        if self.operation not in MENU:
            raise ValueError(
                f"unplannable operation {self.operation!r}; known: {sorted(MENU)}"
            )
        if self.nbytes < 0 or self.count < 1:
            raise ValueError(f"invalid call: {self}")


@dataclass(frozen=True)
class PlannedCall:
    """A call with its chosen algorithm and predicted time."""

    call: CollectiveCall
    algorithm: str
    predicted_each: float

    @property
    def predicted_total(self) -> float:
        return self.predicted_each * self.call.count


@dataclass
class CommunicationPlan:
    """The chosen algorithms and the predicted total communication time."""

    calls: list[PlannedCall]

    @property
    def predicted_total(self) -> float:
        return sum(planned.predicted_total for planned in self.calls)

    def render(self) -> str:
        lines = [f"{'operation':<15} {'bytes':>9} {'x':>4} {'algorithm':<20} {'each':>9}"]
        for planned in self.calls:
            call = planned.call
            lines.append(
                f"{call.operation:<15} {call.nbytes:>9} {call.count:>4} "
                f"{planned.algorithm:<20} {planned.predicted_each * 1e3:>8.2f}ms"
            )
        lines.append(f"predicted communication total: {self.predicted_total * 1e3:.2f} ms")
        return "\n".join(lines)


def plan_collectives(
    model: ExtendedLMOModel,
    calls: Sequence[CollectiveCall],
    menu: Optional[dict[str, tuple[str, ...]]] = None,
) -> CommunicationPlan:
    """Choose the predicted-fastest algorithm for every call.

    All candidates of one call are predicted in a single batched request
    through :func:`repro.predict_service.predict_many`.
    """
    from repro.predict_service import PredictRequest, predict_many

    chosen_menu = MENU if menu is None else menu
    planned: list[PlannedCall] = []
    for call in calls:
        algorithms = chosen_menu[call.operation]
        requests = [
            PredictRequest(call.operation, algorithm, float(call.nbytes),
                           root=call.root)
            for algorithm in algorithms
        ]
        values = predict_many(model, requests)
        candidates = dict(zip(algorithms, (float(v) for v in values)))
        best = min(candidates, key=candidates.__getitem__)
        planned.append(PlannedCall(call=call, algorithm=best,
                                   predicted_each=candidates[best]))
    return CommunicationPlan(calls=planned)
