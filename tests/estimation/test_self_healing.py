"""End-to-end self-healing acceptance: estimate, break, detect, heal.

The scenario from the issue: a seeded :class:`FaultPlan` with one degraded
node and one flaky link is injected after a clean bootstrap.  The loop
must (a) complete estimation with bounded retries and no unphysical
parameters, (b) attribute the drift to the degraded node, (c) re-estimate
only the triplets touching implicated nodes, and (d) restore the
worst-pair prediction error to within 2x of the fault-free baseline —
deterministically for a given pair of seeds.
"""

import numpy as np

from repro.cluster import (
    FaultInjector,
    FaultPlan,
    FlakyLink,
    NodeSlowdown,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.estimation import (
    DESEngine,
    ModelMaintainer,
    detect_model_drift,
    estimate_extended_lmo_robust,
    star_triplets,
)

N = 5
CYCLES = 3

PLAN = FaultPlan(faults=(
    NodeSlowdown(node=1, factor=4.0),
    FlakyLink(a=0, b=3, loss_prob=0.25),
), seed=13)


def fresh_cluster():
    return SimulatedCluster(
        random_cluster(N, seed=3), seed=7, noise=NoiseModel.default(),
    )


def run_scenario(with_faults):
    """Bootstrap clean, optionally inject PLAN, run maintenance cycles."""
    cluster = fresh_cluster()
    maintainer = ModelMaintainer(DESEngine(cluster))
    maintainer.bootstrap()
    if with_faults:
        cluster.attach_injector(FaultInjector(PLAN))
    records = [maintainer.cycle() for _ in range(CYCLES)]
    return maintainer, records


def test_self_healing_demo():
    baseline_maintainer, baseline_records = run_scenario(with_faults=False)
    assert all(record.action == "ok" for record in baseline_records)
    baseline_worst = max(record.worst_error for record in baseline_records)

    maintainer, records = run_scenario(with_faults=True)

    # Drift was detected and attributed to the degraded node first.
    heals = [record for record in records if record.action in ("heal", "refresh")]
    assert heals, "no heal happened under faults"
    assert 1 in heals[0].implicated
    assert heals[0].worst_error > maintainer.policy.drift_threshold

    # Each heal re-estimated only the implicated nodes' star triplets.
    for record in heals:
        if record.action != "heal":
            continue
        expected = {
            triple
            for node in record.implicated
            for triple in star_triplets(N, node)
        }
        assert f"{len(expected)} triplets re-estimated" in record.detail

    # Retries stayed bounded and the healed model is physical.
    stats = maintainer.last_result.run_stats
    assert stats.deadlocks == 0
    assert not stats.degraded
    model = maintainer.model
    assert (model.C >= 0).all() and (model.t >= 0).all()
    off = ~np.eye(N, dtype=bool)
    assert (model.beta[off] > 0).all()

    # The healed model tracks the degraded cluster again: worst-pair
    # prediction error within 2x of the fault-free baseline.
    post = maintainer.spot_check()
    assert not post.drifted
    assert post.worst_error <= 2.0 * baseline_worst

    # The loop settled: the last cycle found nothing left to fix.
    assert records[-1].action == "ok"


def test_self_healing_is_deterministic_per_seed():
    first, first_records = run_scenario(with_faults=True)
    second, second_records = run_scenario(with_faults=True)
    np.testing.assert_array_equal(first.model.C, second.model.C)
    np.testing.assert_array_equal(first.model.t, second.model.t)
    np.testing.assert_array_equal(first.model.L, second.model.L)
    np.testing.assert_array_equal(first.model.beta, second.model.beta)
    assert [
        (record.action, record.worst_error, record.implicated)
        for record in first_records
    ] == [
        (record.action, record.worst_error, record.implicated)
        for record in second_records
    ]


def test_drift_implicates_exactly_the_degraded_node():
    """E2E chaos check: degrade one node mid-run, catch it by name."""
    cluster = fresh_cluster()
    engine = DESEngine(cluster)
    model = estimate_extended_lmo_robust(engine, reps=3).model
    report = detect_model_drift(model, engine, aggregate=np.min)
    assert not report.drifted

    cluster.degrade_node(2, 4.0)
    report = detect_model_drift(model, engine, aggregate=np.min)
    assert report.drifted
    assert report.drifted_nodes() == [2]
    assert 2 in report.worst_pair


def test_health_log_renders_every_cycle():
    maintainer, records = run_scenario(with_faults=True)
    text = maintainer.render_log()
    assert "bootstrap" in text
    assert "heal" in text
    assert text.count("\n") == len(maintainer.health_records()) - 1
    assert ModelMaintainer(DESEngine(fresh_cluster())).render_log() == (
        "(no maintenance cycles recorded)"
    )


def test_health_history_is_a_structured_event_log():
    """The canonical history is an EventLog; records rebuild from it."""
    maintainer, _records = run_scenario(with_faults=True)
    events = maintainer.health_events.events("heal_cycle")
    records = maintainer.health_records()
    assert len(events) == len(records) == 1 + CYCLES  # bootstrap + cycles
    assert events[0]["action"] == "bootstrap"
    assert [e["cycle"] for e in events] == list(range(len(events)))
    # Field-filtered queries work on the maintenance history.
    heals = maintainer.health_events.events("heal_cycle", action="heal")
    assert all(e["action"] == "heal" for e in heals)


def test_health_log_accessor_is_deprecated_but_equivalent():
    import pytest as _pytest

    maintainer, _records = run_scenario(with_faults=False)
    with _pytest.deprecated_call():
        legacy = maintainer.health_log
    assert legacy == maintainer.health_records()


def test_maintainer_journals_heal_cycles(tmp_path):
    """With a journal attached, every cycle is durably logged through the
    campaign's write-ahead layer."""
    import pytest as _pytest
    from repro.estimation import CampaignJournal, replay

    path = str(tmp_path / "maintenance.jsonl")
    journal = CampaignJournal.create(path, {"kind": "maintenance", "n": N})
    cluster = fresh_cluster()
    maintainer = ModelMaintainer(DESEngine(cluster), journal=journal)
    maintainer.bootstrap()
    cluster.attach_injector(FaultInjector(PLAN))
    maintainer.cycle()
    journal.close()

    records = replay(path).of_type("heal_cycle")
    history = maintainer.health_records()
    assert len(records) == len(history)
    assert records[0]["action"] == "bootstrap"
    assert records[-1]["action"] == history[-1].action
    assert records[-1]["worst_error"] == _pytest.approx(history[-1].worst_error)
