"""Microbenchmark: telemetry hooks are free when no sink is attached.

The observability tentpole's bar: an instrumented campaign must run
within 5% of its uninstrumented wall-clock when telemetry is disabled.
There is no uninstrumented build to race against, so the check is
analytic and conservative:

1. time a full campaign with telemetry off (what users actually run);
2. count every hook the same campaign fires when telemetry is *on*
   (units, journal appends, kernel events, spans) — an upper bound on
   the disabled-mode guard checks the run executes;
3. measure the cost of one disabled-mode guard (``_obs.ACTIVE`` load +
   ``is None`` branch) by timing a million of them;
4. assert ``hooks x guard_cost < 5%`` of the disabled campaign time.

The second arm gates the *enabled* steady-state additions from the
flight-recorder issue: a serving process ticks its timeline once per
second (finest tier width) and mirrors its flight spill four times per
second (default ``--flight-sync-interval 0.25``).  Both are timed
against a realistically populated registry and the analytic per-second
cost ``tick x 1 Hz + sync x 4 Hz`` must stay under 1% of wall-clock.

Results land in ``BENCH_obs.json`` at the repo root (the two arms merge
into one document; the regression gate reads ``guard_ns``).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -s
"""

import json
import time
from pathlib import Path

from repro.cluster import (
    IDEAL,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.estimation import Campaign, CampaignConfig, DESEngine
from repro.obs import runtime as _obs
from repro.obs.flight import FlightRecorder
from repro.obs.timeline import DEFAULT_TIERS, TimelineStore

REPEATS = 3
GUARD_ITERATIONS = 1_000_000
BUDGET_FRACTION = 0.05
TIMELINE_BUDGET_FRACTION = 0.01
TICK_HZ = 1.0   # maybe_tick fires at the finest tier width (1 s)
SYNC_HZ = 4.0   # default --flight-sync-interval 0.25
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def merge_result(section):
    """Fold one arm's payload into BENCH_obs.json without clobbering the
    other arm (each test can run alone)."""
    doc = {}
    if RESULT_PATH.exists():
        try:
            doc = json.loads(RESULT_PATH.read_text())
        except ValueError:
            doc = {}
    doc.update(section)
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")

CONFIG = CampaignConfig(seed=11, timeout=5.0)


def make_engine():
    gt = GroundTruth.random(5, seed=5)
    cluster = SimulatedCluster(
        random_cluster(5, seed=5), ground_truth=gt, profile=IDEAL,
        noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
    )
    return DESEngine(cluster)


def run_campaign(tmp_path, tag):
    path = str(tmp_path / f"camp-{tag}.jsonl")
    start = time.perf_counter()
    result = Campaign.start(make_engine(), path, CONFIG).run()
    elapsed = time.perf_counter() - start
    assert result.stopped == "complete"
    return elapsed, result


def time_disabled_guard():
    """Seconds per ``ACTIVE is None`` check — the whole disabled hook."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(GUARD_ITERATIONS):
            tel = _obs.ACTIVE
            if tel is not None:  # pragma: no cover - telemetry is off here
                raise AssertionError("telemetry must be disabled")
        best = min(best, time.perf_counter() - start)
    return best / GUARD_ITERATIONS


def count_hooks(tmp_path):
    """Hook executions of one campaign, counted by running it instrumented."""
    tel = _obs.enable(fresh=True)
    try:
        _elapsed, result = run_campaign(tmp_path, "instrumented")
        result_engine_events = tel.registry.total("sim_events_total")
        reg = tel.registry
        units = reg.total("campaign_units_total")
        appends = reg.total("journal_appends_total")
        spans = len(tel.spans.finished()) + tel.spans.dropped
        events = len(tel.events) + tel.events.dropped
        # Per-site accounting, deliberately over-counted:
        #  - kernel: one always-on int increment per simulated event plus
        #    the ``profiler is None`` branch in ``step()`` (each counted
        #    as a full guard even though they are cheaper) — 2 per event;
        #  - journal: guard + histogram + counter ~ 3 guard-equivalents;
        #  - units: started/done/retry/wall hooks ~ 6 per unit;
        #  - spans/events/checkpoints: 2 each for enter/exit.
        hooks = (
            2 * result_engine_events
            + 3 * appends
            + 6 * units
            + 2 * (spans + events)
            + 64  # flushes, budget gauges, board scans
        )
        return int(hooks), {
            "sim_events": int(result_engine_events),
            "journal_appends": int(appends),
            "units": int(units),
            "spans": int(spans),
            "events": int(events),
        }
    finally:
        _obs.disable()


def test_disabled_telemetry_overhead_under_5_percent(tmp_path):
    _obs.disable()
    disabled_s = min(
        run_campaign(tmp_path, f"off-{i}")[0] for i in range(REPEATS)
    )
    hooks, breakdown = count_hooks(tmp_path)
    guard_s = time_disabled_guard()

    overhead_s = hooks * guard_s
    overhead_fraction = overhead_s / disabled_s
    payload = {
        "benchmark": "telemetry guard overhead, sinks detached",
        "campaign_seconds_disabled": round(disabled_s, 6),
        "guard_ns": round(guard_s * 1e9, 3),
        "hook_executions": hooks,
        "hook_breakdown": breakdown,
        "overhead_seconds": round(overhead_s, 6),
        "overhead_fraction": round(overhead_fraction, 6),
        "budget_fraction": BUDGET_FRACTION,
    }
    merge_result(payload)
    print(f"\ncampaign {disabled_s * 1e3:.1f} ms disabled, "
          f"{hooks} hooks x {guard_s * 1e9:.0f} ns = "
          f"{overhead_fraction:.2%} overhead -> {RESULT_PATH.name}")
    assert overhead_fraction < BUDGET_FRACTION, (
        f"disabled-telemetry overhead {overhead_fraction:.2%} "
        f"exceeds the {BUDGET_FRACTION:.0%} budget"
    )


def populate_serving_registry(reg):
    """A registry shaped like a busy serve worker: labelled request and
    outcome counters, latency histograms, queue/budget gauges."""
    for verb in ("predict", "fit", "health", "models"):
        for outcome in ("ok", "error"):
            reg.counter("service_requests_total", verb=verb,
                        outcome=outcome).inc(1000)
        reg.histogram("service_request_seconds", verb=verb,
                      buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0))
        for _ in range(200):
            reg.histogram("service_request_seconds", verb=verb).observe(0.004)
    for model in ("lmo", "hockney", "plogp"):
        reg.counter("service_predictions_total", model=model).inc(500)
        reg.gauge("model_rmse", model=model).set(0.02)
    reg.gauge("service_inflight").set(2)
    reg.gauge("journal_bytes").set(1 << 20)
    reg.counter("journal_appends_total").inc(4096)


def test_timeline_and_flight_overhead_under_1_percent(tmp_path):
    """Steady-state cost of the always-on arms added by the flight
    recorder issue: 1 Hz timeline ticks + 4 Hz spill syncs < 1%/s."""
    tel = _obs.enable(fresh=True)
    try:
        populate_serving_registry(tel.registry)
        for i in range(48):  # a representative span/event population
            with _obs.span("serve.request", verb="predict", i=i):
                pass
            tel.events.info("request", verb="predict", i=i)

        clock = [0.0]
        store = TimelineStore(registry=tel.registry, tiers=DEFAULT_TIERS,
                              clock=lambda: clock[0])
        store.tick(0.0)
        tick_s = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(100):
                clock[0] += 1.0
                # keep the registry moving so every tick folds real deltas
                tel.registry.counter("service_requests_total",
                                     verb="predict", outcome="ok").inc(7)
                tel.registry.histogram("service_request_seconds",
                                       verb="predict").observe(0.003)
                store.tick(clock[0])
            tick_s = min(tick_s, (time.perf_counter() - start) / 100)

        recorder = FlightRecorder(tel, process="bench",
                                  spill_path=str(tmp_path / "bench.spill"),
                                  sync_interval=0.0)
        sync_s = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(100):
                recorder.sync()
            sync_s = min(sync_s, (time.perf_counter() - start) / 100)
        recorder.close()
    finally:
        _obs.disable()

    steady_cost_per_s = tick_s * TICK_HZ + sync_s * SYNC_HZ
    fraction = steady_cost_per_s / 1.0
    merge_result({"timeline_flight": {
        "benchmark": "timeline tick + flight sync steady state",
        "tick_us": round(tick_s * 1e6, 3),
        "sync_us": round(sync_s * 1e6, 3),
        "tick_hz": TICK_HZ,
        "sync_hz": SYNC_HZ,
        "overhead_fraction": round(fraction, 6),
        "budget_fraction": TIMELINE_BUDGET_FRACTION,
    }})
    print(f"\ntick {tick_s * 1e6:.1f} us x {TICK_HZ:.0f} Hz + "
          f"sync {sync_s * 1e6:.1f} us x {SYNC_HZ:.0f} Hz = "
          f"{fraction:.3%} of wall-clock -> {RESULT_PATH.name}")
    assert fraction < TIMELINE_BUDGET_FRACTION, (
        f"timeline+flight steady-state overhead {fraction:.2%} exceeds "
        f"the {TIMELINE_BUDGET_FRACTION:.0%} budget"
    )
