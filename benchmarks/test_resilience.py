"""Resilience benchmark: availability and latency under wire chaos.

Boots the daemon in-process, then drives an identical call sequence
through two arms of the deterministic chaos proxy
(:class:`repro.serve.ChaosProxy`):

* **clean** — the proxy as a transparent relay (the control arm);
* **chaos** — the default chaos profile (~10% of calls hit a reset,
  truncation, flipped byte, stall or delayed delivery), with the
  resilient client's seeded retry/backoff/idempotency discipline doing
  the surviving.

Three things are asserted, not just reported:

1. **Availability ≥ 99% under chaos**: the fraction of logical calls
   that complete despite injected faults (with the fixed seeds below,
   every call completes — the floor guards against regressions in the
   retry whitelist or the proxy's fault accounting).
2. **Identity, always**: every completed reply — through however many
   retries — is bit-identical to the in-process ``api.predict`` answer.
   Corruption must be *detected* (CRC) and retried, never delivered.
3. **Faults actually happened**: the chaos arm must have injected a
   meaningful number of faults, or the availability number is
   measuring nothing.

Latency columns (p50/p99 per arm) are reported for the trajectory but
not gated: chaos p99 deliberately includes 500 ms stalls and backoff
sleeps, so gating it would only test the fault schedule.

Results land in ``BENCH_resilience.json`` at the repo root::

    PYTHONPATH=src python -m pytest benchmarks/test_resilience.py -s
"""

import json
import os
import time
from pathlib import Path

from repro import api
from repro.cluster import GroundTruth
from repro.models import ExtendedLMOModel, GatherIrregularity
from repro.serve import (
    ChaosConfig,
    ChaosProxy,
    ResilientClient,
    RetryPolicy,
    ServeConfig,
    ServerThread,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

KB = 1024
CALLS = 400
CHAOS_SEED = 2024
RETRY_SEED = 7
MIN_AVAILABILITY = 0.99


def make_model():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.22,
                             p_at_m2=0.7)
    return ExtendedLMOModel.from_ground_truth(GroundTruth.random(8, seed=3), irr)


def make_cases(count):
    cases = []
    for i in range(count):
        if i % 2 == 0:
            cases.append(("scatter", "linear", float(KB * (i % 40 + 1)), i % 8))
        else:
            cases.append(("gather", "linear", float(2 * KB * (i % 40 + 1)), i % 8))
    return cases


def drive_arm(host, chaos_config, expected):
    """One arm: the fixed call sequence through a fresh proxy.

    Returns (latencies of completed calls, completed, mismatches,
    retries, fault stats).
    """
    hostname, port = host.address
    latencies = []
    completed = 0
    mismatches = 0
    with ChaosProxy(hostname, port, chaos_config) as proxy:
        client = ResilientClient(
            host=proxy.host, port=proxy.port, timeout=2.0,
            retry=RetryPolicy(max_retries=10, base_delay=0.01,
                              max_delay=0.25, seed=RETRY_SEED),
        )
        try:
            for case, local in expected:
                operation, algorithm, nbytes, root = case
                t0 = time.perf_counter()
                try:
                    reply = client.predict("lmo", operation, algorithm,
                                           nbytes, root=root)
                except Exception:  # noqa: BLE001 - an unavailable call
                    continue
                latencies.append(time.perf_counter() - t0)
                completed += 1
                if reply != local:
                    mismatches += 1
            retries = client.retries_total
        finally:
            client.close()
        stats = proxy.stats.snapshot()
    return latencies, completed, mismatches, retries, stats


def percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_availability_and_identity_under_chaos():
    model = make_model()
    cases = make_cases(CALLS)
    expected = [
        (case, api.predict(model, case[0], case[1], case[2], root=case[3]))
        for case in cases
    ]
    config = ServeConfig(port=0, models={"lmo": model}, workers=2,
                         telemetry=False)
    arms = {}
    with ServerThread(config) as host:
        for arm_name, chaos_config in (
            ("clean", ChaosConfig.clean(seed=CHAOS_SEED)),
            ("chaos", ChaosConfig(seed=CHAOS_SEED)),
        ):
            latencies, completed, mismatches, retries, stats = drive_arm(
                host, chaos_config, expected
            )
            faults = sum(stats[k] for k in ("resets", "partials",
                                            "corruptions", "stalls",
                                            "delays"))
            arms[arm_name] = {
                "calls": CALLS,
                "completed": completed,
                "availability": completed / CALLS,
                "mismatched_replies": mismatches,
                "retries": retries,
                "p50_ms": percentile(latencies, 0.50) * 1e3,
                "p99_ms": percentile(latencies, 0.99) * 1e3,
                "faults_injected": faults,
                "fault_stats": stats,
            }

    doc = {
        "benchmark": "service resilience under wire chaos",
        "cpus": os.cpu_count() or 1,
        "chaos_seed": CHAOS_SEED,
        "retry_seed": RETRY_SEED,
        "min_availability": MIN_AVAILABILITY,
        "arms": arms,
    }
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nresilience bench -> {RESULT_PATH}")
    for arm_name in ("clean", "chaos"):
        row = arms[arm_name]
        print(f"  {arm_name:>5}: availability {row['availability']:6.2%}, "
              f"p50 {row['p50_ms']:7.2f} ms, p99 {row['p99_ms']:7.2f} ms, "
              f"{row['faults_injected']:3d} faults, "
              f"{row['retries']:3d} retries")

    # The gates (self-contained: nothing here depends on a past run).
    assert arms["clean"]["availability"] == 1.0, (
        "calls failed with no faults injected — the proxy or server is broken"
    )
    assert arms["clean"]["faults_injected"] == 0
    assert arms["chaos"]["availability"] >= MIN_AVAILABILITY, (
        f"availability under chaos {arms['chaos']['availability']:.2%} is "
        f"below the {MIN_AVAILABILITY:.0%} floor"
    )
    assert arms["chaos"]["faults_injected"] >= CALLS // 50, (
        "the chaos arm injected almost nothing; the benchmark is vacuous"
    )
    for arm_name in ("clean", "chaos"):
        assert arms[arm_name]["mismatched_replies"] == 0, (
            f"{arm_name} arm delivered replies that diverged from "
            f"api.predict — corruption got through"
        )
