"""Process-local metrics registry: counters, gauges, log2-bucket histograms.

The registry is the numeric half of :mod:`repro.obs`: named metric
*families*, each carrying zero or more *children* distinguished by label
values (the Prometheus data model, without the Prometheus client — the
whole subsystem is stdlib-only).  Three instrument types:

* :class:`Counter` — monotonically increasing float (`inc`);
* :class:`Gauge` — a value that goes both ways (`set` / `inc` / `dec`);
* :class:`Histogram` — observations bucketed into **fixed log2 buckets**
  (upper bounds ``2**lo .. 2**hi``), chosen because every quantity we
  instrument — journal fsync latencies, sweep batch sizes, RTO
  escalation delays — spans orders of magnitude, where log2 edges give
  constant relative resolution with a handful of integers per family.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain dicts that
round-trip through JSON; :func:`prometheus_text` renders a snapshot in
the Prometheus text exposition format, so ``repro obs export`` can
re-expose a snapshot written by an earlier run.

Thread-safety: a single lock per registry guards family creation; child
updates are plain float ops (atomic enough under the GIL for telemetry).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "prometheus_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default log2 bucket exponent range: 2**-20 s (~1 us) .. 2**6 s (64 s)
#: covers every latency this codebase produces, from a journal append on
#: tmpfs to a dead-peer stall.
DEFAULT_LOG2_LO = -20
DEFAULT_LOG2_HI = 6


def _check_labels(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"bad label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Observations in fixed log2 buckets (upper bounds ``2**lo .. 2**hi``).

    ``observe(v)`` lands ``v`` in the first bucket whose upper bound is
    ``>= v``; values above ``2**hi`` land in the implicit ``+Inf``
    bucket.  Counts are stored per-bucket (not cumulative); cumulative
    sums are produced at exposition time.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, lo: int = DEFAULT_LOG2_LO, hi: int = DEFAULT_LOG2_HI) -> None:
        if hi <= lo:
            raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
        self.bounds: list[float] = [float(2.0 ** e) for e in range(lo, hi + 1)]
        self.bucket_counts: list[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; +inf when it lands above 2**hi)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        seen = 0
        for idx, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                return self.bounds[idx] if idx < len(self.bounds) else float("inf")
        return float("inf")

    def quantile_interpolated(self, q: float) -> float:
        """Linearly interpolated quantile (Prometheus ``histogram_quantile``
        semantics) — see :func:`bucket_quantile`."""
        buckets = [
            [bound, count] for bound, count in zip(self.bounds, self.bucket_counts)
        ] + [["+Inf", self.bucket_counts[-1]]]
        return bucket_quantile(buckets, self.count, q)


def bucket_quantile(buckets: Sequence[Sequence[Any]], count: int, q: float) -> float:
    """Interpolated quantile from snapshot-form buckets.

    ``buckets`` is the snapshot encoding: ``[[bound, n], ..., ["+Inf", n]]``
    with *per-bucket* (non-cumulative) counts.  The estimate assumes
    observations are uniformly spread within their bucket (the
    ``histogram_quantile`` convention): the q-th observation is placed by
    linear interpolation between the bucket's lower and upper bound.  The
    first bucket's lower edge is 0; a quantile landing in the ``+Inf``
    bucket clamps to the highest finite bound.  Returns NaN for an empty
    histogram.
    """
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return float("nan")
    rank = q * count
    seen = 0.0
    lower = 0.0
    for bound, n in buckets:
        if bound == "+Inf":
            # Everything left is above the last finite edge: clamp.
            return lower
        upper = float(bound)
        n = float(n)
        if n and seen + n >= rank:
            frac = (rank - seen) / n
            return lower + (upper - lower) * min(max(frac, 0.0), 1.0)
        seen += n
        lower = upper
    return lower


class _Family:
    """One named metric family: a type, a help string, labeled children."""

    def __init__(self, name: str, kind: str, help: str, **hist_kwargs: Any) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.hist_kwargs = hist_kwargs
        self.children: dict[tuple[tuple[str, str], ...], Any] = {}

    def child(self, labels: Mapping[str, Any]):
        key = _check_labels(labels)
        got = self.children.get(key)
        if got is None:
            if self.kind == "counter":
                got = Counter()
            elif self.kind == "gauge":
                got = Gauge()
            else:
                got = Histogram(**self.hist_kwargs)
            self.children[key] = got
        return got


class MetricsRegistry:
    """All metric families of one telemetry session."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- instrument accessors (create-on-first-use) --------------------------
    def _family(self, name: str, kind: str, help: str, **kwargs: Any) -> _Family:
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"bad metric name {name!r}")
            with self._lock:
                family = self._families.setdefault(name, _Family(name, kind, help, **kwargs))
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._family(name, "counter", help).child(labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._family(name, "gauge", help).child(labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        lo: int = DEFAULT_LOG2_LO,
        hi: int = DEFAULT_LOG2_HI,
        **labels: Any,
    ) -> Histogram:
        return self._family(name, "histogram", help, lo=lo, hi=hi).child(labels)

    # -- reading -------------------------------------------------------------
    def families(self) -> list[str]:
        return sorted(self._families)

    def value(self, name: str, **labels: Any) -> float:
        """Current value of one counter/gauge child (0.0 if never touched)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family.children.get(_check_labels(labels))
        if child is None:
            return 0.0
        if isinstance(child, Histogram):
            raise TypeError(f"{name!r} is a histogram; read snapshot() instead")
        return child.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label children."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        total = 0.0
        for child in family.children.values():
            total += child.count if isinstance(child, Histogram) else child.value
        return total

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every family (see :func:`prometheus_text`)."""
        out: dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key in sorted(family.children):
                child = family.children[key]
                labels = dict(key)
                if isinstance(child, Histogram):
                    samples.append({
                        "labels": labels,
                        "buckets": [
                            [bound, count]
                            for bound, count in zip(child.bounds, child.bucket_counts)
                        ] + [["+Inf", child.bucket_counts[-1]]],
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[name] = {"type": family.kind, "help": family.help, "samples": samples}
        return out

    def reset(self) -> None:
        """Drop every family (fresh registry semantics, same object)."""
        with self._lock:
            self._families.clear()

    def to_prometheus(self) -> str:
        return prometheus_text(self.snapshot())


def _fmt_labels(labels: Mapping[str, Any], extra: Optional[tuple[str, str]] = None) -> str:
    items: Iterable[tuple[str, Any]] = list(labels.items())
    if extra is not None:
        items = list(items) + [extra]
    if not items:
        return ""
    body = ",".join(
        '%s="%s"' % (
            k,
            str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"),
        )
        for k, v in items
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Histograms follow the convention: cumulative ``_bucket`` series with
    ``le`` labels ending in ``+Inf``, plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        help_text = str(family.get("help", "")).replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                cumulative = 0
                for bound, count in sample["buckets"]:
                    cumulative += count
                    le = "+Inf" if bound == "+Inf" else _fmt_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, ('le', le))} {cumulative}"
                    )
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {sample['count']}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}")
    return "\n".join(lines) + "\n"
