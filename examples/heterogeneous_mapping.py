"""Heterogeneity study: why per-processor models matter.

The paper's motivation (Sec. I): on a heterogeneous cluster a collective's
performance depends on *which* processors sit where in its communication
tree, and only a heterogeneous model can see that.  This example:

1. builds progressively more heterogeneous clusters (one node slowed down
   by a growing factor);
2. shows the homogeneous Hockney prediction is blind to the straggler's
   position while the LMO prediction and the simulation both move;
3. uses the LMO model to pick the best root for a scatter.

Run with::

    python examples/heterogeneous_mapping.py
"""


from repro import api
from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, homogeneous_cluster
from repro.models import (
    ExtendedLMOModel,
    HeterogeneousHockneyModel,
    predict_linear_pipelined,  # formula-level: no facade equivalent
)
from repro.mpi import run_collective

KB = 1024
N = 8


def cluster_with_straggler(factor: float, straggler: int = 3) -> SimulatedCluster:
    """A homogeneous cluster with one node's CPU slowed by ``factor``."""
    base = GroundTruth.random(N, seed=5, c_range=(50e-6, 50e-6), t_range=(10e-9, 10e-9),
                              l_range=(55e-6, 55e-6), beta_range=(105e6, 105e6))
    C = base.C.copy()
    t = base.t.copy()
    C[straggler] *= factor
    t[straggler] *= factor
    gt = GroundTruth(C, t, base.L, base.beta)
    return SimulatedCluster(
        homogeneous_cluster(N), ground_truth=gt, profile=IDEAL,
        noise=NoiseModel.none(), seed=int(factor * 10),
    )


def main() -> None:
    nbytes = 32 * KB
    print(f"linear scatter of {nbytes // KB} KB blocks on {N} nodes, "
          f"node 3 slowed by a factor:")
    print(f"{'factor':>7} {'observed':>10} {'LMO (4)':>10} {'LMO pipe':>10} "
          f"{'hom-Hockney':>12}")
    for factor in (1.0, 4.0, 16.0):
        cluster = cluster_with_straggler(factor)
        lmo = ExtendedLMOModel.from_ground_truth(cluster.ground_truth)
        hockney = HeterogeneousHockneyModel.from_ground_truth(
            cluster.ground_truth
        ).averaged()
        observed = run_collective(cluster, "scatter", "linear", nbytes=nbytes).time
        lmo_ms = api.predict(lmo, "scatter", "linear", nbytes).seconds * 1e3
        hom_ms = api.predict(hockney, "scatter", "linear", nbytes,
                             assumption="parallel").seconds * 1e3
        print(f"{factor:7.1f} {observed * 1e3:9.2f}ms "
              f"{lmo_ms:9.2f}ms "
              f"{predict_linear_pipelined(lmo, nbytes) * 1e3:9.2f}ms "
              f"{hom_ms:9.2f}ms"
              )
    print("   (formula (4) charges the straggler after all send slots —")
    print("    pessimistic; the pipelined tree evaluation is exact.")
    print("    the homogeneous model never moves: it averaged the straggler away)")
    print()

    # Root choice: the straggler is a terrible scatter root (it pays
    # (n-1) send slots); any model that sees per-processor parameters
    # knows that, the homogeneous one cannot.
    cluster = cluster_with_straggler(4.0)
    lmo = ExtendedLMOModel.from_ground_truth(cluster.ground_truth)
    print("choosing the scatter root with the LMO model (straggler = node 3):")
    predictions = {
        root: api.predict(lmo, "scatter", "linear", nbytes, root=root).seconds
        for root in range(N)
    }
    best_root = min(predictions, key=predictions.__getitem__)
    worst_root = max(predictions, key=predictions.__getitem__)
    for root in (best_root, worst_root):
        observed = run_collective(cluster, "scatter", "linear", nbytes=nbytes,
                                  root=root).time
        print(f"  root {root}: predicted {predictions[root] * 1e3:7.2f} ms, "
              f"observed {observed * 1e3:7.2f} ms"
              + ("   <- model's choice" if root == best_root else ""))
    assert best_root != 3, "the straggler must not be chosen as root"
    print()
    print(f"observed speedup of the model-chosen root over the worst: "
          f"{run_collective(cluster, 'scatter', 'linear', nbytes=nbytes, root=worst_root).time / run_collective(cluster, 'scatter', 'linear', nbytes=nbytes, root=best_root).time:.1f}x")


if __name__ == "__main__":
    main()
