"""The simulated single-switch cluster: CPUs, switch ports, transport.

:class:`SimulatedCluster` glues the DES kernel to the cluster ground truth
and an MPI/TCP profile.  It exposes the *hardware mechanisms* the paper's
models try to capture:

* one CPU resource per node — message processing (``C_i + M t_i``) on a
  node serializes, which is why the root of a linear scatter/gather is a
  sequential bottleneck;
* a single switch that forwards flows addressed to *different* destination
  ports fully in parallel (the paper's "network switches ... parallelize
  the messages addressed to different processors") — there is no shared
  backplane resource;
* one ingress-port resource per node — concurrent flows into the *same*
  port share one wire, so their occupancy (``M / beta_ij``) serializes;
* TCP/IP irregularities per :mod:`repro.cluster.profiles` — rendezvous
  handshakes and fragmentation (scatter leap), incast RTO escalations and
  window pacing (gather's M1/M2 thresholds).

The MPI layer (:mod:`repro.mpi`) builds message matching and collectives
on top of :meth:`SimulatedCluster.transmit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.cluster.noise import NoiseModel
from repro.cluster.params import GroundTruth, synthesize_ground_truth
from repro.cluster.profiles import LAM_7_1_3, MpiProfile
from repro.cluster.spec import ClusterSpec
from repro.obs import runtime as _obs
from repro.simlib import Event, Resource, Simulator
from repro.simlib.trace import Tracer

__all__ = ["SimulatedCluster", "TransportStats"]


@dataclass
class TransportStats:
    """Counters of protocol events, for tests and ablation benches."""

    messages: int = 0
    bytes_sent: int = 0
    rendezvous_handshakes: int = 0
    escalations: int = 0
    escalation_time: float = 0.0
    port_waits: int = 0

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.rendezvous_handshakes = 0
        self.escalations = 0
        self.escalation_time = 0.0
        self.port_waits = 0


@dataclass
class _PortState:
    """Bookkeeping of bytes heading into one ingress port.

    For incast-escalation purposes what matters is the *initial burst*:
    a TCP sender blasts its head-of-line message into the switch, then
    self-clocks off acknowledgements, so a sender with several messages
    queued contributes only its first message's bytes to the synchronized
    burst that can overflow the port buffer.  (This is why the paper's
    optimized gather — a series of sub-``M1`` gathers — avoids
    escalations even though the total bytes are unchanged.)
    """

    backlog_bytes: float = 0.0
    sender_queues: dict[int, list[float]] = field(default_factory=dict)

    def enqueue(self, src: int, nbytes: float) -> None:
        self.backlog_bytes += nbytes
        self.sender_queues.setdefault(src, []).append(nbytes)

    def dequeue(self, src: int, nbytes: float) -> None:
        self.backlog_bytes -= nbytes
        queue = self.sender_queues[src]
        queue.remove(nbytes)
        if not queue:
            del self.sender_queues[src]

    @property
    def n_senders(self) -> int:
        return len(self.sender_queues)

    def burst_bytes(self) -> float:
        """Bytes of the synchronized burst: one head message per sender."""
        return sum(queue[0] for queue in self.sender_queues.values())

    def has_sender(self, src: int) -> bool:
        return src in self.sender_queues


class SimulatedCluster:
    """A heterogeneous cluster behind a single non-blocking switch.

    Parameters
    ----------
    spec:
        Hardware specification (node list).
    ground_truth:
        LMO parameters of the hardware; synthesized from ``spec`` when
        omitted.
    profile:
        MPI/TCP irregularity profile (default: LAM 7.1.3 as in the paper's
        main experiments).
    noise:
        Stochastic perturbation of every activity; ``NoiseModel.none()``
        makes runs deterministic.
    seed:
        Seed of the cluster-wide random generator (noise + escalations).

    Notes
    -----
    The virtual clock is owned by ``self.sim``; :meth:`reset` replaces the
    simulator (fresh time zero) but keeps the random generator state, so a
    sequence of measurement runs sees fresh noise — call :meth:`reseed`
    for full reproducibility of a sequence.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        ground_truth: Optional[GroundTruth] = None,
        profile: MpiProfile = LAM_7_1_3,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
    ):
        self.spec = spec
        self.ground_truth = (
            ground_truth if ground_truth is not None else synthesize_ground_truth(spec, seed=seed)
        )
        if self.ground_truth.n != spec.n:
            raise ValueError(
                f"ground truth is for {self.ground_truth.n} nodes, spec has {spec.n}"
            )
        self.profile = profile
        self.noise = noise if noise is not None else NoiseModel.default()
        self.rng = np.random.default_rng(seed)
        self.stats = TransportStats()
        self.tracer: Optional[Tracer] = None
        self.injector = None  # set via attach_injector (fault injection)
        self.topology = None  # set via attach_topology (multi-switch)
        self.uplink: Optional[Resource] = None
        self.sim: Simulator
        self.cpu: list[Resource]
        self.port: list[Resource]
        self._ports: list[_PortState]
        self.reset()

    # -- lifecycle ----------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.spec.n

    def reset(self) -> None:
        """Fresh simulator at time zero (RNG state is preserved).

        The fault injector's cumulative clock absorbs the completed run's
        duration first, so fault windows span sequences of runs.
        """
        if self.injector is not None and hasattr(self, "sim"):
            self.injector.advance_epoch(self.sim.now)
        tel = _obs.ACTIVE
        if tel is not None and hasattr(self, "sim") and self.sim.events_processed:
            # Flush the finished run's kernel counter — the kernel itself
            # keeps a plain int so its step() loop never touches telemetry.
            tel.registry.counter(
                "sim_events_total", help="DES kernel events processed"
            ).inc(self.sim.events_processed)
        self.sim = Simulator()
        n = self.spec.n
        self.cpu = [Resource(self.sim, 1, f"cpu{i}") for i in range(n)]
        self.port = [Resource(self.sim, 1, f"port{i}") for i in range(n)]
        self._ports = [_PortState() for _ in range(n)]
        self.uplink = (
            Resource(self.sim, 1, "uplink") if self.topology is not None else None
        )

    def attach_topology(self, topology) -> None:
        """Switch to a multi-switch topology (None restores one switch).

        Rewrites the ground truth with the uplink's latency/rate on
        cross-switch links and arms a shared uplink resource, so
        concurrent cross-switch flows contend — the effect no
        single-switch point-to-point model can express.
        """
        if topology is not None:
            self.ground_truth = topology.apply_to_ground_truth(self.ground_truth)
        self.topology = topology
        self.reset()

    def reseed(self, seed: int) -> None:
        """Reset the random generator (full determinism of the next runs)."""
        self.rng = np.random.default_rng(seed)

    def attach_injector(self, injector) -> None:
        """Arm a :class:`~repro.cluster.faults.FaultInjector` (None disarms).

        The injector is consulted on every transfer from then on; the
        transport itself is untouched when no injector is attached, so the
        fault-free fast path costs nothing.
        """
        if injector is not None:
            injector.bind(self)
        self.injector = injector

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Record activity intervals into ``tracer`` (None detaches).

        Traces accumulate across :meth:`reset`; clear the tracer (or
        attach a fresh one) between runs you want to inspect separately.
        """
        self.tracer = tracer

    def trace(self, lane: str, start: float, end: float, label: str = "") -> None:
        """Record one activity interval if a tracer is attached."""
        if self.tracer is not None:
            self.tracer.record(lane, start, end, label)

    # -- noisy durations -------------------------------------------------------
    def noisy(self, duration: float) -> float:
        """Apply the cluster noise model to an activity duration."""
        return self.noise.perturb(duration, self.rng)

    # -- effective (fault-aware) hardware parameters -------------------------
    def processing_cost(self, node: int, nbytes: float) -> float:
        """CPU cost ``C + M t`` of ``node``, after any active slowdown."""
        cost = self.ground_truth.send_cost(node, nbytes)
        if self.injector is not None:
            cost *= self.injector.cpu_factor(node)
        return cost

    def effective_latency(self, src: int, dst: int) -> float:
        """Link latency ``L_ij``, after any active link degradation."""
        latency = self.ground_truth.L[src, dst]
        if self.injector is not None:
            latency *= self.injector.link_factors(src, dst)[0]
        return latency

    def effective_rate(self, src: int, dst: int) -> float:
        """Link rate ``beta_ij``, after any active link degradation."""
        rate = self.ground_truth.beta[src, dst]
        if self.injector is not None:
            rate *= self.injector.link_factors(src, dst)[1]
        return rate

    # -- transport ---------------------------------------------------------
    def transmit(
        self,
        src: int,
        dst: int,
        nbytes: int,
        rendezvous_ready: Optional[Event] = None,
        on_sent: Optional[Event] = None,
    ) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst`` through the switch.

        A generator to be driven inside the simulation (spawn it or yield
        from it).  It completes when the message has fully crossed the
        switch into the destination node's buffers; the MPI layer then
        delivers it to the matching receive, *charging the receiver's CPU
        cost* ``C_dst + nbytes*t_dst`` inside the receive call (the memcpy
        out of the transport buffer happens in ``MPI_Recv``, which is what
        makes PLogP's ``o_r`` measurable).

        Stages (matching the extended-LMO decomposition):

        1. sender CPU holds ``C_src + nbytes*t_src`` (+ protocol overhead;
           for rendezvous messages the handshake round-trip — and, when
           ``rendezvous_ready`` is given, the wait until the receiver has
           posted its receive — is paid while holding the CPU, as LAM's
           blocking long protocol does);
        2. switch latency ``L_src,dst``, then the destination port is held
           for the occupancy ``nbytes / beta_src,dst``; incast escalations
           (TCP RTO) may delay entering the port.
        """
        if src == dst:
            raise ValueError("transmit requires distinct src and dst")
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        prof, sim = self.profile, self.sim
        self.stats.messages += 1
        self.stats.bytes_sent += nbytes

        if self.injector is not None:
            # A hung endpoint stalls the transfer before it starts.
            stall = self.injector.hang_stall(src, dst)
            if stall > 0:
                yield sim.timeout(stall)

        # -- stage 1: sender CPU -----------------------------------------
        usage = self.cpu[src].request()
        yield usage
        cpu_start = sim.now
        try:
            if prof.uses_rendezvous(nbytes):
                self.stats.rendezvous_handshakes += 1
                # Request-to-send / clear-to-send round trip over the link.
                yield sim.timeout(self.noisy(2.0 * self.effective_latency(src, dst)))
                if rendezvous_ready is not None and not rendezvous_ready.processed:
                    yield rendezvous_ready
            cpu_cost = self.processing_cost(src, nbytes) + prof.sender_protocol_overhead(nbytes)
            yield sim.timeout(self.noisy(cpu_cost))
        finally:
            self.cpu[src].release(usage)
            self.trace(f"cpu{src}", cpu_start, sim.now, "s")
        if on_sent is not None:
            # A blocking MPI send returns here: the buffer has been handed
            # to the transport and the sender CPU is free again.
            on_sent.succeed(sim.now)

        # -- stage 2: switch + destination port ---------------------------
        yield sim.timeout(self.noisy(self.effective_latency(src, dst)))
        if (
            self.uplink is not None
            and self.topology is not None
            and not self.topology.same_switch(src, dst)
        ):
            # Cross-switch flows share the inter-switch uplink.
            uplink_start = sim.now
            yield from self.uplink.hold(
                sim, self.noisy(nbytes / self.topology.uplink_rate)
            )
            self.trace("uplink", uplink_start, sim.now, "u")
        port_state = self._ports[dst]
        incast_delay = self._sample_escalation(port_state, src, nbytes)
        loss_delay = 0.0
        if self.injector is not None:
            # Packet loss on a flaky link costs a retransmission timeout
            # on this transfer — escalations on *arbitrary* traffic, not
            # just gather incast.  A hang that started mid-flight stalls
            # the transfer here, before it enters the destination port.
            loss_delay = self.injector.loss_delay(src, dst)
            stall = self.injector.hang_stall(dst)
            if stall > 0:
                yield sim.timeout(stall)
        escalation = incast_delay + loss_delay
        tel = _obs.ACTIVE
        if tel is not None:
            # Size telemetry feeds the online M1/M2 detector
            # (repro.obs.insight.detectors): every transfer's size, plus
            # the sizes of those that ate a *natural* incast escalation.
            tel.registry.histogram(
                "sim_transfer_bytes", help="transfer sizes through the switch",
                lo=0, hi=28,
            ).observe(max(float(nbytes), 1.0))
            if incast_delay > 0.0:
                tel.registry.histogram(
                    "sim_escalated_transfer_bytes",
                    help="sizes of transfers that ate a natural incast RTO",
                    lo=0, hi=28,
                ).observe(max(float(nbytes), 1.0))
        port_state.enqueue(src, float(nbytes))
        try:
            if escalation > 0.0:
                self.stats.escalations += 1
                self.stats.escalation_time += escalation
                if tel is not None:
                    for cause, delay in (("incast", incast_delay), ("loss", loss_delay)):
                        if delay > 0.0:
                            tel.registry.counter(
                                "rto_escalations_total",
                                help="TCP RTO escalations by cause",
                                cause=cause,
                            ).inc()
                            tel.registry.histogram(
                                "rto_escalation_seconds",
                                help="RTO escalation delay by cause",
                                cause=cause,
                            ).observe(delay)
                            tel.events.warning(
                                "rto_escalation", cause=cause, src=src, dst=dst,
                                nbytes=nbytes, delay=delay, sim_time=sim.now,
                            )
                rto_start = sim.now
                yield sim.timeout(escalation)
                self.trace(f"port{dst}", rto_start, sim.now, "R")
            usage = self.port[dst].request()
            if not usage.triggered:
                self.stats.port_waits += 1
            yield usage
            wire_start = sim.now
            try:
                yield sim.timeout(self.noisy(nbytes / self.effective_rate(src, dst)))
            finally:
                self.port[dst].release(usage)
                self.trace(f"port{dst}", wire_start, sim.now, "w")
        finally:
            port_state.dequeue(src, float(nbytes))

    def _sample_escalation(self, port_state: _PortState, src: int, nbytes: int) -> float:
        """Incast RTO delay for a flow about to enter a port (0.0 = none).

        Flows larger than the TCP window are paced by the receiver and
        never escalate (they serialize cleanly instead — the M > M2
        regime).  Smaller flows are blasted; if the port backlog exceeds
        the incast threshold, packet loss triggers a retransmission
        timeout with a probability that grows with the backlog.
        """
        prof = self.profile
        if nbytes > prof.tcp_window or nbytes <= 0:
            return 0.0
        already_bursting = port_state.has_sender(src)
        n_senders = port_state.n_senders + (0 if already_bursting else 1)
        burst = port_state.burst_bytes() + (0.0 if already_bursting else nbytes)
        p = prof.escalation_probability(burst, n_senders)
        if p <= 0.0 or self.rng.random() >= p:
            return 0.0
        return prof.rto_base + float(self.rng.uniform(0.0, prof.rto_jitter))

    # -- fault injection -----------------------------------------------------
    def degrade_node(self, node: int, factor: float) -> None:
        """Slow one node's processing by ``factor`` (hardware-event injection).

        Multiplies the node's fixed and per-byte processing delays — a
        thermal throttle, a failing fan, a core stolen by a daemon.  Takes
        effect from the next transfer; estimated models become stale,
        which :func:`repro.estimation.drift.detect_model_drift` exists to
        notice.
        """
        if not (0 <= node < self.n):
            raise ValueError(f"node {node} out of range")
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        C = self.ground_truth.C.copy()
        t = self.ground_truth.t.copy()
        C[node] *= factor
        t[node] *= factor
        self.ground_truth = GroundTruth(
            C=C, t=t, L=self.ground_truth.L.copy(), beta=self.ground_truth.beta.copy()
        )

    def degrade_link(
        self, a: int, b: int, latency_factor: float = 1.0, rate_factor: float = 1.0
    ) -> None:
        """Permanently worsen one link: raise ``L_ab``, lower ``beta_ab``.

        The hardware analogue of a duplex renegotiation or a failing
        cable: ``latency_factor`` (>= 1) multiplies the fixed latency,
        ``rate_factor`` (in (0, 1]) scales the transmission rate.  For
        time-windowed, auto-reverting versions use
        :class:`~repro.cluster.faults.LinkDegradation` via a
        :class:`~repro.cluster.faults.FaultInjector`.
        """
        if not (0 <= a < self.n and 0 <= b < self.n) or a == b:
            raise ValueError(f"invalid link {a}-{b} for {self.n} nodes")
        if latency_factor < 1.0:
            raise ValueError(f"latency_factor must be >= 1, got {latency_factor}")
        if not (0 < rate_factor <= 1.0):
            raise ValueError(f"rate_factor must be in (0, 1], got {rate_factor}")
        L = self.ground_truth.L.copy()
        beta = self.ground_truth.beta.copy()
        L[a, b] = L[b, a] = L[a, b] * latency_factor
        beta[a, b] = beta[b, a] = beta[a, b] * rate_factor
        self.ground_truth = GroundTruth(
            C=self.ground_truth.C.copy(), t=self.ground_truth.t.copy(), L=L, beta=beta
        )

    # -- convenience -------------------------------------------------------
    def p2p_model_time(self, src: int, dst: int, nbytes: int) -> float:
        """The *noise-free, irregularity-free* extended-LMO p2p time."""
        return self.ground_truth.p2p_time(src, dst, nbytes)
