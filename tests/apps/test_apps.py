"""Tests for the mini-applications (matvec, Jacobi)."""

import numpy as np
import pytest

from repro.apps import run_jacobi, run_matvec
from repro.apps.matvec import row_partition_counts
from repro.cluster import (
    IDEAL,
    LAM_7_1_3,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
    synthesize_ground_truth,
    table1_cluster,
)
from repro.models import ExtendedLMOModel
from repro.optimize import optimal_partition

KB = 1024


def quiet_cluster(n=4, seed=0):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed, beta_range=(0.9e8, 1.1e8)),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


# ---------------------------------------------------------------------- matvec
def test_matvec_computes_correct_product():
    cluster = quiet_cluster()
    rng = np.random.default_rng(0)
    a = rng.normal(size=(40, 24))
    x = rng.normal(size=24)
    result = run_matvec(cluster, a, x)
    assert result.y.shape == (40,)
    assert result.max_error(a, x) < 1e-12
    assert result.makespan > 0


def test_matvec_even_split_default():
    cluster = quiet_cluster()
    a = np.eye(10)
    result = run_matvec(cluster, a, np.arange(10.0))
    assert sum(result.row_counts) == 10
    assert max(result.row_counts) - min(result.row_counts) <= 1
    assert np.allclose(result.y, np.arange(10.0))


def test_matvec_custom_counts_and_zero_rows():
    cluster = quiet_cluster()
    rng = np.random.default_rng(1)
    a = rng.normal(size=(12, 8))
    x = rng.normal(size=8)
    result = run_matvec(cluster, a, x, row_counts=[6, 0, 4, 2])
    assert result.max_error(a, x) < 1e-12


def test_matvec_validates_inputs():
    cluster = quiet_cluster()
    a = np.zeros((8, 4))
    with pytest.raises(ValueError):
        run_matvec(cluster, a, np.zeros(3))
    with pytest.raises(ValueError):
        run_matvec(cluster, a, np.zeros(4), row_counts=[1, 1, 1, 1])


def test_row_partition_counts_preserves_total():
    counts = row_partition_counts([1000, 3000, 2000, 2000], ncols=10)
    assert sum(counts) == 100
    assert counts[1] > counts[0]


def test_matvec_model_partition_beats_even_on_heterogeneous_cluster():
    """The LMO-optimized row distribution wins end to end on Table I."""
    gt = synthesize_ground_truth(table1_cluster())
    model = ExtendedLMOModel.from_ground_truth(gt)
    rng = np.random.default_rng(2)
    nrows, ncols = 640, 512
    a = rng.normal(size=(nrows, ncols))
    x = rng.normal(size=ncols)
    flop_time = 2e-9
    work = np.asarray([2.0 * flop_time / 8.0] * 16) * (gt.C / gt.C.min())

    cluster = SimulatedCluster(table1_cluster(), ground_truth=gt, profile=LAM_7_1_3,
                               noise=NoiseModel.none(), seed=3)
    even = run_matvec(cluster, a, x, flop_time=flop_time)
    part = optimal_partition(model, nrows * ncols * 8, work)
    counts = row_partition_counts(part.counts, ncols)
    # Per-rank flop cost must mirror the work rates used by the LP.
    optimal = run_matvec(cluster, a, x, row_counts=counts, flop_time=flop_time)
    assert optimal.max_error(a, x) < 1e-10
    assert optimal.makespan <= even.makespan


# ---------------------------------------------------------------------- jacobi
def test_jacobi_converges_to_straight_line():
    cluster = quiet_cluster()
    result = run_jacobi(cluster, npoints=16, iterations=600, left=1.0, right=3.0)
    assert result.max_error_vs_line(1.0, 3.0) < 1e-3
    assert result.residual < 1e-3
    assert result.makespan > 0


def test_jacobi_matches_serial_reference():
    """Bit-for-bit agreement with a serial Jacobi of the same iterations."""
    cluster = quiet_cluster(n=4, seed=5)
    npoints, iterations = 12, 37
    result = run_jacobi(cluster, npoints=npoints, iterations=iterations,
                        left=0.0, right=1.0)
    u = np.zeros(npoints)
    for _ in range(iterations):
        padded = np.concatenate([[0.0], u, [1.0]])
        u = 0.5 * (padded[:-2] + padded[2:])
    assert np.allclose(result.solution, u, atol=1e-14)


def test_jacobi_validation():
    cluster = quiet_cluster()
    with pytest.raises(ValueError):
        run_jacobi(cluster, npoints=8, iterations=0)
    with pytest.raises(ValueError):
        run_jacobi(cluster, npoints=8, iterations=5, cell_counts=[8, 0, 0, 0])


def test_jacobi_residual_decreases_with_more_iterations():
    cluster = quiet_cluster(seed=6)
    short = run_jacobi(cluster, npoints=16, iterations=40)
    long = run_jacobi(cluster, npoints=16, iterations=400)
    assert long.residual < short.residual


def test_jacobi_communication_fraction_grows_with_ranks():
    """Same domain, more ranks: halo traffic per iteration rises while
    compute per rank falls — the classic strong-scaling wall, visible in
    the simulated makespan per iteration."""
    small = quiet_cluster(n=3, seed=7)
    large = quiet_cluster(n=8, seed=7)
    npoints, iterations = 64, 30
    t_small = run_jacobi(small, npoints, iterations).makespan
    t_large = run_jacobi(large, npoints, iterations).makespan
    # With tiny per-rank compute, more ranks is *slower* end to end.
    assert t_large > t_small
