"""Unit tests for Resource / PriorityResource semantics."""

import pytest

from repro.simlib import PriorityResource, Resource, SimulationError, Simulator


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_single_slot_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(sim, name):
        start_req = sim.now
        usage = res.request()
        yield usage
        start = sim.now
        yield sim.timeout(2.0)
        res.release(usage)
        spans.append((name, start_req, start, sim.now))

    for name in ("a", "b", "c"):
        sim.spawn(worker(sim, name))
    sim.run()
    assert spans == [("a", 0.0, 0.0, 2.0), ("b", 0.0, 2.0, 4.0), ("c", 0.0, 4.0, 6.0)]


def test_capacity_two_allows_two_concurrent():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    finished = []

    def worker(sim, name):
        usage = res.request()
        yield usage
        yield sim.timeout(1.0)
        res.release(usage)
        finished.append((name, sim.now))

    for name in ("a", "b", "c"):
        sim.spawn(worker(sim, name))
    sim.run()
    assert finished == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_fifo_order_among_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, name, arrival):
        yield sim.timeout(arrival)
        usage = res.request()
        yield usage
        order.append(name)
        yield sim.timeout(10.0)
        res.release(usage)

    sim.spawn(worker(sim, "first", 0.0))
    sim.spawn(worker(sim, "second", 1.0))
    sim.spawn(worker(sim, "third", 2.0))
    sim.run()
    assert order == ["first", "second", "third"]


def test_release_of_unheld_usage_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def proc(sim):
        usage = res.request()
        yield usage
        res.release(usage)
        with pytest.raises(SimulationError):
            res.release(usage)

    sim.spawn(proc(sim))
    sim.run()


def test_hold_helper_acquires_and_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(sim, name):
        yield from res.hold(sim, 3.0)
        log.append((name, sim.now))

    sim.spawn(worker(sim, "a"))
    sim.spawn(worker(sim, "b"))
    sim.run()
    assert log == [("a", 3.0), ("b", 6.0)]
    assert res.count == 0 and res.queue_length == 0


def test_count_and_queue_length_track_state():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    snapshots = []

    def holder(sim):
        usage = res.request()
        yield usage
        yield sim.timeout(5.0)
        res.release(usage)

    def waiter(sim):
        yield sim.timeout(1.0)
        usage = res.request()
        snapshots.append((res.count, res.queue_length))  # held by holder, me waiting
        yield usage
        res.release(usage)

    sim.spawn(holder(sim))
    sim.spawn(waiter(sim))
    sim.run()
    assert snapshots == [(1, 1)]


def test_busy_flag():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    assert not res.busy

    def proc(sim):
        usage = res.request()
        yield usage
        assert res.busy
        res.release(usage)

    sim.spawn(proc(sim))
    sim.run()
    assert not res.busy


def test_priority_resource_serves_lowest_priority_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def blocker(sim):
        usage = res.request()
        yield usage
        yield sim.timeout(10.0)
        res.release(usage)

    def worker(sim, name, prio, arrival):
        yield sim.timeout(arrival)
        usage = res.request(priority=prio)
        yield usage
        order.append(name)
        res.release(usage)

    sim.spawn(blocker(sim))
    sim.spawn(worker(sim, "low-prio", 5, 1.0))
    sim.spawn(worker(sim, "high-prio", 1, 2.0))  # arrives later, served first
    sim.run()
    assert order == ["high-prio", "low-prio"]


def test_priority_ties_broken_by_arrival():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def blocker(sim):
        usage = res.request()
        yield usage
        yield sim.timeout(10.0)
        res.release(usage)

    def worker(sim, name, arrival):
        yield sim.timeout(arrival)
        usage = res.request(priority=3)
        yield usage
        order.append(name)
        res.release(usage)

    sim.spawn(blocker(sim))
    sim.spawn(worker(sim, "early", 1.0))
    sim.spawn(worker(sim, "late", 2.0))
    sim.run()
    assert order == ["early", "late"]


def test_release_at_time_t_usable_by_request_at_time_t():
    """A slot released at time t must be grantable to a request issued at t."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted_at = []

    def holder(sim):
        usage = res.request()
        yield usage
        yield sim.timeout(2.0)
        res.release(usage)

    def requester(sim):
        yield sim.timeout(2.0)
        usage = res.request()
        yield usage
        granted_at.append(sim.now)
        res.release(usage)

    sim.spawn(holder(sim))
    sim.spawn(requester(sim))
    sim.run()
    assert granted_at == [2.0]


def test_interrupt_during_hold_releases_resource():
    """hold() must release its slot even when the holder is interrupted
    mid-activity (the finally path) — otherwise the resource leaks."""
    from repro.simlib import Interrupt

    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder(sim):
        try:
            yield from res.hold(sim, 100.0)
        except Interrupt:
            log.append(("interrupted", sim.now))

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt()

    def waiter(sim):
        yield from res.hold(sim, 1.0)
        log.append(("acquired", sim.now))

    victim = sim.spawn(holder(sim))
    sim.spawn(interrupter(sim, victim))
    sim.spawn(waiter(sim))
    sim.run()
    assert ("interrupted", 1.0) in log
    assert ("acquired", 2.0) in log  # slot freed at t=1, held 1s
    assert res.count == 0
