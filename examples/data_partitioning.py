"""Heterogeneous data partitioning with the LMO model.

The reason the paper's group builds heterogeneous communication models:
to distribute a workload so that *communication + computation* finishes
everywhere at once.  This example

1. estimates the LMO model on the Table I cluster,
2. solves the min-makespan distribution (a small linear program over the
   model's scatterv + compute finish times),
3. validates it on the simulator against the naive equal split,
4. shows what happens when the hardware changes under a stale
   distribution — and how drift detection catches it.

Run with::

    python examples/data_partitioning.py
"""


from repro.cluster import LAM_7_1_3, SimulatedCluster, table1_cluster
from repro.estimation import DESEngine, detect_model_drift, estimate_extended_lmo
from repro.optimize import (
    even_partition,
    optimal_partition,
    run_partitioned_workload,
)

KB = 1024
MB = 1024 * 1024


def main() -> None:
    cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3, seed=12)
    model = estimate_extended_lmo(DESEngine(cluster), reps=3, clamp=True).model
    n = cluster.n

    # Compute rates proportional to each node's fixed cost — the slow
    # Celeron also computes slowly.  The workload is compute-heavy
    # (~400 ns/B, i.e. a few hundred FLOP per byte): that is where
    # partitioning has leverage; a wire-bound job is root-limited no
    # matter how it is split.
    c_scale = cluster.ground_truth.C / cluster.ground_truth.C.min()
    work = 400e-9 * c_scale
    total = 32 * MB

    part = optimal_partition(model, total, work)
    even = even_partition(n, total)

    print(f"distributing {total // MB} MB over {n} heterogeneous nodes "
          "(scatterv + compute):")
    print(f"{'rank':>5} {'node':<18} {'even':>9} {'optimal':>9}")
    spec = cluster.spec
    for rank in range(n):
        print(f"{rank:>5} {spec.nodes[rank].processor:<18} "
              f"{even[rank] / MB:8.2f}M {part.counts[rank] / MB:8.2f}M")
    print()

    t_even = run_partitioned_workload(cluster, even, work)
    t_optimal = run_partitioned_workload(cluster, part.counts, work)
    print(f"observed makespan: even {t_even * 1e3:8.1f} ms, "
          f"optimal {t_optimal * 1e3:8.1f} ms "
          f"({t_even / t_optimal:.2f}x faster)")
    print(f"model predicted:   optimal {part.predicted_makespan * 1e3:8.1f} ms")
    print()

    # The cluster changes: node 7 starts throttling — its communication
    # processing (visible to drift checks) and its compute rate both slow.
    cluster.degrade_node(7, factor=3.0)
    degraded_work = work.copy()
    degraded_work[7] *= 3.0
    t_stale = run_partitioned_workload(cluster, part.counts, degraded_work)
    report = detect_model_drift(model, DESEngine(cluster))
    print("node 7 thermally throttles (3x slower):")
    print(f"  stale distribution now takes {t_stale * 1e3:8.1f} ms")
    print(f"  drift check: worst pair {report.worst_pair} off by "
          f"{report.worst_error:.0%} -> drifted = {report.drifted}, "
          f"suspects = {report.drifted_nodes()}")

    fresh_model = estimate_extended_lmo(DESEngine(cluster), reps=3, clamp=True).model
    fresh = optimal_partition(fresh_model, total, degraded_work)
    t_fresh = run_partitioned_workload(cluster, fresh.counts, degraded_work)
    print(f"  re-estimated + re-partitioned: {t_fresh * 1e3:8.1f} ms "
          f"(node 7 share {part.counts[7] / MB:.2f}M -> {fresh.counts[7] / MB:.2f}M)")


if __name__ == "__main__":
    main()
