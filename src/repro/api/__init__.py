"""The stable high-level API of the reproduction toolkit.

One import gives the whole paper workflow::

    from repro import api

    cluster = api.load_cluster()                 # Table I, LAM 7.1.3
    outcome = api.estimate(cluster)              # extended LMO (eqs. 6-12)
    p = api.predict(outcome.model, "scatter", "linear", 65536)
    m = api.measure(cluster, "scatter", "linear", 65536)
    print(p.seconds, m.mean)

Every function returns a frozen dataclass from :mod:`repro.api.schema`
(schema version 3) with ``to_dict()``/``from_dict()`` — the same
serialization the CLI's ``--format json`` prints and the
:mod:`repro.serve` wire protocol speaks, so an in-process result and a
wire reply round-trip to identical JSON.  Failures raise the unified
taxonomy of :mod:`repro.api.errors` (``InvalidRequest`` /
``ModelNotLoaded`` / ``Overloaded`` / ``InternalError``, with stable
string codes that map 1:1 onto wire and CLI error payloads).  Heavy
lifting stays in the specialist modules — estimation in
:mod:`repro.estimation`, vectorized prediction in
:mod:`repro.predict_service`, measurement in :mod:`repro.benchlib` — the
facade only composes them and names their results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro import io as model_io
from repro.api import errors, schema
from repro.api.errors import (
    ApiError,
    InternalError,
    InvalidRequest,
    ModelNotLoaded,
    Overloaded,
)
from repro.api.schema import (
    SCHEMA_VERSION,
    EstimateOutcome,
    GatherOptimization,
    Measurement,
    Prediction,
    PredictionBatch,
)
from repro.benchlib import CollectiveBenchmark
from repro.cluster import (
    LAM_7_1_3,
    MPICH_1_2_7,
    OPEN_MPI,
    IDEAL,
    ClusterSpec,
    NoiseModel,
    SimulatedCluster,
    table1_cluster,
)
from repro.estimation import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    CampaignStatus,
    DESEngine,
    ParallelCampaign,
    ParallelConfig,
    campaign_status as _campaign_status,
    detect_gather_irregularity,
    estimate_extended_lmo,
    estimate_heterogeneous_hockney,
    estimate_loggp,
    estimate_plogp,
    parallel_shards_exist,
    recipe_for_cluster,
    star_triplets,
    sweep_collective,
)
from repro.models.lmo_extended import ExtendedLMOModel
from repro.obs import MetricsRegistry, Telemetry
from repro.obs import runtime as _obs_runtime
from repro.obs.insight import (
    ResidualMonitor,
    ResidualRecord,
    Scorecard,
    render_scorecards,
    scorecards as _scorecards,
)
from repro.optimize.gather_splitting import (
    predict_optimized_gather_sweep,
    split_chunk_counts,
)
from repro.predict_service import (
    PredictRequest,
    available_algorithms,
    model_label,
    predict_many as _predict_many,
    predict_one,
    predict_sweep,
)
from repro.stats import MeasurementPolicy

__all__ = [
    "PROFILES",
    "SCHEMA_VERSION",
    "ApiError",
    "InternalError",
    "InvalidRequest",
    "ModelNotLoaded",
    "Overloaded",
    "errors",
    "schema",
    "CampaignConfig",
    "CampaignResult",
    "CampaignStatus",
    "ParallelConfig",
    "PredictRequest",
    "Prediction",
    "PredictionBatch",
    "Measurement",
    "EstimateOutcome",
    "FidelityCheck",
    "GatherOptimization",
    "available_algorithms",
    "check_fidelity",
    "load_cluster",
    "load_model",
    "save_model",
    "estimate",
    "predict",
    "predict_many",
    "predict_sweep",
    "measure",
    "optimize_gather",
    "run_campaign",
    "resume_campaign",
    "campaign_status",
    "telemetry",
]

KB = 1024

#: MPI implementation profiles selectable by name.
PROFILES = {
    "lam": LAM_7_1_3,
    "mpich": MPICH_1_2_7,
    "openmpi": OPEN_MPI,
    "ideal": IDEAL,
}


# -- result types live in repro.api.schema (one serialization for the facade,
# -- the CLI and the wire protocol); re-exported above for compatibility.


# -- cluster and model I/O ------------------------------------------------------
def load_cluster(
    spec: Union[ClusterSpec, str, None] = None,
    nodes: Optional[int] = None,
    profile: str = "lam",
    seed: int = 0,
    noise: bool = True,
) -> SimulatedCluster:
    """Build a simulated cluster.

    ``spec`` is a :class:`ClusterSpec`, a path to a saved spec JSON, or
    None for the paper's Table I cluster.  ``nodes`` optionally truncates
    to the first N nodes.  ``profile`` names an MPI implementation
    (``lam`` / ``mpich`` / ``openmpi`` / ``ideal``).
    """
    if spec is None:
        spec = table1_cluster()
    elif isinstance(spec, str):
        spec = model_io.load(spec)
        if not isinstance(spec, ClusterSpec):
            raise TypeError(f"{type(spec).__name__} is not a cluster spec")
    if nodes is not None:
        if not (2 <= nodes <= spec.n):
            raise InvalidRequest(f"nodes must be in [2, {spec.n}], got {nodes}")
        spec = ClusterSpec(spec.nodes[:nodes], name=f"{spec.name}-{nodes}")
    if profile not in PROFILES:
        raise InvalidRequest(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )
    return SimulatedCluster(
        spec,
        profile=PROFILES[profile],
        noise=NoiseModel.default() if noise else NoiseModel.none(),
        seed=seed,
    )


def load_model(path: str):
    """Load a saved model (any schema version :mod:`repro.io` accepts)."""
    return model_io.load(path)


def save_model(model, path: str) -> None:
    """Save a model as schema-v2 JSON."""
    model_io.save(model, path)


# -- estimation -----------------------------------------------------------------
def estimate(
    cluster: SimulatedCluster,
    model: str = "lmo",
    reps: int = 3,
    quick: bool = False,
    empirical: bool = False,
) -> EstimateOutcome:
    """Run a model's published estimation procedure on ``cluster``.

    ``model`` is one of ``lmo`` (extended LMO, eqs. 6-12), ``hockney``
    (heterogeneous Hockney), ``loggp`` or ``plogp``.  ``quick`` uses the
    reduced star-triplet design (LMO only); ``empirical`` additionally
    detects the gather irregularity parameters M1/M2 (LMO only).
    """
    engine = DESEngine(cluster)
    start = engine.estimation_time
    if model == "lmo":
        triplets = star_triplets(cluster.n) if quick else None
        estimated = estimate_extended_lmo(
            engine, reps=reps, triplets=triplets, clamp=True
        ).model
        if empirical:
            sweep = sweep_collective(
                engine, "gather", "linear",
                sizes=[2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 48 * KB,
                       64 * KB, 80 * KB, 96 * KB],
                reps=12,
            )
            estimated = estimated.with_irregularity(detect_gather_irregularity(sweep))
    elif model == "hockney":
        estimated = estimate_heterogeneous_hockney(engine, reps=reps).model
    elif model == "loggp":
        estimated = estimate_loggp(engine, reps=reps)
    elif model == "plogp":
        estimated = estimate_plogp(engine, reps=reps).model
    else:
        raise InvalidRequest(f"unknown model {model!r}; choose from "
                             "['lmo', 'hockney', 'loggp', 'plogp']")
    return EstimateOutcome(
        model=estimated,
        model_name=model,
        n=cluster.n,
        estimation_time=float(engine.estimation_time - start),
    )


# -- durable campaigns ----------------------------------------------------------
def run_campaign(
    cluster: SimulatedCluster,
    journal: str,
    config: Optional[CampaignConfig] = None,
    workers: int = 1,
    parallel: Optional[ParallelConfig] = None,
) -> CampaignResult:
    """Run the full pair+triplet estimation sweep as a durable campaign.

    Every experiment is journaled write-ahead to ``journal`` (a JSONL
    file that must not yet exist); a crash, deadline or budget stop
    leaves the journal resumable with :func:`resume_campaign`.  The
    result carries the assembled model (or None when stopped early)
    plus an explicit coverage/degraded report.

    With ``workers > 1`` (or an explicit ``parallel`` config) the sweep
    is sharded across supervised worker processes
    (:mod:`repro.estimation.parallel`): units run under time-bounded
    leases, crashed or straggling workers are reclaimed, and the
    per-worker journals are deterministically merged back into the
    canonical journal at ``journal`` — the result is bit-identical to
    the serial run with the same seed.
    """
    if workers > 1 or parallel is not None:
        if parallel is None:
            parallel = ParallelConfig(workers=workers)
        return ParallelCampaign.start(
            recipe_for_cluster(cluster), journal, config=config, parallel=parallel
        ).run()
    return Campaign.start(DESEngine(cluster), journal, config=config).run()


def resume_campaign(
    cluster: SimulatedCluster,
    journal: str,
    max_wall_seconds: Optional[float] = None,
    max_sim_seconds: Optional[float] = None,
    max_repetitions: Optional[int] = None,
    workers: int = 1,
    parallel: Optional[ParallelConfig] = None,
) -> CampaignResult:
    """Continue an interrupted campaign from its journal.

    The cluster must match the journal's recorded fingerprint (same
    spec, ground truth and seed).  Completed experiments are never
    re-measured; given the same campaign seed, the final model is
    bit-identical to what the uninterrupted run would have produced.
    The budget arguments, when given, replace the journaled caps.

    A parallel campaign's sharded journal set (no canonical file yet,
    but a ``.coord`` journal next to it) is resumed through the
    parallel executor — ``workers`` then sizes the fresh fleet.  A
    serial (or already-merged) journal resumes serially; its remaining
    units are the stragglers, not worth a fleet.
    """
    if parallel_shards_exist(journal) and not os.path.exists(journal):
        if parallel is None:
            parallel = ParallelConfig(workers=max(1, workers))
        return ParallelCampaign.resume(
            recipe_for_cluster(cluster),
            journal,
            parallel=parallel,
            max_wall_seconds=max_wall_seconds,
            max_sim_seconds=max_sim_seconds,
            max_repetitions=max_repetitions,
        ).run()
    return Campaign.resume(
        DESEngine(cluster),
        journal,
        max_wall_seconds=max_wall_seconds,
        max_sim_seconds=max_sim_seconds,
        max_repetitions=max_repetitions,
    ).run()


def campaign_status(journal: str) -> CampaignStatus:
    """Inspect a campaign journal without attaching a cluster."""
    return _campaign_status(journal)


# -- telemetry ------------------------------------------------------------------
def telemetry(enable: bool = True, fresh: bool = False) -> Optional[Telemetry]:
    """The process-wide telemetry session (:mod:`repro.obs`).

    With ``enable=True`` (default) telemetry is switched on if it is not
    already, and the active session is returned — every instrumented
    layer (campaigns, breakers, the prediction cache, the simulated
    cluster, the maintainer) starts recording into it.  With
    ``enable=False`` the current session (or None) is returned without
    side effects.  ``fresh=True`` discards any existing session first.

    Typical use::

        tel = api.telemetry()
        api.run_campaign(cluster, "campaign.jsonl")
        print(tel.to_prometheus())
        escalations = tel.events.events("rto_escalation")
    """
    if not enable:
        return _obs_runtime.active()
    return _obs_runtime.enable(fresh=fresh)


# -- prediction -----------------------------------------------------------------
def predict(
    model,
    operation: str,
    algorithm: str,
    nbytes: float,
    root: int = 0,
    **kwargs,
) -> Prediction:
    """One predicted time, via the central batched prediction service.

    Raises :class:`~repro.api.errors.ModelNotLoaded` (a ``KeyError``)
    when the model has no formula for the (operation, algorithm) pair —
    see :func:`available_algorithms` — and
    :class:`~repro.api.errors.InvalidRequest` (a ``ValueError``) for bad
    parameters.
    """
    try:
        seconds = predict_one(model, operation, algorithm, nbytes, root=root, **kwargs)
    except ApiError:
        raise
    except KeyError as exc:
        raise ModelNotLoaded(exc.args[0] if exc.args else str(exc)) from exc
    except ValueError as exc:
        raise InvalidRequest(str(exc)) from exc
    return _as_prediction(model, operation, algorithm, nbytes, root, seconds)


def _as_prediction(
    model, operation: str, algorithm: str, nbytes: float, root: int, seconds: float
) -> Prediction:
    """Annotate a predicted time exactly as :func:`predict` does.

    Shared with :mod:`repro.serve`, whose batched evaluations must yield
    responses bit-identical to an in-process :func:`predict` call.
    """
    regime = escalation = None
    irregularity = getattr(model, "gather_irregularity", None)
    if operation == "gather" and irregularity is not None:
        regime = irregularity.regime(nbytes)
        escalation = irregularity.escalation_probability(nbytes)
    return Prediction(
        operation=operation, algorithm=algorithm, nbytes=float(nbytes), root=root,
        seconds=float(seconds), regime=regime, escalation_probability=escalation,
    )


def predict_many(model, requests: Sequence[PredictRequest]) -> np.ndarray:
    """Predicted times for a heterogeneous batch, in request order.

    Thin facade over :func:`repro.predict_service.predict_many`; requests
    are grouped and evaluated as vectorized sweeps behind one LRU cache.
    """
    return _predict_many(model, requests)


# -- measurement ----------------------------------------------------------------
def measure(
    cluster: SimulatedCluster,
    operation: str,
    algorithm: str,
    nbytes: int,
    root: int = 0,
    max_reps: int = 25,
    policy: Optional[MeasurementPolicy] = None,
    models: Optional[dict] = None,
    **kwargs,
) -> Measurement:
    """Benchmark one collective (MPIBlib-style: repeat until the CI closes).

    ``models`` optionally names models (``{"lmo": model, ...}``) whose
    predictions for this point are fed to the residual monitor
    (:mod:`repro.obs.insight.residuals`) alongside the measurement —
    a no-op when telemetry is off.
    """
    if policy is None:
        policy = MeasurementPolicy(min_reps=min(5, max_reps), max_reps=max_reps)
    bench = CollectiveBenchmark(cluster, policy=policy)
    point = bench.measure(operation, algorithm, int(nbytes), root=root, **kwargs)
    summary = point.summary
    if models:
        monitor = ResidualMonitor()
        for name, model in _named_models(models).items():
            try:
                predicted = predict_one(
                    model, operation, algorithm, nbytes, root=root
                )
            except KeyError:
                continue  # model has no formula for this point
            monitor.record(
                name, f"{operation}/{algorithm}", int(nbytes),
                predicted, float(summary.mean),
            )
    return Measurement(
        operation=operation, algorithm=algorithm, nbytes=int(nbytes), root=root,
        mean=float(summary.mean), ci_halfwidth=float(summary.ci_halfwidth),
        reps=int(summary.count), confidence=float(summary.confidence),
    )


# -- model fidelity -------------------------------------------------------------
def _named_models(models) -> dict:
    """Accept ``{"name": model}`` or a bare model sequence (auto-labeled)."""
    if isinstance(models, dict):
        return models
    return {model_label(model): model for model in models}


@dataclass(frozen=True)
class FidelityCheck:
    """Outcome of a streaming fidelity check: records plus scorecards."""

    records: tuple[ResidualRecord, ...]
    scorecards: tuple[Scorecard, ...]

    def render(self) -> str:
        return render_scorecards(list(self.scorecards))

    def to_dict(self) -> dict:
        return {
            "records": [
                {
                    "model": r.model, "operation": r.operation,
                    "nbytes": r.nbytes, "predicted": r.predicted,
                    "measured": r.measured, "signed_error": r.signed_error,
                }
                for r in self.records
            ],
            "scorecards": [card.to_dict() for card in self.scorecards],
        }


def check_fidelity(
    cluster: SimulatedCluster,
    models: dict,
    points: Sequence[tuple[str, str, int]],
    root: int = 0,
    max_reps: int = 15,
    policy: Optional[MeasurementPolicy] = None,
) -> FidelityCheck:
    """Measure ``points`` once and score every model's predictions.

    The streaming sibling of :func:`repro.analysis.accuracy.score_models`:
    each (prediction, measurement) pair flows through a
    :class:`ResidualMonitor`, so the same aggregates land in the active
    telemetry session (when on) *and* in the returned scorecards —
    ``repro obs dashboard`` on the session's snapshot shows exactly what
    this returns.  ``points`` are (operation, algorithm, nbytes) triples;
    models lacking a formula for a point skip it.
    """
    if not points:
        raise InvalidRequest("need at least one evaluation point")
    registry = MetricsRegistry()
    monitor = ResidualMonitor(registry)
    live = ResidualMonitor()  # feeds process telemetry too, when enabled
    records: list[ResidualRecord] = []
    named = _named_models(models)
    for operation, algorithm, nbytes in points:
        measurement = measure(
            cluster, operation, algorithm, int(nbytes), root=root,
            max_reps=max_reps, policy=policy,
        )
        for name, model in named.items():
            try:
                predicted = predict_one(
                    model, operation, algorithm, float(nbytes), root=root
                )
            except KeyError:
                continue
            label = f"{operation}/{algorithm}"
            record = monitor.record(
                name, label, int(nbytes), predicted, measurement.mean
            )
            live.record(name, label, int(nbytes), predicted, measurement.mean)
            if record is not None:
                records.append(record)
    return FidelityCheck(
        records=tuple(records),
        scorecards=tuple(_scorecards(registry.snapshot())),
    )


# -- optimization ---------------------------------------------------------------
def optimize_gather(
    model: ExtendedLMOModel,
    sizes: Sequence[float],
    root: int = 0,
    safety: float = 0.9,
) -> GatherOptimization:
    """Predict the gain of gather message-splitting over a size sweep.

    Sizes in the escalation region (M1, M2) are split into chunks below
    M1; the result compares the native linear gather prediction against
    the split schedule (both vectorized, one call each).
    """
    nb = np.asarray(sizes, dtype=float)
    native = predict_sweep(model, "gather", "linear", nb, root=root)
    irregularity = getattr(model, "gather_irregularity", None)
    if irregularity is None:
        counts = np.ones_like(nb)
        optimized = native
    else:
        counts = split_chunk_counts(nb, irregularity, safety)
        optimized = predict_optimized_gather_sweep(model, nb, root=root, safety=safety)
    return GatherOptimization(
        root=root,
        sizes=tuple(float(m) for m in nb),
        chunk_counts=tuple(int(c) for c in counts),
        native_seconds=tuple(float(t) for t in native),
        optimized_seconds=tuple(float(t) for t in optimized),
    )
