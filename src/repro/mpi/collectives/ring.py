"""Ring algorithms (allgather) — bandwidth-optimal on a switch.

In each of ``n-1`` steps, rank ``r`` sends the block it most recently
obtained to ``r+1`` and receives one from ``r-1``.  Every switch port
carries exactly one incoming flow per step, so steps don't contend.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.comm import COLL_TAG, RankComm

__all__ = ["allgather"]


def allgather(comm: RankComm, block_nbytes: int, block: Any = None) -> Generator:
    """Ring allgather; returns the list of all ranks' blocks."""
    size, me = comm.size, comm.rank
    right = (me + 1) % size
    left = (me - 1) % size
    blocks: list[Any] = [None] * size
    blocks[me] = block
    carried_rank = me
    for _step in range(size - 1):
        send_req = comm.isend(
            right, payload=(carried_rank, blocks[carried_rank]),
            nbytes=block_nbytes, tag=COLL_TAG,
        )
        env = yield from comm.wait(comm.irecv(left, tag=COLL_TAG))
        carried_rank, payload = env.payload
        blocks[carried_rank] = payload
        yield send_req.sent
    return blocks
