"""Dashboard tests: build/render/watch, plus the fig5-style acceptance run.

The acceptance bar from the observatory issue: on a fig5-style run
(gather traffic through the irregularity region), ``build_dashboard``
must produce per-model residual scorecards, a live M1/M2 within 2x of
the empirical thresholds, and a fired escalation-rate alert — and
``render_html`` must emit one self-contained HTML file.
"""

import io
import json

import pytest

import repro.api as api
from repro.obs import runtime as _obs
from repro.obs.insight.alerts import AlertRule
from repro.obs.insight.dashboard import (
    build_dashboard,
    render_html,
    render_terminal,
    watch,
)
from repro.obs.insight.detectors import EscalationDetector
from repro.obs.insight.residuals import ResidualMonitor
from repro.obs.runtime import Telemetry


def _sample_doc():
    """A synthetic snapshot with residuals, escalations, events, spans."""
    tel = Telemetry()
    reg = tel.registry
    monitor = ResidualMonitor(reg)
    monitor.record("lmo", "gather/linear", 16384, 1.1, 1.0)
    monitor.record("lmo", "gather/linear", 65536, 1.6, 1.0)
    monitor.record("hockney", "gather/linear", 16384, 0.4, 1.0)
    for i in range(50):
        reg.histogram("sim_transfer_bytes", lo=0, hi=28).observe(16384)
        if i < 10:
            reg.histogram("sim_escalated_transfer_bytes", lo=0, hi=28).observe(16384)
    reg.counter("rto_escalations_total", cause="incast").inc(10)
    reg.histogram("rto_escalation_seconds", cause="incast").observe(0.2)
    reg.gauge("breaker_nodes", state="open").set(1)
    tel.events.warning("rto_escalation", cause="incast", delay=0.2)
    tel.events.info("heal_cycle", action="ok")
    with tel.spans.span("campaign.run"):
        pass
    return tel.to_dict()


def test_build_dashboard_shape():
    data = build_dashboard(_sample_doc())
    assert data["title"] == "repro model-fidelity observatory"
    tiles = {t["label"]: t for t in data["tiles"]}
    assert tiles["residual pairs"]["value"] == "3"
    assert tiles["RTO escalations"]["value"] == "10"
    assert tiles["breakers open"]["value"] == "1"
    assert tiles["breakers open"]["status"] == "serious"
    assert tiles["escalation rate"]["value"] == "20.0%"
    assert int(tiles["alerts firing"]["value"]) >= 2  # escalation + breaker
    by_rule = {a["rule"]["name"]: a for a in data["alerts"]}
    assert by_rule["escalation_rate_high"]["firing"]
    assert by_rule["breaker_open"]["firing"]
    assert {c["model"] for c in data["scorecards"]} == {"lmo", "hockney"}
    assert data["irregularity"] is not None
    assert data["irregularity"]["m1"] == 8192.0
    assert data["events_by_name"] == {"heal_cycle": 1, "rto_escalation": 1}
    assert data["spans_by_name"]["campaign.run"]["count"] == 1
    # The whole data dict is JSON-ready (the CLI's --format json path).
    assert json.loads(json.dumps(data)) == data


def test_build_dashboard_rejects_non_snapshot():
    with pytest.raises(ValueError):
        build_dashboard({"format": "something-else"})


def test_build_dashboard_on_minimal_snapshot():
    doc = Telemetry().to_dict()
    data = build_dashboard(doc)
    assert data["scorecards"] == []
    assert data["irregularity"] is None
    assert not any(a["firing"] for a in data["alerts"])


def test_render_terminal_contains_everything():
    text = render_terminal(build_dashboard(_sample_doc()))
    assert "repro model-fidelity observatory" in text
    assert "FIRING" in text and "escalation_rate_high" in text
    assert "lmo" in text and "hockney" in text
    assert "live gather irregularity" in text
    assert "M1 ~ 8 KB" in text


def test_render_html_is_self_contained():
    data = build_dashboard(
        _sample_doc(),
        bench=[("BENCH_obs.json", {"overhead_fraction": 0.004})],
    )
    html = render_html(data)
    assert html.startswith("<!DOCTYPE html>")
    # Self-contained: no scripts, no external fetches of any kind.
    lowered = html.lower()
    assert "<script" not in lowered
    assert "http://" not in lowered and "https://" not in lowered
    assert "<link" not in lowered and "@import" not in lowered
    assert ' src="' not in lowered
    # Content: tiles, alerts, scorecards, irregularity chart + table twin.
    assert "escalation_rate_high" in html
    assert "lmo" in html and "hockney" in html
    assert "<svg" in html and "M1" in html and "M2" in html
    assert "prefers-color-scheme: dark" in html
    assert "BENCH_obs.json" in html
    assert "overhead_fraction" in html


def test_render_html_escapes_hostile_labels():
    tel = Telemetry()
    ResidualMonitor(tel.registry).record(
        '<b onmouseover="x()">&m', "gather/linear", 64, 1.1, 1.0
    )
    html = render_html(build_dashboard(tel.to_dict()))
    assert "<b onmouseover" not in html
    assert "&lt;b onmouseover=" in html


def test_watch_refreshes_and_tracks_lifecycle(tmp_path):
    quiet = Telemetry().to_dict()
    noisy = _sample_doc()
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(quiet))

    sleeps = []
    docs = iter([noisy, quiet])

    def fake_sleep(seconds):
        sleeps.append(seconds)
        path.write_text(json.dumps(next(docs)))

    stream = io.StringIO()
    tel = _obs.enable(fresh=True)
    data = watch(str(path), interval=0.5, count=3, stream=stream,
                 sleep=fake_sleep)
    assert sleeps == [0.5, 0.5]
    output = stream.getvalue()
    assert output.count("repro model-fidelity observatory") == 3
    # One rising edge and one falling edge per firing rule — the engine
    # persisted across refreshes, so transitions were narrated once.
    fired = tel.events.events("alert_firing")
    resolved = tel.events.events("alert_resolved")
    assert {e["rule"] for e in fired} >= {"escalation_rate_high", "breaker_open"}
    assert len(fired) == len(resolved)
    # Returns the last data dict (the quiet snapshot again).
    assert data["scorecards"] == []


def test_watch_json_formatter_roundtrips(tmp_path):
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(_sample_doc()))
    stream = io.StringIO()
    watch(str(path), count=1, stream=stream,
          formatter=lambda data: json.dumps(data, indent=2))
    doc = json.loads(stream.getvalue())
    assert doc["title"] == "repro model-fidelity observatory"


def test_watch_custom_rules(tmp_path):
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(_sample_doc()))
    rule = AlertRule(name="pairs", kind="metric_total",
                     metric="residual_abs_error", threshold=2.0, op=">")
    data = watch(str(path), count=1, stream=io.StringIO(), rules=[rule])
    assert [a["rule"]["name"] for a in data["alerts"]] == ["pairs"]
    assert data["alerts"][0]["firing"]


def test_fig5_style_chaos_run_acceptance():
    """The issue's acceptance scenario, end to end in-process.

    Estimate the extended LMO empirically (offline M1/M2), then stream a
    gather sweep through the irregularity region under fresh telemetry:
    the dashboard must show residual scorecards, a live M1/M2 within 2x
    of the empirical thresholds, and a fired escalation-rate alert.
    """
    cluster = api.load_cluster(nodes=6, seed=3)
    outcome = api.estimate(cluster, "lmo", quick=True, empirical=True)
    model = outcome.model
    reference = model.gather_irregularity
    assert reference is not None

    tel = _obs.enable(fresh=True)
    try:
        for nbytes in (16384, 24576, 49152, 65536):
            api.measure(cluster, "gather", "linear", nbytes, max_reps=6,
                        models={"lmo": model})
        doc = tel.to_dict()
    finally:
        _obs.disable()

    data = build_dashboard(doc)

    # Scorecards: the lmo model scored on the gather sweep.
    assert [c["model"] for c in data["scorecards"]] == ["lmo"]
    assert data["scorecards"][0]["count"] >= 4

    # Live irregularity within 2x of the offline empirical thresholds.
    live = data["irregularity"]
    assert live is not None
    detector = EscalationDetector.from_snapshot(doc["metrics"])
    assert detector.compare(reference, tolerance=2.0, live=None) == []
    for live_value, ref_value in (
        (live["m1"], reference.m1),
        (live["m2"], reference.m2),
        (live["escalation_value"], reference.escalation_value),
    ):
        ratio = max(live_value, ref_value) / min(live_value, ref_value)
        assert ratio <= 2.0, (live_value, ref_value)

    # The escalation-rate alert fired.
    by_rule = {a["rule"]["name"]: a for a in data["alerts"]}
    assert by_rule["escalation_rate_high"]["firing"]
    assert by_rule["escalation_rate_high"]["value"] > 0.02

    # And the HTML artifact carries all of it, self-contained.
    html = render_html(data)
    assert "<script" not in html.lower()
    assert "lmo" in html
    assert "escalation_rate_high" in html
    assert "M1" in html and "M2" in html


# -- trace + kernel-profile panels ------------------------------------------------
def _traced_doc():
    from repro.obs import trace as _trace
    import random

    tel = Telemetry()
    ctx = _trace.new_context(random.Random(8))
    with _trace.use(ctx):
        with tel.spans.span("client.request"):
            with tel.spans.span("serve.request"):
                pass
    with tel.spans.span("untraced"):
        pass
    return tel.to_dict(), ctx.trace_id


def test_trace_panel_groups_spans_by_trace_id():
    doc, trace_id = _traced_doc()
    data = build_dashboard(doc)
    assert set(data["traces"]) == {trace_id}
    entry = data["traces"][trace_id]
    assert entry["spans"] == 2
    assert entry["names"] == ["client.request", "serve.request"]
    text = render_terminal(data)
    assert "traces:" in text and trace_id in text
    html = render_html(data)
    assert trace_id in html


def test_kernel_profile_panel_from_bench_file():
    bench_doc = {
        "bench": "kernel_profile",
        "events_per_second": 150000.0,
        "events_processed": 2882,
        "profile": {"frames": [
            {"name": "Timeout→proc:rank0", "count": 40,
             "self_ns": 2_000_000, "cum_ns": 2_500_000},
        ]},
    }
    doc, _ = _traced_doc()
    data = build_dashboard(doc, bench=[("BENCH_kernel_profile.json", bench_doc)])
    kernel = data["kernel_profile"]
    assert kernel["source"] == "BENCH_kernel_profile.json"
    assert kernel["frames"][0]["name"] == "Timeout→proc:rank0"
    text = render_terminal(data)
    assert "kernel hot frames" in text and "Timeout→proc:rank0" in text
    html = render_html(data)
    assert "Kernel profile" in html and "150,000 events/s" in html


def test_panels_degrade_gracefully_when_absent():
    data = build_dashboard(_sample_doc())
    assert data["traces"] == {} and data["kernel_profile"] is None
    text = render_terminal(data)
    assert "traces:" not in text and "kernel hot frames" not in text
    html = render_html(data)
    assert "no traced spans" in html
    assert "no BENCH_kernel_profile.json ingested" in html
