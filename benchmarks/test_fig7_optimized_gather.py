"""Fig. 7 bench: native vs LMO-optimized (split) linear gather."""

from conftest import assert_checks

from repro.mpi import run_ranks
from repro.optimize import optimized_gather

KB = 1024


def test_fig7_shape(experiment_results):
    assert_checks(experiment_results("fig7"))


def test_fig7_speedup_is_large(experiment_results):
    """Paper: ~10x in the escalation region."""
    result = experiment_results("fig7")
    native = result.get("native-mean")
    optimized = result.get("optimized-mean")
    best = max(native.at(m) / optimized.at(m) for m in native.sizes)
    assert best > 5.0


def test_bench_optimized_gather_32kb(benchmark, experiment_results, model_suite, lam_cluster):
    """Kernel: one 16-rank split-optimized gather at 32 KB."""
    assert_checks(experiment_results("fig7"))
    irregularity = model_suite.lmo.gather_irregularity
    assert irregularity is not None

    def kernel():
        programs = {
            rank: (lambda comm: optimized_gather(comm, 0, 32 * KB, irregularity))
            for rank in range(lam_cluster.n)
        }
        results = run_ranks(lam_cluster, programs)
        return max(res.finish for res in results.values())

    duration = benchmark(kernel)
    assert duration < 0.1  # never pays an RTO
