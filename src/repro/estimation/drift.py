"""Model-drift detection: is a saved model still worth trusting?

Estimation is expensive, so models are estimated rarely and reused — but
clusters change (thermal throttling, a failing NIC, a daemon pinning a
core).  :func:`detect_model_drift` runs a cheap spot-check — a handful of
roundtrips — against a model's predictions and reports where reality has
moved.  Paired with :meth:`SimulatedCluster.degrade_node` (fault
injection), this closes the loop the paper's runtime-estimation ambitions
imply: estimate, monitor, re-estimate when drift crosses a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.estimation.engines import ExperimentEngine
from repro.estimation.experiments import roundtrip
from repro.estimation.scheduling import run_schedule

__all__ = ["DriftReport", "detect_model_drift", "spot_check_pairs"]

KB = 1024


@dataclass(frozen=True)
class DriftReport:
    """Outcome of a drift spot-check."""

    #: Per-pair relative error |measured - predicted| / predicted.
    errors: dict[tuple[int, int], float]
    threshold: float
    probe_nbytes: int
    #: Raw per-pair roundtrip values behind ``errors`` — what residual
    #: monitors ingest (signed errors need both sides, not just |err|).
    measured: dict[tuple[int, int], float] = field(default_factory=dict)
    predicted: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def worst_pair(self) -> tuple[int, int]:
        return max(self.errors, key=self.errors.__getitem__)

    @property
    def worst_error(self) -> float:
        return self.errors[self.worst_pair]

    @property
    def drifted(self) -> bool:
        """True when any checked pair exceeds the threshold."""
        return self.worst_error > self.threshold

    def drifted_nodes(self) -> list[int]:
        """Nodes implicated by more than one drifted pair (likely culprits)."""
        counts: dict[int, int] = {}
        for (a, b), error in self.errors.items():
            if error > self.threshold:
                counts[a] = counts.get(a, 0) + 1
                counts[b] = counts.get(b, 0) + 1
        return sorted(node for node, count in counts.items() if count >= 2)


def spot_check_pairs(n: int, coverage: int = 2) -> list[tuple[int, int]]:
    """A small pair set touching every node ``coverage`` times.

    Ring pairs (i, i+1) plus stride-2 pairs give each node two distinct
    partners — enough to localize a single degraded node by intersection.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if coverage < 1:
        raise ValueError("coverage must be >= 1")
    pairs: list[tuple[int, int]] = []
    for stride in range(1, coverage + 1):
        for i in range(n):
            j = (i + stride) % n
            if i < j:
                pairs.append((i, j))
            else:
                pairs.append((j, i))
    return sorted(set(pairs))


def detect_model_drift(
    model,
    engine: ExperimentEngine,
    probe_nbytes: int = 32 * KB,
    threshold: float = 0.15,
    reps: int = 3,
    pairs: Optional[Sequence[tuple[int, int]]] = None,
    aggregate=np.median,
) -> DriftReport:
    """Spot-check ``model`` against fresh roundtrip measurements.

    Parameters
    ----------
    model:
        Anything with ``p2p_time(i, j, nbytes)`` (all models qualify).
    threshold:
        Relative error above which a pair counts as drifted.  The default
        15% sits far above measurement noise (2.5% CI target) but well
        below any interesting hardware degradation.
    aggregate:
        How repetitions collapse to one number.  The median default suits
        clean clusters; on clusters with transient RTO escalations use
        ``np.min`` (the classic minimum-RTT discipline) so a one-off
        0.2 s timeout does not masquerade as hardware drift — persistent
        degradation inflates even the minimum, so real drift still shows.
    """
    if probe_nbytes <= 0:
        raise ValueError("probe_nbytes must be positive")
    chosen = spot_check_pairs(engine.n) if pairs is None else list(pairs)
    experiments = [roundtrip(i, j, probe_nbytes) for i, j in chosen]
    measured = run_schedule(engine, experiments, parallel=True, reps=reps,
                            aggregate=aggregate)
    errors: dict[tuple[int, int], float] = {}
    raw_measured: dict[tuple[int, int], float] = {}
    raw_predicted: dict[tuple[int, int], float] = {}
    for (i, j), exp in zip(chosen, experiments):
        predicted = 2.0 * model.p2p_time(i, j, probe_nbytes)
        errors[(i, j)] = abs(measured[exp] - predicted) / predicted
        raw_measured[(i, j)] = float(measured[exp])
        raw_predicted[(i, j)] = float(predicted)
    return DriftReport(errors=errors, threshold=threshold, probe_nbytes=probe_nbytes,
                       measured=raw_measured, predicted=raw_predicted)
