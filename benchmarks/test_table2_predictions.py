"""Table II bench: evaluating every model's closed-form predictions."""

from conftest import assert_checks

from repro.models import GatherPrediction, predict_linear_gather, predict_linear_scatter

KB = 1024


def test_table2_shape(experiment_results):
    assert_checks(experiment_results("table2"))


def test_bench_formula_evaluation(benchmark, experiment_results, model_suite):
    """Kernel: all Table II rows at three representative sizes."""
    assert_checks(experiment_results("table2"))
    models = [
        model_suite.hockney_het,
        model_suite.loggp,
        model_suite.plogp,
        model_suite.lmo,
    ]
    sizes = (1 * KB, 32 * KB, 160 * KB)

    def kernel():
        total = 0.0
        for model in models:
            for m in sizes:
                total += float(predict_linear_scatter(model, m))
                gather = predict_linear_gather(model, m)
                total += (
                    gather.expected if isinstance(gather, GatherPrediction) else float(gather)
                )
        return total

    assert benchmark(kernel) > 0
