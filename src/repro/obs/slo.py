"""Declarative SLOs with error budgets and multi-window burn rates.

An :class:`SLOSpec` names an *objective* — "99.9% of service requests
succeed", "99% of ``serve.request`` latencies stay under 250 ms", "95%
of model residuals stay within 25%" — and how to count *good* vs *total*
events for it from the :class:`repro.obs.timeline.TimelineStore`
history.  Everything downstream reduces to those two counts over a
window:

* ``bad_fraction = (total - good) / total``
* ``burn_rate = bad_fraction / (1 - objective)`` — 1.0 means the error
  budget is being consumed exactly at the rate that exhausts it at the
  end of the budget window; 14.4 means fourteen times too fast.
* ``budget_remaining = 1 - bad_fraction / (1 - objective)`` over the
  budget window, clamped to [0, 1].

Alerting follows the SRE multi-window multi-burn-rate pattern: a rule
fires when *both* a fast window (catches the page-worthy spike, e.g.
5 m) and a slow window (suppresses blips, e.g. 1 h) burn above the
threshold — implemented as the ``slo_burn_rate`` rule kind in
:class:`repro.obs.insight.alerts.AlertEngine`, which takes
``min(burn(fast), burn(slow))`` so one comparison expresses the AND.
Window lengths scale freely: tests pass seconds, production passes the
5m/1h/6h pattern.

Three spec kinds:

* ``ratio`` — ``metric`` is a counter family; ``good_labels`` (or
  ``bad_labels``) select the good (bad) children within it;
* ``latency`` — ``metric`` is a histogram family; an observation is
  good when ``<= threshold`` seconds (partial buckets interpolated, the
  :func:`repro.obs.metrics.bucket_quantile` convention);
* ``residual`` — same counting as ``latency`` over the
  ``residual_abs_error``-style histograms that
  :mod:`repro.obs.insight.residuals` feeds, so the model-error budget
  rides the identical machinery (Bienz/Gropp/Olson's per-operation
  error-budget framing).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Sequence

__all__ = [
    "SLOSpec",
    "SLOStatus",
    "burn_rate",
    "default_slos",
    "evaluate_slos",
    "window_counts",
]

_KINDS = ("ratio", "latency", "residual")

#: The classic paging pattern (seconds): fast 5 m / slow 1 h at 14.4x
#: burn, plus a ticket-grade 30 m / 6 h at 6x.
FAST_WINDOWS = (300.0, 3600.0)
SLOW_WINDOWS = (1800.0, 21600.0)
FAST_BURN = 14.4
SLOW_BURN = 6.0


def _label_tuple(labels: Any) -> tuple[tuple[str, str], ...]:
    if isinstance(labels, Mapping):
        items = labels.items()
    else:
        items = tuple(labels)
    return tuple(sorted((str(k), str(v)) for k, v in items))


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over timeline history."""

    name: str
    objective: float
    kind: str  # ratio | latency | residual
    metric: str
    #: Selector applied to every query against ``metric``.
    labels: tuple[tuple[str, str], ...] = ()
    #: ratio: labels (on top of ``labels``) selecting the *good* children.
    good_labels: tuple[tuple[str, str], ...] = ()
    #: ratio alternative: select the *bad* children (good = total - bad).
    bad_labels: tuple[tuple[str, str], ...] = ()
    #: latency/residual: an observation <= threshold counts as good.
    threshold: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not (0.0 < self.objective < 1.0):
            raise ValueError(f"objective must be in (0, 1), got {self.objective!r}")
        if not self.metric:
            raise ValueError(f"SLO {self.name!r} needs a metric name")
        if self.kind == "ratio":
            if bool(self.good_labels) == bool(self.bad_labels):
                raise ValueError(f"ratio SLO {self.name!r} needs exactly one "
                                 f"of good_labels / bad_labels")
        else:
            if self.threshold <= 0.0:
                raise ValueError(f"{self.kind} SLO {self.name!r} needs a "
                                 f"positive threshold")
        object.__setattr__(self, "labels", _label_tuple(self.labels))
        object.__setattr__(self, "good_labels", _label_tuple(self.good_labels))
        object.__setattr__(self, "bad_labels", _label_tuple(self.bad_labels))

    @property
    def budget(self) -> float:
        """The error budget: the fraction of events allowed to be bad."""
        return 1.0 - self.objective

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "objective": self.objective, "kind": self.kind,
            "metric": self.metric, "labels": dict(self.labels),
            "good_labels": dict(self.good_labels),
            "bad_labels": dict(self.bad_labels),
            "threshold": self.threshold, "description": self.description,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SLOSpec":
        return cls(
            name=doc["name"], objective=float(doc["objective"]),
            kind=doc["kind"], metric=doc["metric"],
            labels=_label_tuple(doc.get("labels", ())),
            good_labels=_label_tuple(doc.get("good_labels", ())),
            bad_labels=_label_tuple(doc.get("bad_labels", ())),
            threshold=float(doc.get("threshold", 0.0)),
            description=doc.get("description", ""),
        )


def _good_below_threshold(buckets: Sequence[Sequence[Any]], count: float,
                          threshold: float) -> float:
    """Observations <= threshold, interpolating the straddling bucket."""
    good = 0.0
    lower = 0.0
    for bound, n in buckets:
        n = float(n)
        if bound == "+Inf":
            break
        upper = float(bound)
        if upper <= threshold:
            good += n
        elif lower < threshold:
            width = upper - lower
            frac = (threshold - lower) / width if width > 0.0 else 1.0
            good += n * min(max(frac, 0.0), 1.0)
            break
        else:
            break
        lower = upper
    return min(good, count)


def window_counts(spec: SLOSpec, timeline: Any, window_seconds: float,
                  now: Optional[float] = None) -> tuple[float, float]:
    """``(good, total)`` event counts for one SLO over one horizon."""
    base = dict(spec.labels)
    if spec.kind == "ratio":
        total = timeline.sum_over_window(spec.metric, window_seconds,
                                         labels=base or None, now=now)
        if spec.good_labels:
            good = timeline.sum_over_window(
                spec.metric, window_seconds,
                labels={**base, **dict(spec.good_labels)}, now=now)
        else:
            bad = timeline.sum_over_window(
                spec.metric, window_seconds,
                labels={**base, **dict(spec.bad_labels)}, now=now)
            good = total - bad
        return min(max(good, 0.0), total), total
    buckets, _sum, count = timeline.histogram_over_window(
        spec.metric, window_seconds, labels=base or None, now=now)
    if count <= 0.0:
        return 0.0, 0.0
    return _good_below_threshold(buckets, count, spec.threshold), count


def bad_fraction(spec: SLOSpec, timeline: Any, window_seconds: float,
                 now: Optional[float] = None) -> float:
    """Fraction of events in the window that violated the objective
    (0.0 when the window saw no events — no traffic burns no budget)."""
    good, total = window_counts(spec, timeline, window_seconds, now=now)
    if total <= 0.0:
        return 0.0
    return (total - good) / total


def burn_rate(spec: SLOSpec, timeline: Any, window_seconds: float,
              now: Optional[float] = None) -> float:
    """How many times faster than sustainable the budget is burning."""
    return bad_fraction(spec, timeline, window_seconds, now=now) / spec.budget


@dataclass(frozen=True)
class SLOStatus:
    """One SLO's health at a point in time (dashboard/``obs top`` row)."""

    spec: SLOSpec
    burn_fast: float
    burn_slow: float
    fast_window: float
    slow_window: float
    budget_window: float
    budget_remaining: float
    good: float = 0.0
    total: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.spec.to_dict(),
            "burn_fast": self.burn_fast, "burn_slow": self.burn_slow,
            "fast_window": self.fast_window, "slow_window": self.slow_window,
            "budget_window": self.budget_window,
            "budget_remaining": self.budget_remaining,
            "good": self.good, "total": self.total,
        }


def evaluate_slos(
    specs: Sequence[SLOSpec], timeline: Any,
    fast_window: float = FAST_WINDOWS[0],
    slow_window: float = FAST_WINDOWS[1],
    budget_window: Optional[float] = None,
    now: Optional[float] = None,
) -> list[SLOStatus]:
    """Burn rates + remaining budget for every spec (dashboard feed).

    ``budget_window`` defaults to the timeline's coarsest-tier horizon —
    the longest history the store can answer for, standing in for the
    SLO period.
    """
    if budget_window is None:
        budget_window = timeline.tiers[-1].horizon
    out: list[SLOStatus] = []
    for spec in specs:
        good, total = window_counts(spec, timeline, budget_window, now=now)
        frac = (total - good) / total if total > 0.0 else 0.0
        out.append(SLOStatus(
            spec=spec,
            burn_fast=burn_rate(spec, timeline, fast_window, now=now),
            burn_slow=burn_rate(spec, timeline, slow_window, now=now),
            fast_window=fast_window,
            slow_window=slow_window,
            budget_window=budget_window,
            budget_remaining=min(max(1.0 - frac / spec.budget, 0.0), 1.0),
            good=good,
            total=total,
        ))
    return out


def default_slos() -> list[SLOSpec]:
    """The stock SLO catalog (docs/observability.md)."""
    return [
        SLOSpec(
            name="service_availability", kind="ratio", objective=0.999,
            metric="service_requests_total",
            good_labels=(("outcome", "ok"),),
            description="99.9% of prediction-service requests succeed",
        ),
        SLOSpec(
            name="service_p99_latency", kind="latency", objective=0.99,
            metric="service_request_seconds", threshold=0.25,
            description="99% of serve.request latencies stay under 250 ms",
        ),
        SLOSpec(
            name="campaign_unit_failures", kind="ratio", objective=0.95,
            metric="campaign_units_total",
            bad_labels=(("outcome", "failed"),),
            description="95% of campaign units complete without failing",
        ),
        SLOSpec(
            name="model_residual_budget", kind="residual", objective=0.95,
            metric="residual_abs_error", threshold=0.25,
            description="95% of |relative prediction errors| stay within "
                        "25% (the insight.residuals feed)",
        ),
    ]


def scaled(spec: SLOSpec, **overrides: Any) -> SLOSpec:
    """A copy of a spec with fields replaced (tests scaling to sim-time)."""
    return replace(spec, **overrides)
