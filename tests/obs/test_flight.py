"""The flight recorder: spill framing, dumps, recovery, inspection."""

import json
import os
import sys

import pytest

from repro.obs import runtime as _obs
from repro.obs import trace as _tracectx
from repro.obs.flight import (
    DUMP_FORMAT,
    SPILL_MAGIC,
    FlightRecorder,
    enable_flight,
    install_excepthook,
    load_any,
    load_dump,
    read_spill,
    recover_spill,
    render_inspect,
    telemetry_of,
    write_dump,
)


@pytest.fixture()
def telemetry():
    tel = _obs.enable(fresh=True)
    yield tel
    _obs.disable()


def make_recorder(telemetry, tmp_path, **kwargs):
    kwargs.setdefault("spill_path", str(tmp_path / "box.spill"))
    kwargs.setdefault("sync_interval", 0.0)
    recorder = FlightRecorder(telemetry, process="test", **kwargs)
    yield_value = recorder
    return yield_value


def test_capacity_floor(telemetry):
    with pytest.raises(ValueError):
        FlightRecorder(telemetry, spill_capacity=128)


def test_spill_round_trip(telemetry, tmp_path):
    with _obs.span("serve.request", verb="predict"):
        pass
    telemetry.events.info("loaded", model="lmo")
    recorder = make_recorder(telemetry, tmp_path)
    assert recorder.sync()
    recorder.close()

    payload = read_spill(str(tmp_path / "box.spill"))
    assert payload["process"] == "test"
    tel_doc = telemetry_of(payload)
    assert [s["name"] for s in tel_doc["spans"]] == ["serve.request"]
    assert any(e["name"] == "loaded" for e in tel_doc["events"])


def test_spill_survives_repeated_syncs_and_shrinking(telemetry, tmp_path):
    """The frame is rewritten at offset 0 each time; a shorter frame
    after a longer one must still parse (stale tail bytes ignored)."""
    recorder = make_recorder(telemetry, tmp_path)
    for i in range(50):
        telemetry.events.info("busy", i=i)
    recorder.sync()
    telemetry.events.clear()
    recorder.sync()
    recorder.close()
    payload = read_spill(str(tmp_path / "box.spill"))
    assert payload["syncs"] == 1  # count as of the second frame's encode


def test_spill_detects_corruption(telemetry, tmp_path):
    recorder = make_recorder(telemetry, tmp_path)
    recorder.sync()
    recorder.close()
    path = str(tmp_path / "box.spill")

    with open(path, "r+b") as fh:  # flip one payload byte
        fh.seek(len(SPILL_MAGIC) + 8 + 10)
        byte = fh.read(1)
        fh.seek(len(SPILL_MAGIC) + 8 + 10)
        fh.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(ValueError, match="CRC mismatch"):
        read_spill(path)

    with open(str(tmp_path / "not.spill"), "wb") as fh:
        fh.write(b"nope")
    with pytest.raises(ValueError, match="bad magic"):
        read_spill(str(tmp_path / "not.spill"))


def test_spill_detects_truncation(telemetry, tmp_path):
    recorder = make_recorder(telemetry, tmp_path)
    recorder.sync()
    recorder.close()
    path = str(tmp_path / "box.spill")
    with open(path, "r+b") as fh:
        fh.truncate(len(SPILL_MAGIC) + 8 + 5)
    with pytest.raises(ValueError, match="truncated"):
        read_spill(path)


def test_oversized_rings_trim_to_fit(telemetry, tmp_path):
    """More telemetry than the spill can hold: the encoder trims rings
    progressively instead of writing a torn frame."""
    for i in range(300):
        telemetry.events.info("filler", payload="x" * 200, i=i)
        with _obs.span("work", i=i):
            pass
    recorder = make_recorder(telemetry, tmp_path, spill_capacity=8192)
    assert recorder.sync()
    recorder.close()
    payload = read_spill(str(tmp_path / "box.spill"))  # parses despite trim
    tel_doc = telemetry_of(payload)
    assert len(tel_doc["spans"]) <= 32
    assert tel_doc["dropped"]["events"] > 0


def test_dump_and_load(telemetry, tmp_path):
    recorder = FlightRecorder(telemetry, process="serve",
                              dump_dir=str(tmp_path / "dumps"))
    path = recorder.dump(reason="manual")
    assert os.path.basename(path).startswith("flight-serve-001-")
    doc = load_dump(path)
    assert doc["format"] == DUMP_FORMAT
    assert doc["flight"]["process"] == "serve"
    # load_any handles both forms
    assert load_any(path)["process"] == "serve"


def test_dump_crc_guard(telemetry, tmp_path):
    recorder = FlightRecorder(telemetry, process="serve")
    path = str(tmp_path / "dump.json")
    recorder.dump(path=path)
    doc = json.load(open(path))
    doc["flight"]["pid"] = -1  # tamper
    with open(path, "w") as fh:
        json.dump(doc, fh)
    with pytest.raises(ValueError, match="CRC mismatch"):
        load_dump(path)


def test_alert_transition_dumps_once(telemetry, tmp_path):
    dumps = tmp_path / "dumps"
    recorder = FlightRecorder(telemetry, process="serve",
                              dump_dir=str(dumps))
    recorder.note_alert(rule="burn", firing=True, value=20.0,
                        threshold=14.4, level="error")
    recorder.note_alert(rule="burn", firing=False, value=0.0,
                        threshold=14.4, level="error")
    names = sorted(p.name for p in dumps.iterdir())
    assert len(names) == 1  # fire dumps, resolve does not
    assert "alert_burn" in names[0]
    payload = load_any(str(dumps / names[0]))
    assert [a["firing"] for a in payload["alerts"]] == [True]


def test_recover_spill_stamps_provenance(telemetry, tmp_path):
    recorder = make_recorder(telemetry, tmp_path)
    recorder.sync(reason="worker_dead")
    recorder.close()
    out = str(tmp_path / "recovered.json")
    payload = recover_spill(str(tmp_path / "box.spill"), out,
                            reason="crashed",
                            extra={"supervisor": {"incarnation": 2}})
    assert payload["reason"] == "crashed"
    assert payload["recovered"]["synced_reason"] == "worker_dead"
    assert payload["supervisor"]["incarnation"] == 2
    assert load_dump(out)["flight"]["reason"] == "crashed"


def test_maybe_sync_rate_limits(telemetry, tmp_path):
    clock = [0.0]
    recorder = FlightRecorder(telemetry, process="test",
                              spill_path=str(tmp_path / "box.spill"),
                              sync_interval=0.25, clock=lambda: clock[0])
    assert recorder.maybe_sync()
    assert not recorder.maybe_sync()  # interval not yet elapsed
    clock[0] = 0.3
    assert recorder.maybe_sync()
    recorder.close()
    assert recorder.syncs == 2


def test_render_inspect_shows_spans_with_trace_ids(telemetry, tmp_path):
    ctx = _tracectx.new_context()
    token = _tracectx.activate(ctx)
    with _obs.span("serve.request", verb="predict"):
        pass
    _tracectx.restore(token)
    recorder = make_recorder(telemetry, tmp_path)
    recorder.note_alert(rule="burn", firing=True, value=20.0,
                        threshold=14.4, level="error")
    recorder.close()
    text = render_inspect(recorder.payload(reason="manual"))
    assert "process=test" in text
    assert "serve.request" in text
    assert ctx.trace_id in text
    assert "burn" in text and "FIRING" in text


def test_enable_flight_attaches_and_env_default(telemetry, tmp_path,
                                                monkeypatch):
    spill = str(tmp_path / "env.spill")
    monkeypatch.setenv("REPRO_FLIGHT_SPILL", spill)
    recorder = enable_flight(process="child", sync_interval=0.0)
    assert telemetry.flight is recorder
    assert recorder.spill_path == spill
    assert enable_flight(process="child") is recorder  # idempotent
    recorder.sync()
    _obs.pulse()  # the runtime pulse reaches the recorder
    assert read_spill(spill)["process"] == "child"


def test_excepthook_dumps_the_exception(telemetry, tmp_path):
    recorder = FlightRecorder(telemetry, process="serve",
                              dump_dir=str(tmp_path / "dumps"))
    telemetry.flight = recorder
    original = sys.excepthook
    previous = install_excepthook()
    assert previous is original  # the old hook comes back for chaining
    try:
        try:
            raise RuntimeError("boom at cruise altitude")
        except RuntimeError:
            sys.excepthook(*sys.exc_info())
    finally:
        sys.excepthook = original
    (dump,) = list((tmp_path / "dumps").iterdir())
    payload = load_any(str(dump))
    assert payload["reason"] == "unhandled_exception"
    assert "boom at cruise altitude" in payload["exception"]
    assert "boom at cruise altitude" in render_inspect(payload)
