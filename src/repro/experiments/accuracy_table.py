"""Section V's quantitative summary: one accuracy table over everything.

The paper argues model quality figure by figure; this experiment compacts
it: every estimated model predicts every (operation, algorithm, size)
point of the scatter/gather study, scored against the same observations —
mean/max relative error and bias per model, with the expected ordering
(LMO first, the combined-contribution models far behind) asserted.
"""

from __future__ import annotations

from repro.analysis import score_models
from repro.experiments.common import (
    KB,
    ExperimentResult,
    get_model_suite,
    paper_cluster,
)
from repro.stats import MeasurementPolicy

__all__ = ["run"]

POINTS_FULL = [
    ("scatter", "linear", 4 * KB),
    ("scatter", "linear", 16 * KB),
    ("scatter", "linear", 48 * KB),
    ("scatter", "binomial", 4 * KB),
    ("scatter", "binomial", 48 * KB),
    ("gather", "linear", 2 * KB),
    ("gather", "linear", 96 * KB),
    ("gather", "linear", 160 * KB),
    ("gather", "binomial", 16 * KB),
]
POINTS_QUICK = [
    ("scatter", "linear", 16 * KB),
    ("scatter", "binomial", 16 * KB),
    ("gather", "linear", 2 * KB),
    ("gather", "linear", 96 * KB),
]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Score all five models over the scatter/gather point grid."""
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    models = {
        "lmo": suite.lmo,
        "het-hockney": suite.hockney_het,
        "hom-hockney": suite.hockney_hom,
        "loggp": suite.loggp,
        "plogp": suite.plogp,
    }
    points = POINTS_QUICK if quick else POINTS_FULL
    report = score_models(
        cluster, models, points,
        policy=MeasurementPolicy(min_reps=3, max_reps=8 if quick else 20),
    )
    result = ExperimentResult(
        experiment_id="accuracy_table",
        title="(summary) prediction accuracy of every model, all points",
        text=report.render(),
    )
    lmo = report.score("lmo")
    best = report.score(report.ranking[0])
    result.checks = {
        # On the full point grid LMO ranks first outright; the quick
        # subsample can put PLogP within a whisker (the paper itself
        # grants PLogP "the same accuracy for medium size messages").
        "LMO ranks first (or ties PLogP within 25%)": (
            report.ranking[0] == "lmo"
            or (report.ranking[0] == "plogp"
                and lmo.mean_relative_error < 1.25 * best.mean_relative_error)
        ),
        "LMO's mean error is small (<30%)": lmo.mean_relative_error < 0.30,
        "the combined-contribution models are >2x worse than LMO": all(
            report.score(name).mean_relative_error > 2 * lmo.mean_relative_error
            for name in ("het-hockney", "hom-hockney", "loggp")
        ),
        "the Hockney sequential readings are pessimistic (positive bias)": (
            report.score("het-hockney").bias > 0
            and report.score("hom-hockney").bias > 0
        ),
    }
    result.notes.append(
        "points: " + ", ".join(f"{op}/{algo}@{m // KB}K" for op, algo, m in points)
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
