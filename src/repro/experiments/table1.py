"""Table I: the 16-node heterogeneous cluster specification.

Regenerates the hardware table and the ground-truth parameters our
simulation derives from it (the paper's cluster "is" this table; our
substitute cluster is synthesized from it — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.cluster import synthesize_ground_truth, table1_cluster
from repro.experiments.common import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Table I plus the derived simulation parameters."""
    del quick
    spec = table1_cluster()
    gt = synthesize_ground_truth(spec, seed=seed)
    lines = [spec.describe(), "", "derived ground-truth parameters:"]
    lines.append(f"{'rank':>4} {'processor':<18} {'C_i (us)':>10} {'t_i (ns/B)':>11}")
    for rank, node in enumerate(spec.nodes):
        lines.append(
            f"{rank:>4} {node.processor:<18} {gt.C[rank] * 1e6:>10.1f} "
            f"{gt.t[rank] * 1e9:>11.2f}"
        )
    off = ~np.eye(spec.n, dtype=bool)
    lines.append(
        f"links: L = {gt.L[off].mean() * 1e6:.0f} us +- "
        f"{gt.L[off].std() * 1e6:.1f} us, beta = {gt.beta[off].mean() / 1e6:.0f} MB/s"
    )
    result = ExperimentResult(
        experiment_id="table1",
        title="Specification of the 16-node heterogeneous cluster",
        text="\n".join(lines),
    )
    counts = [count for _node, count in spec.node_type_counts]
    result.checks = {
        "16 nodes in 7 types with the paper's multiplicities": counts == [2, 6, 2, 1, 1, 1, 3],
        "fixed processor costs are strongly heterogeneous (>1.5x)": (
            gt.C.max() / gt.C.min() > 1.5
        ),
        "the Celeron is the slowest node": int(np.argmax(gt.C)) == 12,
    }
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run().render())
