"""Figure 3: binomial scatter vs homogeneous/heterogeneous Hockney.

The paper's point here is comparative: for an algorithm with inherent
parallelism (binomial tree), the *heterogeneous* Hockney recursion
(eqs. 1-2) tracks the observation much better than the homogeneous
closed form ``log2(n) a + (n-1) b M`` (eq. 3) — heterogeneity matters —
even though both still mix processor and network contributions.
"""

from __future__ import annotations

from repro.experiments.common import (
    SIZES_FULL,
    SIZES_QUICK,
    ExperimentResult,
    Series,
    get_model_suite,
    observation_benchmark,
    paper_cluster,
    prediction_series,
)

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 3 (series in seconds, sizes in bytes)."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    bench = observation_benchmark(cluster, quick)

    observed = Series(
        "observed", sizes,
        tuple(bench.measure("scatter", "binomial", m).mean for m in sizes),
    )
    hom = prediction_series("hom-hockney", suite.hockney_hom, "scatter", "binomial",
                            sizes, n=cluster.n)
    het = prediction_series("het-hockney", suite.hockney_het, "scatter", "binomial", sizes)
    result = ExperimentResult(
        experiment_id="fig3",
        title="Binomial scatter vs homogeneous and heterogeneous Hockney",
        series=[observed, hom, het],
    )
    err_hom = hom.mean_relative_error(observed)
    err_het = het.mean_relative_error(observed)
    result.checks = {
        "heterogeneous Hockney tracks the observation better than homogeneous":
            err_het < err_hom,
        "heterogeneous Hockney is a usable approximation (<40% mean error)":
            err_het < 0.40,
    }
    result.notes.append(
        f"mean relative error: het-Hockney {err_het:.1%}, hom-Hockney {err_hom:.1%}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
