"""Sec. IV bench: serial vs parallel estimation cost (16 s -> 5 s claim)."""

from itertools import combinations

from conftest import assert_checks

from repro.estimation import DESEngine
from repro.estimation.experiments import roundtrip
from repro.estimation.scheduling import pair_rounds

KB = 1024


def test_estimation_cost_shape(experiment_results):
    assert_checks(experiment_results("estimation_cost"))


def test_bench_one_parallel_round(benchmark, experiment_results, lam_cluster):
    """Kernel: one round of 8 disjoint roundtrips in a single simulation."""
    assert_checks(experiment_results("estimation_cost"))
    engine = DESEngine(lam_cluster)
    round_pairs = pair_rounds(16)[0]
    experiments = [roundtrip(i, j, 32 * KB) for i, j in round_pairs]

    def kernel():
        return engine.run_batch(experiments)

    durations = benchmark(kernel)
    assert len(durations) == 8


def test_bench_serial_sweep_of_pairs(benchmark, experiment_results, lam_cluster):
    """Kernel: all 120 pair roundtrips one at a time (the serial schedule)."""
    assert_checks(experiment_results("estimation_cost"))
    engine = DESEngine(lam_cluster)
    experiments = [roundtrip(i, j, 0) for i, j in combinations(range(16), 2)]

    def kernel():
        return [engine.run(exp) for exp in experiments]

    assert len(benchmark(kernel)) == 120
