"""Extended-LMO predictions for the wider collective-algorithm menu.

The paper claims its intuitive models can express "the execution time of
any collective communication operation ... as a combination of maximums
and sums of the point-to-point parameters".  This module exercises that
claim beyond scatter/gather: broadcast (linear, binomial, pipeline),
ring and recursive-doubling allgather, and both allreduce compositions —
each expressed in the same serial-processor / parallel-network split.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.models.base import validate_nbytes, validate_rank
from repro.models.collectives.tree_eval import predict_tree_time
from repro.models.collectives.trees import CommTree, binomial_tree
from repro.models.lmo_extended import ExtendedLMOModel

__all__ = [
    "predict_linear_bcast",
    "predict_binomial_bcast",
    "predict_pipeline_bcast",
    "predict_ring_allgather",
    "predict_rd_allgather",
    "predict_rd_allreduce",
    "predict_reduce_bcast_allreduce",
    "predict_collective",
]


def predict_linear_bcast(model: ExtendedLMOModel, nbytes: float, root: int = 0) -> float:
    """Linear bcast: like linear scatter with every block the full message."""
    validate_nbytes(nbytes)
    validate_rank(model.n, root)
    others = [i for i in range(model.n) if i != root]
    serial = len(others) * model.send_cost(root, nbytes)
    parallel = max(model.wire_and_remote_cost(root, i, nbytes) for i in others)
    return float(serial + parallel)


def predict_binomial_bcast(
    model: ExtendedLMOModel,
    nbytes: float,
    root: int = 0,
    tree: Optional[CommTree] = None,
) -> float:
    """Binomial bcast: the scatter recursion with constant arc volume."""
    validate_nbytes(nbytes)
    if tree is None:
        tree = binomial_tree(model.n, root)

    def serial(i: int, _j: int, arc_nbytes: float) -> float:
        del arc_nbytes
        return model.send_cost(i, nbytes)

    def parallel(i: int, j: int, arc_nbytes: float) -> float:
        del arc_nbytes
        return model.wire_and_remote_cost(i, j, nbytes)

    # Pass block size 1 so arc volumes don't scale with sub-tree size:
    # every bcast arc carries the full message, captured via the closures.
    return predict_tree_time(tree, 1.0, serial, parallel)


def predict_pipeline_bcast(
    model: ExtendedLMOModel,
    nbytes: float,
    segment_nbytes: float,
    root: int = 0,
) -> float:
    """Chain bcast in segments: pipe fill plus steady-state draining.

    fill  = one segment traversing the whole chain;
    drain = remaining segments behind the chain's bottleneck stage (each
    intermediate node handles a segment twice: receive + forward).
    """
    validate_nbytes(nbytes)
    validate_rank(model.n, root)
    if segment_nbytes <= 0:
        raise ValueError("segment_nbytes must be positive")
    n = model.n
    chain = [(root + k) % n for k in range(n)]
    segments = max(1, math.ceil(nbytes / segment_nbytes))
    seg = min(segment_nbytes, nbytes) if nbytes else 0.0

    fill = 0.0
    stage_costs = []
    for u, v in zip(chain, chain[1:]):
        hop = (
            model.send_cost(u, seg)
            + model.L[u, v]
            + seg / model.beta[u, v]
            + model.send_cost(v, seg)
        )
        fill += hop
        stage_costs.append(hop)
    # Intermediate nodes touch every segment twice (receive then forward).
    for v in chain[1:-1]:
        stage_costs.append(2 * model.send_cost(v, seg))
    bottleneck = max(stage_costs)
    return float(fill + (segments - 1) * bottleneck)


def predict_ring_allgather(model: ExtendedLMOModel, nbytes: float) -> float:
    """Ring allgather: ``n-1`` synchronized steps behind the slowest link."""
    validate_nbytes(nbytes)
    n = model.n
    step = max(
        model.send_cost(r, nbytes)
        + model.L[r, (r + 1) % n]
        + nbytes / model.beta[r, (r + 1) % n]
        + model.send_cost((r + 1) % n, nbytes)
        for r in range(n)
    )
    return float((n - 1) * step)


def _rd_rounds(model: ExtendedLMOModel, volume_at_round) -> float:
    """Shared butterfly evaluation: sum over rounds of the worst pairwise
    exchange at that round's volume."""
    n = model.n
    if n & (n - 1):
        raise ValueError(f"recursive doubling requires a power-of-two n, got {n}")
    total = 0.0
    distance = 1
    round_idx = 0
    while distance < n:
        volume = volume_at_round(round_idx)
        total += max(
            # Full-duplex exchange: both directions overlap; the pair is
            # done after one wire plus both endpoints' processing.
            model.send_cost(r, volume)
            + model.L[r, r ^ distance]
            + volume / model.beta[r, r ^ distance]
            + model.send_cost(r ^ distance, volume)
            for r in range(n)
        )
        distance <<= 1
        round_idx += 1
    return float(total)


def predict_rd_allgather(model: ExtendedLMOModel, block_nbytes: float) -> float:
    """Recursive-doubling allgather: round k moves ``2^k`` blocks."""
    validate_nbytes(block_nbytes)
    return _rd_rounds(model, lambda k: (1 << k) * block_nbytes)


def predict_rd_allreduce(model: ExtendedLMOModel, nbytes: float) -> float:
    """Recursive-doubling allreduce: every round moves the full vector and
    pays one combining pass (``nbytes * t``) on each endpoint."""
    validate_nbytes(nbytes)
    base = _rd_rounds(model, lambda _k: nbytes)
    rounds = int(math.log2(model.n))
    combine = rounds * nbytes * float(model.t.max())
    return base + combine


def predict_reduce_bcast_allreduce(
    model: ExtendedLMOModel, nbytes: float, root: int = 0
) -> float:
    """Allreduce as binomial reduce + binomial bcast (both trees maxed)."""
    from repro.models.collectives.formulas import predict_binomial_gather

    validate_nbytes(nbytes)
    tree = binomial_tree(model.n, root)
    # Reduce ~ binomial gather with constant arc volume + combine passes.
    def serial(i: int, _j: int, _b: float) -> float:
        return model.send_cost(i, nbytes)

    def parallel(i: int, j: int, _b: float) -> float:
        return model.wire_and_remote_cost(i, j, nbytes) + nbytes * float(model.t[j])

    reduce_time = predict_tree_time(tree, 1.0, serial, parallel)
    del predict_binomial_gather  # documented relation; not reused directly
    return float(reduce_time + predict_binomial_bcast(model, nbytes, root=root, tree=tree))


#: (operation, algorithm) -> predictor over the extended LMO model.
_PREDICTORS = {
    ("bcast", "linear"): lambda m, nb, **kw: predict_linear_bcast(m, nb, **kw),
    ("bcast", "binomial"): lambda m, nb, **kw: predict_binomial_bcast(m, nb, **kw),
    ("bcast", "pipeline"): lambda m, nb, segment_nbytes=8192, **kw: predict_pipeline_bcast(
        m, nb, segment_nbytes, **kw
    ),
    ("allgather", "ring"): lambda m, nb, **_kw: predict_ring_allgather(m, nb),
    ("allgather", "recursive_doubling"): lambda m, nb, **_kw: predict_rd_allgather(m, nb),
    ("allreduce", "recursive_doubling"): lambda m, nb, **_kw: predict_rd_allreduce(m, nb),
    ("allreduce", "reduce_bcast"): lambda m, nb, **kw: predict_reduce_bcast_allreduce(
        m, nb, **kw
    ),
}


def predict_collective(
    model: ExtendedLMOModel, operation: str, algorithm: str, nbytes: float, **kwargs
) -> float:
    """Unified entry point for the extended-algorithm predictions."""
    try:
        predictor = _PREDICTORS[(operation, algorithm)]
    except KeyError:
        known = sorted(f"{op}/{algo}" for op, algo in _PREDICTORS)
        raise KeyError(
            f"no predictor for {operation}/{algorithm}; available: {', '.join(known)}"
        ) from None
    return predictor(model, nbytes, **kwargs)


def predict_vdg_bcast(model: ExtendedLMOModel, nbytes: float, root: int = 0) -> float:
    """van de Geijn bcast: binomial scatter of segments + ring allgather."""
    validate_nbytes(nbytes)
    from repro.models.collectives.formulas import predict_binomial_scatter

    segment = nbytes / model.n
    return float(
        predict_binomial_scatter(model, segment, root=root)
        + predict_ring_allgather(model, segment)
    )


def predict_ring_reduce_scatter(model: ExtendedLMOModel, block_nbytes: float) -> float:
    """Ring reduce-scatter: n-1 steps behind the slowest exchange+combine."""
    validate_nbytes(block_nbytes)
    n = model.n
    step = max(
        model.send_cost(r, block_nbytes)
        + model.L[r, (r + 1) % n]
        + block_nbytes / model.beta[r, (r + 1) % n]
        + model.send_cost((r + 1) % n, block_nbytes)
        + block_nbytes * float(model.t[(r + 1) % n])  # the combine pass
        for r in range(n)
    )
    return float((n - 1) * step)


def predict_rabenseifner_allreduce(model: ExtendedLMOModel, nbytes: float) -> float:
    """Rabenseifner allreduce: ring reduce-scatter + ring allgather."""
    validate_nbytes(nbytes)
    block = nbytes / model.n
    return float(predict_ring_reduce_scatter(model, block) + predict_ring_allgather(model, block))


_PREDICTORS[("bcast", "van_de_geijn")] = lambda m, nb, **kw: predict_vdg_bcast(m, nb, **kw)
_PREDICTORS[("reduce_scatter", "ring")] = lambda m, nb, **_kw: predict_ring_reduce_scatter(m, nb)
_PREDICTORS[("allreduce", "rabenseifner")] = lambda m, nb, **_kw: predict_rabenseifner_allreduce(m, nb)

__all__.extend(["predict_vdg_bcast", "predict_ring_reduce_scatter",
                "predict_rabenseifner_allreduce"])
