"""Unit tests for the streaming residual monitor and its scorecards."""

import json
import math

import pytest

from repro.obs import runtime as _obs
from repro.obs.insight.residuals import (
    ABS_ERROR_METRIC,
    MAX_ERROR_METRIC,
    SIGNED_SUM_METRIC,
    ResidualMonitor,
    render_scorecards,
    scorecards,
    size_bucket,
)
from repro.obs.metrics import MetricsRegistry


def test_size_bucket_is_next_power_of_two():
    assert size_bucket(0) == "1"
    assert size_bucket(1) == "1"
    assert size_bucket(2) == "2"
    assert size_bucket(3) == "4"
    assert size_bucket(1024) == "1024"
    assert size_bucket(1025) == "2048"
    assert size_bucket(1536.5) == "2048"  # float sizes round up


def test_monitor_is_a_noop_while_telemetry_is_off():
    monitor = ResidualMonitor()  # targets the active session: none
    assert monitor.record("lmo", "gather/linear", 4096, 1.0, 1.1) is None


def test_monitor_targets_active_session_at_ingest_time():
    monitor = ResidualMonitor()  # constructed before enable()
    tel = _obs.enable(fresh=True)
    record = monitor.record("lmo", "gather/linear", 4096, 1.2, 1.0)
    assert record is not None
    assert record.signed_error == pytest.approx(0.2)
    assert record.abs_error == pytest.approx(0.2)
    assert record.bucket == "4096"
    snap = tel.registry.snapshot()
    assert ABS_ERROR_METRIC in snap
    assert SIGNED_SUM_METRIC in snap
    assert MAX_ERROR_METRIC in snap
    labels = snap[ABS_ERROR_METRIC]["samples"][0]["labels"]
    assert labels == {"model": "lmo", "operation": "gather/linear",
                      "bucket": "4096"}


def test_monitor_drops_undefined_pairs():
    monitor = ResidualMonitor(MetricsRegistry())
    assert monitor.record("m", "op", 1, 1.0, 0.0) is None  # measured == 0
    assert monitor.record("m", "op", 1, 1.0, -2.0) is None
    assert monitor.record("m", "op", 1, float("nan"), 1.0) is None
    assert monitor.record("m", "op", 1, float("inf"), 1.0) is None
    assert monitor.record("m", "op", 1, 1.0, float("nan")) is None


def test_signed_error_convention_matches_accuracy_module():
    # positive = pessimistic (over-prediction), negative = optimistic.
    monitor = ResidualMonitor(MetricsRegistry())
    over = monitor.record("m", "op", 8, 2.0, 1.0)
    under = monitor.record("m", "op", 8, 0.5, 1.0)
    assert over.signed_error == pytest.approx(1.0)
    assert under.signed_error == pytest.approx(-0.5)


def _ingest_sample_pairs(registry):
    monitor = ResidualMonitor(registry)
    # lmo/gather: two size buckets, consistent pessimistic 10% and 30%.
    for predicted, measured, nbytes in (
        (1.10, 1.0, 1024), (1.10, 1.0, 1000),
        (1.30, 1.0, 65536), (1.30, 1.0, 60000),
    ):
        assert monitor.record("lmo", "gather/linear", nbytes, predicted, measured)
    # hockney/scatter: one bucket, optimistic 50%.
    assert monitor.record("hockney", "scatter/binomial", 4096, 0.5, 1.0)
    return monitor


def test_scorecards_rebuild_from_snapshot():
    registry = MetricsRegistry()
    _ingest_sample_pairs(registry)
    # Snapshots round-trip through JSON without changing the cards.
    metrics = json.loads(json.dumps(registry.snapshot()))
    cards = scorecards(metrics)
    assert [(c.model, c.operation) for c in cards] == [
        ("hockney", "scatter/binomial"), ("lmo", "gather/linear"),
    ]
    hockney, lmo = cards
    assert lmo.count == 4
    assert lmo.mean_abs_error == pytest.approx(0.2)
    assert lmo.bias == pytest.approx(0.2)  # pessimistic
    assert lmo.max_abs_error == pytest.approx(0.3)
    assert [b.bucket for b in lmo.buckets] == ["1024", "65536"]
    small, large = lmo.buckets
    assert small.count == 2 and large.count == 2
    assert small.mean_abs_error == pytest.approx(0.1)
    assert large.mean_abs_error == pytest.approx(0.3)
    assert small.p50 <= small.p95
    assert hockney.count == 1
    assert hockney.bias == pytest.approx(-0.5)  # optimistic
    # Quantiles are interpolated within the error histogram's buckets, so
    # they sit within a factor of two of the true error.
    assert 0.05 <= small.p50 <= 0.2
    assert 0.15 <= large.p95 <= 0.6


def test_scorecards_of_empty_snapshot():
    assert scorecards({}) == []
    assert scorecards(MetricsRegistry().snapshot()) == []


def test_scorecard_to_dict_roundtrips():
    registry = MetricsRegistry()
    _ingest_sample_pairs(registry)
    cards = scorecards(registry.snapshot())
    doc = json.loads(json.dumps([c.to_dict() for c in cards]))
    assert doc[1]["model"] == "lmo"
    assert doc[1]["buckets"][0]["bucket"] == "1024"
    assert doc[1]["count"] == 4


def test_render_scorecards_table():
    registry = MetricsRegistry()
    _ingest_sample_pairs(registry)
    text = render_scorecards(scorecards(registry.snapshot()))
    assert "lmo" in text and "gather/linear" in text
    assert "(pess" in text and "(opti" in text
    assert render_scorecards([]) == "residual scorecards: (no pairs ingested)"


def test_max_error_gauge_only_moves_up():
    registry = MetricsRegistry()
    monitor = ResidualMonitor(registry)
    monitor.record("m", "op", 64, 1.4, 1.0)
    monitor.record("m", "op", 64, 1.1, 1.0)  # smaller error, worst stays
    labels = {"model": "m", "operation": "op", "bucket": "64"}
    assert registry.gauge(MAX_ERROR_METRIC, **labels).value == pytest.approx(0.4)


def test_monitor_math_is_finite_for_tiny_errors():
    registry = MetricsRegistry()
    monitor = ResidualMonitor(registry)
    record = monitor.record("m", "op", 64, 1.0, 1.0)  # exact prediction
    assert record.abs_error == 0.0
    cards = scorecards(registry.snapshot())
    assert cards[0].mean_abs_error == 0.0
    assert math.isfinite(cards[0].p95)
