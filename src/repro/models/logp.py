"""The LogP model [Culler et al., PPoPP 1993] (paper Sec. II).

LogP describes communication of *small fixed-size* packets with four
parameters: latency ``L`` (constant network contribution), overhead ``o``
(constant processor contribution), gap ``g`` (minimum inter-message time,
the reciprocal of per-message bandwidth — a mixed contribution), and the
processor count ``P``.

A point-to-point message costs ``L + 2o``.  Large messages are modelled as
a train of ``ceil(M / w)`` packets of the underlying packet size ``w``:
``L + 2o + (k - 1) g``.  The paper abbreviates this as ``L + 2o + M g``
("in the formula for a series the gap parameter will be used"), which our
:meth:`LogPModel.p2p_time` reproduces with ``w`` configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import (
    ArrayLike,
    broadcast_result,
    validate_nbytes,
    validate_nbytes_batch,
    validate_rank_batch,
)

__all__ = ["LogPModel"]


@dataclass(frozen=True)
class LogPModel:
    """Homogeneous LogP parameters.

    Attributes
    ----------
    L:
        Latency upper bound, seconds (constant network contribution).
    o:
        Send/receive overhead, seconds (constant processor contribution).
    g:
        Gap between consecutive packets, seconds (mixed variable
        contribution).
    P:
        Number of processors.
    packet_bytes:
        Packet size ``w`` used to decompose large messages (LogP itself
        leaves this implicit; Ethernet's MTU is the natural choice).
    """

    L: float
    o: float
    g: float
    P: int
    packet_bytes: int = 1500

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g) < 0:
            raise ValueError(f"negative LogP parameters: {self}")
        if self.P < 2:
            raise ValueError("a communication model needs P >= 2")
        if self.packet_bytes < 1:
            raise ValueError("packet_bytes must be >= 1")

    @property
    def n(self) -> int:
        """Processor count (protocol-compatible alias of ``P``)."""
        return self.P

    def packets(self, nbytes: float) -> int:
        """Number of packets a message of ``nbytes`` decomposes into."""
        validate_nbytes(nbytes)
        if nbytes == 0:
            return 1
        return -(-int(nbytes) // self.packet_bytes)

    def packets_batch(self, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`packets` (float array, exact integer values)."""
        nb = validate_nbytes_batch(nbytes)
        # ceil(trunc(M) / w) mirrors -(-int(M) // w) for non-negative M.
        k = np.ceil(np.trunc(nb) / self.packet_bytes)
        return np.where(nb == 0, 1.0, k)

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``L + 2o + (k-1) g`` for a k-packet message."""
        return float(self.p2p_time_batch(i, j, nbytes))

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized packet-train prediction over broadcastable arrays."""
        validate_rank_batch(self.P, i, j)
        packets = self.packets_batch(nbytes)
        return broadcast_result(self.L + 2 * self.o + (packets - 1) * self.g, i, j, packets)

    def bandwidth(self) -> float:
        """End-to-end bandwidth implied by the gap, bytes/second."""
        return self.packet_bytes / self.g if self.g > 0 else float("inf")

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"L": self.L, "o": self.o, "g": self.g, "P": self.P,
                "packet_bytes": self.packet_bytes}

    @classmethod
    def from_dict(cls, params: dict) -> "LogPModel":
        """Inverse of :meth:`to_dict`."""
        return cls(L=params["L"], o=params["o"], g=params["g"], P=params["P"],
                   packet_bytes=params.get("packet_bytes", 1500))
