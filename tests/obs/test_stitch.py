"""Unit tests for cross-process trace stitching."""

import json

import pytest

from repro.obs.stitch import list_traces, stitch_chrome_trace, unwrap_snapshot

TRACE = "a" * 32
OTHER = "b" * 32


def snapshot(epoch, spans=(), events=()):
    doc = {
        "format": "repro-telemetry",
        "version": 1,
        "metrics": {},
        "spans": list(spans),
        "events": list(events),
    }
    if epoch is not None:
        doc["spans_epoch_unix"] = epoch
    return doc


def span(name, start, end, trace_id=TRACE, **attrs):
    return {"name": name, "start": start, "end": end, "span_id": 1,
            "parent_id": None, "attrs": attrs, "trace_id": trace_id}


def test_unwrap_accepts_raw_and_obs_reply():
    raw = snapshot(epoch=100.0)
    assert unwrap_snapshot(raw) is raw
    wrapped = {"enabled": True, "telemetry": raw}
    assert unwrap_snapshot(wrapped) is raw
    with pytest.raises(ValueError):
        unwrap_snapshot({"format": "something-else"})


def test_list_traces_summarizes_processes_and_names():
    docs = [
        ("client", snapshot(10.0, [span("client.request", 0.0, 1.0)])),
        ("server", snapshot(10.1, [span("serve.request", 0.1, 0.9),
                                   span("serve.worker", 0.2, 0.8, OTHER)])),
    ]
    traces = list_traces(docs)
    assert traces[TRACE]["spans"] == 2
    assert traces[TRACE]["processes"] == ["client", "server"]
    assert "client.request" in traces[TRACE]["names"]
    assert traces[OTHER]["processes"] == ["server"]


def test_stitch_aligns_clocks_across_processes():
    # Client's span clock started at unix 1000.0, server's at 1000.5; a
    # server span at local 0.1 must land *inside* a client span at 0.4.
    client = snapshot(1000.0, [span("client.request", 0.4, 1.4)])
    server = snapshot(1000.5, [span("serve.request", 0.1, 0.7)])
    doc = json.loads(stitch_chrome_trace([("client", client),
                                          ("server", server)]))
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    # t0 = 1000.4 (earliest span); client at 0 us, server at 200000 us.
    assert by_name["client.request"]["ts"] == pytest.approx(0.0)
    assert by_name["serve.request"]["ts"] == pytest.approx(0.2e6)
    assert by_name["serve.request"]["dur"] == pytest.approx(0.6e6)
    # Distinct pids per process, with readable lane names.
    assert by_name["client.request"]["pid"] != by_name["serve.request"]["pid"]
    meta = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
    assert meta == {"client", "server"}


def test_stitch_filters_by_trace_id_and_keeps_trace_stamped_events():
    events = [{"seq": 1, "ts": 1000.45, "level": "info",
               "name": "service_started", "trace_id": TRACE},
              {"seq": 2, "ts": 1000.46, "level": "info",
               "name": "unrelated", "trace_id": OTHER}]
    server = snapshot(1000.0, [span("serve.request", 0.5, 0.9),
                               span("noise", 0.0, 2.0, OTHER)], events)
    doc = json.loads(stitch_chrome_trace([("server", server)], trace_id=TRACE))
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] != "M"]
    assert names == ["serve.request", "service_started"]
    instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
    assert instant["s"] == "p"
    assert instant["args"]["trace_id"] == TRACE


def test_stitch_unknown_trace_id_raises():
    server = snapshot(1000.0, [span("serve.request", 0.5, 0.9)])
    with pytest.raises(ValueError, match="no snapshot contains"):
        stitch_chrome_trace([("server", server)], trace_id="c" * 32)


def test_stitch_requires_epoch_when_spans_present():
    server = snapshot(None, [span("serve.request", 0.5, 0.9)])
    with pytest.raises(ValueError, match="spans_epoch_unix"):
        stitch_chrome_trace([("server", server)])


def test_stitch_skips_open_spans_and_empty_snapshots():
    open_span = span("inflight", 0.5, None)
    server = snapshot(1000.0, [open_span, span("done", 0.6, 0.8)])
    idle = snapshot(999.0)
    doc = json.loads(stitch_chrome_trace([("server", server), ("idle", idle)]))
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
    assert names == ["done"]
    meta = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
    assert meta == {"server"}  # the idle snapshot contributes no lane
