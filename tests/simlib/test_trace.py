"""Tests for activity tracing and Gantt rendering."""

import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.mpi import run_collective
from repro.simlib import Interval, Tracer, render_gantt

KB = 1024


def test_interval_validation_and_duration():
    interval = Interval("lane", 1.0, 3.0, "x")
    assert interval.duration == 2.0
    with pytest.raises(ValueError):
        Interval("lane", 3.0, 1.0)


def test_tracer_records_and_queries():
    tracer = Tracer()
    tracer.record("a", 0.0, 1.0, "x")
    tracer.record("b", 0.5, 2.0)
    tracer.record("a", 3.0, 4.0)
    assert tracer.lanes() == ["a", "b"]
    assert [i.start for i in tracer.lane_intervals("a")] == [0.0, 3.0]
    assert tracer.busy_time("a") == pytest.approx(2.0)
    assert tracer.span() == pytest.approx(4.0)
    assert tracer.utilization("a") == pytest.approx(0.5)
    tracer.clear()
    assert tracer.span() == 0.0
    assert tracer.utilization("a") == 0.0


def test_render_empty_and_validation():
    tracer = Tracer()
    assert render_gantt(tracer) == "(empty trace)"
    tracer.record("a", 0.0, 1.0)
    with pytest.raises(ValueError):
        render_gantt(tracer, width=5)


def test_render_marks_busy_stretches():
    tracer = Tracer()
    tracer.record("cpu", 0.0, 0.5, "s")
    tracer.record("wire", 0.5, 1.0, "w")
    text = render_gantt(tracer, width=20)
    lines = text.splitlines()
    assert len(lines) == 3
    cpu_line = next(line for line in lines if line.startswith("cpu"))
    wire_line = next(line for line in lines if line.startswith("wire"))
    cpu_cells = cpu_line[len("wire "):]  # skip the name column
    wire_cells = wire_line[len("wire "):]
    assert "s" in cpu_cells and "w" not in cpu_cells
    assert "w" in wire_cells
    # cpu busy in the first half, wire in the second.
    assert cpu_cells.index("s") < wire_cells.index("w")


def traced_cluster():
    n = 4
    cluster = SimulatedCluster(
        random_cluster(n, seed=1),
        ground_truth=GroundTruth.random(n, seed=1),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=1,
    )
    tracer = Tracer()
    cluster.attach_tracer(tracer)
    return cluster, tracer


def test_scatter_trace_shows_serial_root_and_parallel_receivers():
    cluster, tracer = traced_cluster()
    run = run_collective(cluster, "scatter", "linear", nbytes=32 * KB)
    gt = cluster.ground_truth
    # Root CPU: three back-to-back send slots, no gaps.
    sends = [i for i in tracer.lane_intervals("cpu0") if i.label == "s"]
    assert len(sends) == 3
    for before, after in zip(sends, sends[1:]):
        assert after.start == pytest.approx(before.end)
    assert tracer.busy_time("cpu0") == pytest.approx(3 * gt.send_cost(0, 32 * KB), rel=1e-9)
    # Each receiver processed exactly once; ports used once each.
    for rank in (1, 2, 3):
        recvs = [i for i in tracer.lane_intervals(f"cpu{rank}") if i.label == "r"]
        assert len(recvs) == 1
        assert len(tracer.lane_intervals(f"port{rank}")) == 1
    # Total trace span equals the measured collective time.
    assert tracer.span() == pytest.approx(run.time, rel=1e-9)


def test_gather_trace_shows_port_serialization():
    cluster, tracer = traced_cluster()
    run_collective(cluster, "gather", "linear", nbytes=32 * KB)
    wires = [i for i in tracer.lane_intervals("port0") if i.label == "w"]
    assert len(wires) == 3
    for before, after in zip(wires, wires[1:]):
        assert after.start >= before.end - 1e-15  # one wire: no overlap


def test_tracer_detach_stops_recording():
    cluster, tracer = traced_cluster()
    cluster.attach_tracer(None)
    run_collective(cluster, "scatter", "linear", nbytes=KB)
    assert tracer.intervals == []


def test_render_via_cluster_run():
    cluster, tracer = traced_cluster()
    run_collective(cluster, "scatter", "linear", nbytes=8 * KB)
    text = tracer.render(width=40)
    assert "cpu0" in text and "port1" in text


def test_chrome_trace_export():
    import json

    cluster, tracer = traced_cluster()
    run_collective(cluster, "scatter", "linear", nbytes=4 * KB)
    doc = json.loads(tracer.to_chrome_trace())
    events = doc["traceEvents"]
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "cpu0" in names
    complete = [e for e in events if e["ph"] == "X"]
    assert complete
    assert all(e["dur"] >= 0 for e in complete)
    assert any(e["name"] == "send processing" for e in complete)
    assert any(e["name"] == "wire transfer" for e in complete)
