"""Discrete-event simulation kernel.

A small, dependency-free process-based DES in the style of SimPy:
processes are Python generators that yield *events* (timeouts, other
events, resource requests); the :class:`~repro.simlib.kernel.Simulator`
advances virtual time over a binary heap of scheduled callbacks.

This kernel is the substrate for the simulated single-switch cluster
(:mod:`repro.cluster`) and the MPI-like layer (:mod:`repro.mpi`).

Example
-------
>>> from repro.simlib import Simulator
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(1.5)
...     log.append(sim.now)
>>> _ = sim.spawn(proc(sim))
>>> sim.run()
>>> log
[1.5]
"""

from repro.simlib.kernel import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
)
from repro.simlib.resources import PriorityResource, Resource, ResourceUsage
from repro.simlib.store import Store
from repro.simlib.trace import Interval, Tracer, render_gantt

__all__ = [
    "Event",
    "Interval",
    "Interrupt",
    "Process",
    "PriorityResource",
    "Resource",
    "ResourceUsage",
    "SimulationError",
    "Simulator",
    "Store",
    "Tracer",
    "render_gantt",
]
