"""Prediction-service load benchmark: latency, throughput, identity.

Boots the daemon in-process (:class:`repro.serve.ServerThread` — a real
socket listener with real framing) and drives it at 1, 8 and 64
concurrent clients, measuring per-request wall latency and aggregate
throughput.  Three things are asserted, not just reported:

1. **Identity, always**: every wire reply is bit-identical to the
   in-process ``api.predict`` answer for the same request — the batch
   coalescing window must never change a number.
2. **Scalability**: 64 concurrent clients must push at least as much
   aggregate throughput as one sequential client — coalescing has to
   pay for its window under load.
3. **A conservative absolute floor** on the sequential rate, so a
   pathological regression (e.g. an accidental sleep per request)
   fails loudly even on a 1-core CI runner.

Results land in ``BENCH_service.json`` at the repo root::

    PYTHONPATH=src python -m pytest benchmarks/test_service.py -s
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import api
from repro.cluster import GroundTruth
from repro.models import ExtendedLMOModel, GatherIrregularity
from repro.serve import ServeConfig, ServerThread

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

KB = 1024
CONCURRENCY_LEVELS = (1, 8, 64)
REQUESTS_PER_CLIENT = 8
MIN_SEQUENTIAL_RPS = 20.0  # absolute floor; a healthy box does hundreds
MAX_P99_SECONDS = 2.0      # per-request, even at 64 concurrent clients


def make_model():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.22,
                             p_at_m2=0.7)
    return ExtendedLMOModel.from_ground_truth(GroundTruth.random(8, seed=3), irr)


def make_cases(count, offset=0):
    cases = []
    for i in range(count):
        j = i + offset
        if j % 2 == 0:
            cases.append(("scatter", "linear", float(KB * (j % 40 + 1)), j % 8))
        else:
            cases.append(("gather", "linear", float(2 * KB * (j % 40 + 1)), j % 8))
    return cases


def drive_level(host, clients):
    """One load level: per-request latencies, wall time, and replies."""
    latencies = []
    replies = []

    def one_client(client_index):
        cases = make_cases(REQUESTS_PER_CLIENT,
                           offset=client_index * REQUESTS_PER_CLIENT)
        out = []
        with host.client() as client:
            for case in cases:
                operation, algorithm, nbytes, root = case
                t0 = time.perf_counter()
                p = client.predict("lmo", operation, algorithm, nbytes,
                                   root=root)
                out.append((case, p, time.perf_counter() - t0))
        return out

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for chunk in pool.map(one_client, range(clients)):
            for case, reply, latency in chunk:
                replies.append((case, reply))
                latencies.append(latency)
    wall = time.perf_counter() - start
    return latencies, wall, replies


def percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_service_latency_throughput_and_identity():
    model = make_model()
    config = ServeConfig(port=0, models={"lmo": model}, workers=2,
                         telemetry=False)
    levels = {}
    with ServerThread(config) as host:
        for clients in CONCURRENCY_LEVELS:
            latencies, wall, replies = drive_level(host, clients)
            # Identity: every wire reply == the in-process facade answer.
            for (operation, algorithm, nbytes, root), reply in replies:
                local = api.predict(model, operation, algorithm, nbytes,
                                    root=root)
                assert reply == local, (
                    f"wire reply diverged from api.predict for "
                    f"{operation}/{algorithm} {nbytes} B root {root}"
                )
            levels[str(clients)] = {
                "clients": clients,
                "requests": len(latencies),
                "p50_ms": percentile(latencies, 0.50) * 1e3,
                "p99_ms": percentile(latencies, 0.99) * 1e3,
                "throughput_rps": len(latencies) / wall,
            }

    doc = {
        "benchmark": "prediction service load",
        "cpus": os.cpu_count() or 1,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "levels": levels,
        "identity": True,
    }
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nservice bench -> {RESULT_PATH}")
    for clients in CONCURRENCY_LEVELS:
        row = levels[str(clients)]
        print(f"  {clients:>2} clients: p50 {row['p50_ms']:7.2f} ms, "
              f"p99 {row['p99_ms']:7.2f} ms, "
              f"{row['throughput_rps']:8.1f} req/s")

    # The gates (self-contained: nothing here depends on a past run).
    sequential = levels["1"]["throughput_rps"]
    loaded = levels["64"]["throughput_rps"]
    assert sequential >= MIN_SEQUENTIAL_RPS, (
        f"sequential throughput {sequential:.1f} req/s below the "
        f"{MIN_SEQUENTIAL_RPS} req/s floor"
    )
    assert loaded >= sequential, (
        f"64-client throughput {loaded:.1f} req/s fell below the sequential "
        f"rate {sequential:.1f} req/s — coalescing is not paying for its window"
    )
    assert levels["64"]["p99_ms"] <= MAX_P99_SECONDS * 1e3, (
        f"p99 at 64 clients is {levels['64']['p99_ms']:.1f} ms"
    )
