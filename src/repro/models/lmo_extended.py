"""The extended LMO model — the paper's primary contribution (Sec. III).

Six point-to-point parameters fully separating the four kinds of
contribution:

    T_ij(M) = C_i + L_ij + C_j + M (t_i + 1/beta_ij + t_j)

    =========  ===============  ===============
    .          processor        network
    constant   C_i, C_j         L_ij
    variable   t_i, t_j         1/beta_ij
    =========  ===============  ===============

Because the contributions are separated, collective formulas can serialize
the processor parts while parallelizing the network parts — see
:mod:`repro.models.collectives.formulas` for the paper's equations (4)
and (5), and :class:`GatherIrregularity` for the empirical part of (5).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

import numpy as np

from repro.models.base import (
    ArrayLike,
    broadcast_result,
    decode_array,
    encode_array,
    validate_nbytes_batch,
    validate_rank_batch,
)
from repro.models.hockney import HeterogeneousHockneyModel
from repro.models.lmo import LMOModel

__all__ = ["ExtendedLMOModel", "GatherIrregularity"]


@dataclass(frozen=True)
class GatherIrregularity:
    """Empirical parameters of linear gather on a switched TCP cluster.

    The paper's formula (5): below ``m1`` the execution time follows the
    *parallel* (max) branch; above ``m2`` the *serialized* (sum) branch;
    in between, non-deterministic escalations occur.  The empirical part
    records the escalation magnitude (its "most frequent value", a TCP
    RTO of ~0.2-0.25 s) and the probability of escalation as a function
    of message size (the paper: the probability of fitting the linear
    model "becomes less with the growth of message size").
    """

    m1: float
    m2: float
    escalation_value: float = 0.25
    #: P(escalation) at M = m1 (onset) and M = m2 (just before pacing).
    p_at_m1: float = 0.0
    p_at_m2: float = 0.8

    def __post_init__(self) -> None:
        if not (0 < self.m1 < self.m2):
            raise ValueError(f"need 0 < m1 < m2, got m1={self.m1}, m2={self.m2}")
        if not (0 <= self.p_at_m1 <= self.p_at_m2 <= 1):
            raise ValueError("need 0 <= p(m1) <= p(m2) <= 1")

    def escalation_probability(self, nbytes: float) -> float:
        """Interpolated escalation probability at message size ``nbytes``."""
        if nbytes <= self.m1 or nbytes > self.m2:
            return 0.0
        frac = (nbytes - self.m1) / (self.m2 - self.m1)
        return self.p_at_m1 + frac * (self.p_at_m2 - self.p_at_m1)

    def regime(self, nbytes: float) -> str:
        """``"small"`` (M < m1), ``"medium"``, or ``"large"`` (M > m2)."""
        if nbytes < self.m1:
            return "small"
        if nbytes > self.m2:
            return "large"
        return "medium"

    def escalation_probability_batch(self, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`escalation_probability`."""
        nb = np.asarray(nbytes, dtype=float)
        frac = (nb - self.m1) / (self.m2 - self.m1)
        p = self.p_at_m1 + frac * (self.p_at_m2 - self.p_at_m1)
        return np.where((nb <= self.m1) | (nb > self.m2), 0.0, p)

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"m1": self.m1, "m2": self.m2,
                "escalation_value": self.escalation_value,
                "p_at_m1": self.p_at_m1, "p_at_m2": self.p_at_m2}

    @classmethod
    def from_dict(cls, params: dict) -> "GatherIrregularity":
        """Inverse of :meth:`to_dict`."""
        return cls(m1=params["m1"], m2=params["m2"],
                   escalation_value=params["escalation_value"],
                   p_at_m1=params["p_at_m1"], p_at_m2=params["p_at_m2"])


@dataclass(frozen=True)
class ExtendedLMOModel:
    """Extended (six-parameter) LMO model with optional empirical part.

    Attributes
    ----------
    C:
        Fixed *processor* delays, shape ``(n,)``, seconds.
    t:
        Per-byte processor delays, shape ``(n,)``, seconds/byte.
    L:
        Fixed *network* latencies, shape ``(n, n)``, symmetric, seconds.
    beta:
        Link transmission rates, shape ``(n, n)``, symmetric, bytes/s.
    gather_irregularity:
        Empirical thresholds/escalations of linear gather, when estimated.
    """

    C: np.ndarray
    t: np.ndarray
    L: np.ndarray
    beta: np.ndarray
    gather_irregularity: Optional[GatherIrregularity] = None

    def __post_init__(self) -> None:
        n = self.C.shape[0]
        if self.t.shape != (n,) or self.L.shape != (n, n) or self.beta.shape != (n, n):
            raise ValueError("inconsistent extended-LMO parameter shapes")
        if not np.allclose(self.L, self.L.T) or not np.allclose(self.beta, self.beta.T):
            raise ValueError("L and beta must be symmetric (single-switch cluster)")
        if (self.C < 0).any() or (self.t < 0).any():
            raise ValueError("negative processor delays")
        if n < 2:
            raise ValueError("a communication model needs n >= 2")

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.C.shape[0]

    # -- precomputed pair matrices (built once, cached on the instance) --------
    @cached_property
    def _pair_alpha(self) -> np.ndarray:
        """``C_i + L_ij + C_j``, shape ``(n, n)``."""
        return (self.C[:, None] + self.L) + self.C[None, :]

    @cached_property
    def _pair_beta(self) -> np.ndarray:
        """``t_i + 1/beta_ij + t_j``, shape ``(n, n)``."""
        with np.errstate(divide="ignore"):
            inv = 1.0 / self.beta
        return (self.t[:, None] + inv) + self.t[None, :]

    # -- point-to-point --------------------------------------------------------
    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``C_i + L_ij + C_j + M (t_i + 1/beta_ij + t_j)``."""
        return float(self.p2p_time_batch(i, j, nbytes))

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized extended-LMO prediction over broadcastable arrays."""
        ii, jj = validate_rank_batch(self.n, i, j)
        nb = validate_nbytes_batch(nbytes)
        ii, jj = np.broadcast_arrays(ii, jj)
        return broadcast_result(
            self._pair_alpha[ii, jj] + nb * self._pair_beta[ii, jj], ii, nb
        )

    def send_cost(self, i: int, nbytes: float) -> float:
        """Processor-side cost ``C_i + M t_i`` (serialized on a node)."""
        return float(self.send_cost_batch(i, nbytes))

    def send_cost_batch(self, i: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`send_cost` over broadcastable arrays."""
        (ii,) = validate_rank_batch(self.n, i)
        nb = validate_nbytes_batch(nbytes)
        return broadcast_result(self.C[ii] + nb * self.t[ii], ii, nb)

    def wire_and_remote_cost(self, i: int, j: int, nbytes: float) -> float:
        """Everything that happens off the sender: ``L + M/beta + C_j + M t_j``.

        This is the parallelizable part of a transfer through the switch —
        the term inside the ``max`` of formulas (4) and (5).
        """
        return float(self.wire_and_remote_cost_batch(i, j, nbytes))

    def wire_and_remote_cost_batch(
        self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike
    ) -> np.ndarray:
        """Vectorized :meth:`wire_and_remote_cost` over broadcastable arrays."""
        ii, jj = validate_rank_batch(self.n, i, j)
        nb = validate_nbytes_batch(nbytes)
        ii, jj = np.broadcast_arrays(ii, jj)
        return broadcast_result(
            self.L[ii, jj] + nb / self.beta[ii, jj] + self.C[jj] + nb * self.t[jj],
            ii, nb,
        )

    # -- conversions ----------------------------------------------------------
    def to_heterogeneous_hockney(self) -> HeterogeneousHockneyModel:
        """Exact Hockney view: ``alpha = C_i+L+C_j``, ``beta^H = t_i+1/b+t_j``."""
        alpha = self.C[:, None] + self.L + self.C[None, :]
        np.fill_diagonal(alpha, 0.0)
        with np.errstate(divide="ignore"):
            inv = 1.0 / self.beta
        np.fill_diagonal(inv, 0.0)
        bh = self.t[:, None] + inv + self.t[None, :]
        np.fill_diagonal(bh, 0.0)
        return HeterogeneousHockneyModel(alpha=alpha, beta=bh)

    def to_original_lmo(self) -> LMOModel:
        """Fold latencies back into the fixed delays (the pre-extension
        model): each processor absorbs half of its average link latency."""
        off = ~np.eye(self.n, dtype=bool)
        mean_latency = np.where(off, self.L, np.nan)
        half_latency = np.nanmean(mean_latency, axis=1) / 2.0
        return LMOModel(C=self.C + half_latency, t=self.t.copy(), beta=self.beta.copy())

    def with_irregularity(self, irregularity: GatherIrregularity) -> "ExtendedLMOModel":
        """A copy carrying estimated empirical gather parameters."""
        return ExtendedLMOModel(self.C, self.t, self.L, self.beta, irregularity)

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        params = {"C": encode_array(self.C), "t": encode_array(self.t),
                  "L": encode_array(self.L), "beta": encode_array(self.beta)}
        if self.gather_irregularity is not None:
            params["gather_irregularity"] = self.gather_irregularity.to_dict()
        return params

    @classmethod
    def from_dict(cls, params: dict) -> "ExtendedLMOModel":
        """Inverse of :meth:`to_dict`."""
        irregularity = None
        if "gather_irregularity" in params:
            irregularity = GatherIrregularity.from_dict(params["gather_irregularity"])
        return cls(C=decode_array(params["C"]), t=decode_array(params["t"]),
                   L=decode_array(params["L"]), beta=decode_array(params["beta"]),
                   gather_irregularity=irregularity)

    @staticmethod
    def from_ground_truth(ground_truth, irregularity=None) -> "ExtendedLMOModel":
        """The oracle model: parameters copied from the simulated hardware."""
        return ExtendedLMOModel(
            C=ground_truth.C.copy(),
            t=ground_truth.t.copy(),
            L=ground_truth.L.copy(),
            beta=ground_truth.beta.copy(),
            gather_irregularity=irregularity,
        )
