"""Coverage for runtime.suppressed() re-entrancy and the health_log shim."""

import pytest

from repro.obs import runtime as _obs


def test_suppressed_mutes_and_restores():
    tel = _obs.enable(fresh=True)
    assert _obs.ACTIVE is tel
    with _obs.suppressed():
        assert _obs.ACTIVE is None
        assert _obs.active() is None
    assert _obs.ACTIVE is tel


def test_suppressed_nests():
    tel = _obs.enable(fresh=True)
    with _obs.suppressed():
        with _obs.suppressed():
            assert _obs.ACTIVE is None
        # Inner exit restores the *suppressed* state, not the session.
        assert _obs.ACTIVE is None
    assert _obs.ACTIVE is tel


def test_suppressed_restores_on_exception():
    tel = _obs.enable(fresh=True)
    with pytest.raises(RuntimeError):
        with _obs.suppressed():
            raise RuntimeError("boom")
    assert _obs.ACTIVE is tel


def test_suppressed_while_disabled_is_harmless():
    _obs.disable()
    with _obs.suppressed():
        assert _obs.ACTIVE is None
    assert _obs.ACTIVE is None


def test_suppressed_across_span_boundaries():
    tel = _obs.enable(fresh=True)
    with _obs.span("outer"):
        with _obs.suppressed():
            # span() inside a suppressed block returns the shared no-op
            # and records nothing.
            with _obs.span("hidden"):
                tel_inside = _obs.ACTIVE
            assert tel_inside is None
        with _obs.span("inner"):
            pass
    names = [s.name for s in tel.spans.finished()]
    assert "outer" in names and "inner" in names
    assert "hidden" not in names
    # Nesting survived the suppression: inner's parent is outer.
    by_name = {s.name: s for s in tel.spans.finished()}
    assert by_name["inner"].parent_id == by_name["outer"].span_id


def test_hooks_inside_suppressed_do_not_count():
    tel = _obs.enable(fresh=True)
    tel.registry.counter("t_total").inc()
    with _obs.suppressed():
        guard = _obs.ACTIVE
        if guard is not None:  # the instrumentation idiom
            tel.registry.counter("t_total").inc()
    assert tel.registry.total("t_total") == 1


def test_health_log_shim_on_a_fresh_maintainer():
    """The deprecated accessor works (and warns) before any cycle ran."""
    from repro.cluster import GroundTruth, SimulatedCluster, random_cluster
    from repro.estimation import DESEngine
    from repro.estimation.maintainer import ModelMaintainer

    cluster = SimulatedCluster(
        random_cluster(4, seed=1), ground_truth=GroundTruth.random(4, seed=1),
        seed=2,
    )
    maintainer = ModelMaintainer(DESEngine(cluster))
    with pytest.deprecated_call():
        legacy = maintainer.health_log
    assert legacy == maintainer.health_records() == []
