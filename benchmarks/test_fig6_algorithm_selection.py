"""Fig. 6 bench: model-driven linear/binomial switch for 100-200 KB."""

from conftest import assert_checks

from repro.optimize import predict_algorithms

KB = 1024


def test_fig6_shape(experiment_results):
    assert_checks(experiment_results("fig6"))


def test_fig6_decision_table(experiment_results):
    """Hockney flips to binomial inside the band, LMO never does, and the
    observation sides with LMO."""
    result = experiment_results("fig6")
    sizes = result.get("obs-linear").sizes
    for m in sizes:
        assert result.get("obs-linear").at(m) < result.get("obs-binomial").at(m)
        assert result.get("lmo-linear").at(m) < result.get("lmo-binomial").at(m)
    assert any(
        result.get("hockney-binomial").at(m) < result.get("hockney-linear").at(m)
        for m in sizes
    )


def test_bench_selection_kernel(benchmark, experiment_results, model_suite):
    """Kernel: both models' decisions across the 100-200 KB band."""
    assert_checks(experiment_results("fig6"))
    band = [int(m * KB) for m in (100, 120, 140, 160, 180, 200)]

    def kernel():
        decisions = []
        for m in band:
            decisions.append(predict_algorithms(model_suite.hockney_het, "scatter", m).best)
            decisions.append(predict_algorithms(model_suite.lmo, "scatter", m).best)
        return decisions

    decisions = benchmark(kernel)
    assert len(decisions) == 12
