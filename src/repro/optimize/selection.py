"""Model-driven algorithm selection (paper Fig. 6).

MPI implementations switch between collective algorithms by message size.
The paper shows the switch decision is only as good as the model behind
it: for 100 KB < M < 200 KB scatter on the Table I cluster, the
heterogeneous Hockney model predicts binomial < linear (wrong — it
serializes wire time the switch parallelizes, penalizing the linear
algorithm's n-1 transfers far too much), while the LMO model correctly
picks the linear algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.models.collectives.formulas import (
    GatherPrediction,
    predict_binomial_gather,
    predict_binomial_scatter,
    predict_linear_gather,
    predict_linear_scatter,
)

__all__ = ["AlgorithmChoice", "predict_algorithms", "select_algorithm", "crossover_size"]


@dataclass(frozen=True)
class AlgorithmChoice:
    """The model's verdict for one (operation, size)."""

    operation: str
    nbytes: int
    predictions: dict[str, float]

    @property
    def best(self) -> str:
        return min(self.predictions, key=self.predictions.__getitem__)


def _predict(model, operation: str, algorithm: str, nbytes: int, root: int) -> float:
    if operation == "scatter":
        if algorithm == "linear":
            return float(predict_linear_scatter(model, nbytes, root=root))
        if algorithm == "binomial":
            return float(predict_binomial_scatter(model, nbytes, root=root))
    elif operation == "gather":
        if algorithm == "linear":
            value = predict_linear_gather(model, nbytes, root=root)
            return value.expected if isinstance(value, GatherPrediction) else float(value)
        if algorithm == "binomial":
            return float(predict_binomial_gather(model, nbytes, root=root))
    else:
        # The wider menu (bcast / allgather / allreduce) is predicted by
        # the extended-LMO formulas; other models have no formula there.
        from repro.models.collectives.formulas_ext import predict_collective
        from repro.models.lmo_extended import ExtendedLMOModel

        if isinstance(model, ExtendedLMOModel):
            try:
                if operation == "bcast":
                    return float(predict_collective(model, operation, algorithm,
                                                    nbytes, root=root))
                return float(predict_collective(model, operation, algorithm, nbytes))
            except KeyError:
                pass
    raise KeyError(f"no prediction for {operation}/{algorithm}")


def predict_algorithms(
    model,
    operation: str,
    nbytes: int,
    root: int = 0,
    algorithms: Sequence[str] = ("linear", "binomial"),
) -> AlgorithmChoice:
    """Predict every candidate algorithm's time under ``model``."""
    return AlgorithmChoice(
        operation=operation,
        nbytes=nbytes,
        predictions={
            algorithm: _predict(model, operation, algorithm, nbytes, root)
            for algorithm in algorithms
        },
    )


def select_algorithm(
    model,
    operation: str,
    nbytes: int,
    root: int = 0,
    algorithms: Sequence[str] = ("linear", "binomial"),
) -> str:
    """The algorithm the model recommends for this message size."""
    return predict_algorithms(model, operation, nbytes, root, algorithms).best


def crossover_size(
    model,
    operation: str = "scatter",
    lo: int = 64,
    hi: int = 1 << 21,
    root: int = 0,
    algorithms: tuple[str, str] = ("binomial", "linear"),
) -> Optional[int]:
    """Message size where the recommendation flips from ``algorithms[0]``
    to ``algorithms[1]`` (bisection; None if it never flips in range)."""
    first, second = algorithms

    def pick(nbytes: int) -> str:
        return select_algorithm(model, operation, nbytes, root, algorithms)

    if pick(lo) != first or pick(hi) != second:
        return None
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if pick(mid) == first:
            lo = mid
        else:
            hi = mid
    return hi
