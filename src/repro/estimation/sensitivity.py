"""Sensitivity of the LMO estimation to the probe message size.

The paper warns that "as the parameters of our point-to-point model are
found from a small number of experiments, they can be sensitive to
inaccuracies of measurement", and prescribes both repetition and a
careful probe-size choice (medium: above the latency-noise floor, below
the protocol irregularities).  :func:`probe_sensitivity` quantifies that
advice: estimate at several probe sizes and report how much each
parameter family moves — the plateau of stable probes is where estimation
should operate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.estimation.lmo_est import LMOEstimationResult, estimate_extended_lmo
from repro.models.lmo_extended import ExtendedLMOModel

__all__ = ["ProbeSensitivity", "probe_sensitivity"]

KB = 1024
DEFAULT_PROBES = (1 * KB, 8 * KB, 32 * KB, 56 * KB)


@dataclass(frozen=True)
class ProbeSensitivity:
    """Parameter variation across probe sizes."""

    probes: tuple[int, ...]
    models: tuple[ExtendedLMOModel, ...]
    #: Max relative deviation from the cross-probe median, per family.
    variation: dict[str, float]

    @property
    def stable(self) -> bool:
        """True when the variable parameters move < 10% across probes.

        Constant parameters (C, L) are intrinsically noisier at small
        probes (the quantities are microseconds measured under noise), so
        stability is judged on the families predictions depend on most at
        scale: ``t`` and ``beta``.
        """
        return self.variation["t"] < 0.10 and self.variation["beta"] < 0.10

    def recommended_probe(self) -> int:
        """The probe whose model is closest to the cross-probe median."""
        t_stack = np.stack([m.t for m in self.models])
        median = np.median(t_stack, axis=0)
        distances = [float(np.abs(m.t - median).max()) for m in self.models]
        return self.probes[int(np.argmin(distances))]


def probe_sensitivity(
    engine_factory: Callable[[], object],
    probes: Sequence[int] = DEFAULT_PROBES,
    reps: int = 3,
    triplets: Optional[Sequence[tuple[int, int, int]]] = None,
) -> ProbeSensitivity:
    """Estimate the LMO model at several probe sizes and compare.

    Parameters
    ----------
    engine_factory:
        Creates a *fresh* engine per probe (so each estimation sees
        comparable, independent noise).
    """
    probes = tuple(int(p) for p in probes)
    if len(probes) < 2:
        raise ValueError("need at least two probe sizes")
    results: list[LMOEstimationResult] = []
    for probe in probes:
        engine = engine_factory()
        results.append(
            estimate_extended_lmo(engine, probe_nbytes=probe, reps=reps,
                                  triplets=triplets, clamp=True)
        )
    models = tuple(r.model for r in results)

    def family_variation(extract) -> float:
        stack = np.stack([extract(m) for m in models])
        median = np.median(stack, axis=0)
        scale = np.maximum(np.abs(median), np.abs(stack).max(axis=0) * 1e-6 + 1e-30)
        return float((np.abs(stack - median) / scale).max())

    n = models[0].n
    off = ~np.eye(n, dtype=bool)
    variation = {
        "C": family_variation(lambda m: m.C),
        "t": family_variation(lambda m: m.t),
        "L": family_variation(lambda m: m.L[off]),
        "beta": family_variation(lambda m: 1.0 / m.beta[off]),
    }
    return ProbeSensitivity(probes=probes, models=models, variation=variation)
