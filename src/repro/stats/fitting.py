"""Least-squares fits used by estimators and empirical-parameter detection.

* :func:`linear_fit` — ordinary least squares ``y = a + b x`` (used to turn
  message-size sweeps into Hockney-style intercept/slope pairs).
* :func:`two_segment_fit` — continuous-breakpoint-free two-line fit: find
  the split index minimizing total squared error of independent lines on
  each side.  Used to locate the slope change between linear gather's
  small-message and large-message regimes (paper Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFit", "TwoSegmentFit", "linear_fit", "two_segment_fit"]


@dataclass(frozen=True)
class LinearFit:
    """``y = intercept + slope * x`` with its residual RMS."""

    intercept: float
    slope: float
    rms: float

    def __call__(self, x: float) -> float:
        return self.intercept + self.slope * x


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares line through ``(xs, ys)``."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need >= 2 paired samples")
    design = np.column_stack([np.ones_like(x), x])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    resid = y - design @ coef
    return LinearFit(float(coef[0]), float(coef[1]), float(np.sqrt(np.mean(resid**2))))


@dataclass(frozen=True)
class TwoSegmentFit:
    """Two independent lines split at ``xs[split_index]`` (exclusive)."""

    left: LinearFit
    right: LinearFit
    split_index: int
    split_x: float
    rms: float

    def __call__(self, x: float) -> float:
        return self.left(x) if x < self.split_x else self.right(x)


def two_segment_fit(
    xs: Sequence[float], ys: Sequence[float], min_points: int = 2
) -> TwoSegmentFit:
    """Best two-line fit over all split positions.

    ``min_points`` is the minimum number of samples per segment.  The xs
    must be sorted ascending.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.size < 2 * min_points:
        raise ValueError(f"need >= {2 * min_points} paired samples")
    if (np.diff(x) <= 0).any():
        raise ValueError("xs must be strictly increasing")

    best: TwoSegmentFit | None = None
    for split in range(min_points, x.size - min_points + 1):
        left = linear_fit(x[:split], y[:split])
        right = linear_fit(x[split:], y[split:])
        sse = left.rms**2 * split + right.rms**2 * (x.size - split)
        rms = float(np.sqrt(sse / x.size))
        if best is None or rms < best.rms:
            best = TwoSegmentFit(left, right, split, float(x[split]), rms)
    assert best is not None
    return best
