"""The original LMO model [Lastovetsky, Mkwawa, O'Flynn 2006/2007].

Five point-to-point parameters: per-processor fixed delay ``C_i`` and
per-byte delay ``t_i``, plus per-link transmission rate ``beta_ij``:

    T_ij(M) = C_i + C_j + M (t_i + 1/beta_ij + t_j)

The *variable* contributions of processors and network are separated, but
the fixed delays ``C_i`` still absorb the network's constant latency —
the limitation the extended model (:mod:`repro.models.lmo_extended`)
removes by adding ``L_ij``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.models.base import (
    ArrayLike,
    broadcast_result,
    decode_array,
    encode_array,
    validate_nbytes_batch,
    validate_rank_batch,
)

__all__ = ["LMOModel"]


@dataclass(frozen=True)
class LMOModel:
    """Original (five-parameter) LMO model.

    Attributes
    ----------
    C:
        Fixed processing delays, shape ``(n,)``, seconds.  These combine
        the processor's own fixed cost with its share of network latency.
    t:
        Per-byte processing delays, shape ``(n,)``, seconds/byte.
    beta:
        Link transmission rates, shape ``(n, n)``, symmetric, bytes/s.
    """

    C: np.ndarray
    t: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        n = self.C.shape[0]
        if self.t.shape != (n,) or self.beta.shape != (n, n):
            raise ValueError("inconsistent LMO parameter shapes")
        if not np.allclose(self.beta, self.beta.T):
            raise ValueError("beta must be symmetric (single-switch cluster)")
        if (self.C < 0).any() or (self.t < 0).any():
            raise ValueError("negative processor delays")
        if n < 2:
            raise ValueError("a communication model needs n >= 2")

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.C.shape[0]

    @cached_property
    def _pair_alpha(self) -> np.ndarray:
        """Precomputed ``C_i + C_j``, shape ``(n, n)`` (built once, cached)."""
        return self.C[:, None] + self.C[None, :]

    @cached_property
    def _pair_beta(self) -> np.ndarray:
        """Precomputed ``t_i + 1/beta_ij + t_j``, shape ``(n, n)``."""
        with np.errstate(divide="ignore"):
            inv = 1.0 / self.beta
        return (self.t[:, None] + inv) + self.t[None, :]

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``C_i + C_j + M (t_i + 1/beta_ij + t_j)``."""
        return float(self.p2p_time_batch(i, j, nbytes))

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized LMO prediction over broadcastable rank/size arrays."""
        ii, jj = validate_rank_batch(self.n, i, j)
        nb = validate_nbytes_batch(nbytes)
        ii, jj = np.broadcast_arrays(ii, jj)
        return broadcast_result(
            self._pair_alpha[ii, jj] + nb * self._pair_beta[ii, jj], ii, nb
        )

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"C": encode_array(self.C), "t": encode_array(self.t),
                "beta": encode_array(self.beta)}

    @classmethod
    def from_dict(cls, params: dict) -> "LMOModel":
        """Inverse of :meth:`to_dict`."""
        return cls(C=decode_array(params["C"]), t=decode_array(params["t"]),
                   beta=decode_array(params["beta"]))
