"""Measurement statistics: confidence intervals, adaptive repetition, fits."""

from repro.stats.adaptive import MeasurementPolicy, measure_until_confident
from repro.stats.ci import (
    SampleSummary,
    mad_outlier_mask,
    summarize,
    t_confidence_halfwidth,
    trimmed_mean,
)
from repro.stats.fitting import LinearFit, TwoSegmentFit, linear_fit, two_segment_fit

__all__ = [
    "LinearFit",
    "MeasurementPolicy",
    "SampleSummary",
    "TwoSegmentFit",
    "linear_fit",
    "mad_outlier_mask",
    "measure_until_confident",
    "summarize",
    "t_confidence_halfwidth",
    "trimmed_mean",
    "two_segment_fit",
]
