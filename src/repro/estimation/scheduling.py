"""Parallel scheduling of communication experiments (paper Sec. IV).

On a single-switch cluster, experiments over disjoint node sets do not
disturb each other, so a full estimation sweep can be packed into parallel
rounds: the paper reports heterogeneous-Hockney estimation dropping from
16 s (serial) to 5 s (parallel) at the same accuracy.

* :func:`pair_rounds` — the circle-method round-robin tournament: all
  ``C(n,2)`` pairs in ``n-1`` rounds of ``floor(n/2)`` disjoint pairs.
* :func:`triplet_rounds` — greedy packing of all ``3*C(n,3)`` rooted
  one-to-two experiments into rounds of disjoint triplets.
* :func:`run_schedule` — execute a list of experiments serially or in
  parallel rounds on an engine, returning per-experiment mean durations.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Optional, Sequence

import numpy as np

from repro.estimation.engines import ExperimentEngine
from repro.estimation.experiments import Experiment
from repro.stats.adaptive import MeasurementPolicy
from repro.stats.ci import summarize

__all__ = [
    "pair_rounds",
    "triplet_rounds",
    "pack_rounds",
    "run_schedule",
    "run_schedule_adaptive",
]


def pair_rounds(n: int) -> list[list[tuple[int, int]]]:
    """All unordered pairs of ``0..n-1`` as ``n-1`` (or ``n``) disjoint rounds.

    Uses the classic circle method: fix the last player, rotate the rest.
    For odd ``n`` a virtual player creates a bye in each round.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    players = list(range(n))
    if n % 2 == 1:
        players.append(-1)  # bye marker
    m = len(players)
    rounds: list[list[tuple[int, int]]] = []
    for _round in range(m - 1):
        pairs = []
        for idx in range(m // 2):
            a, b = players[idx], players[m - 1 - idx]
            if a != -1 and b != -1:
                pairs.append((min(a, b), max(a, b)))
        rounds.append(pairs)
        # Rotate all but the first player.
        players = [players[0]] + [players[-1]] + players[1:-1]
    return rounds


def triplet_rounds(n: int) -> list[list[tuple[int, int, int]]]:
    """All rooted triplets ``(root, a, b)`` packed into disjoint rounds.

    Every unordered triplet ``{i, j, k}`` appears three times, once per
    root — the ``3 C(n,3)`` one-to-two experiments of the paper.  Greedy
    first-fit packing; each round holds at most ``floor(n/3)`` triplets.
    """
    if n < 3:
        raise ValueError(f"need n >= 3, got {n}")
    experiments: list[tuple[int, int, int]] = []
    for i, j, k in combinations(range(n), 3):
        experiments.append((i, j, k))
        experiments.append((j, i, k))
        experiments.append((k, i, j))
    return pack_rounds(experiments)


def pack_rounds(items: Sequence[tuple[int, ...]]) -> list[list[tuple[int, ...]]]:
    """First-fit packing of node tuples into rounds with disjoint nodes."""
    rounds: list[list[tuple[int, ...]]] = []
    occupied: list[set[int]] = []
    for item in items:
        nodes = set(item)
        for round_idx, used in enumerate(occupied):
            if not (used & nodes):
                rounds[round_idx].append(item)
                used |= nodes
                break
        else:
            rounds.append([item])
            occupied.append(set(nodes))
    return rounds


def run_schedule(
    engine: ExperimentEngine,
    experiments: Sequence[Experiment],
    parallel: bool = True,
    reps: int = 1,
    aggregate: Callable[[Sequence[float]], float] = lambda xs: sum(xs) / len(xs),
    rounds: Optional[Sequence[Sequence[Experiment]]] = None,
) -> dict[Experiment, float]:
    """Execute experiments, serially or packed into parallel rounds.

    Parameters
    ----------
    parallel:
        Pack node-disjoint experiments into rounds and run each round as
        one batch (cost = round makespan) instead of one experiment at a
        time (cost = sum of durations).
    reps:
        Repetitions per experiment; results are combined by ``aggregate``
        (mean by default).  Repetitions of the same round run back to
        back, as the paper's estimation procedure does.
    rounds:
        Pre-computed packing (otherwise first-fit over ``experiments``).

    Returns a mapping from experiment to aggregated duration.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    samples: dict[Experiment, list[float]] = {exp: [] for exp in experiments}
    if parallel:
        if rounds is None:
            rounds = _grouped_rounds(experiments)
        for round_exps in rounds:
            for _rep in range(reps):
                durations = engine.run_batch(list(round_exps))
                for exp, duration in zip(round_exps, durations):
                    samples[exp].append(duration)
    else:
        for exp in experiments:
            for _rep in range(reps):
                samples[exp].append(engine.run(exp))
    return {exp: aggregate(vals) for exp, vals in samples.items()}


def _grouped_rounds(experiments: Sequence[Experiment]) -> list[list[Experiment]]:
    """First-fit rounds of node-disjoint experiments (helper)."""
    packed = pack_rounds([exp.nodes for exp in experiments])
    by_nodes: dict[tuple[int, ...], list[Experiment]] = {}
    for exp in experiments:
        by_nodes.setdefault(exp.nodes, []).append(exp)
    return [[by_nodes[nodes].pop(0) for nodes in round_nodes] for round_nodes in packed]


def run_schedule_adaptive(
    engine: ExperimentEngine,
    experiments: Sequence[Experiment],
    policy: MeasurementPolicy = MeasurementPolicy.paper(),
    parallel: bool = True,
    robust: bool = True,
) -> dict[Experiment, float]:
    """Execute experiments with MPIBlib's CI-driven stopping rule.

    Each experiment is repeated until its Student-t confidence interval at
    ``policy.confidence`` is within ``policy.rel_err`` of the mean (or
    ``policy.max_reps`` is hit).  In parallel mode, experiments that have
    converged drop out of their round's subsequent batches, shrinking the
    batch makespan — the schedule the paper's 16 s -> 5 s comparison uses.

    Parameters
    ----------
    robust:
        Report the median of the samples instead of the mean (rare OS
        jitter spikes would otherwise dominate sub-millisecond
        roundtrips); the CI stopping rule always runs on the raw samples.

    Returns a mapping from experiment to its aggregated duration.
    """
    aggregate = np.median if robust else np.mean
    results: dict[Experiment, float] = {}
    if parallel:
        for round_exps in _grouped_rounds(experiments):
            samples: dict[Experiment, list[float]] = {exp: [] for exp in round_exps}
            pending = list(round_exps)
            for _rep in range(policy.max_reps):
                for exp, duration in zip(pending, engine.run_batch(pending)):
                    samples[exp].append(duration)
                pending = [
                    exp
                    for exp in pending
                    if len(samples[exp]) < policy.min_reps
                    or not summarize(samples[exp], policy.confidence).within(policy.rel_err)
                ]
                if not pending:
                    break
            for exp, values in samples.items():
                results[exp] = float(aggregate(values))
    else:
        for exp in experiments:
            values: list[float] = []
            for _rep in range(policy.max_reps):
                values.append(engine.run(exp))
                if len(values) >= policy.min_reps and summarize(
                    values, policy.confidence
                ).within(policy.rel_err):
                    break
            results[exp] = float(aggregate(values))
    return results
