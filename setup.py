"""Legacy setup shim for offline editable installs (see pyproject.toml note)."""

from setuptools import setup

setup()
