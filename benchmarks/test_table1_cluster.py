"""Table I bench: cluster construction and ground-truth synthesis."""

from conftest import assert_checks

from repro.cluster import synthesize_ground_truth, table1_cluster


def test_table1_shape(experiment_results):
    assert_checks(experiment_results("table1"))


def test_bench_ground_truth_synthesis(benchmark, experiment_results):
    """Kernel: derive the 16-node ground truth from the hardware table."""
    assert_checks(experiment_results("table1"))
    spec = table1_cluster()
    gt = benchmark(synthesize_ground_truth, spec)
    assert gt.n == 16
