"""The original LMO model [Lastovetsky, Mkwawa, O'Flynn 2006/2007].

Five point-to-point parameters: per-processor fixed delay ``C_i`` and
per-byte delay ``t_i``, plus per-link transmission rate ``beta_ij``:

    T_ij(M) = C_i + C_j + M (t_i + 1/beta_ij + t_j)

The *variable* contributions of processors and network are separated, but
the fixed delays ``C_i`` still absorb the network's constant latency —
the limitation the extended model (:mod:`repro.models.lmo_extended`)
removes by adding ``L_ij``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import validate_nbytes, validate_rank

__all__ = ["LMOModel"]


@dataclass(frozen=True)
class LMOModel:
    """Original (five-parameter) LMO model.

    Attributes
    ----------
    C:
        Fixed processing delays, shape ``(n,)``, seconds.  These combine
        the processor's own fixed cost with its share of network latency.
    t:
        Per-byte processing delays, shape ``(n,)``, seconds/byte.
    beta:
        Link transmission rates, shape ``(n, n)``, symmetric, bytes/s.
    """

    C: np.ndarray
    t: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        n = self.C.shape[0]
        if self.t.shape != (n,) or self.beta.shape != (n, n):
            raise ValueError("inconsistent LMO parameter shapes")
        if not np.allclose(self.beta, self.beta.T):
            raise ValueError("beta must be symmetric (single-switch cluster)")
        if (self.C < 0).any() or (self.t < 0).any():
            raise ValueError("negative processor delays")
        if n < 2:
            raise ValueError("a communication model needs n >= 2")

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.C.shape[0]

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``C_i + C_j + M (t_i + 1/beta_ij + t_j)``."""
        validate_rank(self.n, i, j)
        validate_nbytes(nbytes)
        return float(
            self.C[i] + self.C[j] + nbytes * (self.t[i] + 1.0 / self.beta[i, j] + self.t[j])
        )
