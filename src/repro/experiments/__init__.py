"""Per-figure/table reproduction harnesses.

``ALL_EXPERIMENTS`` maps experiment ids to their ``run(quick, seed)``
functions; :mod:`repro.experiments.report` runs them all and renders
EXPERIMENTS.md.
"""

from typing import Callable

from repro.experiments import (
    ablations,
    accuracy_table,
    estimation_cost,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    menu_accuracy,
    table1,
    table2,
    thresholds,
)
from repro.experiments.common import ExperimentResult, ModelSuite, Series, get_model_suite

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ModelSuite",
    "Series",
    "get_model_suite",
    "run_experiment",
]

ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table2": table2.run,
    "estimation_cost": estimation_cost.run,
    "ablations": ablations.run,
    "menu_accuracy": menu_accuracy.run,
    "accuracy_table": accuracy_table.run,
    "thresholds": thresholds.run,
}


def run_experiment(experiment_id: str, quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Run one experiment by id (``fig1`` ... ``thresholds``)."""
    try:
        runner = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return runner(quick=quick, seed=seed)
