"""Smoke tests: every shipped example runs end to end and says what it
promises.  (Examples are user-facing documentation; a broken one is a
bug of the same severity as a failing unit test.)"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Example -> substrings its output must contain.
EXPECTED = {
    "quickstart.py": ["LMO prediction", "relative error"],
    "compare_models.py": ["linear scatter: mean relative prediction error", "LMO"],
    "optimize_collectives.py": ["gather message-splitting", "x", "binomial-tree",
                                "predicted communication total"],
    "heterogeneous_mapping.py": ["straggler", "model's choice"],
    "mpi_playground.py": ["ping-pong", "rendezvous handshakes"],
    "timeline_demo.py": ["linear scatter", "TCP retransmission timeout"],
    "data_partitioning.py": ["observed makespan", "drift check", "re-estimated"],
    "two_switch_study.py": ["within one switch", "uplink"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_example_runs_and_reports(name):
    output = run_example(name)
    for needle in EXPECTED[name]:
        assert needle in output, f"{name}: {needle!r} missing from output"


def test_every_example_file_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED), (
        "examples on disk and smoke-test expectations diverged: "
        f"{on_disk.symmetric_difference(set(EXPECTED))}"
    )
