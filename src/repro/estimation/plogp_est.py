"""PLogP parameter estimation with adaptive message-size refinement.

PLogP's parameters are piecewise-linear *functions* of the message size,
so its estimation is the most expensive of all models (paper Sec. II).
Message sizes are selected adaptively: starting from a geometric grid, if
the measured ``g(M_k)`` is inconsistent with the value linearly
extrapolated from ``g(M_{k-2})`` and ``g(M_{k-1})``, an extra measurement
is inserted at the midpoint ``(M_k + M_{k-1})/2`` — exactly the paper's
description of the procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.estimation.engines import ExperimentEngine  # noqa: F401 (used in signatures)
from repro.estimation.experiments import overhead_recv, overhead_send, roundtrip, saturation
from repro.estimation.logp_est import TRAIN_COUNT
from repro.models.plogp import PiecewiseLinear, PLogPModel

__all__ = [
    "PLogPEstimationResult",
    "adaptive_sizes",
    "estimate_plogp",
    "estimate_plogp_heterogeneous_overheads",
]

KB = 1024
DEFAULT_GRID = (0, 1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB)


@dataclass
class PLogPEstimationResult:
    """Estimated PLogP model with the refined size grid."""

    model: PLogPModel
    sizes: tuple[int, ...]
    refinements: int
    estimation_time: float


def adaptive_sizes(
    measure: Callable[[int], float],
    grid: tuple[int, ...] = DEFAULT_GRID,
    tolerance: float = 0.25,
    max_refinements: int = 16,
) -> tuple[dict[int, float], int]:
    """Measure ``measure(M)`` on a grid, inserting midpoints adaptively.

    A midpoint between ``M_{k-1}`` and ``M_k`` is inserted whenever the
    measured value at ``M_k`` deviates from the linear extrapolation of
    the previous two grid points by more than ``tolerance`` (relative).
    Returns the measured map and the number of refinements performed.
    """
    sizes = sorted(set(int(m) for m in grid))
    if len(sizes) < 3:
        raise ValueError("need at least 3 grid sizes")
    values: dict[int, float] = {m: measure(m) for m in sizes}
    refinements = 0
    k = 2
    while k < len(sizes) and refinements < max_refinements:
        m0, m1, m2 = sizes[k - 2], sizes[k - 1], sizes[k]
        extrapolated = values[m1] + (values[m1] - values[m0]) * (m2 - m1) / max(m1 - m0, 1)
        actual = values[m2]
        scale = max(abs(actual), abs(extrapolated), 1e-12)
        mid = (m1 + m2) // 2
        if abs(actual - extrapolated) / scale > tolerance and mid not in values and mid > m1:
            values[mid] = measure(mid)
            sizes.insert(k, mid)
            refinements += 1
            # Re-examine from the inserted point onward.
            continue
        k += 1
    return values, refinements


def estimate_plogp(
    engine: ExperimentEngine,
    pair: tuple[int, int] = (0, 1),
    grid: tuple[int, ...] = DEFAULT_GRID,
    reps: int = 3,
    tolerance: float = 0.25,
) -> PLogPEstimationResult:
    """Estimate the PLogP functions on one pair (homogeneous model).

    For heterogeneous use, the paper notes the overheads could be averaged
    per processor but ``L``/``g`` cannot be split meaningfully — "it is
    not trivial and straightforward to extend the LogP-based models" — so,
    like the original software, we estimate on representative pairs and
    average externally if desired.
    """
    i, j = pair
    t_start = engine.estimation_time

    def mean_run(make_experiment, m: int) -> float:
        return float(np.mean([engine.run(make_experiment(m)) for _ in range(reps)]))

    gap_values, refinements = adaptive_sizes(
        lambda m: mean_run(lambda mm: saturation(i, j, mm, TRAIN_COUNT), m) / TRAIN_COUNT,
        grid=grid,
        tolerance=tolerance,
    )
    sizes = tuple(sorted(gap_values))
    os_values = {m: mean_run(lambda mm: overhead_send(i, j, mm), m) for m in sizes}
    or_values = {m: mean_run(lambda mm: overhead_recv(i, j, mm), m) for m in sizes}

    # Latency from a small-message roundtrip: L = RTT/2 - o_s - o_r.
    probe = next(m for m in sizes if m > 0)
    rtt = mean_run(lambda mm: roundtrip(i, j, mm), probe)
    latency = max(rtt / 2.0 - os_values[probe] - or_values[probe], 0.0)

    model = PLogPModel(
        L=latency,
        o_s=PiecewiseLinear.from_samples(list(os_values.items())),
        o_r=PiecewiseLinear.from_samples(list(or_values.items())),
        g=PiecewiseLinear.from_samples(list(gap_values.items())),
        P=engine.n,
    )
    return PLogPEstimationResult(
        model=model,
        sizes=sizes,
        refinements=refinements,
        estimation_time=engine.estimation_time - t_start,
    )


def estimate_plogp_heterogeneous_overheads(
    engine: ExperimentEngine,
    sizes: Sequence[int] = (0, 1 * KB, 8 * KB, 32 * KB, 64 * KB),
    reps: int = 2,
) -> dict[int, tuple[PiecewiseLinear, PiecewiseLinear]]:
    """The paper's sketch of a heterogeneous PLogP extension, implemented.

    Sec. II: "since the PLogP overheads o_s(M) and o_r(M) correspond to
    the processor variable contributions, it is sensible to assume that
    they should be the same for all point-to-point communications the
    processor can be involved [in] ... the average processor overheads
    should be used (averaged from the values found in the experiments
    between all pairs included the given processor)".

    Returns per-processor ``(o_s, o_r)`` piecewise-linear functions,
    averaged over that processor's pairs.  (The latency/gap cannot be
    split per-processor — the paper's point about why a full
    heterogeneous LogP-family extension is "not trivial".)
    """
    from itertools import combinations

    n = engine.n
    sizes = sorted(set(int(m) for m in sizes))
    os_samples: dict[int, dict[int, list[float]]] = {
        i: {m: [] for m in sizes} for i in range(n)
    }
    or_samples: dict[int, dict[int, list[float]]] = {
        i: {m: [] for m in sizes} for i in range(n)
    }
    for i, j in combinations(range(n), 2):
        for m in sizes:
            for _rep in range(reps):
                os_samples[i][m].append(engine.run(overhead_send(i, j, m)))
                os_samples[j][m].append(engine.run(overhead_send(j, i, m)))
                or_samples[j][m].append(engine.run(overhead_recv(i, j, m)))
                or_samples[i][m].append(engine.run(overhead_recv(j, i, m)))
    result: dict[int, tuple[PiecewiseLinear, PiecewiseLinear]] = {}
    for proc in range(n):
        o_s = PiecewiseLinear.from_samples(
            [(m, float(np.mean(os_samples[proc][m]))) for m in sizes]
        )
        o_r = PiecewiseLinear.from_samples(
            [(m, float(np.mean(or_samples[proc][m]))) for m in sizes]
        )
        result[proc] = (o_s, o_r)
    return result
