"""Tests for the unified error taxonomy (repro.api.errors)."""

import pytest

from repro.api.errors import (
    ERROR_TYPES,
    ApiError,
    DeadlineExceeded,
    InternalError,
    InvalidRequest,
    ModelNotLoaded,
    Overloaded,
    error_payload,
    from_payload,
)


def test_codes_are_stable():
    assert ERROR_TYPES == {
        "invalid_request": InvalidRequest,
        "model_not_loaded": ModelNotLoaded,
        "overloaded": Overloaded,
        "deadline_exceeded": DeadlineExceeded,
        "internal_error": InternalError,
    }


def test_taxonomy_keeps_the_historical_exception_contracts():
    # Pre-taxonomy callers caught ValueError / KeyError; they still can.
    assert issubclass(InvalidRequest, ValueError)
    assert issubclass(ModelNotLoaded, KeyError)
    with pytest.raises(ValueError):
        raise InvalidRequest("bad nodes")
    with pytest.raises(KeyError):
        raise ModelNotLoaded("no such model")


def test_str_is_the_message_even_for_the_keyerror_subclass():
    # KeyError.__str__ repr-quotes its argument; the taxonomy must not.
    assert str(ModelNotLoaded("no model named 'x'")) == "no model named 'x'"
    assert str(InvalidRequest("bad")) == "bad"


def test_payload_round_trip_preserves_type_and_message():
    for cls in (InvalidRequest, ModelNotLoaded, Overloaded, DeadlineExceeded,
                InternalError):
        exc = cls("what went wrong")
        back = from_payload(error_payload(exc))
        assert type(back) is cls
        assert back.message == "what went wrong"
        assert back.to_payload() == {"code": cls.code,
                                     "message": "what went wrong"}


def test_error_payload_maps_plain_exceptions_onto_the_taxonomy():
    assert error_payload(ValueError("v"))["code"] == "invalid_request"
    assert error_payload(TypeError("t"))["code"] == "invalid_request"
    assert error_payload(KeyError("k"))["code"] == "model_not_loaded"
    assert error_payload(LookupError("l"))["code"] == "model_not_loaded"
    payload = error_payload(RuntimeError("boom"))
    assert payload["code"] == "internal_error"
    assert "RuntimeError" in payload["message"]  # logs and reports line up


def test_error_payload_unquotes_keyerror_messages():
    assert error_payload(KeyError("gather/ring"))["message"] == "gather/ring"


def test_from_payload_degrades_instead_of_raising():
    unknown = from_payload({"code": "quota_exceeded", "message": "later"})
    assert isinstance(unknown, InternalError)
    assert "[quota_exceeded]" in unknown.message and "later" in unknown.message
    assert isinstance(from_payload("garbage"), InternalError)
    assert isinstance(from_payload({}), InternalError)


def test_every_taxonomy_error_is_an_api_error():
    for cls in ERROR_TYPES.values():
        assert issubclass(cls, ApiError)
        assert cls("x").code == cls.code
