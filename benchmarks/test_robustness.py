"""Robustness bench: fault-injection overhead and robust-estimation cost.

Two questions with performance budgets attached: (1) consulting the
injector on every transfer must be near-free when no fault is active,
and (2) the hardened estimation path's timeout/retry machinery must not
dominate the clean-path cost on a healthy cluster.
"""

import pytest

from repro.cluster import (
    FaultInjector,
    FaultPlan,
    FlakyLink,
    NodeSlowdown,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.estimation import (
    DESEngine,
    estimate_extended_lmo,
    estimate_extended_lmo_robust,
)
from repro.mpi import run_collective

KB = 1024
N = 8


def fresh_cluster(injector=None):
    cluster = SimulatedCluster(
        random_cluster(N, seed=4), noise=NoiseModel.default(), seed=4
    )
    if injector is not None:
        cluster.attach_injector(injector)
    return cluster


def test_bench_scatter_no_injector(benchmark):
    """Baseline: a scatter with the injector hook entirely absent."""
    cluster = fresh_cluster()
    result = benchmark(lambda: run_collective(cluster, "scatter", "linear", 32 * KB))
    assert result.time > 0


def test_bench_scatter_idle_injector(benchmark):
    """The per-activity injector consultations on an empty fault plan."""
    cluster = fresh_cluster(FaultInjector(FaultPlan()))
    result = benchmark(lambda: run_collective(cluster, "scatter", "linear", 32 * KB))
    assert result.time > 0


def test_bench_scatter_active_faults(benchmark):
    """Worst case: every transfer consults active slowdown + flaky link."""
    plan = FaultPlan(faults=(
        NodeSlowdown(node=1, factor=2.0),
        FlakyLink(a=0, b=2, loss_prob=0.1),
    ), seed=7)
    cluster = fresh_cluster(FaultInjector(plan))
    result = benchmark(lambda: run_collective(cluster, "scatter", "linear", 32 * KB))
    assert result.time > 0


def test_bench_plain_estimation(benchmark):
    """Reference: the plain estimation pipeline on a healthy cluster."""
    engine = DESEngine(fresh_cluster())
    model = benchmark(lambda: estimate_extended_lmo(engine, reps=1, clamp=True).model)
    assert model.n == N


def test_bench_robust_estimation_clean(benchmark):
    """The hardened pipeline on the same healthy cluster (overhead check)."""
    engine = DESEngine(fresh_cluster())
    result = benchmark(lambda: estimate_extended_lmo_robust(engine, reps=1))
    assert result.model.n == N
    assert not result.quarantined


def test_bench_robust_estimation_under_faults(benchmark):
    """The hardened pipeline while a flaky link fires RTO escalations."""
    plan = FaultPlan(faults=(FlakyLink(a=0, b=3, loss_prob=0.3),), seed=7)
    engine = DESEngine(fresh_cluster(FaultInjector(plan)))
    result = benchmark(lambda: estimate_extended_lmo_robust(engine, reps=1))
    assert result.model.n == N
    assert (result.model.C >= 0).all()


def test_robust_overhead_is_bounded():
    """Sanity (not a benchmark): on a healthy cluster the robust path costs
    no more than 2x the plain path in simulated estimation time."""
    plain_engine = DESEngine(fresh_cluster())
    estimate_extended_lmo(plain_engine, reps=1, clamp=True)
    robust_engine = DESEngine(fresh_cluster())
    estimate_extended_lmo_robust(robust_engine, reps=1)
    assert robust_engine.estimation_time <= 2.0 * plain_engine.estimation_time


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
