"""Measurement / OS noise model for the simulated cluster.

Real clusters never produce perfectly repeatable timings: scheduler jitter,
cache state and interrupt handling perturb every stage.  The paper copes by
repeating measurements to a 95% confidence level with 2.5% relative error;
for that statistical machinery to be exercised meaningfully, the simulator
must be noisy too.

:class:`NoiseModel` perturbs every activity duration with

* multiplicative lognormal noise (relative sigma ``rel_sigma``), and
* rare additive OS-jitter spikes (probability ``spike_prob``, exponential
  magnitude ``spike_mean``), mimicking daemon wakeups.

``NoiseModel.none()`` disables both — runs become bit-for-bit deterministic,
which exactness tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Stochastic perturbation of activity durations."""

    #: Relative sigma of the multiplicative lognormal factor.
    rel_sigma: float = 0.01
    #: Probability of an additive OS-jitter spike per activity.
    spike_prob: float = 0.001
    #: Mean of the exponential spike magnitude (seconds).
    spike_mean: float = 1e-3

    def __post_init__(self) -> None:
        if self.rel_sigma < 0 or not (0 <= self.spike_prob <= 1) or self.spike_mean < 0:
            raise ValueError(f"invalid noise parameters: {self}")

    @property
    def enabled(self) -> bool:
        """False when this model never perturbs anything."""
        return self.rel_sigma > 0 or self.spike_prob > 0

    def perturb(self, duration: float, rng: np.random.Generator) -> float:
        """A noisy version of ``duration`` (never negative)."""
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        if not self.enabled:
            return duration
        value = duration
        if self.rel_sigma > 0:
            # Lognormal with unit median: exp(N(0, sigma)).
            value *= float(np.exp(rng.normal(0.0, self.rel_sigma)))
        if self.spike_prob > 0 and rng.random() < self.spike_prob:
            value += float(rng.exponential(self.spike_mean))
        return value

    @staticmethod
    def none() -> "NoiseModel":
        """A disabled noise model (deterministic simulation)."""
        return NoiseModel(rel_sigma=0.0, spike_prob=0.0, spike_mean=0.0)

    @staticmethod
    def default() -> "NoiseModel":
        """The standard mild noise used for 'observed' measurements."""
        return NoiseModel()
