"""Unit tests for the Store mailbox primitive."""

from repro.simlib import Simulator, Store


def test_put_then_get_immediate():
    sim = Simulator()
    store = Store(sim)
    got = []

    def proc(sim):
        store.put("x")
        value = yield store.get()
        got.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["x"]


def test_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        value = yield store.get()
        got.append((sim.now, value))

    def putter(sim):
        yield sim.timeout(4.0)
        store.put("late")

    sim.spawn(getter(sim))
    sim.spawn(putter(sim))
    sim.run()
    assert got == [(4.0, "late")]


def test_predicate_filters_items():
    sim = Simulator()
    store = Store(sim)
    got = []

    def proc(sim):
        store.put(("tag", 1))
        store.put(("other", 2))
        value = yield store.get(lambda item: item[0] == "other")
        got.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert got == [("other", 2)]
    assert store.peek() == ("tag", 1)


def test_fifo_among_matching_items():
    sim = Simulator()
    store = Store(sim)
    store.put(("a", 1))
    store.put(("b", 2))
    store.put(("a", 3))
    got = []

    def proc(sim):
        got.append((yield store.get(lambda i: i[0] == "a")))
        got.append((yield store.get(lambda i: i[0] == "a")))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [("a", 1), ("a", 3)]


def test_waiting_getters_matched_by_predicate_not_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, key):
        value = yield store.get(lambda i: i[0] == key)
        got.append((key, value[1], sim.now))

    def putter(sim):
        yield sim.timeout(1.0)
        store.put(("b", 20))
        yield sim.timeout(1.0)
        store.put(("a", 10))

    sim.spawn(getter(sim, "a"))
    sim.spawn(getter(sim, "b"))
    sim.spawn(putter(sim))
    sim.run()
    assert got == [("b", 20, 1.0), ("a", 10, 2.0)]


def test_len_and_peek():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    assert store.peek() is None
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.peek() == 1
    assert store.peek(lambda x: x > 1) == 2


def test_two_getters_one_item_only_first_matching_served():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, name):
        value = yield store.get()
        got.append((name, value))

    sim.spawn(getter(sim, "g1"))
    sim.spawn(getter(sim, "g2"))

    def putter(sim):
        yield sim.timeout(1.0)
        store.put("only")

    sim.spawn(putter(sim))
    sim.run(until=10.0)
    assert got == [("g1", "only")]
