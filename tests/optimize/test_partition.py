"""Tests for model-based heterogeneous data partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    IDEAL,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
    synthesize_ground_truth,
    table1_cluster,
)
from repro.models import ExtendedLMOModel
from repro.optimize import (
    even_partition,
    optimal_partition,
    partition_makespan,
    run_partitioned_workload,
)
from repro.optimize.partition import run_partitioned_workload as run_workload

KB = 1024


def table1_model():
    gt = synthesize_ground_truth(table1_cluster())
    return ExtendedLMOModel.from_ground_truth(gt), gt


def test_even_partition_sums_and_balances():
    counts = even_partition(5, 17)
    assert sum(counts) == 17
    assert max(counts) - min(counts) <= 1


def test_optimal_partition_preserves_total():
    model, gt = table1_model()
    work = np.full(16, 40e-9)
    part = optimal_partition(model, 1_000_000, work)
    assert part.total == 1_000_000
    assert all(c >= 0 for c in part.counts)


def test_optimal_never_worse_than_even():
    model, gt = table1_model()
    work = 50e-9 * gt.C / gt.C.min()
    total = 4_000_000
    part = optimal_partition(model, total, work)
    even = even_partition(16, total)
    assert part.predicted_makespan <= partition_makespan(model, even, work) + 1e-12


def test_slowest_node_gets_least_fastest_compute_more():
    """Rank 12 (Celeron) has the highest work rate: it must get the
    smallest non-root share."""
    model, gt = table1_model()
    work = 50e-9 * gt.C / gt.C.min()
    part = optimal_partition(model, 8_000_000, work)
    non_root = {i: part.counts[i] for i in range(1, 16)}
    assert min(non_root, key=non_root.__getitem__) == 12


def test_root_gets_extra_it_pays_no_wire():
    model, _gt = table1_model()
    work = np.full(16, 40e-9)
    part = optimal_partition(model, 8_000_000, work)
    assert part.counts[0] > max(part.counts[1:])


def test_homogeneous_cluster_gets_even_ish_split():
    n = 6
    C = np.full(n, 50e-6)
    t = np.full(n, 10e-9)
    L = np.full((n, n), 55e-6)
    np.fill_diagonal(L, 0.0)
    beta = np.full((n, n), 1e8)
    np.fill_diagonal(beta, np.inf)
    model = ExtendedLMOModel(C=C, t=t, L=L, beta=beta)
    work = np.full(n, 100e-9)
    part = optimal_partition(model, 6_000_000, work)
    non_root = part.counts[1:]
    assert max(non_root) - min(non_root) < 0.02 * max(non_root)


def test_min_count_respected():
    model, _gt = table1_model()
    work = np.full(16, 40e-9)
    part = optimal_partition(model, 1_000_000, work, min_count=10_000)
    assert all(c >= 10_000 for c in part.counts)
    with pytest.raises(ValueError):
        optimal_partition(model, 10, work, min_count=10_000)


def test_validation_of_inputs():
    model, _gt = table1_model()
    with pytest.raises(ValueError):
        optimal_partition(model, 100, np.full(3, 1e-9))
    with pytest.raises(ValueError):
        optimal_partition(model, 100, np.full(16, -1e-9))
    with pytest.raises(ValueError):
        partition_makespan(model, [1] * 3, [1e-9] * 16)


def test_des_validation_optimal_beats_even():
    """The LP's distribution must win on the simulator too."""
    n = 8
    gt = GroundTruth.random(n, seed=21)
    model = ExtendedLMOModel.from_ground_truth(gt)
    cluster = SimulatedCluster(
        random_cluster(n, seed=21), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=21,
    )
    rng = np.random.default_rng(21)
    work = rng.uniform(30e-9, 150e-9, size=n)
    total = 2_000_000
    part = optimal_partition(model, total, work)
    t_optimal = run_workload(cluster, part.counts, work)
    t_even = run_workload(cluster, even_partition(n, total), work)
    assert t_optimal < t_even
    # Predicted makespan tracks the observed one.
    assert part.predicted_makespan == pytest.approx(t_optimal, rel=0.15)


def test_run_partitioned_workload_validates_lengths():
    cluster = SimulatedCluster(random_cluster(4, seed=2), profile=IDEAL,
                               noise=NoiseModel.none(), seed=2)
    with pytest.raises(ValueError):
        run_partitioned_workload(cluster, [1, 2], [1e-9] * 4)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 200), total=st.integers(10_000, 5_000_000))
def test_partition_invariants(seed, total):
    n = 6
    gt = GroundTruth.random(n, seed=seed)
    model = ExtendedLMOModel.from_ground_truth(gt)
    rng = np.random.default_rng(seed)
    work = rng.uniform(10e-9, 200e-9, size=n)
    part = optimal_partition(model, total, work)
    assert part.total == total
    assert all(c >= 0 for c in part.counts)
    even = even_partition(n, total)
    assert part.predicted_makespan <= partition_makespan(model, even, work) * (1 + 1e-9)


def test_collect_ratio_shifts_bytes_toward_the_root():
    """With a heavy gatherv return leg, every distributed byte pays the
    wire twice; the root (which pays neither leg) absorbs more — in the
    extreme, distribution stops paying for itself entirely."""
    model, gt = table1_model()
    work = np.full(16, 50e-9)
    without = optimal_partition(model, 8_000_000, work, collect_ratio=0.0)
    with_leg = optimal_partition(model, 8_000_000, work, collect_ratio=2.0)
    assert with_leg.counts[0] > without.counts[0]
    assert with_leg.total == without.total == 8_000_000
    # The LP is honest about it: the collect-inclusive makespan is larger.
    assert with_leg.predicted_makespan > without.predicted_makespan


def test_collect_ratio_validation():
    model, _gt = table1_model()
    with pytest.raises(ValueError, match="collect_ratio"):
        optimal_partition(model, 1000, np.full(16, 1e-9), collect_ratio=-0.5)
