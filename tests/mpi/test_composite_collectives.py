"""Tests for van de Geijn bcast, reduce-scatter, Rabenseifner allreduce."""

import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.mpi import run_collective

KB = 1024


def quiet_cluster(n=8, seed=120):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed, beta_range=(0.9e8, 1.1e8)),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


# ------------------------------------------------------------ van de Geijn
def test_vdg_bcast_delivers_payload():
    cluster = quiet_cluster()
    payload = bytes(range(256)) * 2  # 512 bytes
    run = run_collective(cluster, "bcast", "van_de_geijn", nbytes=512, root=0,
                         data=payload)
    for rank in range(8):
        assert run.value(rank) == payload


def test_vdg_bcast_nonzero_root():
    cluster = quiet_cluster(seed=121)
    payload = b"x" * 640
    run = run_collective(cluster, "bcast", "van_de_geijn", nbytes=640, root=3,
                         data=payload)
    assert all(run.value(rank) == payload for rank in range(8))


def test_vdg_bcast_payload_size_mismatch_rejected():
    cluster = quiet_cluster(seed=122)
    with pytest.raises(Exception, match="payload"):
        run_collective(cluster, "bcast", "van_de_geijn", nbytes=100, data=b"abc")


def test_vdg_bcast_wins_for_large_messages():
    """The scatter+allgather composition beats the binomial tree once
    bandwidth dominates (every byte crosses each wire once)."""
    cluster = quiet_cluster(seed=123)
    M = 512 * KB
    t_binomial = run_collective(cluster, "bcast", "binomial", nbytes=M).time
    t_vdg = run_collective(cluster, "bcast", "van_de_geijn", nbytes=M).time
    assert t_vdg < t_binomial


def test_binomial_bcast_wins_for_small_messages():
    cluster = quiet_cluster(seed=124)
    M = 256
    t_binomial = run_collective(cluster, "bcast", "binomial", nbytes=M).time
    t_vdg = run_collective(cluster, "bcast", "van_de_geijn", nbytes=M).time
    assert t_binomial < t_vdg  # 2(n-1) ring steps of constants lose


# ------------------------------------------------------------ reduce-scatter
def test_ring_reduce_scatter_each_rank_gets_its_reduced_block():
    n = 5
    cluster = quiet_cluster(n=n, seed=125)
    # data[rank] = list of n blocks: rank's contribution to each target.
    data = [[(rank + 1) * 10 + target for target in range(n)] for rank in range(n)]
    run = run_collective(
        cluster, "reduce_scatter", "ring", nbytes=64, data=data,
        combine=lambda a, b: (a or 0) + (b or 0),
    )
    for target in range(n):
        expected = sum((rank + 1) * 10 + target for rank in range(n))
        assert run.value(target) == expected


# ---------------------------------------------------------------- rabenseifner
def test_rabenseifner_allreduce_sums_vectors():
    n = 4
    cluster = quiet_cluster(n=n, seed=126)
    data = [list(range(rank, rank + 8)) for rank in range(n)]  # 8-element vectors

    def combine(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return [x + y for x, y in zip(a, b)]

    run = run_collective(cluster, "allreduce", "rabenseifner", nbytes=64,
                         data=data, combine=combine)
    expected_full = [sum(col) for col in zip(*data)]
    for rank in range(n):
        blocks = run.value(rank)
        flattened = [x for block in blocks for x in block]
        assert flattened == expected_full


def test_rabenseifner_beats_recursive_doubling_for_large_vectors():
    """~2M per node (reduce-scatter + allgather) vs log2(n) * M for the
    butterfly: bandwidth-bound sizes favour Rabenseifner."""
    cluster = quiet_cluster(seed=127)
    M = 512 * KB
    t_rd = run_collective(cluster, "allreduce", "recursive_doubling", nbytes=M,
                          combine=lambda a, b: a).time
    t_rab = run_collective(cluster, "allreduce", "rabenseifner", nbytes=M,
                           combine=lambda a, b: a).time
    assert t_rab < t_rd


def test_recursive_doubling_beats_rabenseifner_for_small_vectors():
    cluster = quiet_cluster(seed=128)
    M = 64
    t_rd = run_collective(cluster, "allreduce", "recursive_doubling", nbytes=M,
                          combine=lambda a, b: a).time
    t_rab = run_collective(cluster, "allreduce", "rabenseifner", nbytes=M,
                           combine=lambda a, b: a).time
    assert t_rd < t_rab
