"""Client-side resilience: fd hygiene, the retry whitelist, seeded
backoff determinism, and NDJSON framing under arbitrary chunking.

The retry-path tests run against a *scripted* server — a real socket
speaking the real protocol, but answering from a canned action list —
so every retryable failure mode (overload, reset, corruption,
truncation) is produced deterministically, not statistically.
"""

import json
import os
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import errors
from repro.serve import protocol
from repro.serve.chaos import _read_line
from repro.serve.client import (
    ResilientClient,
    RetryExhausted,
    RetryPolicy,
    ServiceClient,
)

pytestmark = pytest.mark.resilience


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def _dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# -- satellite: fd leak on connect/handshake failure ------------------------------
def test_failed_unix_connect_leaks_no_fd(tmp_path):
    missing = str(tmp_path / "nope.sock")
    before = _open_fds()
    for _ in range(50):
        with pytest.raises(OSError):
            ServiceClient(unix_path=missing)
    assert _open_fds() == before


def test_failed_tcp_connect_leaks_no_fd():
    port = _dead_port()
    before = _open_fds()
    for _ in range(50):
        with pytest.raises(OSError):
            ServiceClient(port=port, timeout=1.0)
    assert _open_fds() == before


def test_resilient_client_retry_loop_leaks_no_fd():
    port = _dead_port()
    before = _open_fds()
    client = ResilientClient(
        port=port, timeout=1.0,
        retry=RetryPolicy(max_retries=8, base_delay=0.0, jitter=0.0, seed=0),
    )
    with pytest.raises(RetryExhausted):
        client.health()
    client.close()
    assert _open_fds() == before


# -- retry policy -----------------------------------------------------------------
def test_retry_policy_is_deterministic_under_a_seed():
    policy = RetryPolicy(max_retries=6, seed=1234)
    a = [policy.delay(i, policy.rng()) for i in range(6)]
    b = [policy.delay(i, policy.rng()) for i in range(6)]
    assert a == b
    # Different seed, different jitter stream.
    other = RetryPolicy(max_retries=6, seed=4321)
    assert [other.delay(i, other.rng()) for i in range(6)] != a


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                         jitter=0.0)
    rng = policy.rng()
    delays = [policy.delay(i, rng) for i in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


@pytest.mark.parametrize("kwargs", [
    {"max_retries": -1},
    {"base_delay": -0.1},
    {"multiplier": 0.5},
    {"jitter": 1.5},
])
def test_retry_policy_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_retry_exhausted_against_a_dead_port_counts_attempts():
    client = ResilientClient(
        port=_dead_port(), timeout=1.0,
        retry=RetryPolicy(max_retries=3, base_delay=0.0, jitter=0.0, seed=0),
    )
    with pytest.raises(RetryExhausted) as excinfo:
        client.health()
    assert excinfo.value.attempts == 4  # 1 try + 3 retries
    assert isinstance(excinfo.value.last_error, OSError)
    client.close()


def test_client_side_deadline_bounds_the_retry_loop():
    client = ResilientClient(
        port=_dead_port(), timeout=1.0, deadline_ms=150.0,
        retry=RetryPolicy(max_retries=1000, base_delay=0.05, jitter=0.0,
                          seed=0),
    )
    start = time.monotonic()
    with pytest.raises(errors.DeadlineExceeded):
        client.health()
    assert time.monotonic() - start < 5.0
    client.close()


# -- scripted server: exact retry-path semantics ----------------------------------
class ScriptedServer:
    """A real socket answering requests from a canned action list.

    Actions (consumed one per incoming request, across connections):
    ``("ok", payload)``, ``("error", exc)``, ``("reset",)``,
    ``("corrupt", payload)`` (valid JSON, wrong CRC) and
    ``("partial", payload)`` (half a line, then close).  Once the list
    is empty every request gets ``("ok", {"done": True})``.
    """

    def __init__(self, actions):
        self.actions = list(actions)
        self.requests_seen = []
        self._lock = threading.Lock()
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._closing = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _next_action(self, request):
        with self._lock:
            self.requests_seen.append(request)
            if self.actions:
                return self.actions.pop(0)
        return ("ok", {"done": True})

    def _serve(self):
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                buffer = bytearray()
                while not self._closing.is_set():
                    line = _read_line(conn, buffer)
                    if line is None:
                        break
                    request = protocol.decode_request(line)
                    action = self._next_action(request)
                    if action[0] == "ok":
                        conn.sendall(protocol.encode_response(
                            request.id, action[1]))
                    elif action[0] == "error":
                        conn.sendall(protocol.encode_error(
                            request.id, action[1]))
                    elif action[0] == "reset":
                        import struct
                        conn.setsockopt(
                            socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
                        break
                    elif action[0] == "corrupt":
                        # Valid JSON whose crc stamp does not match its
                        # payload — the wire flipped a payload byte.
                        doc = {
                            "id": request.id, "ok": True,
                            "result": action[1],
                            "crc": protocol.payload_checksum(action[1]) ^ 1,
                            "schema_version": 3,
                        }
                        conn.sendall(json.dumps(doc).encode() + b"\n")
                    elif action[0] == "partial":
                        good = protocol.encode_response(request.id, action[1])
                        conn.sendall(good[: max(1, len(good) // 2)])
                        break

    def close(self):
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _client(port, retries=5):
    return ResilientClient(
        port=port, timeout=2.0,
        retry=RetryPolicy(max_retries=retries, base_delay=0.0, jitter=0.0,
                          seed=0),
    )


def test_overloaded_is_retried_until_it_clears():
    with ScriptedServer([
        ("error", errors.Overloaded("full")),
        ("error", errors.Overloaded("full")),
        ("ok", {"answer": 42}),
    ]) as server:
        with _client(server.port) as client:
            assert client.call("health") == {"answer": 42}
            assert client.last_attempts == 3
            assert client.retries_total == 2


def test_connection_reset_is_retried_on_a_fresh_connection():
    with ScriptedServer([("reset",), ("ok", {"answer": 1})]) as server:
        with _client(server.port) as client:
            assert client.call("health") == {"answer": 1}
            assert client.last_attempts == 2


def test_corrupted_reply_is_detected_and_retried():
    with ScriptedServer([("corrupt", {"answer": 7}),
                         ("ok", {"answer": 7})]) as server:
        with _client(server.port) as client:
            assert client.call("health") == {"answer": 7}
            assert client.last_attempts == 2


def test_truncated_reply_is_retried():
    with ScriptedServer([("partial", {"answer": 9}),
                         ("ok", {"answer": 9})]) as server:
        with _client(server.port) as client:
            assert client.call("health") == {"answer": 9}
            assert client.last_attempts == 2


def test_typed_verdicts_are_final_not_retried():
    with ScriptedServer([
        ("error", errors.InvalidRequest("bad")),
        ("ok", {"never": "reached"}),
    ]) as server:
        with _client(server.port) as client:
            with pytest.raises(errors.InvalidRequest):
                client.call("health")
        # Exactly one request hit the server: no retry happened.
        assert len(server.requests_seen) == 1


def test_deadline_exceeded_verdict_is_final():
    with ScriptedServer([
        ("error", errors.DeadlineExceeded("shed")),
    ]) as server:
        with _client(server.port) as client:
            with pytest.raises(errors.DeadlineExceeded):
                client.call("health")
        assert len(server.requests_seen) == 1


def test_all_retries_of_one_call_share_one_idempotency_key():
    with ScriptedServer([
        ("error", errors.Overloaded("full")),
        ("reset",),
        ("ok", {"fine": True}),
    ]) as server:
        with _client(server.port) as client:
            client.call("health")
            keys = {r.idempotency_key for r in server.requests_seen}
            assert len(server.requests_seen) == 3
            assert len(keys) == 1 and None not in keys
            # A second logical call uses a *different* key.
            client.call("health")
            assert server.requests_seen[-1].idempotency_key not in keys


def test_deadline_budget_shrinks_across_attempts():
    with ScriptedServer([
        ("error", errors.Overloaded("full")),
        ("ok", {"fine": True}),
    ]) as server:
        with _client(server.port) as client:
            client.call("health", deadline_ms=5000.0)
            first, second = server.requests_seen
            assert first.deadline_ms is not None
            assert second.deadline_ms is not None
            assert second.deadline_ms < first.deadline_ms <= 5000.0


# -- CLI flags --------------------------------------------------------------------
def test_cli_client_exit_codes_distinguish_retry_exhaustion(capsys):
    from repro.cli import main
    port = _dead_port()
    # Without retries: first-try connection failure, exit 2.
    assert main(["client", "health", "--port", str(port),
                 "--timeout", "1"]) == 2
    assert "cannot reach the daemon" in capsys.readouterr().err
    # With retries enabled and exhausted: the distinct exit code 4.
    assert main(["client", "health", "--port", str(port),
                 "--timeout", "1", "--retries", "2"]) == 4
    assert "retries exhausted" in capsys.readouterr().err


def test_cli_client_retries_ride_through_transient_failures(capsys):
    from repro.cli import main
    with ScriptedServer([
        ("error", errors.Overloaded("full")),
        ("reset",),
        ("ok", {"status": "running"}),
    ]) as server:
        assert main(["client", "health", "--port", str(server.port),
                     "--retries", "5"]) == 0
        assert json.loads(capsys.readouterr().out) == {"status": "running"}
        assert len(server.requests_seen) == 3


def test_cli_client_deadline_ms_is_propagated(capsys):
    from repro.cli import main
    with ScriptedServer([("ok", {"status": "running"})]) as server:
        assert main(["client", "health", "--port", str(server.port),
                     "--deadline-ms", "5000"]) == 0
        capsys.readouterr()
        request = server.requests_seen[0]
        assert request.deadline_ms is not None and request.deadline_ms <= 5000
        assert request.idempotency_key is not None


# -- satellite: NDJSON framing property test --------------------------------------
class _FakeConn:
    """A socket double replaying a fixed chunk sequence from recv()."""

    def __init__(self, chunks):
        self._chunks = list(chunks)

    def recv(self, _n):
        return self._chunks.pop(0) if self._chunks else b""


_payloads = st.lists(
    st.dictionaries(
        st.text(st.characters(min_codepoint=32, max_codepoint=0x24F),
                min_size=1, max_size=8),
        st.one_of(
            st.integers(min_value=-(2**53), max_value=2**53),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
            st.booleans(),
        ),
        max_size=5,
    ),
    min_size=1, max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(payloads=_payloads, data=st.data())
def test_replies_decode_identically_under_arbitrary_chunking(payloads, data):
    """However the byte stream is sliced — mid-line, mid-float,
    multiple lines per chunk, one byte at a time — reassembled replies
    decode bit-identically to the directly-decoded originals."""
    stream = b"".join(
        protocol.encode_response(i, payload)
        for i, payload in enumerate(payloads)
    )
    chunks = []
    position = 0
    while position < len(stream):
        size = data.draw(st.integers(min_value=1,
                                     max_value=len(stream) - position),
                         label="chunk_size")
        chunks.append(stream[position:position + size])
        position += size
    conn = _FakeConn(chunks)
    buffer = bytearray()
    decoded = []
    while True:
        line = _read_line(conn, buffer)
        if line is None:
            break
        decoded.append(protocol.decode_response(line))
    assert len(decoded) == len(payloads)
    for i, (doc, payload) in enumerate(zip(decoded, payloads)):
        assert doc["id"] == i
        assert doc["result"] == payload
        assert doc == protocol.decode_response(
            protocol.encode_response(i, payload))
