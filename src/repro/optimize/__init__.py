"""Model-based optimization of collectives: algorithm selection (Fig. 6),
gather message-splitting (Fig. 7), heterogeneous tree mapping."""

from repro.optimize.gather_splitting import make_optimized_gather, optimized_gather, split_plan
from repro.optimize.partition import (
    Partition,
    even_partition,
    optimal_partition,
    partition_makespan,
    run_partitioned_workload,
)
from repro.optimize.planner import (
    CollectiveCall,
    CommunicationPlan,
    PlannedCall,
    plan_collectives,
)
from repro.optimize.mapping import MappingResult, optimize_mapping, predict_mapped_time
from repro.optimize.selection import (
    AlgorithmChoice,
    crossover_size,
    predict_algorithms,
    select_algorithm,
)

__all__ = [
    "AlgorithmChoice",
    "CollectiveCall",
    "CommunicationPlan",
    "PlannedCall",
    "plan_collectives",
    "Partition",
    "even_partition",
    "optimal_partition",
    "partition_makespan",
    "run_partitioned_workload",
    "MappingResult",
    "crossover_size",
    "make_optimized_gather",
    "optimize_mapping",
    "optimized_gather",
    "predict_algorithms",
    "predict_mapped_time",
    "select_algorithm",
    "split_plan",
]
