"""Structured event log: leveled records, bounded ring, optional JSONL sink.

The third leg of :mod:`repro.obs`: where metrics aggregate and spans
time, events *narrate* — a breaker tripping open on node 5, an RTO
escalation on link 2→0 at sim-time 0.41 s, a heal cycle splicing three
triplets.  Each event is one flat dict:

``{"seq": 12, "ts": <unix seconds>, "level": "warning",
   "name": "rto_escalation", ...fields}``

Events are kept in a bounded ring buffer (oldest dropped first, with a
drop counter — telemetry must never grow without bound) and optionally
streamed to a JSONL sink as they happen, so a crash loses nothing that
was already emitted.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, IO, Optional

__all__ = ["EventLog", "LEVELS"]

#: Severity order; query ``min_level`` filters against this.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """Bounded, leveled, structured event log."""

    def __init__(
        self,
        capacity: int = 2048,
        jsonl_path: Optional[str] = None,
        clock=time.time,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self._clock = clock
        self._sink: Optional[IO[str]] = None
        self._sink_path = jsonl_path
        if jsonl_path is not None:
            self._sink = open(jsonl_path, "a")

    # -- emission ------------------------------------------------------------
    def emit(self, name: str, level: str = "info", **fields: Any) -> dict[str, Any]:
        """Record one event; returns the stored record."""
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; choose from {sorted(LEVELS)}")
        record = {"seq": self._seq, "ts": self._clock(), "level": level,
                  "name": name, **fields}
        self._seq += 1
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, default=str) + "\n")
            self._sink.flush()
        return record

    def debug(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.emit(name, level="debug", **fields)

    def info(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.emit(name, level="info", **fields)

    def warning(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.emit(name, level="warning", **fields)

    def error(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.emit(name, level="error", **fields)

    # -- querying ------------------------------------------------------------
    def events(
        self,
        name: Optional[str] = None,
        min_level: str = "debug",
        **field_filters: Any,
    ) -> list[dict[str, Any]]:
        """Events still in the ring, oldest first, filtered.

        ``name`` matches the event name exactly; ``min_level`` drops
        anything less severe; extra keyword filters must match the
        event's fields exactly (missing field = no match).
        """
        floor = LEVELS[min_level]
        out = []
        for record in self._ring:
            if name is not None and record["name"] != name:
                continue
            if LEVELS[record["level"]] < floor:
                continue
            if any(record.get(k, _MISSING) != v for k, v in field_filters.items()):
                continue
            out.append(record)
        return out

    def count(self, name: Optional[str] = None, **field_filters: Any) -> int:
        return len(self.events(name=name, **field_filters))

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # -- serialization -------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(record) for record in self._ring]

    def to_jsonl(self) -> str:
        """The ring's contents as JSON Lines (one event per line)."""
        return "".join(json.dumps(rec, default=str) + "\n" for rec in self._ring)

    def close(self) -> None:
        if self._sink is not None and not self._sink.closed:
            self._sink.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()
