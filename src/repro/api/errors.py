"""Unified error taxonomy of the API surface.

Every failure the facade, the CLI and the wire protocol can report is
one of four :class:`ApiError` subclasses with a *stable string code*:

================  ===================== ===================================
class             code                  meaning
================  ===================== ===================================
InvalidRequest    ``invalid_request``   malformed or out-of-range parameters
ModelNotLoaded    ``model_not_loaded``  unknown model name, or the model
                                        carries no formula for the requested
                                        (operation, algorithm) pair
Overloaded        ``overloaded``        a bounded service queue is full —
                                        back off and retry
DeadlineExceeded  ``deadline_exceeded`` the request's ``deadline_ms`` budget
                                        expired before it was executed; the
                                        server shed it unrun
InternalError     ``internal_error``    anything else (a bug, not the caller)
================  ===================== ===================================

The same taxonomy appears in three shapes that map 1:1:

* raised by :mod:`repro.api` functions (``InvalidRequest`` is also a
  ``ValueError`` and ``ModelNotLoaded`` a ``KeyError``, so callers written
  against the pre-taxonomy facade keep working);
* as wire error payloads ``{"code": ..., "message": ...}`` produced by
  :func:`error_payload` and re-raised client-side by :func:`from_payload`;
* as CLI error messages on stderr.
"""

from __future__ import annotations

from typing import Any, ClassVar, Mapping

__all__ = [
    "ApiError",
    "InvalidRequest",
    "ModelNotLoaded",
    "Overloaded",
    "DeadlineExceeded",
    "InternalError",
    "ERROR_TYPES",
    "error_payload",
    "from_payload",
]


class ApiError(Exception):
    """Base of the taxonomy; ``code`` is the stable wire identifier."""

    code: ClassVar[str] = "internal_error"

    def __init__(self, message: str = ""):
        self.message = str(message)
        super().__init__(self.message)

    def __str__(self) -> str:
        # KeyError quotes its sole argument; the taxonomy never does.
        return self.message

    def to_payload(self) -> dict[str, str]:
        """The wire/CLI form: ``{"code": ..., "message": ...}``."""
        return {"code": self.code, "message": self.message}


class InvalidRequest(ApiError, ValueError):
    """The request itself is wrong: bad parameter, unknown profile, ..."""

    code = "invalid_request"


class ModelNotLoaded(ApiError, KeyError):
    """No such model, or no formula for the requested pair on it."""

    code = "model_not_loaded"


class Overloaded(ApiError):
    """A bounded queue rejected the request; retry after backing off."""

    code = "overloaded"


class DeadlineExceeded(ApiError):
    """The request's deadline budget ran out while it sat queued.

    The server sheds the request *without executing it* — no work was
    done, no side effects happened.  Not retryable by default: the
    caller's overall deadline is the thing that expired.
    """

    code = "deadline_exceeded"


class InternalError(ApiError):
    """Unexpected server-side failure — a bug, not the caller's fault."""

    code = "internal_error"


#: code -> exception class, for both directions of the wire mapping.
ERROR_TYPES: dict[str, type[ApiError]] = {
    cls.code: cls
    for cls in (InvalidRequest, ModelNotLoaded, Overloaded, DeadlineExceeded,
                InternalError)
}


def error_payload(exc: BaseException) -> dict[str, str]:
    """Map any exception onto the taxonomy's wire form.

    :class:`ApiError` instances keep their code; plain ``ValueError`` /
    ``TypeError`` become ``invalid_request``, ``KeyError`` / ``LookupError``
    become ``model_not_loaded`` (the facade's historical exception types),
    everything else is an ``internal_error`` carrying the exception type
    name so server logs and client reports line up.
    """
    if isinstance(exc, ApiError):
        return exc.to_payload()
    if isinstance(exc, (ValueError, TypeError)):
        return InvalidRequest(str(exc)).to_payload()
    if isinstance(exc, LookupError):
        message = exc.args[0] if exc.args else str(exc)
        return ModelNotLoaded(str(message)).to_payload()
    return InternalError(f"{type(exc).__name__}: {exc}").to_payload()


def from_payload(payload: Mapping[str, Any]) -> ApiError:
    """Inverse of :func:`error_payload`: rebuild the typed exception.

    Unknown codes degrade to :class:`InternalError` (never raises on a
    malformed payload — the wire already failed; don't fail the report).
    """
    if not isinstance(payload, Mapping):
        return InternalError(f"malformed error payload: {payload!r}")
    code = payload.get("code")
    message = str(payload.get("message", ""))
    cls = ERROR_TYPES.get(str(code), InternalError)
    if cls is InternalError and code not in (InternalError.code, None):
        message = f"[{code}] {message}"
    return cls(message)
