"""Tests for the LMO estimation procedure (paper eqs. 6-12).

The gold standard: against the analytic oracle (which evaluates the
paper's equations exactly), the estimator must recover the ground truth to
machine precision.  Against the DES, the recovered model must *predict*
point-to-point times accurately even though the C/L split shifts (receive
processing overlaps in the real pipeline; the roundtrip-observable sums
``C_i + L_ij + C_j`` are preserved exactly).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.estimation import (
    AnalyticEngine,
    DESEngine,
    all_triplets,
    estimate_extended_lmo,
    star_triplets,
)

KB = 1024


def off_diag(n):
    return ~np.eye(n, dtype=bool)


# ---------------------------------------------------------- analytic oracle
@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 7), seed=st.integers(0, 1000))
def test_exact_recovery_from_analytic_engine(n, seed):
    """Noiseless equations in => exact parameters out (all four kinds)."""
    gt = GroundTruth.random(n, seed=seed)
    result = estimate_extended_lmo(AnalyticEngine(gt), reps=1)
    mask = off_diag(n)
    assert np.allclose(result.model.C, gt.C, rtol=1e-9)
    assert np.allclose(result.model.t, gt.t, rtol=1e-6)
    assert np.allclose(result.model.L[mask], gt.L[mask], rtol=1e-9)
    assert np.allclose(result.model.beta[mask], gt.beta[mask], rtol=1e-6)


def test_exact_recovery_with_star_triplets():
    gt = GroundTruth.random(8, seed=5)
    result = estimate_extended_lmo(AnalyticEngine(gt), triplets=star_triplets(8), reps=1)
    mask = off_diag(8)
    assert np.allclose(result.model.C, gt.C, rtol=1e-9)
    assert np.allclose(result.model.L[mask], gt.L[mask], rtol=1e-9)


def test_noisy_analytic_recovery_improves_with_reps():
    gt = GroundTruth.random(5, seed=6)
    noise = NoiseModel(rel_sigma=0.02, spike_prob=0.0)

    def c_error(reps, seed):
        engine = AnalyticEngine(gt, noise=noise, seed=seed)
        result = estimate_extended_lmo(engine, reps=reps, clamp=True)
        return np.abs(result.model.C - gt.C).max()

    few = np.mean([c_error(1, s) for s in range(5)])
    many = np.mean([c_error(10, s) for s in range(5)])
    assert many < few


def test_redundant_samples_counted_per_eq12():
    """C_i comes from C(n-1,2) triplets, L_ij from n-2 (paper eq. 12)."""
    n = 6
    gt = GroundTruth.random(n, seed=7)
    result = estimate_extended_lmo(AnalyticEngine(gt), reps=1)
    assert all(len(v) == (n - 1) * (n - 2) // 2 for v in result.c_samples.values())
    assert all(len(v) == (n - 1) * (n - 2) // 2 for v in result.t_samples.values())
    assert all(len(v) == n - 2 for v in result.l_samples.values())
    assert all(len(v) == n - 2 for v in result.beta_samples.values())


def test_parameter_spread_is_zero_for_noiseless_oracle():
    gt = GroundTruth.random(5, seed=8)
    result = estimate_extended_lmo(AnalyticEngine(gt), reps=1)
    spread = result.parameter_spread()
    assert all(value < 1e-6 for value in spread.values())


# ------------------------------------------------------------------ the DES
def test_des_recovery_preserves_roundtrip_sums_exactly():
    """C_i + L_ij + C_j (the Hockney alpha) is identified exactly even on
    the DES: it is directly observable in the empty roundtrip."""
    n = 6
    gt = GroundTruth.random(n, seed=9)
    cluster = SimulatedCluster(random_cluster(n, seed=9), ground_truth=gt,
                               profile=IDEAL, noise=NoiseModel.none(), seed=9)
    result = estimate_extended_lmo(DESEngine(cluster), reps=1, clamp=True)
    est, truth = result.model, gt
    est_alpha = est.C[:, None] + est.L + est.C[None, :]
    true_alpha = truth.C[:, None] + truth.L + truth.C[None, :]
    mask = off_diag(n)
    assert np.allclose(est_alpha[mask], true_alpha[mask], rtol=1e-9)


def test_des_recovery_predicts_p2p_times_well():
    n = 6
    gt = GroundTruth.random(n, seed=10)
    cluster = SimulatedCluster(random_cluster(n, seed=10), ground_truth=gt,
                               profile=IDEAL, noise=NoiseModel.none(), seed=10)
    model = estimate_extended_lmo(DESEngine(cluster), reps=1, clamp=True).model
    for M in [0, 4 * KB, 64 * KB]:
        for i, j in [(0, 1), (2, 5), (3, 4)]:
            assert model.p2p_time(i, j, M) == pytest.approx(gt.p2p_time(i, j, M), rel=0.06)


def test_des_recovery_with_noise_stays_reasonable():
    n = 5
    gt = GroundTruth.random(n, seed=11)
    cluster = SimulatedCluster(random_cluster(n, seed=11), ground_truth=gt,
                               profile=IDEAL, noise=NoiseModel(rel_sigma=0.01, spike_prob=0),
                               seed=11)
    model = estimate_extended_lmo(DESEngine(cluster), reps=8, clamp=True).model
    M = 32 * KB
    for i, j in [(0, 1), (2, 4)]:
        assert model.p2p_time(i, j, M) == pytest.approx(gt.p2p_time(i, j, M), rel=0.12)


# ------------------------------------------------------------------ interface
def test_rejects_too_few_processors():
    gt = GroundTruth.random(2, seed=12)
    with pytest.raises(ValueError, match="at least 3"):
        estimate_extended_lmo(AnalyticEngine(gt))


def test_rejects_nonpositive_probe():
    gt = GroundTruth.random(4, seed=13)
    with pytest.raises(ValueError, match="positive"):
        estimate_extended_lmo(AnalyticEngine(gt), probe_nbytes=0)


def test_rejects_uncovering_triplets():
    gt = GroundTruth.random(5, seed=14)
    with pytest.raises(ValueError, match="unmeasured"):
        estimate_extended_lmo(AnalyticEngine(gt), triplets=[(0, 1, 2)])


def test_all_and_star_triplet_helpers():
    assert len(all_triplets(6)) == 20
    star = star_triplets(6, center=0)
    assert len(star) == 10
    assert all(0 in t for t in star)
    with pytest.raises(ValueError):
        star_triplets(4, center=9)


def test_serial_and_parallel_estimation_agree():
    gt = GroundTruth.random(5, seed=15)
    serial = estimate_extended_lmo(AnalyticEngine(gt), parallel=False, reps=1)
    parallel = estimate_extended_lmo(AnalyticEngine(gt), parallel=True, reps=1)
    assert np.allclose(serial.model.C, parallel.model.C)
    assert serial.estimation_time > parallel.estimation_time


def test_original_lmo_estimator_folds_latencies():
    from repro.estimation import estimate_original_lmo
    from repro.models import LMOModel

    gt = GroundTruth.random(5, seed=16)
    model = estimate_original_lmo(AnalyticEngine(gt), reps=1)
    assert isinstance(model, LMOModel)
    # The folded fixed delays absorb ~half of each node's average latency.
    assert (model.C > gt.C).all()
    # Variable parts are the exact ground truth.
    assert np.allclose(model.t, gt.t, rtol=1e-6)


def test_probe_inside_irregular_region_corrupts_estimation():
    """Paper Sec. IV: 'The additional collective communication experiments
    should be designed very carefully in order to avoid the irregularities'
    — a probe size in the escalation region wrecks the parameters, which
    is exactly why the preliminary sweep exists."""
    from repro.cluster import LAM_7_1_3, table1_cluster
    from repro.cluster.machine import SimulatedCluster

    def estimate_with_probe(probe):
        cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3,
                                   noise=NoiseModel.none(), seed=17)
        model = estimate_extended_lmo(
            DESEngine(cluster), probe_nbytes=probe, reps=3,
            triplets=star_triplets(16), clamp=True,
        ).model
        gt = cluster.ground_truth
        M = 32 * KB
        errs = [
            abs(model.p2p_time(0, j, M) - gt.p2p_time(0, j, M)) / gt.p2p_time(0, j, M)
            for j in range(1, 16)
        ]
        return float(np.mean(errs))

    # A one-to-two experiment sends to TWO receivers: bursts of 2*probe
    # toward... each port separately (no incast) — but the *roundtrip
    # replies* of size probe converge on the root: probe just under the
    # incast threshold for two senders stays clean, while a probe above
    # the eager threshold tangles with the rendezvous leap.
    clean_err = estimate_with_probe(32 * KB)
    dirty_err = estimate_with_probe(80 * KB)  # above the 64 KB eager limit
    assert clean_err < 0.1
    assert dirty_err > 2 * clean_err


def test_sparse_design_generalizes_to_unmeasured_links():
    """A triplet chain covers every node but not every pair; the LMO
    model still predicts the held-out links (single-switch links are
    near-uniform, so mean-completion works) — something no per-pair
    Hockney-style model can do at all."""
    n = 8
    gt = GroundTruth.random(n, seed=18, l_range=(48e-6, 55e-6),
                            beta_range=(0.95e8, 1.05e8))
    chain = [(0, 1, 2), (2, 3, 4), (4, 5, 6), (6, 7, 0)]
    result = estimate_extended_lmo(AnalyticEngine(gt), triplets=chain, reps=1,
                                   clamp=True)
    model = result.model
    measured_pairs = {tuple(sorted(p)) for t in chain
                      for p in [(t[0], t[1]), (t[0], t[2]), (t[1], t[2])]}
    heldout = [(i, j) for i in range(n) for j in range(i + 1, n)
               if (i, j) not in measured_pairs]
    assert heldout, "the chain design must leave some pairs unmeasured"
    M = 32 * KB
    for i, j in heldout:
        predicted = model.p2p_time(i, j, M)
        actual = gt.p2p_time(i, j, M)
        assert predicted == pytest.approx(actual, rel=0.1)
        assert np.isfinite(model.beta[i, j])
        assert model.L[i, j] > 0
