"""Experiment engines: where estimation measurements come from.

Estimators are written against the tiny :class:`ExperimentEngine`
interface, with two implementations:

* :class:`DESEngine` — runs each experiment as rank programs on the
  simulated cluster (:mod:`repro.mpi`); this is "measuring the real
  machine".  Non-overlapping experiments can run in a single simulation
  (``run_batch``) — the paper's parallel-estimation optimization.
* :class:`AnalyticEngine` — evaluates the paper's timing equations (6)/(9)
  directly on a ground truth, with optional multiplicative noise.  Because
  the equations hold *exactly* here, estimators must recover the ground
  truth exactly in the noiseless case — the property tests' oracle.

Both engines track ``estimation_time``, the total cluster time consumed by
experiments (serial runs add their duration; a batch adds only its
makespan), which reproduces the paper's 16 s serial vs 5 s parallel
estimation-cost comparison.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from repro.cluster.machine import SimulatedCluster
from repro.cluster.noise import NoiseModel
from repro.cluster.params import GroundTruth
from repro.estimation.experiments import Experiment, build_programs
from repro.mpi.runtime import run_collective, run_ranks

__all__ = ["ExperimentEngine", "DESEngine", "AnalyticEngine"]


class ExperimentEngine(Protocol):
    """What estimators need from a measurement source."""

    @property
    def n(self) -> int:
        """Number of cluster nodes."""
        ...

    @property
    def estimation_time(self) -> float:
        """Cluster time consumed by experiments so far (seconds)."""
        ...

    def run(self, exp: Experiment) -> float:
        """Execute one experiment; returns the initiator-side duration."""
        ...

    def run_batch(self, exps: Sequence[Experiment]) -> list[float]:
        """Execute node-disjoint experiments concurrently."""
        ...


def _check_disjoint(exps: Sequence[Experiment]) -> None:
    used: set[int] = set()
    for exp in exps:
        nodes = set(exp.nodes)
        if used & nodes:
            raise ValueError(
                f"batch experiments overlap on nodes {sorted(used & nodes)}; "
                "parallel execution requires disjoint node sets"
            )
        used |= nodes


class DESEngine:
    """Measure experiments on the simulated cluster."""

    def __init__(self, cluster: SimulatedCluster):
        self.cluster = cluster
        self._estimation_time = 0.0

    @property
    def n(self) -> int:
        return self.cluster.n

    @property
    def estimation_time(self) -> float:
        return self._estimation_time

    def run(self, exp: Experiment) -> float:
        results = run_ranks(self.cluster, build_programs(exp))
        duration = float(results[exp.initiator].value)
        self._estimation_time += self.cluster.sim.now
        return duration

    def run_batch(self, exps: Sequence[Experiment]) -> list[float]:
        _check_disjoint(exps)
        programs = {}
        for exp in exps:
            programs.update(build_programs(exp))
        results = run_ranks(self.cluster, programs)
        self._estimation_time += self.cluster.sim.now
        return [float(results[exp.initiator].value) for exp in exps]

    def collective_time(
        self, operation: str, algorithm: str, nbytes: int, root: int = 0
    ) -> float:
        """Global completion time of one collective run (for empirical
        parameters and 'observed' curves)."""
        run = run_collective(self.cluster, operation, algorithm, nbytes, root=root)
        self._estimation_time += self.cluster.sim.now
        return run.time


class AnalyticEngine:
    """Evaluate the paper's experiment equations on a ground truth.

    Roundtrip (paper eq. 9, first rows)::

        T_ij(M, N) = T_ij(M) + T_ji(N)                      # two p2p legs

    One-to-two (eq. 9, last rows; scatter + gather of the paper's
    derivation, for general reply size N)::

        T_ijk(M, N) = 2 (C_i + M t_i) + max_x (L_ix + M/b_ix + C_x + M t_x)
                    + 2 (C_i + N t_i) + max_x (L_ix + N/b_ix + C_x + N t_x)

    Overheads are the processor costs themselves; saturation is a
    pipelined train whose steady-state step is the bottleneck stage.
    """

    def __init__(
        self,
        ground_truth: GroundTruth,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
    ):
        self.ground_truth = ground_truth
        self.noise = noise if noise is not None else NoiseModel.none()
        self.rng = np.random.default_rng(seed)
        self._estimation_time = 0.0

    @property
    def n(self) -> int:
        return self.ground_truth.n

    @property
    def estimation_time(self) -> float:
        return self._estimation_time

    # -- equation evaluation ---------------------------------------------------
    def _roundtrip(self, exp: Experiment) -> float:
        i, j = exp.nodes
        gt = self.ground_truth
        return gt.p2p_time(i, j, exp.send_nbytes) + gt.p2p_time(j, i, exp.reply_nbytes)

    def _one_to_two(self, exp: Experiment) -> float:
        i, j, k = exp.nodes
        gt = self.ground_truth
        M, N = exp.send_nbytes, exp.reply_nbytes
        serial = 2 * (gt.C[i] + M * gt.t[i]) + 2 * (gt.C[i] + N * gt.t[i])
        # One max over x for BOTH phases — the paper's eq. (9) implicitly
        # assumes the scatter and gather maxima are attained at the same
        # peer, and the estimator's cancellations rely on it.
        parallel = max(
            (gt.L[i, x] + M / gt.beta[i, x] + gt.C[x] + M * gt.t[x])
            + (gt.L[i, x] + N / gt.beta[i, x] + gt.C[x] + N * gt.t[x])
            for x in (j, k)
        )
        return serial + parallel

    def _overhead_send(self, exp: Experiment) -> float:
        i, _j = exp.nodes
        return self.ground_truth.send_cost(i, exp.send_nbytes)

    def _overhead_recv(self, exp: Experiment) -> float:
        receiver, _sender = exp.nodes
        return self.ground_truth.send_cost(receiver, exp.send_nbytes)

    def _saturation(self, exp: Experiment) -> float:
        i, j = exp.nodes
        gt = self.ground_truth
        M = exp.send_nbytes
        stages = (gt.send_cost(i, M), M / gt.beta[i, j], gt.send_cost(j, M))
        fill = stages[0] + gt.L[i, j] + stages[1] + stages[2]
        steady = max(stages)
        ack = gt.p2p_time(j, i, 0)
        return fill + (exp.count - 1) * steady + ack

    _DISPATCH = {
        "roundtrip": _roundtrip,
        "one_to_two": _one_to_two,
        "overhead_send": _overhead_send,
        "overhead_recv": _overhead_recv,
        "saturation": _saturation,
    }

    def run(self, exp: Experiment) -> float:
        duration = self.noise.perturb(self._DISPATCH[exp.kind](self, exp), self.rng)
        self._estimation_time += duration
        return duration

    def run_batch(self, exps: Sequence[Experiment]) -> list[float]:
        _check_disjoint(exps)
        durations = [
            self.noise.perturb(self._DISPATCH[exp.kind](self, exp), self.rng)
            for exp in exps
        ]
        self._estimation_time += max(durations, default=0.0)
        return durations
