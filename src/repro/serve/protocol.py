"""The NDJSON wire protocol of the prediction service.

One request per line, one response line per request, UTF-8 JSON with a
trailing ``\\n`` (newline-delimited JSON).  A request is::

    {"id": 1, "verb": "predict", "params": {...}, "schema_version": 3,
     "deadline_ms": 250, "idempotency_key": "c7e1-42"}

``id`` is echoed verbatim in the response (string, integer or null);
``params`` is the ``to_dict()`` form of the verb's request dataclass in
:mod:`repro.api.schema` (the envelope keys ``kind``/``schema_version``
may be omitted — :meth:`from_dict` fills them in).  Two optional
envelope keys carry the resilience contract:

* ``deadline_ms`` — the request's remaining time budget in milliseconds,
  measured from server receipt.  A request still queued when the budget
  expires is shed *unexecuted* with the ``deadline_exceeded`` error code
  instead of wasting worker time on an answer nobody is waiting for.
* ``idempotency_key`` — an opaque client-chosen string identifying one
  *logical* call across retries.  The server deduplicates: a key it has
  already answered returns the recorded result; a key currently in
  flight attaches to the running execution.  Side-effectful verbs
  (``estimate``) therefore execute at most once per key.

A third optional key, ``trace``, carries a W3C-traceparent-style header
(:mod:`repro.obs.trace`) so server-side spans and events correlate with
the caller's.  It is observability-only: a malformed header degrades the
request to untraced, never rejects it.

A response is one of::

    {"id": 1, "ok": true,  "result": {...}, "crc": 3735928559,
     "schema_version": 3}
    {"id": 1, "ok": false, "error": {"code": ..., "message": ...},
     "crc": ..., "schema_version": 3}

where ``result`` is again a schema-v3 document and ``error`` is the
taxonomy payload of :func:`repro.api.errors.error_payload` — the same
codes :mod:`repro.api` raises in-process.  ``crc`` is the CRC-32 of the
canonical JSON form of the payload (:func:`payload_checksum`); clients
verify it so a reply corrupted on the wire is *detected* and surfaces as
:class:`WireError` (a retryable transport failure) instead of silently
delivering a wrong number.  Requests longer than :data:`MAX_LINE_BYTES`
are rejected (the stream cannot be resynchronized after an oversized
line, so the server answers with ``id: null`` and closes the
connection).

Everything here is a pure function over bytes/str — no I/O — so the
framing is testable without a socket.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.api.errors import InternalError, InvalidRequest, error_payload
from repro.api.schema import SCHEMA_VERSION

__all__ = [
    "MAX_IDEMPOTENCY_KEY_CHARS",
    "MAX_LINE_BYTES",
    "VERBS",
    "Request",
    "WireError",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_request",
    "encode_response",
    "payload_checksum",
    "peek_id",
]

#: Hard cap on one request line (1 MiB); past it the stream is broken.
MAX_LINE_BYTES = 1 << 20

#: Every verb the server answers.  ``health``/``obs``/``drain`` are
#: handled inline by the server; the rest are queued onto workers.
VERBS = (
    "drain",
    "estimate",
    "health",
    "obs",
    "optimize",
    "predict",
    "predict_many",
)

#: Hard cap on one idempotency key (keys are cache entries server-side).
MAX_IDEMPOTENCY_KEY_CHARS = 200

RequestId = Union[str, int, None]


class WireError(InternalError, ConnectionError):
    """The byte stream itself failed: truncated, unparseable or
    checksum-mismatched reply.  A *transport* failure — the request may
    or may not have executed — so resilient callers treat it as
    retryable (idempotency keys make the retry safe), unlike a genuine
    ``internal_error`` reply which reports a server-side bug."""


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    id: RequestId
    verb: str
    params: Mapping[str, Any]
    #: Remaining time budget in milliseconds (measured from receipt), or
    #: None for no deadline.
    deadline_ms: Optional[float] = None
    #: Client-chosen retry-dedup key, or None for no deduplication.
    idempotency_key: Optional[str] = None
    #: W3C-traceparent-style trace header (see :mod:`repro.obs.trace`),
    #: or None for an untraced request.  Never validated here: a garbage
    #: header degrades the request to untraced, it does not reject it.
    trace: Optional[str] = None


def _dumps(doc: Mapping[str, Any]) -> bytes:
    # Compact separators keep the common predict reply well under one
    # network segment; ensure_ascii guarantees the line has no raw
    # newline bytes regardless of payload strings.
    return json.dumps(doc, separators=(",", ":"), ensure_ascii=True).encode() + b"\n"


def payload_checksum(payload: Mapping[str, Any]) -> int:
    """CRC-32 of the canonical JSON form of a result/error payload.

    Canonical means sorted keys, compact separators, ASCII-only — both
    sides recompute it from the parsed object, so the checksum is stable
    across whitespace and key-order differences and floats round-trip
    exactly (``json`` serializes them via ``repr``).
    """
    canonical = json.dumps(payload, separators=(",", ":"), ensure_ascii=True,
                           sort_keys=True)
    return zlib.crc32(canonical.encode())


def encode_request(verb: str, params: Mapping[str, Any],
                   request_id: RequestId = None,
                   deadline_ms: Optional[float] = None,
                   idempotency_key: Optional[str] = None,
                   trace: Optional[str] = None) -> bytes:
    """One request line (client side)."""
    doc: dict[str, Any] = {
        "id": request_id, "verb": verb, "params": dict(params),
        "schema_version": SCHEMA_VERSION,
    }
    if deadline_ms is not None:
        doc["deadline_ms"] = float(deadline_ms)
    if idempotency_key is not None:
        doc["idempotency_key"] = idempotency_key
    if trace is not None:
        doc["trace"] = trace
    return _dumps(doc)


def encode_response(request_id: RequestId, result: Mapping[str, Any]) -> bytes:
    """One success line (server side), integrity-stamped."""
    return _dumps({
        "id": request_id, "ok": True, "result": result,
        "crc": payload_checksum(result),
        "schema_version": SCHEMA_VERSION,
    })


def encode_error(request_id: RequestId, exc: BaseException,
                 extra: Optional[Mapping[str, Any]] = None) -> bytes:
    """One error line (server side); any exception maps onto the taxonomy.

    ``extra`` fields (``request_id``, ``trace_id``) are merged into the
    error payload *before* checksumming, so a failed request stays
    greppable end to end — the same correlation ids appear in the reply
    the client logs and in the server's ``service_*`` events.  ``None``
    values are dropped.
    """
    payload = error_payload(exc)
    for key, value in (extra or {}).items():
        if value is not None:
            payload.setdefault(key, value)
    return _dumps({
        "id": request_id, "ok": False, "error": payload,
        "crc": payload_checksum(payload),
        "schema_version": SCHEMA_VERSION,
    })


def decode_request(line: Union[bytes, bytearray, str]) -> Request:
    """Parse and validate one request line.

    Raises :class:`~repro.api.errors.InvalidRequest` for every way a
    line can be wrong: oversized, not UTF-8, not JSON, not an object,
    wrong ``schema_version``, unknown ``verb``, non-object ``params``,
    non-scalar ``id``.
    """
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_LINE_BYTES:
            raise InvalidRequest(
                f"request line of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte limit"
            )
        try:
            text = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise InvalidRequest(f"request line is not valid UTF-8: {exc}") from exc
    else:
        text = line
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise InvalidRequest(f"request line is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise InvalidRequest(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    version = doc.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise InvalidRequest(
            f"unsupported schema_version {version!r} (this server speaks "
            f"{SCHEMA_VERSION})"
        )
    verb = doc.get("verb")
    if not isinstance(verb, str) or verb not in VERBS:
        raise InvalidRequest(f"unknown verb {verb!r}; supported: {list(VERBS)}")
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise InvalidRequest(
            f"params must be an object, got {type(params).__name__}"
        )
    request_id = doc.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise InvalidRequest("id must be a string, an integer or null")
    deadline_ms = doc.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)) \
                or not math.isfinite(deadline_ms) or deadline_ms <= 0:
            raise InvalidRequest(
                f"deadline_ms must be a positive finite number of "
                f"milliseconds, got {deadline_ms!r}"
            )
        deadline_ms = float(deadline_ms)
    idempotency_key = doc.get("idempotency_key")
    if idempotency_key is not None:
        if not isinstance(idempotency_key, str) or not idempotency_key:
            raise InvalidRequest("idempotency_key must be a non-empty string")
        if len(idempotency_key) > MAX_IDEMPOTENCY_KEY_CHARS:
            raise InvalidRequest(
                f"idempotency_key exceeds {MAX_IDEMPOTENCY_KEY_CHARS} "
                f"characters"
            )
    trace = doc.get("trace")
    if not isinstance(trace, str):
        # Anything but a string (including absent) means untraced; a bad
        # trace header must never invalidate an otherwise-good request.
        trace = None
    return Request(id=request_id, verb=verb, params=params,
                   deadline_ms=deadline_ms, idempotency_key=idempotency_key,
                   trace=trace)


def peek_id(line: Union[bytes, bytearray, str]) -> RequestId:
    """Best-effort ``id`` extraction from a line that failed to decode,
    so even an error reply for a malformed request can be correlated."""
    try:
        doc = json.loads(line if isinstance(line, str) else bytes(line).decode(
            "utf-8", errors="replace"))
    except ValueError:
        return None
    if isinstance(doc, dict):
        request_id = doc.get("id")
        if request_id is None or isinstance(request_id, (str, int)):
            return request_id
    return None


def decode_response(line: Union[bytes, bytearray, str],
                    preview_bytes: int = 120) -> dict[str, Any]:
    """Parse and integrity-check one response line (client side).

    Raises :class:`WireError` (an :class:`~repro.api.errors.InternalError`
    that is also a ``ConnectionError``) when the line is empty
    (connection closed), unparseable, or carries a ``crc`` stamp that
    does not match its payload — all transport failures a resilient
    caller may retry.  The caller decides what to do with ``ok: false``
    payloads (see :meth:`repro.serve.client.ServiceClient.call`).
    """
    stripped = bytes(line).strip() if isinstance(line, (bytes, bytearray)) \
        else line.strip()
    if not stripped:
        raise WireError("connection closed before a response arrived")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        preview: Any = line[:preview_bytes]
        raise WireError(f"malformed response line {preview!r}: {exc}") from exc
    if not isinstance(doc, dict) or "ok" not in doc:
        raise WireError(f"malformed response (no 'ok' field): {doc!r}")
    if "crc" in doc:
        payload = doc.get("result") if doc.get("ok") else doc.get("error")
        if not isinstance(payload, dict) \
                or payload_checksum(payload) != doc["crc"]:
            raise WireError(
                "response failed its integrity check (crc mismatch) — "
                "the reply was corrupted in transit"
            )
    return doc
