"""Tests for communication trees (paper Fig. 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.collectives.trees import CommTree, binomial_tree, flat_tree


def test_fig2_structure_16_nodes():
    """Root 0's children get 8, 4, 2, 1 blocks; node 8's get 4, 2, 1."""
    tree = binomial_tree(16, 0)
    assert tree.children[0] == ((8, 8), (4, 4), (2, 2), (1, 1))
    assert tree.children[8] == ((12, 4), (10, 2), (9, 1))
    assert tree.children[12] == ((14, 2), (13, 1))
    assert tree.children[14] == ((15, 1),)
    assert tree.children[15] == ()


def test_fig2_depth_is_log2_n():
    assert binomial_tree(16, 0).depth() == 4
    assert binomial_tree(8, 0).depth() == 3
    assert binomial_tree(2, 0).depth() == 1


def test_blocks_into_matches_subtree_size():
    tree = binomial_tree(16, 0)
    for rank in range(16):
        assert tree.blocks_into(rank) == len(tree.subtree_ranks(rank)) or rank == 0
    assert tree.blocks_into(0) == 16


def test_subtrees_of_same_order_are_disjoint():
    """Paper: 'the sub-trees of the same order represent non-overlapping
    sets of processors'."""
    tree = binomial_tree(16, 0)
    s0 = set(tree.subtree_ranks(8))
    s1 = set(tree.subtree_ranks(4))
    s2 = set(tree.subtree_ranks(2))
    assert s0 & s1 == set() and s0 & s2 == set() and s1 & s2 == set()
    assert s0 == {8, 9, 10, 11, 12, 13, 14, 15}


def test_rotation_for_nonzero_root():
    tree = binomial_tree(16, root=3)
    assert tree.root == 3
    assert tree.parent[3] is None
    # Virtual child 8 maps to rank (8+3) % 16 = 11.
    assert tree.children[3][0] == (11, 8)


def test_non_power_of_two_sizes():
    tree = binomial_tree(6, 0)
    # Top-level arcs out of the root move every non-root block exactly once.
    assert sum(b for _c, b in tree.children[0]) == 5
    assert sorted(tree.subtree_ranks(0)) == list(range(6))


def test_single_node_tree():
    tree = binomial_tree(1, 0)
    assert tree.children[0] == ()
    assert tree.depth() == 0


def test_flat_tree_structure():
    tree = flat_tree(5, root=2)
    assert tree.children[2] == ((3, 1), (4, 1), (0, 1), (1, 1))
    assert all(tree.parent[r] == 2 for r in [0, 1, 3, 4])
    assert tree.depth() == 1


def test_arcs_parents_before_children():
    tree = binomial_tree(16, 0)
    seen = {0}
    for parent, child, _blocks in tree.arcs():
        assert parent in seen
        seen.add(child)
    assert seen == set(range(16))


def test_remap_applies_permutation():
    tree = binomial_tree(4, 0)
    perm = [2, 3, 0, 1]  # tree node v becomes rank perm[v]
    mapped = tree.remap(perm)
    assert mapped.root == 2
    assert mapped.children[2] == ((0, 2), (3, 1))
    assert mapped.parent[0] == 2


def test_remap_identity_is_noop():
    tree = binomial_tree(8, 0)
    same = tree.remap(list(range(8)))
    assert same == tree


def test_remap_rejects_non_permutation():
    tree = binomial_tree(4, 0)
    with pytest.raises(ValueError):
        tree.remap([0, 0, 1, 2])


def test_invalid_trees_rejected():
    with pytest.raises(ValueError):
        binomial_tree(0)
    with pytest.raises(ValueError):
        binomial_tree(4, root=7)
    with pytest.raises(ValueError, match="root must have no parent"):
        CommTree(2, 0, (1, 0), (((1, 1),), ()))


def test_render_ascii_mentions_all_ranks():
    text = binomial_tree(16, 0).render_ascii()
    for rank in range(16):
        assert str(rank) in text
    assert "[8 blocks]" in text


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 64), root_frac=st.floats(0, 0.999))
def test_binomial_tree_invariants(n, root_frac):
    root = int(n * root_frac)
    tree = binomial_tree(n, root)
    # Spans all ranks exactly once.
    assert sorted(tree.subtree_ranks(root)) == list(range(n))
    # Total blocks moved equals n-1 (each non-root block crosses into its
    # owner's sub-tree exactly once at the top).
    arcs = list(tree.arcs())
    assert sum(1 for _p, c, _b in arcs) == n - 1
    # Every arc's block count equals the child's sub-tree size.
    for _p, child, blocks in arcs:
        assert blocks == len(tree.subtree_ranks(child))
    # Depth never exceeds the number of rounds, ceil(log2(n)).
    assert tree.depth() <= (n - 1).bit_length()
    # The root's top-level arcs move every non-root block exactly once.
    assert sum(b for _c, b in tree.children[root]) == n - 1
