"""Section III's empirical thresholds per MPI implementation.

"... we observed M1 = 4 KB, M2 = 65 KB for LAM 7.1.3 and M1 = 3 KB,
M2 = 125 KB for MPICH 1.2.7."

Runs the preliminary gather sweep under each profile and detects the
thresholds, checking they land near the paper's values (M2 tracks each
implementation's eager limit; M1 the incast onset)."""

from __future__ import annotations

from repro.cluster import LAM_7_1_3, MPICH_1_2_7, OPEN_MPI
from repro.estimation import DESEngine, detect_gather_irregularity, sweep_collective
from repro.experiments.common import KB, ExperimentResult, paper_cluster

__all__ = ["run"]

SWEEP_SIZES = tuple(
    int(m * KB)
    for m in (1, 2, 3, 4, 6, 8, 16, 32, 48, 64, 80, 96, 112, 125, 144, 176)
)


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Detect (M1, M2) under LAM and MPICH profiles."""
    reps = 10 if quick else 20
    rows = []
    detected = {}
    # The paper quantifies LAM and MPICH; it attributes the scatter leap
    # to "LAM and Open MPI", so the Open MPI profile rides along with no
    # quantitative target (None).
    for profile, paper_m1, paper_m2 in (
        (LAM_7_1_3, 4 * KB, 65 * KB),
        (MPICH_1_2_7, 3 * KB, 125 * KB),
        (OPEN_MPI, None, None),
    ):
        engine = DESEngine(paper_cluster(profile=profile, seed=seed))
        sweep = sweep_collective(
            engine, "gather", "linear", sizes=SWEEP_SIZES, reps=reps
        )
        irr = detect_gather_irregularity(sweep)
        detected[profile.name] = irr
        paper_note = (
            f"(paper {paper_m1 / KB:.0f} / {paper_m2 / KB:.0f} KB)"
            if paper_m1 is not None
            else "(paper: qualitative only)"
        )
        rows.append(
            f"{profile.name:<14} detected M1 = {irr.m1 / KB:5.1f} KB, "
            f"M2 = {irr.m2 / KB:5.1f} KB {paper_note}, escalations ~"
            f"{irr.escalation_value * 1e3:.0f} ms"
        )
    lam, mpich = detected[LAM_7_1_3.name], detected[MPICH_1_2_7.name]
    ompi = detected[OPEN_MPI.name]
    result = ExperimentResult(
        experiment_id="thresholds",
        title="Empirical gather thresholds per MPI implementation",
        text="\n".join(rows),
    )
    result.checks = {
        "LAM M1 within a grid step of 4 KB": 2 * KB <= lam.m1 <= 8 * KB,
        "LAM M2 within a grid step of 65 KB": 48 * KB <= lam.m2 <= 96 * KB,
        "MPICH M1 within a grid step of 3 KB": 1 * KB <= mpich.m1 <= 8 * KB,
        "MPICH M2 within a grid step of 125 KB": 112 * KB <= mpich.m2 <= 176 * KB,
        "MPICH region extends further than LAM's (larger eager limit)": (
            mpich.m2 > lam.m2
        ),
        "escalations are RTO-sized in all three (0.1-0.3 s)": all(
            0.1 <= irr.escalation_value <= 0.3 for irr in detected.values()
        ),
        "Open MPI shows the same irregularity structure (M1 < M2)": (
            0 < ompi.m1 < ompi.m2
        ),
    }
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
