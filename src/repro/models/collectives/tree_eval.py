"""Generic evaluator of tree-structured collective predictions.

The paper's recursive binomial formula (1)/(2) has the shape

    T(node) = serial(node -> first child)
              + max( T(node without that child), parallel(...) + T(child) )

i.e. each transfer splits into a *serialized* part (charged on the sender,
one after another) and a *parallelizable* part (network + receiver,
overlapping everything later).  Different models draw that line
differently:

* Hockney / LogGP / PLogP put the whole point-to-point cost in the serial
  part (they cannot split it — their parameters mix the contributions);
* the extended LMO model serializes only ``C_i + M t_i`` and parallelizes
  ``L_ij + M/beta_ij + C_j + M t_j``.

:func:`predict_tree_time` implements the recursion for any
:class:`~repro.models.collectives.trees.CommTree` — binomial trees give
the paper's formulas (1)-(2); flat trees give the *pipelined* variant of
the linear formulas.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.base import ArrayLike, validate_nbytes_batch
from repro.models.collectives.trees import CommTree

__all__ = ["predict_tree_time", "predict_tree_time_batch"]

CostFn = Callable[[int, int, float], float]
BatchCostFn = Callable[[int, int, np.ndarray], np.ndarray]


def predict_tree_time(
    tree: CommTree,
    block_nbytes: float,
    serial_cost: CostFn,
    parallel_cost: CostFn,
) -> float:
    """Makespan of a tree collective under a serial/parallel cost split.

    Parameters
    ----------
    tree:
        The communication tree; each arc carries ``blocks * block_nbytes``
        bytes.
    serial_cost / parallel_cost:
        ``f(sender, receiver, nbytes)`` — the serialized (sender-side) and
        parallelizable (network + receiver) parts of one transfer.

    Notes
    -----
    For scatter the recursion reads top-down; by symmetry of max/sum the
    same value is the paper's gather estimate over the reversed tree, so
    no separate gather evaluator is needed for the deterministic branch.
    """
    if block_nbytes < 0:
        raise ValueError(f"negative block size {block_nbytes!r}")

    def subtree(rank: int) -> float:
        kids = tree.children[rank]

        def chain(idx: int) -> float:
            if idx == len(kids):
                return 0.0
            child, blocks = kids[idx]
            nbytes = blocks * block_nbytes
            return serial_cost(rank, child, nbytes) + max(
                chain(idx + 1),
                parallel_cost(rank, child, nbytes) + subtree(child),
            )

        return chain(0)

    return subtree(tree.root)


def predict_tree_time_batch(
    tree: CommTree,
    block_nbytes: ArrayLike,
    serial_cost: BatchCostFn,
    parallel_cost: BatchCostFn,
) -> np.ndarray:
    """Vectorized :func:`predict_tree_time` over an array of block sizes.

    The recursion is evaluated once per tree *node* instead of once per
    (node, size): each cost callback receives the whole per-arc byte
    array (``blocks * block_nbytes``) and returns the matching cost
    array, so a 200-point message-size sweep costs one tree walk of
    NumPy ops — this is the hot path of the batched prediction engine.

    The chain recursion ``serial + max(rest, parallel + subtree)`` is
    evaluated right-to-left over each node's children, which is exactly
    the scalar evaluator's nesting.
    """
    nb = validate_nbytes_batch(block_nbytes)

    def subtree(rank: int) -> np.ndarray:
        acc = np.zeros(nb.shape)
        for child, blocks in reversed(tree.children[rank]):
            arc_nbytes = blocks * nb
            acc = serial_cost(rank, child, arc_nbytes) + np.maximum(
                acc, parallel_cost(rank, child, arc_nbytes) + subtree(child)
            )
        return acc

    return np.broadcast_to(subtree(tree.root), nb.shape).copy()
