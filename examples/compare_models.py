"""Model shoot-out: estimate all five communication performance models on
the same simulated cluster and rank their linear scatter/gather accuracy.

This is the workload of the paper's Section V in miniature: Hockney
(homogeneous + heterogeneous), LogGP, PLogP and the extended LMO model,
each estimated by its own published procedure, each predicting the same
collectives, judged against the same observations.

Run with::

    python examples/compare_models.py
"""

from repro.benchlib import CollectiveBenchmark
from repro.cluster import LAM_7_1_3, SimulatedCluster, table1_cluster
from repro.experiments.common import ModelSuite
from repro.models import GatherPrediction, predict_linear_gather, predict_linear_scatter
from repro.stats import MeasurementPolicy

KB = 1024
#: Sweep spans the eager/rendezvous leap at 64 KB: PLogP is competitive
#: below it (as the paper notes) but diverges beyond, where LMO holds.
SIZES = tuple(int(m * KB) for m in (2, 8, 16, 32, 48, 96, 128))


def gather_value(model, nbytes: int) -> float:
    pred = predict_linear_gather(model, nbytes)
    return pred.expected if isinstance(pred, GatherPrediction) else float(pred)


def main() -> None:
    estimation_cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3, seed=1)
    suite = ModelSuite.estimate(estimation_cluster)
    print("estimation cost per model (simulated cluster seconds):")
    for name, cost in suite.estimation_times.items():
        print(f"  {name:<14} {cost:8.2f} s")
    print()

    observation_cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3, seed=2)
    bench = CollectiveBenchmark(
        observation_cluster, policy=MeasurementPolicy(max_reps=15)
    )
    models = {
        "hom-Hockney": suite.hockney_hom,
        "het-Hockney": suite.hockney_het,
        "LogGP": suite.loggp,
        "PLogP": suite.plogp,
        "LMO": suite.lmo,
    }

    for operation, predict in (
        ("scatter", lambda model, m: float(predict_linear_scatter(model, m))),
        ("gather", gather_value),
    ):
        print(f"linear {operation}: mean relative prediction error")
        observed = {m: bench.measure(operation, "linear", m).mean for m in SIZES}
        scores = {}
        for name, model in models.items():
            errors = [
                abs(predict(model, m) - observed[m]) / observed[m] for m in SIZES
            ]
            scores[name] = sum(errors) / len(errors)
        for rank, (name, err) in enumerate(
            sorted(scores.items(), key=lambda kv: kv[1]), start=1
        ):
            print(f"  {rank}. {name:<12} {err:7.1%}")
        print()

    print("(the paper's conclusion: the LMO model, which fully separates")
    print(" constant/variable processor/network contributions, predicts")
    print(" collectives far more accurately than the traditional models)")


if __name__ == "__main__":
    main()
