"""Tests for Hockney / LogP / LogGP / PLogP estimation."""

import numpy as np
import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.estimation import (
    AnalyticEngine,
    DESEngine,
    estimate_heterogeneous_hockney,
    estimate_hockney,
    estimate_loggp,
    estimate_logp,
    estimate_plogp,
)
from repro.estimation.plogp_est import adaptive_sizes

KB = 1024


def make_engines(n=5, seed=0):
    gt = GroundTruth.random(n, seed=seed)
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    return DESEngine(cluster), AnalyticEngine(gt), gt


# ----------------------------------------------------------------- Hockney
def test_hockney_recovers_alpha_beta_exactly_from_des():
    """On the quiet DES the roundtrip *is* alpha + beta M, so the Hockney
    estimator must be exact: alpha = C_i+L+C_j, beta = t_i+1/b+t_j."""
    des, _ana, gt = make_engines(seed=1)
    model = estimate_heterogeneous_hockney(des, reps=1).model
    mask = ~np.eye(gt.n, dtype=bool)
    assert np.allclose(model.alpha[mask], gt.hockney_alpha()[mask], rtol=1e-9)
    assert np.allclose(model.beta[mask], gt.hockney_beta()[mask], rtol=1e-9)


def test_hockney_homogeneous_average():
    des, _ana, gt = make_engines(seed=2)
    hom = estimate_hockney(des, reps=1)
    mask = ~np.eye(gt.n, dtype=bool)
    assert hom.alpha == pytest.approx(gt.hockney_alpha()[mask].mean(), rel=1e-9)
    assert hom.beta == pytest.approx(gt.hockney_beta()[mask].mean(), rel=1e-9)


def test_hockney_parallel_estimation_cheaper_same_model():
    des_serial, _a, gt = make_engines(n=8, seed=3)
    serial = estimate_heterogeneous_hockney(des_serial, reps=1, parallel=False)
    des_parallel = DESEngine(des_serial.cluster)
    parallel = estimate_heterogeneous_hockney(des_parallel, reps=1, parallel=True)
    assert np.allclose(serial.model.alpha, parallel.model.alpha, rtol=1e-12)
    assert parallel.estimation_time < serial.estimation_time / 2


def test_hockney_rejects_bad_probe():
    _des, ana, _gt = make_engines()
    with pytest.raises(ValueError):
        estimate_heterogeneous_hockney(ana, probe_nbytes=0)


# ------------------------------------------------------------- LogP family
def test_logp_overheads_match_processor_costs():
    des, _ana, gt = make_engines(seed=4)
    result = estimate_logp(des, reps=1, pairs=[(0, 1)])
    assert result.o_s == pytest.approx(gt.send_cost(0, KB), rel=1e-9)
    assert result.o_r == pytest.approx(gt.send_cost(1, KB), rel=1e-9)


def test_logp_latency_positive_and_close_to_wire():
    des, _ana, gt = make_engines(seed=5)
    result = estimate_logp(des, reps=1, pairs=[(0, 1)])
    # L = RTT/2 - o_s - o_r = L_01 + M/beta at the probe size.
    expected = gt.L[0, 1] + 1024 / gt.beta[0, 1]
    assert result.L == pytest.approx(expected, rel=1e-6)


def test_loggp_G_close_to_bottleneck_per_byte():
    des, _ana, gt = make_engines(seed=6)
    model = estimate_loggp(des, reps=1, pairs=[(0, 1)])
    bottleneck = max(1 / gt.beta[0, 1], gt.t[0], gt.t[1])
    assert model.G == pytest.approx(bottleneck, rel=0.1)


def test_logp_models_constructible():
    _des, ana, _gt = make_engines(seed=7)
    result = estimate_logp(ana, reps=1, pairs=[(0, 1), (2, 3)])
    logp = result.logp(P=5)
    loggp = result.loggp(P=5)
    assert logp.p2p_time(0, 1, 100) > 0
    assert loggp.p2p_time(0, 1, 100_000) > loggp.p2p_time(0, 1, 100)
    assert result.pairs_measured == 2


# -------------------------------------------------------------------- PLogP
def test_adaptive_sizes_inserts_midpoint_at_kink():
    """A piecewise function with a kink must trigger refinement there."""

    def kinked(m):
        return 1.0 * m if m < 10_000 else 10_000 + 10.0 * (m - 10_000)

    values, refinements = adaptive_sizes(kinked, grid=(0, 8_000, 16_000, 32_000),
                                         tolerance=0.2)
    assert refinements >= 1
    assert any(8_000 < m < 16_000 for m in values)


def test_adaptive_sizes_no_refinement_for_linear_function():
    values, refinements = adaptive_sizes(lambda m: 5.0 + 2.0 * m,
                                         grid=(0, 1000, 2000, 4000, 8000))
    assert refinements == 0
    assert set(values) == {0, 1000, 2000, 4000, 8000}


def test_adaptive_sizes_needs_three_points():
    with pytest.raises(ValueError):
        adaptive_sizes(lambda m: m, grid=(0, 1000))


def test_plogp_estimation_produces_usable_model():
    des, _ana, gt = make_engines(seed=8)
    result = estimate_plogp(des, pair=(0, 1), reps=1,
                            grid=(0, 2 * KB, 8 * KB, 32 * KB, 64 * KB))
    model = result.model
    # Gap at large M ~ bottleneck stage time.
    M = 64 * KB
    bottleneck = max(gt.send_cost(0, M), M / gt.beta[0, 1], gt.send_cost(1, M))
    assert model.g(M) == pytest.approx(bottleneck, rel=0.15)
    # o_s / o_r are the processor costs.
    assert model.o_s(8 * KB) == pytest.approx(gt.send_cost(0, 8 * KB), rel=1e-6)
    assert model.o_r(8 * KB) == pytest.approx(gt.send_cost(1, 8 * KB), rel=1e-6)
    assert model.L >= 0
    assert result.estimation_time > 0


def test_plogp_estimation_cost_exceeds_hockney():
    """The paper: PLogP estimation is the most time-consuming."""
    des1, _a, _gt = make_engines(n=4, seed=9)
    hockney_result = estimate_heterogeneous_hockney(des1, reps=1, parallel=False)
    des2 = DESEngine(des1.cluster)
    plogp_result = estimate_plogp(des2, pair=(0, 1), reps=1)
    assert plogp_result.estimation_time > hockney_result.estimation_time


def test_plogp_heterogeneous_overheads_match_processors():
    """The paper's per-processor overhead averaging recovers each node's
    own C + M t (our o_s and o_r are both the processor cost)."""
    from repro.estimation.plogp_est import estimate_plogp_heterogeneous_overheads

    des, _ana, gt = make_engines(n=4, seed=10)
    overheads = estimate_plogp_heterogeneous_overheads(
        des, sizes=(0, 8 * KB, 32 * KB), reps=1
    )
    assert set(overheads) == {0, 1, 2, 3}
    for proc, (o_s, o_r) in overheads.items():
        for m in (0, 8 * KB, 32 * KB):
            assert o_s(m) == pytest.approx(gt.send_cost(proc, m), rel=1e-9)
            assert o_r(m) == pytest.approx(gt.send_cost(proc, m), rel=1e-9)


def test_plogp_heterogeneous_overheads_distinguish_nodes():
    from repro.estimation.plogp_est import estimate_plogp_heterogeneous_overheads

    des, _ana, gt = make_engines(n=4, seed=11)
    overheads = estimate_plogp_heterogeneous_overheads(des, sizes=(0, 8 * KB), reps=1)
    values = [overheads[p][0](0) for p in range(4)]
    assert len({round(v, 9) for v in values}) == 4  # all different (het C's)
