"""Tests for MPI/TCP irregularity profiles."""

import pytest

from repro.cluster import IDEAL, LAM_7_1_3, MPICH_1_2_7, OPEN_MPI

KB = 1024


def test_lam_thresholds_match_paper():
    """Paper Sec. III: M1 = 4 KB, M2 = 65 KB for LAM 7.1.3 on 16 nodes.

    M2 is the eager/rendezvous switch (LAM: 64 KB); the paper's 65 KB is
    its measurement of that boundary."""
    assert LAM_7_1_3.m1(n_senders=15) == pytest.approx(4 * KB, rel=0.05)
    assert LAM_7_1_3.m2 == pytest.approx(65 * KB, rel=0.03)


def test_mpich_thresholds_match_paper():
    """Paper Sec. III: M1 = 3 KB, M2 = 125 KB for MPICH 1.2.7 on 16 nodes."""
    assert MPICH_1_2_7.m1(n_senders=15) == pytest.approx(3 * KB, rel=0.05)
    assert MPICH_1_2_7.m2 == pytest.approx(125 * KB, rel=0.03)


def test_lam_eager_threshold_is_64kb():
    """Paper Fig. 4: the scatter leap sits at 64 KB under LAM."""
    assert LAM_7_1_3.eager_threshold == 64 * KB
    assert not LAM_7_1_3.uses_rendezvous(64 * KB)
    assert LAM_7_1_3.uses_rendezvous(64 * KB + 1)


def test_fragment_count():
    assert LAM_7_1_3.fragments(1) == 1
    assert LAM_7_1_3.fragments(64 * KB) == 1
    assert LAM_7_1_3.fragments(64 * KB + 1) == 2
    assert LAM_7_1_3.fragments(256 * KB) == 4


def test_protocol_overhead_zero_below_eager():
    assert LAM_7_1_3.sender_protocol_overhead(10 * KB) == 0.0


def test_protocol_overhead_grows_stepwise_above_eager():
    just_above = LAM_7_1_3.sender_protocol_overhead(65 * KB)
    two_frags = LAM_7_1_3.sender_protocol_overhead(128 * KB)
    three_frags = LAM_7_1_3.sender_protocol_overhead(130 * KB)
    assert just_above == pytest.approx(LAM_7_1_3.rendezvous_overhead + LAM_7_1_3.fragment_overhead)
    assert two_frags == just_above  # still 2 fragments
    assert three_frags == pytest.approx(just_above + LAM_7_1_3.fragment_overhead)


def test_escalation_probability_zero_below_threshold():
    assert LAM_7_1_3.escalation_probability(30 * KB, n_senders=15) == 0.0


def test_escalation_probability_rises_with_backlog():
    p_low = LAM_7_1_3.escalation_probability(70 * KB, n_senders=15)
    p_high = LAM_7_1_3.escalation_probability(110 * KB, n_senders=15)
    assert 0 < p_low < p_high <= LAM_7_1_3.escalation_p_max


def test_escalation_requires_multiple_senders():
    """A single self-clocked TCP stream never RTOs in this model."""
    assert LAM_7_1_3.escalation_probability(500 * KB, n_senders=1) == 0.0
    assert LAM_7_1_3.m1(n_senders=1) == float("inf")


def test_ideal_profile_has_no_irregularities():
    assert not IDEAL.uses_rendezvous(1 << 40)
    assert IDEAL.sender_protocol_overhead(1 << 40) == 0.0
    assert IDEAL.escalation_probability(1e12, n_senders=100) == 0.0


def test_with_overrides_creates_modified_copy():
    quiet = LAM_7_1_3.with_overrides(escalation_p_max=0.0)
    assert quiet.escalation_probability(200 * KB, n_senders=15) == 0.0
    assert LAM_7_1_3.escalation_p_max > 0  # original untouched
    assert quiet.eager_threshold == LAM_7_1_3.eager_threshold


def test_open_mpi_profile_sane():
    assert OPEN_MPI.eager_threshold == 64 * KB
    assert OPEN_MPI.m2 == 64 * KB
