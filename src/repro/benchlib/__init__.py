"""MPIBlib-style benchmarking of collectives on the simulated cluster."""

from repro.benchlib.driver import BenchmarkPoint, CollectiveBenchmark
from repro.benchlib.suite import BenchmarkSuite, SuiteResult
from repro.benchlib.timing import TIMING_METHODS, duration

__all__ = [
    "BenchmarkPoint",
    "BenchmarkSuite",
    "CollectiveBenchmark",
    "SuiteResult",
    "TIMING_METHODS",
    "duration",
]
