"""Microbenchmark: the DES kernel's events/sec baseline, profiled.

Runs the canned kernel workload (:mod:`repro.benchlib.kernelprof`) twice:
an uninstrumented pass whose ``events_per_second`` /
``wall_seconds_per_million_events`` numbers become the committed baseline
the CI regression gate tracks, and a profiled pass whose per-event-type
breakdown lands in the same document.  The seeded cluster makes the event
stream identical run to run, so the profiler's frame *counts* are exact —
asserted below — and only the timing side is machine-dependent.

Artifacts at the repo root:

* ``BENCH_kernel_profile.json`` — gated by
  ``benchmarks/check_bench_regression.py`` on
  ``wall_seconds_per_million_events``;
* ``kernel_profile.speedscope.json`` — drop onto https://speedscope.app
  (uploaded by the CI bench job).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_profile.py -s
"""

import json
from pathlib import Path

from repro.benchlib.kernelprof import kernel_profile_document, run_kernel_workload
from repro.obs import prof as _prof

_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = _ROOT / "BENCH_kernel_profile.json"
SPEEDSCOPE_PATH = _ROOT / "kernel_profile.speedscope.json"

NODES = 8
REPS = 2
SEED = 0


def test_kernel_profile_baseline_and_artifacts():
    doc, profiler = kernel_profile_document(nodes=NODES, reps=REPS, seed=SEED)

    # The baseline pass actually exercised the kernel...
    assert doc["events_processed"] > 0
    assert doc["events_per_second"] > 0
    assert doc["wall_seconds_per_million_events"] > 0
    # ...and the profiled pass saw the *same* deterministic event stream.
    assert doc["profiled_events"] == doc["events_processed"]
    assert doc["profile"]["frames"], "profiled pass produced no frames"
    # Kernel events are attributed per event type / handler process.
    names = {frame["name"] for frame in doc["profile"]["frames"]}
    assert any("proc:" in name for name in names), names

    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    SPEEDSCOPE_PATH.write_text(
        json.dumps(profiler.speedscope("kernel profile"),
                   separators=(",", ":")) + "\n"
    )
    print(f"\n{doc['events_processed']} events at "
          f"{doc['events_per_second']:,.0f} events/s "
          f"({doc['wall_seconds_per_million_events']:.3f} s/M events) "
          f"-> {RESULT_PATH.name}, {SPEEDSCOPE_PATH.name}")


def test_kernel_profile_frame_counts_are_deterministic():
    """Same seed, same workload => byte-identical frame counts."""
    with _prof.profiling() as first:
        run_kernel_workload(nodes=4, sizes=(1024,), reps=1, seed=3)
    with _prof.profiling() as second:
        run_kernel_workload(nodes=4, sizes=(1024,), reps=1, seed=3)
    counts_a = {name: s.count for name, s in first.stats().items()}
    counts_b = {name: s.count for name, s in second.stats().items()}
    assert counts_a and counts_a == counts_b
