"""Tests for drift detection and fault injection."""

import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.estimation import DESEngine, estimate_extended_lmo
from repro.estimation.drift import DriftReport, detect_model_drift, spot_check_pairs
from repro.models import ExtendedLMOModel

KB = 1024


def fresh(n=8, seed=30):
    gt = GroundTruth.random(n, seed=seed)
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    return cluster, ExtendedLMOModel.from_ground_truth(gt)


# ------------------------------------------------------------- spot checks
def test_spot_check_pairs_cover_every_node_twice():
    pairs = spot_check_pairs(8)
    touch: dict[int, int] = {}
    for a, b in pairs:
        touch[a] = touch.get(a, 0) + 1
        touch[b] = touch.get(b, 0) + 1
    assert set(touch) == set(range(8))
    assert all(count >= 2 for count in touch.values())


def test_spot_check_validation():
    with pytest.raises(ValueError):
        spot_check_pairs(1)
    with pytest.raises(ValueError):
        spot_check_pairs(8, coverage=0)


# ---------------------------------------------------------------- detection
def test_fresh_model_shows_no_drift():
    cluster, model = fresh()
    report = detect_model_drift(model, DESEngine(cluster), reps=1)
    assert not report.drifted
    assert report.worst_error < 0.05
    assert report.drifted_nodes() == []


def test_degraded_node_detected_and_localized():
    cluster, model = fresh(seed=31)
    cluster.degrade_node(3, factor=4.0)
    report = detect_model_drift(model, DESEngine(cluster), reps=1)
    assert report.drifted
    assert 3 in report.drifted_nodes()
    # The worst pair involves the degraded node.
    assert 3 in report.worst_pair


def test_mild_degradation_below_threshold_tolerated():
    cluster, model = fresh(seed=32)
    cluster.degrade_node(2, factor=1.05)
    report = detect_model_drift(model, DESEngine(cluster), threshold=0.15, reps=1)
    assert not report.drifted


def test_reestimation_clears_drift():
    cluster, _model = fresh(seed=33)
    cluster.degrade_node(5, factor=3.0)
    fresh_model = estimate_extended_lmo(DESEngine(cluster), reps=1, clamp=True).model
    report = detect_model_drift(fresh_model, DESEngine(cluster), reps=1)
    assert not report.drifted


def test_report_accessors():
    report = DriftReport(errors={(0, 1): 0.5, (2, 3): 0.01}, threshold=0.15,
                         probe_nbytes=KB)
    assert report.worst_pair == (0, 1)
    assert report.worst_error == 0.5
    assert report.drifted
    assert report.drifted_nodes() == []  # single drifted pair: inconclusive


def test_detect_validation():
    cluster, model = fresh()
    with pytest.raises(ValueError):
        detect_model_drift(model, DESEngine(cluster), probe_nbytes=0)


# ------------------------------------------------------------ fault injection
def test_degrade_node_validation():
    cluster, _model = fresh()
    with pytest.raises(ValueError):
        cluster.degrade_node(99, 2.0)
    with pytest.raises(ValueError):
        cluster.degrade_node(0, 0.0)


def test_degrade_node_slows_transfers():
    cluster, _model = fresh(seed=34)
    before = cluster.ground_truth.p2p_time(3, 4, 32 * KB)
    cluster.degrade_node(3, factor=2.0)
    after = cluster.ground_truth.p2p_time(3, 4, 32 * KB)
    assert after > before
    # Pairs not involving node 3 are untouched.
    assert cluster.ground_truth.p2p_time(1, 2, 32 * KB) == pytest.approx(
        GroundTruth.random(8, seed=34).p2p_time(1, 2, 32 * KB)
    )
