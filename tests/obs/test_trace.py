"""Unit tests for the cross-process trace context (W3C traceparent style)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import trace as _trace
from repro.obs.trace import TraceContext, new_context, parse_traceparent


def test_new_context_roundtrips_through_header():
    ctx = new_context(random.Random(7))
    parsed = parse_traceparent(ctx.to_traceparent())
    assert parsed == ctx


def test_child_keeps_trace_id_fresh_span_id():
    rng = random.Random(11)
    ctx = new_context(rng)
    kid = ctx.child(rng)
    assert kid.trace_id == ctx.trace_id
    assert kid.span_id != ctx.span_id
    assert kid.sampled == ctx.sampled


def test_unsampled_flag_roundtrips():
    ctx = new_context(random.Random(3), sampled=False)
    header = ctx.to_traceparent()
    assert header.endswith("-00")
    parsed = parse_traceparent(header)
    assert parsed is not None and parsed.sampled is False


def test_context_rejects_malformed_ids():
    with pytest.raises(ValueError):
        TraceContext("0" * 32, "1" * 16)
    with pytest.raises(ValueError):
        TraceContext("a" * 32, "XYZ")


@pytest.mark.parametrize("header", [
    None,
    42,
    "",
    "00",
    "00-abc-def-01",
    "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
    "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
    "00-" + "A" * 32 + "-" + "b" * 16 + "-01",  # uppercase hex is malformed
    "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # reserved version
    "00-" + "a" * 32 + "-" + "b" * 16 + "-01-extra",  # v00 is exactly 4 fields
    "0g-" + "a" * 32 + "-" + "b" * 16 + "-01",  # non-hex version
    "00-" + "a" * 32 + "-" + "b" * 16 + "-0g",  # non-hex flags
])
def test_parse_rejects_malformed_headers(header):
    assert parse_traceparent(header) is None


def test_parse_accepts_unknown_future_version_with_extra_fields():
    header = "01-" + "a" * 32 + "-" + "b" * 16 + "-01-whatever"
    parsed = parse_traceparent(header)
    assert parsed is not None and parsed.trace_id == "a" * 32


def test_use_restores_previous_context_even_on_raise():
    outer = new_context(random.Random(1))
    with _trace.use(outer):
        with pytest.raises(RuntimeError):
            with _trace.use(new_context(random.Random(2))):
                raise RuntimeError("boom")
        assert _trace.current() is outer
    assert _trace.current() is None


def test_current_traceparent_tracks_context():
    assert _trace.current_traceparent() is None
    ctx = new_context(random.Random(5))
    with _trace.use(ctx):
        assert _trace.current_traceparent() == ctx.to_traceparent()
    assert _trace.current_traceparent() is None


def test_from_environ_parses_and_degrades():
    ctx = new_context(random.Random(9))
    assert _trace.from_environ({_trace.ENV_VAR: ctx.to_traceparent()}) == ctx
    assert _trace.from_environ({_trace.ENV_VAR: "garbage"}) is None
    assert _trace.from_environ({}) is None


# -- property tests ---------------------------------------------------------------
_hex_chars = "0123456789abcdef"
_trace_ids = st.text(_hex_chars, min_size=32, max_size=32).filter(
    lambda s: s != "0" * 32
)
_span_ids = st.text(_hex_chars, min_size=16, max_size=16).filter(
    lambda s: s != "0" * 16
)


@given(trace_id=_trace_ids, span_id=_span_ids, sampled=st.booleans())
def test_any_valid_context_roundtrips(trace_id, span_id, sampled):
    ctx = TraceContext(trace_id, span_id, sampled)
    assert parse_traceparent(ctx.to_traceparent()) == ctx


@given(header=st.text(max_size=80))
def test_arbitrary_text_never_raises(header):
    parsed = parse_traceparent(header)
    # Either untraced fallback or a validly-shaped context — never an error.
    if parsed is not None:
        assert parse_traceparent(parsed.to_traceparent()) == parsed
