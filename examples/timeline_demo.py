"""Timelines: watch the cluster execute collectives.

The tracer records every CPU and switch-port activity; the ASCII Gantt
charts below make the paper's arguments visible at a glance:

* linear scatter — the root CPU is one solid stripe (the serialized part
  the LMO formula charges as ``(n-1)(C_r + M t_r)``) while the wires and
  receivers overlap underneath it;
* linear gather in the escalation region — a TCP retransmission timeout
  ('R') dwarfs the actual work;
* the LMO-optimized split gather — the same bytes, no escalations.

Run with::

    python examples/timeline_demo.py
"""

from repro.cluster import LAM_7_1_3, NoiseModel, SimulatedCluster, table1_cluster
from repro.models import GatherIrregularity
from repro.mpi import run_collective, run_ranks
from repro.optimize import optimized_gather
from repro.simlib import Tracer

KB = 1024


def fresh_cluster(seed=11):
    return SimulatedCluster(
        table1_cluster(), profile=LAM_7_1_3, noise=NoiseModel.none(), seed=seed
    )


def show(title: str, tracer: Tracer, lanes, width=76) -> None:
    print(f"--- {title} ---")
    print(tracer.render(width=width, lanes=lanes))
    print()


def main() -> None:
    lanes = ["cpu0", "port0", "cpu1", "port1", "cpu12", "port12", "cpu15", "port15"]

    # 1. linear scatter: serialized root, parallel everything else.
    cluster = fresh_cluster()
    tracer = Tracer()
    cluster.attach_tracer(tracer)
    run = run_collective(cluster, "scatter", "linear", nbytes=32 * KB)
    show(f"linear scatter, 32 KB blocks ({run.time * 1e3:.2f} ms) — "
         "s=send, r=recv, w=wire",
         tracer, [l for l in lanes if l != "port0"])

    # 2. gather with an escalation: find a run that pays an RTO.
    for attempt in range(20):
        cluster = fresh_cluster(seed=100 + attempt)
        tracer = Tracer()
        cluster.attach_tracer(tracer)
        run = run_collective(cluster, "gather", "linear", nbytes=32 * KB)
        if run.time > 0.2:
            break
    show(f"linear gather, 32 KB blocks, escalated run ({run.time * 1e3:.0f} ms) — "
         "R = TCP retransmission timeout",
         tracer, ["cpu0", "port0"])

    # 3. the optimized gather: same data, chunks below M1, no RTOs.
    cluster = fresh_cluster(seed=100 + attempt)  # same hardware as the RTO run
    tracer = Tracer()
    cluster.attach_tracer(tracer)
    irregularity = GatherIrregularity(m1=4 * KB, m2=64 * KB, escalation_value=0.25)
    programs = {
        rank: (lambda comm: optimized_gather(comm, 0, 32 * KB, irregularity))
        for rank in range(cluster.n)
    }
    results = run_ranks(cluster, programs)
    makespan = max(res.finish for res in results.values())
    show(f"LMO-optimized split gather, same 32 KB blocks ({makespan * 1e3:.2f} ms)",
         tracer, ["cpu0", "port0"])

    print("the optimized gather's port lane shows many small, clean chunks;")
    print("the escalated native run is one long RTO stall.")


if __name__ == "__main__":
    main()
