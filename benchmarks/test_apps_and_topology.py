"""Benches of the mini-applications and the multi-switch substrate."""

import numpy as np

from repro.apps import run_jacobi, run_matvec
from repro.cluster import (
    IDEAL,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    TwoSwitchTopology,
    random_cluster,
)
from repro.mpi import run_collective

KB = 1024


def quiet_cluster(n=8, seed=130):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed, beta_range=(0.9e8, 1.1e8)),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


def test_bench_matvec(benchmark):
    """Kernel: a full distributed 256x128 matvec (scatterv+bcast+gatherv)."""
    cluster = quiet_cluster()
    rng = np.random.default_rng(0)
    a = rng.normal(size=(256, 128))
    x = rng.normal(size=128)

    def kernel():
        return run_matvec(cluster, a, x)

    result = benchmark(kernel)
    assert result.max_error(a, x) < 1e-10


def test_bench_jacobi(benchmark):
    """Kernel: 50 Jacobi sweeps with halo exchange and residual checks."""
    cluster = quiet_cluster(seed=131)

    def kernel():
        return run_jacobi(cluster, npoints=64, iterations=50)

    result = benchmark(kernel)
    assert result.makespan > 0


def test_bench_cross_switch_scatter(benchmark):
    """Kernel: a 16 KB scatter over two cascaded switches (uplink shared)."""
    cluster = quiet_cluster(seed=132)
    cluster.attach_topology(TwoSwitchTopology.split_evenly(8))

    def kernel():
        return run_collective(cluster, "scatter", "linear", nbytes=16 * KB).time

    single = quiet_cluster(seed=132)
    t_single = run_collective(single, "scatter", "linear", nbytes=16 * KB).time
    t_two = benchmark(kernel)
    assert t_two > t_single  # the uplink always costs something
