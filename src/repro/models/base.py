"""Common protocol of communication performance models.

Two families exist, mirroring Section II of the paper:

* **homogeneous** models — one set of scalar parameters for the whole
  cluster; ``p2p_time`` ignores which processors communicate;
* **heterogeneous** models — per-processor and/or per-link parameters.

Every model exposes two prediction entry points so collective-prediction
code can treat them uniformly (homogeneous models simply ignore the
ranks):

* ``p2p_time(i, j, nbytes)`` — one scalar prediction;
* ``p2p_time_batch(i, j, nbytes)`` — the vectorized path: ``i``, ``j``
  and ``nbytes`` are broadcast against each other (NumPy rules) and the
  predictions come back as one array.

The scalar path is implemented *on top of* the batch path in every model
(a one-element batch), so the two can never diverge.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, Union, runtime_checkable

import numpy as np

__all__ = [
    "ArrayLike",
    "CommunicationModel",
    "broadcast_result",
    "decode_array",
    "encode_array",
    "validate_nbytes",
    "validate_nbytes_batch",
    "validate_rank",
    "validate_rank_batch",
]

#: Anything the batch path accepts for ranks or message sizes.
ArrayLike = Union[int, float, Sequence, np.ndarray]


@runtime_checkable
class CommunicationModel(Protocol):
    """Anything that predicts point-to-point communication time."""

    #: Number of processors the model describes.
    n: int

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """Predicted time to send ``nbytes`` from processor i to j (seconds)."""
        ...

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`p2p_time` over broadcastable rank/size arrays."""
        ...


def validate_rank(n: int, *ranks: int) -> None:
    """Raise if any rank is outside ``0..n-1``."""
    for rank in ranks:
        if not (0 <= rank < n):
            raise ValueError(f"rank {rank} out of range for {n} processors")


def validate_nbytes(nbytes: float) -> None:
    """Raise on negative or non-finite message sizes."""
    if not math.isfinite(nbytes):
        raise ValueError(f"non-finite message size {nbytes!r}")
    if nbytes < 0:
        raise ValueError(f"negative message size {nbytes!r}")


def validate_rank_batch(n: int, *ranks: ArrayLike) -> tuple[np.ndarray, ...]:
    """Array counterpart of :func:`validate_rank`; returns integer arrays."""
    out = []
    for rank in ranks:
        arr = np.asarray(rank)
        if arr.size:
            bad = (arr < 0) | (arr >= n)
            if bad.any():
                first = np.asarray(arr)[bad].flat[0]
                raise ValueError(f"rank {int(first)} out of range for {n} processors")
        out.append(arr)
    return tuple(out)


def validate_nbytes_batch(nbytes: ArrayLike) -> np.ndarray:
    """Array counterpart of :func:`validate_nbytes`; returns a float array.

    Rejects negative *and* non-finite (NaN/inf) sizes — NaN in particular
    slips through a plain ``< 0`` check.
    """
    arr = np.asarray(nbytes, dtype=float)
    if arr.size:
        finite = np.isfinite(arr)
        if not finite.all():
            first = arr[~finite].flat[0]
            raise ValueError(f"non-finite message size {float(first)!r}")
        if (arr < 0).any():
            first = arr[arr < 0].flat[0]
            raise ValueError(f"negative message size {float(first)!r}")
    return arr


def broadcast_result(values: ArrayLike, *operands: ArrayLike) -> np.ndarray:
    """Broadcast ``values`` to the joint shape of all ``operands``.

    Homogeneous models predict the same time for every pair, but the
    batch contract says the result shape is the broadcast of ``(i, j,
    nbytes)`` — this pads the missing axes.
    """
    shape = np.broadcast_shapes(*(np.shape(op) for op in operands))
    # .copy() (not ascontiguousarray, which promotes 0-d to 1-d) keeps
    # scalar inputs producing 0-d outputs.
    return np.broadcast_to(np.asarray(values, dtype=float), shape).copy()


# -- serialization helpers (schema v2) ----------------------------------------
def encode_array(values: np.ndarray) -> list:
    """JSON-safe nested lists (inf encoded as the string ``'inf'``)."""

    def encode(x: float):
        return "inf" if np.isinf(x) else float(x)

    if values.ndim == 1:
        return [encode(x) for x in values]
    return [[encode(x) for x in row] for row in values]


def decode_array(values: list) -> np.ndarray:
    """Inverse of :func:`encode_array`."""

    def decode(x):
        return np.inf if x == "inf" else float(x)

    if values and isinstance(values[0], list):
        return np.array([[decode(x) for x in row] for row in values])
    return np.array([decode(x) for x in values])
