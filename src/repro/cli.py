"""Command-line interface: ``python -m repro <subcommand>``.

Mirrors the workflow of the paper's software tool [13]: describe the
cluster, estimate a model's parameters (to JSON), predict collectives
with it, measure them for comparison, visualize a run, and regenerate
the paper's experiments.  All model I/O, estimation, prediction and
measurement route through the :mod:`repro.api` facade.

Every subcommand takes ``--format {text,json}``; JSON goes to stdout,
errors always go to stderr (see ``docs/cli.md``).

Subcommands
-----------
describe    print the Table I cluster and its derived parameters
estimate    run a model's estimation procedure, write the model as JSON
predict     evaluate a collective prediction from a saved model
measure     benchmark a collective on the simulated cluster (CI 95%/2.5%)
suite       benchmark the whole algorithm menu as a comparison table
partition   min-makespan data distribution from a saved LMO model
plan        choose algorithms for an application's collective calls
trace       run one collective and print its activity timeline (or export
            it as Chrome trace JSON: ``trace export --chrome out.json``)
drift       spot-check a saved model against the (possibly degraded) cluster
chaos       fault-injection demo: estimate, inject, self-heal, report
campaign    durable estimation sweep: run / resume / status on a journal
serve       run the always-on prediction daemon (NDJSON over TCP/Unix)
client      send one request to a running daemon and print the reply
obs         inspect/export a telemetry snapshot written by --metrics-out
            (report / export / dashboard / watch — the dashboard is one
            self-contained HTML file, the model-fidelity observatory)
experiment  regenerate one of the paper's tables/figures (optional CSV)
report      regenerate all of them (markdown)

``campaign run/resume``, ``chaos`` and ``suite`` accept
``--metrics-out PATH``: telemetry (:mod:`repro.obs`) is enabled for the
command and the full snapshot document is written to PATH afterwards,
ready for ``repro obs report`` / ``repro obs export``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro import api
from repro.cluster import (
    ClusterSpec,
    FaultInjector,
    FaultPlan,
    FlakyLink,
    LinkDegradation,
    NodeCrash,
    NodeHang,
    NodeSlowdown,
    NoiseModel,
    ProcessCrash,
    SimulatedCluster,
    SimulatedCrash,
    synthesize_ground_truth,
    table1_cluster,
)
from repro.estimation import (
    Campaign,
    CampaignConfig,
    DESEngine,
    JournalError,
    MaintainerPolicy,
    ModelMaintainer,
    detect_model_drift,
)
from repro.mpi import run_collective
from repro.obs import (
    chrome_trace,
    list_traces,
    render_report,
    snapshot_prometheus,
    stitch_chrome_trace,
    unwrap_snapshot,
    validate_snapshot,
)
from repro.obs import insight as _insight
from repro.obs import prof as _prof
from repro.obs import runtime as _obs
from repro.obs import trace as _tracectx
from repro.simlib import Tracer

__all__ = ["main"]

PROFILES = api.PROFILES
KB = 1024

#: The full prediction menu the ``predict`` subcommand accepts; which
#: pairs actually work depends on the model (api.available_algorithms).
PREDICT_OPERATIONS = [
    "scatter", "gather", "bcast", "allgather", "allreduce", "reduce_scatter",
]
PREDICT_ALGORITHMS = [
    "linear", "binomial", "pipeline", "van_de_geijn", "ring",
    "recursive_doubling", "reduce_bcast", "rabenseifner",
]


def _emit(args, text: str, payload: dict) -> None:
    """Print ``text`` or, under ``--format json``, the payload."""
    if getattr(args, "format", "text") == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(text)


def _metrics_begin(args):
    """Enable telemetry when the command was given ``--metrics-out``."""
    if getattr(args, "metrics_out", None) is None:
        return None
    return _obs.enable(fresh=True)


def _metrics_end(args, tel) -> None:
    """Write the telemetry snapshot document and switch telemetry off."""
    if tel is None:
        return
    try:
        with open(args.metrics_out, "w") as handle:
            json.dump(tel.to_dict(), handle, indent=2)
        if getattr(args, "format", "text") == "text":
            print(f"telemetry snapshot written to {args.metrics_out}")
    finally:
        _obs.disable()


def make_cluster(args) -> SimulatedCluster:
    return api.load_cluster(profile=args.profile, seed=args.seed)


def cmd_describe(args) -> int:
    spec = table1_cluster()
    gt = synthesize_ground_truth(spec, seed=args.seed)
    profile = PROFILES[args.profile]
    lines = [spec.describe(), "", f"derived parameters (seed {args.seed}):"]
    derived = []
    for rank, node in enumerate(spec.nodes):
        lines.append(f"  rank {rank:2d} {node.processor:<18} "
                     f"C={gt.C[rank] * 1e6:6.1f} us  t={gt.t[rank] * 1e9:5.2f} ns/B")
        derived.append({"rank": rank, "processor": node.processor,
                        "C": float(gt.C[rank]), "t": float(gt.t[rank])})
    lines.append(f"\nMPI profile {profile.name}: eager limit "
                 f"{profile.eager_threshold} B, M1(15 senders)="
                 f"{profile.m1(15) / KB:.1f} KB, M2={profile.m2 / KB:.1f} KB")
    _emit(args, "\n".join(lines), {
        "cluster": spec.to_dict(),
        "profile": {"name": profile.name,
                    "eager_threshold": profile.eager_threshold},
        "derived": derived,
    })
    return 0


def cmd_estimate(args) -> int:
    cluster = make_cluster(args)
    outcome = api.estimate(cluster, model=args.model, reps=args.reps,
                           quick=args.quick, empirical=args.empirical)
    api.save_model(outcome.model, args.out)
    _emit(args,
          f"estimated {args.model} model on {cluster.n} nodes "
          f"({outcome.estimation_time:.2f} s of cluster time) -> {args.out}",
          {**outcome.to_dict(), "out": args.out})
    return 0


def cmd_predict(args) -> int:
    model = api.load_model(args.model_file)
    kwargs = {"combine": (lambda a, b: a)} if args.operation in (
        "allreduce", "reduce_scatter") else {}
    try:
        prediction = api.predict(model, args.operation, args.algorithm,
                                 args.nbytes, root=args.root, **kwargs)
    except (KeyError, AttributeError, TypeError):
        print(f"no prediction formula for {args.operation}/{args.algorithm}",
              file=sys.stderr)
        return 2
    lines = []
    if prediction.regime is not None:
        lines.append(f"regime: {prediction.regime}, escalation probability "
                     f"{prediction.escalation_probability:.2f}")
    lines.append(f"predicted {args.operation}/{args.algorithm} of "
                 f"{args.nbytes} B on {model.n} nodes: "
                 f"{prediction.seconds * 1e3:.3f} ms")
    from repro.predict_service import cache_info

    _emit(args, "\n".join(lines),
          {**prediction.to_dict(), "cache": cache_info()})
    return 0


def cmd_measure(args) -> int:
    cluster = make_cluster(args)
    measurement = api.measure(cluster, args.operation, args.algorithm,
                              args.nbytes, root=args.root,
                              max_reps=args.max_reps)
    _emit(args,
          f"measured {args.operation}/{args.algorithm} of {args.nbytes} B: "
          f"{measurement.mean * 1e3:.3f} ms +- "
          f"{measurement.ci_halfwidth * 1e3:.3f} ms "
          f"({measurement.reps} reps, CI {measurement.confidence:.0%})",
          measurement.to_dict())
    return 0


def cmd_trace(args) -> int:
    cluster = make_cluster(args)
    cluster.noise = NoiseModel.none()
    tracer = Tracer()
    cluster.attach_tracer(tracer)
    run_collective(cluster, args.operation, args.algorithm, args.nbytes, root=args.root)
    if args.action == "export":
        if not args.chrome:
            print("trace export needs --chrome OUT.json", file=sys.stderr)
            return 2
        trace_json = chrome_trace(tracer=tracer)
        with open(args.chrome, "w") as handle:
            handle.write(trace_json)
        _emit(args,
              f"Chrome trace ({len(tracer.intervals)} intervals, "
              f"{len(tracer.lanes())} lanes) written to {args.chrome}",
              {"out": args.chrome, "intervals": len(tracer.intervals),
               "lanes": tracer.lanes()})
        return 0
    lanes = [f"cpu{args.root}"] + [
        lane for lane in tracer.lanes() if lane != f"cpu{args.root}"
    ]
    rendered = tracer.render(width=args.width, lanes=lanes[: args.max_lanes])
    utilization = tracer.utilization(f"cpu{args.root}")
    _emit(args,
          rendered + f"\n\nroot CPU utilization: {utilization:.0%} "
          "(s = send processing, r = receive processing, w = wire, R = TCP RTO)",
          {"lanes": lanes[: args.max_lanes], "utilization": float(utilization),
           "rendered": rendered})
    return 0


def cmd_suite(args) -> int:
    from repro.benchlib import BenchmarkSuite
    from repro.stats import MeasurementPolicy

    tel = _metrics_begin(args)
    try:
        cluster = make_cluster(args)
        suite = BenchmarkSuite(
            cluster,
            policy=MeasurementPolicy(min_reps=min(3, args.max_reps),
                                     max_reps=args.max_reps),
        )
        operations = args.operations.split(",") if args.operations else None
        sizes = [int(s) for s in args.sizes.split(",")]
        result = suite.run(operations=operations, sizes=sizes)
        cluster.reset()  # flush the final run's kernel counters
    finally:
        _metrics_end(args, tel)
    _emit(args, result.render(), {
        "points": [
            {"operation": op, "algorithm": algo, "nbytes": m,
             "mean_seconds": point.mean}
            for (op, algo, m), point in sorted(result.points.items())
        ],
    })
    return 0


def cmd_partition(args) -> int:
    import numpy as np

    from repro.optimize import optimal_partition

    model = api.load_model(args.model_file)
    work = (
        [float(w) for w in args.work_rates.split(",")]
        if args.work_rates
        else [args.work_rate] * model.n
    )
    if len(work) != model.n:
        print(f"need {model.n} work rates, got {len(work)}", file=sys.stderr)
        return 2
    part = optimal_partition(model, args.total, np.asarray(work), root=args.root)
    lines = [f"min-makespan distribution of {args.total} bytes "
             f"(predicted {part.predicted_makespan * 1e3:.2f} ms):"]
    for rank, count in enumerate(part.counts):
        lines.append(f"  rank {rank:2d}: {count}")
    _emit(args, "\n".join(lines), {
        "total": args.total,
        "predicted_makespan_seconds": float(part.predicted_makespan),
        "counts": [int(c) for c in part.counts],
    })
    return 0


def cmd_plan(args) -> int:
    from repro.optimize import CollectiveCall, plan_collectives

    model = api.load_model(args.model_file)
    calls = []
    for spec_str in args.calls:
        parts = spec_str.split(":")
        if not (2 <= len(parts) <= 3):
            print(f"bad call spec {spec_str!r}; use op:nbytes[:count]",
                  file=sys.stderr)
            return 2
        operation, nbytes = parts[0], int(parts[1])
        count = int(parts[2]) if len(parts) == 3 else 1
        calls.append(CollectiveCall(operation, nbytes, count=count))
    plan = plan_collectives(model, calls)
    _emit(args, plan.render(), {
        "predicted_total_seconds": float(plan.predicted_total),
        "calls": [
            {"operation": planned.call.operation, "nbytes": planned.call.nbytes,
             "count": planned.call.count, "algorithm": planned.algorithm,
             "predicted_each_seconds": float(planned.predicted_each)}
            for planned in plan.calls
        ],
    })
    return 0


def cmd_drift(args) -> int:
    model = api.load_model(args.model_file)
    cluster = make_cluster(args)
    if cluster.n != model.n:
        print(f"model is for {model.n} nodes, cluster has {cluster.n}", file=sys.stderr)
        return 2
    lines = []
    if args.degrade_node is not None:
        cluster.degrade_node(args.degrade_node, args.degrade_factor)
        lines.append(f"(injected: node {args.degrade_node} slowed "
                     f"{args.degrade_factor}x)")
    report = detect_model_drift(
        model, DESEngine(cluster), probe_nbytes=args.nbytes,
        threshold=args.threshold, reps=args.reps,
    )
    drifted = sorted(
        (error, pair) for pair, error in report.errors.items()
        if error > report.threshold
    )
    lines.append(f"spot-checked {len(report.errors)} pairs at {args.nbytes} B "
                 f"(threshold {report.threshold:.0%})")
    for error, (i, j) in reversed(drifted):
        lines.append(f"  pair ({i:2d},{j:2d}): {error:7.2%} drift")
    lines.append(f"worst pair {report.worst_pair}: {report.worst_error:.2%}")
    implicated: list[int] = []
    if report.drifted:
        implicated = sorted(report.drifted_nodes())
        blame = ", ".join(map(str, implicated)) if implicated \
            else "no single node (link-local?)"
        lines.append(f"DRIFTED — implicated nodes: {blame}")
    else:
        lines.append("model is still accurate")
    _emit(args, "\n".join(lines), {
        "probed_pairs": len(report.errors),
        "threshold": float(report.threshold),
        "worst_pair": list(report.worst_pair),
        "worst_error": float(report.worst_error),
        "drifted": bool(report.drifted),
        "implicated_nodes": implicated,
    })
    return 1 if report.drifted else 0


def _split_spec(text: str, flag: str, parts: int) -> list[str]:
    fields = text.split(":")
    if len(fields) != parts:
        raise ValueError(
            f"{flag} expects {parts} colon-separated fields, got {text!r}"
        )
    return fields


def _parse_faults(args) -> FaultPlan:
    faults = []
    for text in args.slow_node or []:
        node, factor = _split_spec(text, "--slow-node NODE:FACTOR", 2)
        faults.append(NodeSlowdown(node=int(node), factor=float(factor)))
    for text in args.flaky_link or []:
        a, b, prob = _split_spec(text, "--flaky-link A:B:PROB", 3)
        faults.append(FlakyLink(a=int(a), b=int(b), loss_prob=float(prob)))
    for text in args.degrade_link or []:
        a, b, lat, rate = _split_spec(text, "--degrade-link A:B:LAT:RATE", 4)
        faults.append(LinkDegradation(a=int(a), b=int(b),
                                      latency_factor=float(lat),
                                      rate_factor=float(rate)))
    for text in args.hang_node or []:
        node, start, duration = _split_spec(text, "--hang-node NODE:START:DUR", 3)
        faults.append(NodeHang(node=int(node), start=float(start),
                               duration=float(duration)))
    for text in args.crash_node or []:
        fields = text.split(":")
        if len(fields) == 1:
            faults.append(NodeCrash(node=int(fields[0])))
        elif len(fields) == 2:
            faults.append(NodeCrash(node=int(fields[0]), start=float(fields[1])))
        else:
            raise ValueError(f"--crash-node expects NODE[:START], got {text!r}")
    if args.crash_after is not None:
        faults.append(ProcessCrash(after_experiments=args.crash_after))
    if not faults:
        # Default demo plan: one slow node plus one lossy link.
        faults = [
            NodeSlowdown(node=1, factor=4.0),
            FlakyLink(a=0, b=2, loss_prob=0.2),
        ]
    return FaultPlan(faults=tuple(faults), seed=args.fault_seed)


def cmd_chaos(args) -> int:
    base = table1_cluster()
    if not (3 <= args.nodes <= base.n):
        print(f"--nodes must be in [3, {base.n}]", file=sys.stderr)
        return 2
    spec = ClusterSpec(base.nodes[: args.nodes], name=f"{base.name}-{args.nodes}")
    cluster = SimulatedCluster(
        spec, profile=PROFILES[args.profile], noise=NoiseModel.default(),
        seed=args.seed,
    )
    try:
        plan = _parse_faults(args)
        plan.validate(cluster.n)
    except ValueError as exc:
        print(f"bad fault plan: {exc}", file=sys.stderr)
        return 2
    lines = [f"cluster: {spec.n} nodes ({spec.name}), "
             f"fault plan (seed {plan.seed}):", plan.describe()]

    tel = _metrics_begin(args)
    try:
        maintainer = ModelMaintainer(
            DESEngine(cluster), MaintainerPolicy(reps=args.reps),
        )
        maintainer.bootstrap()
        lines.append("\nbootstrap (fault-free):")
        lines.append("  " + maintainer.last_result.summary().replace("\n", "\n  "))

        cluster.attach_injector(FaultInjector(plan))
        for _ in range(args.cycles):
            maintainer.cycle()
        lines.append(f"\nhealth log after {args.cycles} chaos cycles:")
        lines.append(maintainer.render_log())
        report = maintainer.spot_check()
        healed = not report.drifted
        # Printed after the final spot-check so the counts cover every
        # simulated transfer of the run (and match the telemetry snapshot).
        lines.append(f"\ninjector: {cluster.injector.stats.summary()}")
        lines.append(f"final spot-check: worst drift {report.worst_error:.2%}")
        lines.append("verdict: model healed" if healed else
                     "verdict: drift persists (more cycles needed)")
        payload = {
            "nodes": spec.n,
            "cycles": args.cycles,
            "fault_plan": plan.describe(),
            "worst_drift": float(report.worst_error),
            "healed": healed,
        }

        # Crash faults only bite the durable campaign path, so demo it when
        # the plan carries one (or the user asked for a journal explicitly).
        has_crash = any(isinstance(f, (NodeCrash, ProcessCrash)) for f in plan.faults)
        if has_crash or args.journal is not None:
            campaign_lines, campaign_payload = _chaos_campaign(args, cluster, plan)
            lines.extend(campaign_lines)
            payload["campaign"] = campaign_payload
        cluster.reset()  # flush the final run's kernel counters
    finally:
        _metrics_end(args, tel)

    _emit(args, "\n".join(lines), payload)
    return 0


def _chaos_campaign(args, cluster: SimulatedCluster, plan: FaultPlan):
    """The chaos demo's durable-campaign stage: run under the fault plan,
    survive a simulated process crash by resuming, report breaker states."""
    import os
    import tempfile

    journal = args.journal
    if journal is None:
        # Campaign.start refuses an existing path, so hand it a fresh name
        # inside a fresh directory rather than a pre-created file.
        journal = os.path.join(
            tempfile.mkdtemp(prefix="repro-chaos-"), "campaign.jsonl"
        )
    config = CampaignConfig(seed=args.seed, timeout=args.campaign_timeout)
    lines = [f"\ndurable campaign under faults (journal {journal}):"]
    crashed = False
    try:
        result = Campaign.start(DESEngine(cluster), journal, config=config).run()
    except SimulatedCrash as exc:
        crashed = True
        lines.append(f"  process crash injected: {exc}")
        lines.append("  resuming from the journal (crash faults persist, "
                     "the process death does not)")
        survivors = tuple(f for f in plan.faults if not isinstance(f, ProcessCrash))
        cluster.attach_injector(
            FaultInjector(FaultPlan(faults=survivors, seed=plan.seed))
        )
        result = Campaign.resume(DESEngine(cluster), journal).run()
    lines.append("  " + result.summary().replace("\n", "\n  "))
    breakers = result.breakers
    for node_state in breakers["nodes"]:
        if node_state["state"] != "closed" or node_state["total_failures"]:
            lines.append(
                f"  breaker node {node_state['node']}: {node_state['state']} "
                f"({node_state['total_failures']} failures, "
                f"{node_state['trips']} trips)"
            )
    payload = {
        "journal": journal,
        "crashed_and_resumed": crashed,
        **result.to_dict(),
    }
    return lines, payload


def cmd_campaign(args) -> int:
    """``repro campaign run|resume|status`` — the durable estimation sweep.

    Exit codes: 0 full-coverage model, 1 degraded (model produced but
    coverage or quarantine report says so) or budget-stopped (resumable),
    2 usage / journal errors.
    """
    if args.action == "status":
        try:
            status = api.campaign_status(args.journal)
        except JournalError as exc:
            print(f"cannot read journal: {exc}", file=sys.stderr)
            return 2
        _emit(args, status.summary(), status.to_dict())
        return 0

    nodes = args.nodes
    if args.action == "resume" and nodes is None:
        # The journal knows the cluster size; don't make the user repeat it.
        try:
            nodes = api.campaign_status(args.journal).n
        except JournalError as exc:
            print(f"cannot read journal: {exc}", file=sys.stderr)
            return 2
        if nodes >= table1_cluster().n:
            nodes = None
    cluster = api.load_cluster(nodes=nodes, profile=args.profile,
                               seed=args.seed)
    tel = _metrics_begin(args)
    try:
        if args.action == "run":
            config = CampaignConfig(
                seed=args.seed,
                reps=args.reps,
                timeout=args.timeout,
                coverage_floor=args.coverage_floor,
                max_wall_seconds=args.max_wall_seconds,
                max_sim_seconds=args.max_sim_seconds,
                max_repetitions=args.max_repetitions,
            )
            result = api.run_campaign(cluster, args.journal, config,
                                      workers=args.workers)
        else:
            result = api.resume_campaign(
                cluster,
                args.journal,
                max_wall_seconds=args.max_wall_seconds,
                max_sim_seconds=args.max_sim_seconds,
                max_repetitions=args.max_repetitions,
                workers=args.workers,
            )
        cluster.reset()  # flush the final run's kernel counters
    except (JournalError, ValueError) as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 2
    finally:
        _metrics_end(args, tel)
    if result.model is not None and args.out:
        api.save_model(result.model, args.out)
    text = result.summary()
    if result.model is not None and args.out:
        text += f"\nmodel written to {args.out}"
    _emit(args, text, result.to_dict())
    if result.stopped != "complete" or result.model is None or result.degraded:
        return 1
    return 0


def _load_bench_files(paths) -> tuple:
    """``(bench, warnings)`` for the dashboard's bench-trajectory section.

    ``bench`` is ``(name, parsed)`` pairs; every missing, truncated or
    non-object ``BENCH_*.json`` becomes a warning string instead of a
    traceback, so one corrupt artifact never takes the dashboard down.
    """
    import glob as _glob
    import os

    chosen = list(paths) if paths else sorted(_glob.glob("BENCH_*.json"))
    bench, warnings = [], []
    for path in chosen:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            warnings.append(f"bench file {path} skipped: {exc}")
            continue
        if isinstance(data, dict):
            bench.append((os.path.basename(path), data))
        else:
            warnings.append(
                f"bench file {path} skipped: expected a JSON object, "
                f"got {type(data).__name__}"
            )
    return bench, warnings


def cmd_serve(args) -> int:
    """``repro serve`` — the always-on prediction daemon (docs/service.md).

    Prints one ``listening on <endpoint>`` line once the socket is bound
    (with ``--port 0`` this is where the ephemeral port appears), then
    blocks until drained (SIGTERM, the ``drain`` verb, or Ctrl-C).

    With ``--supervised`` the daemon instead runs as a watched child
    process: health-probed, restarted with backoff after crashes, and
    abandoned with exit code 86 on a crash loop (``--restart-limit``
    crashes within ``--restart-window`` seconds).  ``--snapshot`` makes
    the dynamic model registry durable across those restarts.
    """
    import asyncio

    from repro.serve import PredictionServer, ServeConfig

    models = {}
    for spec_str in args.model or []:
        name, sep, path = spec_str.partition("=")
        if not sep or not name or not path:
            print(f"bad --model spec {spec_str!r}; use NAME=PATH", file=sys.stderr)
            return 2
        models[name] = path

    if args.supervised:
        return _serve_supervised(args)

    config = ServeConfig(
        host=args.host, port=args.port, unix_path=args.unix, models=models,
        workers=args.workers, batch_window=args.batch_window,
        queue_limit=args.queue_limit, telemetry=not args.no_telemetry,
        snapshot_path=args.snapshot,
        timeline=not args.no_timeline,
        flight_spill=args.flight_spill,
        flight_dump_dir=args.flight_dump_dir,
        flight_sync_interval=args.flight_sync_interval,
    )

    async def _run() -> None:
        server = PredictionServer(config)
        await server.start()
        _emit(args, f"listening on {server.endpoint}",
              {"listening": server.endpoint, "models": server.registry.names()})
        sys.stdout.flush()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            await server.drain()
            raise

    try:
        asyncio.run(_run())
    except (ValueError, OSError) as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def _serve_supervised(args) -> int:
    """Run the daemon as a supervised child (``repro serve --supervised``)."""
    from repro.serve.supervisor import Supervisor, SupervisorConfig, resolve_port

    port = args.port
    if args.unix is None and port == 0:
        # Every restarted child must bind the *same* endpoint.
        port = resolve_port(args.host)
    command = [sys.executable, "-m", "repro.cli", "serve",
               "--host", args.host, "--port", str(port),
               "--workers", str(args.workers),
               "--batch-window", str(args.batch_window),
               "--queue-limit", str(args.queue_limit)]
    if args.unix is not None:
        command += ["--unix", args.unix]
    for spec_str in args.model or []:
        command += ["--model", spec_str]
    if args.no_telemetry:
        command += ["--no-telemetry"]
    if args.snapshot is not None:
        command += ["--snapshot", args.snapshot]
    if args.no_timeline:
        command += ["--no-timeline"]
    if args.flight_dump_dir is not None:
        command += ["--flight-dump-dir", args.flight_dump_dir]
    if args.flight_sync_interval != 0.25:
        command += ["--flight-sync-interval", str(args.flight_sync_interval)]
    endpoint = args.unix if args.unix is not None else f"{args.host}:{port}"
    supervisor = Supervisor(SupervisorConfig(
        command=command, host=args.host, port=port, unix_path=args.unix,
        restart_limit=args.restart_limit, restart_window=args.restart_window,
        flight_dir=args.flight_dir,
    ))
    _emit(args, f"supervising on {endpoint}",
          {"supervising": endpoint, "command": command})
    sys.stdout.flush()
    code = supervisor.run_under_signals()
    if supervisor.gave_up:
        print(
            f"giving up: {args.restart_limit} crashes within "
            f"{args.restart_window:g}s (crash loop)", file=sys.stderr,
        )
    return code


def cmd_client(args) -> int:
    """``repro client VERB`` — one request to a running daemon.

    Request parameters come from ``--params`` (a JSON object matching
    the verb's schema-v3 params document); the reply's ``result`` is
    printed as JSON.  Error replies land on stderr as ``code: message``
    with exit code 1 (3 for ``overloaded`` — retryable) — the same
    stable codes :mod:`repro.api` raises in-process.

    ``--retries N`` switches to the resilient client: transient failures
    (overload, resets, timeouts, corrupted replies) are retried with
    seeded exponential backoff, and exhausting every attempt exits with
    the distinct code 4 so scripts can tell "the service kept failing
    under retry" from a first-try error.  ``--deadline-ms`` bounds the
    whole call (propagated to the server, which sheds expired requests).
    """
    from repro.serve import ServiceClient
    from repro.serve.client import ResilientClient, RetryExhausted, RetryPolicy

    try:
        params = json.loads(args.params) if args.params else {}
    except ValueError as exc:
        print(f"--params is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("--params must be a JSON object", file=sys.stderr)
        return 2
    ctx = None
    if args.traceparent == "new":
        ctx = _tracectx.new_context()
        print(f"trace_id: {ctx.trace_id}", file=sys.stderr)
    elif args.traceparent is not None:
        ctx = _tracectx.parse_traceparent(args.traceparent)
        if ctx is None:
            print(f"malformed --traceparent {args.traceparent!r}; "
                  "expected 00-<32 hex>-<16 hex>-01", file=sys.stderr)
            return 2
    trace_token = _tracectx.activate(ctx) if ctx is not None else None
    try:
        if args.retries > 0 or args.deadline_ms is not None:
            retry = RetryPolicy(max_retries=args.retries, seed=0)
            with ResilientClient(host=args.host, port=args.port,
                                 unix_path=args.unix, timeout=args.timeout,
                                 retry=retry,
                                 deadline_ms=args.deadline_ms) as client:
                result = client.call(args.verb, params)
        else:
            with ServiceClient(host=args.host, port=args.port,
                               unix_path=args.unix,
                               timeout=args.timeout) as plain:
                result = plain.call(args.verb, params)
    except RetryExhausted as exc:
        print(f"retries exhausted: {exc}", file=sys.stderr)
        return 4
    except api.Overloaded as exc:
        print(f"overloaded: {exc}", file=sys.stderr)
        return 3
    except api.ApiError as exc:
        payload = exc.to_payload()
        print(f"{payload['code']}: {payload['message']}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach the daemon: {exc}", file=sys.stderr)
        return 2
    finally:
        if trace_token is not None:
            _tracectx.restore(trace_token)
    _emit(args, json.dumps(result, indent=2), result)
    return 0


def _parse_named_inputs(pairs) -> list:
    """``--in NAME=PATH`` pairs -> [(name, loaded_doc), ...]."""
    named = []
    for pair in pairs or []:
        name, sep, path = pair.partition("=")
        if not sep:
            # Bare PATH: label the lane with the file's stem.
            name, path = os.path.splitext(os.path.basename(pair))[0], pair
        with open(path) as handle:
            named.append((name, json.load(handle)))
    return named


def _cmd_obs_stitch(args) -> int:
    """``repro obs trace stitch`` — merge per-process snapshots into one
    clock-aligned Chrome trace for a single distributed trace id."""
    try:
        named = _parse_named_inputs(args.inputs)
        if not named:
            print("nothing to stitch: pass at least one --in NAME=PATH",
                  file=sys.stderr)
            return 2
        named = [(name, unwrap_snapshot(doc)) for name, doc in named]
    except (OSError, ValueError) as exc:
        print(f"cannot read telemetry snapshot: {exc}", file=sys.stderr)
        return 2
    if args.list:
        traces = list_traces(named)
        if not traces:
            print("no trace-stamped spans in these snapshots")
            return 0
        for trace_id in sorted(traces):
            info = traces[trace_id]
            print(f"{trace_id}  {info['spans']} span(s) across "
                  f"{','.join(info['processes'])}: {','.join(info['names'])}")
        return 0
    try:
        rendered = stitch_chrome_trace(named, trace_id=args.trace_id)
    except ValueError as exc:
        print(f"stitch failed: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"stitched chrome trace written to {args.out}")
    else:
        print(rendered)
    return 0


def _cmd_obs_flight(args) -> int:
    """``repro obs flight inspect|dump|stitch`` — black-box post-mortems.

    ``inspect`` renders a flight dump (or a raw ``.spill`` file) as one
    readable screen; ``dump`` recovers a crashed child's spill file into
    a durable dump; ``stitch`` merges the telemetry embedded in several
    dumps into one clock-aligned Chrome trace (same machinery as
    ``repro obs trace stitch``).
    """
    from repro.obs import flight as _flightmod

    if args.flight_action == "inspect":
        try:
            payload = _flightmod.load_any(args.path)
        except (OSError, ValueError) as exc:
            print(f"cannot read flight recording: {exc}", file=sys.stderr)
            return 2
        _emit(args, _flightmod.render_inspect(payload), payload)
        return 0
    if args.flight_action == "dump":
        out = args.out
        if out is None:
            base, _ = os.path.splitext(args.spill)
            out = base + ".json"
        try:
            _flightmod.recover_spill(args.spill, out, reason=args.reason)
        except (OSError, ValueError) as exc:
            print(f"cannot recover spill: {exc}", file=sys.stderr)
            return 2
        print(f"flight dump written to {out}")
        return 0
    # stitch: pull the embedded telemetry snapshot out of each dump and
    # reuse the distributed-trace stitcher.
    named = []
    try:
        for pair in args.inputs or []:
            name, sep, path = pair.partition("=")
            if not sep:
                name, path = os.path.splitext(os.path.basename(pair))[0], pair
            payload = _flightmod.load_any(path)
            named.append((name, _flightmod.telemetry_of(payload)))
    except (OSError, ValueError) as exc:
        print(f"cannot read flight dump: {exc}", file=sys.stderr)
        return 2
    if not named:
        print("nothing to stitch: pass at least one --in NAME=PATH",
              file=sys.stderr)
        return 2
    if args.list:
        traces = list_traces(named)
        if not traces:
            print("no trace-stamped spans in these flight dumps")
            return 0
        for trace_id in sorted(traces):
            info = traces[trace_id]
            print(f"{trace_id}  {info['spans']} span(s) across "
                  f"{','.join(info['processes'])}: {','.join(info['names'])}")
        return 0
    try:
        rendered = stitch_chrome_trace(named, trace_id=args.trace_id)
    except ValueError as exc:
        print(f"stitch failed: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"stitched chrome trace written to {args.out}")
    else:
        print(rendered)
    return 0


def _profile_frame_table(profiler, top: int) -> str:
    stats = sorted(profiler.stats().values(), key=lambda s: -s.self_ns)
    lines = [f"{'frame':<42} {'count':>8} {'self ms':>10} {'cum ms':>10}"]
    for stat in stats[:top]:
        lines.append(
            f"{stat.name:<42.42} {stat.count:>8} "
            f"{stat.self_ns / 1e6:>10.3f} {stat.cum_ns / 1e6:>10.3f}"
        )
    if len(stats) > top:
        lines.append(f"... {len(stats) - top} more frame(s)")
    return "\n".join(lines)


def _profile_write_artifacts(args, profiler) -> None:
    if args.speedscope:
        with open(args.speedscope, "w") as handle:
            json.dump(profiler.speedscope(), handle)
        print(f"speedscope profile written to {args.speedscope}")
    if args.collapsed:
        with open(args.collapsed, "w") as handle:
            handle.write(profiler.collapsed())
        print(f"collapsed stacks written to {args.collapsed}")


def _cmd_obs_profile(args) -> int:
    """``repro obs profile`` — deterministic profile of the canned DES
    workload (``--target kernel``) or a live service load
    (``--target service``)."""
    from repro.benchlib.kernelprof import (
        DEFAULT_SIZES,
        kernel_profile_document,
        run_kernel_workload,
    )

    sizes = DEFAULT_SIZES
    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    if args.target == "kernel":
        doc, profiler = kernel_profile_document(
            nodes=args.nodes, sizes=sizes, reps=args.reps, seed=args.seed
        )
        if args.json_out:
            with open(args.json_out, "w") as handle:
                json.dump(doc, handle, indent=2)
        text = (
            f"kernel workload: {doc['collective_runs']} collective runs, "
            f"{doc['events_processed']} events in "
            f"{doc['wall_seconds']:.3f} s "
            f"({doc['events_per_second']:,.0f} events/s)\n"
            + _profile_frame_table(profiler, args.top)
        )
        _emit(args, text, doc)
        _profile_write_artifacts(args, profiler)
        return 0
    # --target service: an in-process server under a canned client load;
    # worker threads feed the same (thread-safe) profiler, so the output
    # mixes client-side load frames with server-side kernel frames.
    from repro.cluster import GroundTruth
    from repro.models import ExtendedLMOModel
    from repro.serve import ServeConfig, ServerThread

    model = ExtendedLMOModel.from_ground_truth(
        GroundTruth.random(6, seed=args.seed + 2)
    )
    profiler = _prof.enable_profiler(fresh=True)
    try:
        config = ServeConfig(port=0, models={"lmo": model}, workers=2)
        with ServerThread(config) as host, host.client() as client:
            with profiler.frame("load.predicts"):
                for i in range(max(1, args.requests)):
                    with profiler.frame("load.predict"):
                        client.predict("lmo", "scatter", "linear",
                                       float(KB << (i % 8)))
            with profiler.frame("load.kernel"):
                run_kernel_workload(nodes=args.nodes, sizes=sizes,
                                    reps=1, seed=args.seed)
        text = (
            f"service load: {args.requests} predict call(s) + canned kernel "
            f"workload\n" + _profile_frame_table(profiler, args.top)
        )
        doc = profiler.to_dict()
        if args.json_out:
            with open(args.json_out, "w") as handle:
                json.dump(doc, handle, indent=2)
        _emit(args, text, doc)
        _profile_write_artifacts(args, profiler)
    finally:
        _prof.disable_profiler()
    return 0


def cmd_obs(args) -> int:
    """``repro obs report|export|dashboard|watch|top|flight|profile|trace``
    — snapshot inspection plus the deterministic profiler.

    ``report`` prints a one-screen summary (or the raw document with
    ``--format json``); ``export`` re-renders it as Prometheus text
    (``--format prom``), pretty JSON, or Chrome trace JSON of its spans;
    ``dashboard`` writes the self-contained HTML observatory and prints
    the terminal view; ``watch`` re-renders the terminal view
    periodically; ``top`` is the dense operator variant (firing alerts,
    SLO budgets, rate sparklines); ``flight`` inspects/recovers/stitches
    flight-recorder dumps; ``profile`` runs the deterministic profiler
    over a canned workload; ``trace stitch`` merges per-process
    snapshots into one clock-aligned distributed timeline.
    """
    if args.action == "profile":
        return _cmd_obs_profile(args)
    if args.action == "trace":
        return _cmd_obs_stitch(args)
    if args.action == "flight":
        return _cmd_obs_flight(args)
    if args.action in ("watch", "top"):
        as_json = getattr(args, "format", "text") == "json"
        if as_json:
            formatter = lambda data: json.dumps(data, indent=2)  # noqa: E731
        elif args.action == "top":
            formatter = _insight.render_top
        else:
            formatter = None
        try:
            _insight.watch(
                args.metrics, interval=args.interval, count=args.count,
                formatter=formatter,
            )
        except (OSError, ValueError) as exc:
            print(f"cannot read telemetry snapshot: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            pass
        return 0
    try:
        with open(args.metrics) as handle:
            doc = json.load(handle)
        validate_snapshot(doc)
    except (OSError, ValueError) as exc:
        print(f"cannot read telemetry snapshot: {exc}", file=sys.stderr)
        return 2
    if args.action == "report":
        _emit(args, render_report(doc), doc)
        return 0
    if args.action == "dashboard":
        bench, warnings = _load_bench_files(args.bench)
        data = _insight.build_dashboard(doc, bench=bench, warnings=warnings)
        with open(args.out, "w") as handle:
            handle.write(_insight.render_html(data))
        text = _insight.render_terminal(data)
        text += f"\n\ndashboard written to {args.out}"
        _emit(args, text, data)
        return 0
    if args.format == "prom":
        rendered = snapshot_prometheus(doc)
    elif args.format == "json":
        rendered = json.dumps(doc, indent=2)
    else:  # chrome
        rendered = chrome_trace(doc.get("spans", []))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"{args.format} export written to {args.out}")
    else:
        print(rendered)
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import run_experiment

    result = run_experiment(args.id, quick=args.quick, seed=args.seed)
    _emit(args, result.render(), {
        "id": args.id,
        "title": result.title,
        "checks": {name: bool(ok) for name, ok in result.checks.items()},
        "passed": bool(result.all_checks_pass),
        "text": result.text,
    })
    if args.csv:
        csv = result.to_csv()
        if not csv:
            print(f"(no numeric series in {args.id}; nothing written)",
                  file=sys.stderr)
        else:
            with open(args.csv, "w") as handle:
                handle.write(csv)
            if getattr(args, "format", "text") == "text":
                print(f"series written to {args.csv}")
    return 0 if result.all_checks_pass else 1


def cmd_report(args) -> int:
    from repro.experiments.report import main as report_main

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.out:
        argv.extend(["--out", args.out])
    argv.extend(["--seed", str(args.seed)])
    code = report_main(argv)
    if getattr(args, "format", "text") == "json":
        print(json.dumps({"out": args.out, "passed": code == 0}, indent=2))
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LMO communication performance model reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="lam")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format (JSON to stdout, errors to stderr)")
    metrics = argparse.ArgumentParser(add_help=False)
    metrics.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="enable telemetry and write the snapshot "
                              "(metrics, spans, events) to this JSON file")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="print the Table I cluster", parents=[common])

    p_est = sub.add_parser("estimate", help="estimate model parameters",
                           parents=[common])
    p_est.add_argument("--model", choices=["lmo", "hockney", "loggp", "plogp"],
                       default="lmo")
    p_est.add_argument("--out", required=True, help="output JSON path")
    p_est.add_argument("--reps", type=int, default=3)
    p_est.add_argument("--quick", action="store_true",
                       help="reduced (star) triplet design for LMO")
    p_est.add_argument("--empirical", action="store_true",
                       help="also detect gather M1/M2 (LMO only)")

    p_pred = sub.add_parser("predict", help="predict a collective from a model file",
                            parents=[common])
    p_pred.add_argument("--model-file", required=True)
    p_pred.add_argument("--operation", choices=PREDICT_OPERATIONS, default="scatter")
    p_pred.add_argument("--algorithm", choices=PREDICT_ALGORITHMS, default="linear")
    p_pred.add_argument("--nbytes", type=int, required=True)
    p_pred.add_argument("--root", type=int, default=0)

    p_meas = sub.add_parser("measure", help="benchmark a collective on the simulator",
                            parents=[common])
    p_meas.add_argument("--operation", default="scatter")
    p_meas.add_argument("--algorithm", default="linear")
    p_meas.add_argument("--nbytes", type=int, required=True)
    p_meas.add_argument("--root", type=int, default=0)
    p_meas.add_argument("--max-reps", type=int, default=25)

    p_trace = sub.add_parser("trace", help="print a collective's activity timeline",
                             parents=[common])
    p_trace.add_argument("action", nargs="?", default="show",
                         choices=["show", "export"],
                         help="show the ASCII timeline (default) or export "
                              "the simulated-time trace as Chrome trace JSON")
    p_trace.add_argument("--chrome", default=None, metavar="OUT.json",
                         help="output path for `trace export` "
                              "(open in chrome://tracing or Perfetto)")
    p_trace.add_argument("--operation", default="scatter")
    p_trace.add_argument("--algorithm", default="linear")
    p_trace.add_argument("--nbytes", type=int, default=32 * KB)
    p_trace.add_argument("--root", type=int, default=0)
    p_trace.add_argument("--width", type=int, default=72)
    p_trace.add_argument("--max-lanes", type=int, default=12)

    p_suite = sub.add_parser("suite", help="benchmark the whole algorithm menu",
                             parents=[common, metrics])
    p_suite.add_argument("--operations", default=None,
                         help="comma-separated (default: all)")
    p_suite.add_argument("--sizes", default=f"{KB},{16 * KB},{128 * KB}",
                         help="comma-separated byte counts")
    p_suite.add_argument("--max-reps", type=int, default=8)

    p_part = sub.add_parser("partition",
                            help="min-makespan data distribution from a model file",
                            parents=[common])
    p_part.add_argument("--model-file", required=True)
    p_part.add_argument("--total", type=int, required=True)
    p_part.add_argument("--work-rate", type=float, default=100e-9,
                        help="uniform compute cost, s/B")
    p_part.add_argument("--work-rates", default=None,
                        help="comma-separated per-rank costs (overrides --work-rate)")
    p_part.add_argument("--root", type=int, default=0)

    p_plan = sub.add_parser("plan",
                            help="choose algorithms for an application's collectives",
                            parents=[common])
    p_plan.add_argument("--model-file", required=True)
    p_plan.add_argument("calls", nargs="+",
                        help="call specs op:nbytes[:count], e.g. bcast:65536:10")

    p_drift = sub.add_parser("drift",
                             help="spot-check a saved model for drift (exit 1 if drifted)",
                             parents=[common])
    p_drift.add_argument("--model-file", required=True)
    p_drift.add_argument("--nbytes", type=int, default=32 * KB)
    p_drift.add_argument("--threshold", type=float, default=0.15)
    p_drift.add_argument("--reps", type=int, default=3)
    p_drift.add_argument("--degrade-node", type=int, default=None,
                         help="slow this node before checking (fault demo)")
    p_drift.add_argument("--degrade-factor", type=float, default=4.0)

    p_chaos = sub.add_parser("chaos",
                             help="fault-injection demo: estimate, inject, self-heal",
                             parents=[common, metrics])
    p_chaos.add_argument("--nodes", type=int, default=8,
                         help="cluster size (prefix of Table I)")
    p_chaos.add_argument("--cycles", type=int, default=3,
                         help="maintenance cycles to run under faults")
    p_chaos.add_argument("--reps", type=int, default=3)
    p_chaos.add_argument("--fault-seed", type=int, default=0)
    p_chaos.add_argument("--slow-node", action="append", metavar="NODE:FACTOR",
                         help="persistent CPU slowdown (repeatable)")
    p_chaos.add_argument("--flaky-link", action="append", metavar="A:B:PROB",
                         help="packet loss on a link, RTO per loss (repeatable)")
    p_chaos.add_argument("--degrade-link", action="append", metavar="A:B:LAT:RATE",
                         help="latency x LAT, bandwidth x RATE (repeatable)")
    p_chaos.add_argument("--hang-node", action="append", metavar="NODE:START:DUR",
                         help="stall a node's transfers for DUR seconds (repeatable)")
    p_chaos.add_argument("--crash-node", action="append", metavar="NODE[:START]",
                         help="kill a node permanently at START (repeatable)")
    p_chaos.add_argument("--crash-after", type=int, default=None, metavar="K",
                         help="kill the campaign process after K experiments "
                              "(demos journal resume)")
    p_chaos.add_argument("--journal", default=None,
                         help="campaign journal path (default: temp file; the "
                              "campaign stage runs when a crash fault or this "
                              "flag is present)")
    p_chaos.add_argument("--campaign-timeout", type=float, default=1.0,
                         help="per-experiment timeout in the campaign stage")

    p_camp = sub.add_parser(
        "campaign",
        help="durable estimation sweep: run / resume / status on a journal",
    )
    camp_sub = p_camp.add_subparsers(dest="action", required=True)
    camp_budgets = argparse.ArgumentParser(add_help=False)
    camp_budgets.add_argument("--max-wall-seconds", type=float, default=None,
                              help="hard wall-clock cap; stops at a checkpoint")
    camp_budgets.add_argument("--max-sim-seconds", type=float, default=None,
                              help="hard simulated-cluster-time cap")
    camp_budgets.add_argument("--max-repetitions", type=int, default=None,
                              help="hard cap on total experiment repetitions")
    camp_io = argparse.ArgumentParser(add_help=False)
    camp_io.add_argument("--journal", required=True,
                         help="JSONL write-ahead journal path")
    camp_io.add_argument("--out", default=None,
                         help="write the assembled model JSON here")
    camp_io.add_argument("--nodes", type=int, default=None,
                         help="cluster size (prefix of Table I; default all)")
    camp_workers = argparse.ArgumentParser(add_help=False)
    camp_workers.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (default 1 = serial in-process; "
             "N > 1 shards units by node-triplet across supervised workers "
             "under time-bounded leases — same model bit-for-bit)")
    p_camp_run = camp_sub.add_parser(
        "run", help="start a fresh campaign (journal must not exist)",
        parents=[common, camp_budgets, camp_io, camp_workers, metrics])
    p_camp_run.add_argument("--reps", type=int, default=3)
    p_camp_run.add_argument("--timeout", type=float, default=1.0,
                            help="per-experiment timeout (seconds)")
    p_camp_run.add_argument("--coverage-floor", type=float, default=0.5,
                            help="coverage fraction below which the result "
                                 "is flagged (still produced)")
    camp_sub.add_parser(
        "resume", help="continue an interrupted campaign from its journal",
        parents=[common, camp_budgets, camp_io, camp_workers, metrics])
    camp_sub.add_parser(
        "status", help="inspect a journal without attaching a cluster",
        parents=[common, camp_io])

    p_serve = sub.add_parser(
        "serve", help="run the always-on prediction daemon",
        parents=[common])
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7725,
                         help="TCP port (0 = ephemeral; the bound endpoint "
                              "is printed at startup)")
    p_serve.add_argument("--unix", default=None, metavar="PATH",
                         help="serve on a Unix socket instead of TCP")
    p_serve.add_argument("--model", action="append", metavar="NAME=PATH",
                         help="preload a model JSON under NAME (repeatable; "
                              "SIGHUP re-reads every file)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="predict worker shards (models are routed by "
                              "fingerprint)")
    p_serve.add_argument("--batch-window", type=float, default=0.002,
                         help="seconds concurrent predicts coalesce over "
                              "(0 = no batching)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="per-worker queue bound; beyond it requests "
                              "are rejected as `overloaded`")
    p_serve.add_argument("--no-telemetry", action="store_true",
                         help="start without process telemetry (obs verb "
                              "reports enabled: false)")
    p_serve.add_argument("--snapshot", default=None, metavar="PATH",
                         help="durable registry snapshot: models registered "
                              "at runtime (estimate --register_as) survive "
                              "a crash/restart")
    p_serve.add_argument("--supervised", action="store_true",
                         help="run the daemon as a watched child: health-"
                              "probed, restarted with backoff after crashes, "
                              "abandoned with exit code 86 on a crash loop")
    p_serve.add_argument("--restart-limit", type=int, default=5,
                         help="crashes within --restart-window that make "
                              "--supervised give up (default 5)")
    p_serve.add_argument("--restart-window", type=float, default=60.0,
                         help="sliding crash-loop window in seconds "
                              "(default 60)")
    p_serve.add_argument("--no-timeline", action="store_true",
                         help="disable the windowed time-series store "
                              "(obs verb replies lose rate/SLO sections)")
    p_serve.add_argument("--flight-spill", default=None, metavar="PATH",
                         help="mirror the flight recorder to this file so a "
                              "SIGKILL still leaves a recoverable black box "
                              "(supervised children get one automatically "
                              "under --flight-dir)")
    p_serve.add_argument("--flight-dump-dir", default=None, metavar="DIR",
                         help="write flight dumps here on alert fires and "
                              "aborts (enables the recorder)")
    p_serve.add_argument("--flight-sync-interval", type=float, default=0.25,
                         help="min seconds between spill syncs (0 = sync on "
                              "every request; default 0.25)")
    p_serve.add_argument("--flight-dir", default=None, metavar="DIR",
                         help="(with --supervised) per-incarnation spill "
                              "files live here and crashed/wedged children "
                              "are post-mortemed into flight-*.json dumps")

    p_client = sub.add_parser(
        "client", help="send one request to a running repro serve daemon",
        parents=[common])
    p_client.add_argument("verb",
                          choices=["drain", "estimate", "health", "obs",
                                   "optimize", "predict", "predict_many"])
    p_client.add_argument("--params", default=None,
                          help="request params as a JSON object, e.g. "
                               "'{\"model\": \"lmo\", \"operation\": "
                               "\"scatter\", \"algorithm\": \"linear\", "
                               "\"nbytes\": 65536}'")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7725)
    p_client.add_argument("--unix", default=None, metavar="PATH")
    p_client.add_argument("--timeout", type=float, default=60.0)
    p_client.add_argument("--retries", type=int, default=0,
                          help="retry transient failures (overload, resets, "
                               "timeouts, corrupted replies) up to N times "
                               "with seeded exponential backoff; exhausting "
                               "them exits 4")
    p_client.add_argument("--deadline-ms", type=float, default=None,
                          help="total time budget for the call in ms, "
                               "propagated to the server (expired queued "
                               "requests are shed as deadline_exceeded)")
    p_client.add_argument("--traceparent", default=None,
                          help="W3C-style traceparent header "
                               "(00-<32 hex>-<16 hex>-01) to join an "
                               "existing distributed trace; 'new' mints a "
                               "fresh one and prints its id")

    p_obs = sub.add_parser(
        "obs",
        help="inspect/convert a telemetry snapshot from --metrics-out",
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)
    p_obs_report = obs_sub.add_parser(
        "report", help="one-screen summary of a telemetry snapshot",
        parents=[common])
    p_obs_report.add_argument("--metrics", required=True,
                              help="snapshot JSON written by --metrics-out")
    p_obs_export = obs_sub.add_parser(
        "export", help="re-render a snapshot as prom / json / chrome trace")
    p_obs_export.add_argument("--metrics", required=True,
                              help="snapshot JSON written by --metrics-out")
    p_obs_export.add_argument("--format", choices=["prom", "json", "chrome"],
                              default="prom",
                              help="Prometheus text, pretty JSON, or Chrome "
                                   "trace JSON of the recorded spans")
    p_obs_export.add_argument("--out", default=None,
                              help="write here instead of stdout")
    p_obs_dash = obs_sub.add_parser(
        "dashboard",
        help="self-contained HTML observatory + terminal summary",
        parents=[common])
    p_obs_dash.add_argument("--metrics", required=True,
                            help="snapshot JSON written by --metrics-out")
    p_obs_dash.add_argument("--out", default="dash.html",
                            help="HTML output path (default dash.html)")
    p_obs_dash.add_argument("--bench", action="append", default=None,
                            help="BENCH_*.json file to include in the "
                                 "trajectory section (repeatable; default: "
                                 "every BENCH_*.json in the cwd)")
    p_obs_watch = obs_sub.add_parser(
        "watch", help="periodic terminal re-render of a snapshot file",
        parents=[common])
    p_obs_watch.add_argument("--metrics", required=True,
                             help="snapshot JSON written by --metrics-out")
    p_obs_watch.add_argument("--interval", type=float, default=2.0,
                             help="seconds between refreshes")
    p_obs_watch.add_argument("--count", type=int, default=None,
                             help="stop after N refreshes (default: forever)")
    p_obs_top = obs_sub.add_parser(
        "top",
        help="live operator view: firing alerts, SLO budgets, rate "
             "sparklines (re-reads the snapshot like watch)",
        parents=[common])
    p_obs_top.add_argument("--metrics", required=True,
                           help="snapshot JSON written by --metrics-out "
                                "(or periodically rewritten by a driver)")
    p_obs_top.add_argument("--interval", type=float, default=2.0,
                           help="seconds between refreshes")
    p_obs_top.add_argument("--count", type=int, default=None,
                           help="stop after N refreshes (default: forever)")
    p_obs_flight = obs_sub.add_parser(
        "flight",
        help="flight-recorder post-mortems: inspect / dump / stitch")
    flight_sub = p_obs_flight.add_subparsers(dest="flight_action",
                                             required=True)
    p_fl_inspect = flight_sub.add_parser(
        "inspect",
        help="render a flight dump (or raw .spill) as one screen",
        parents=[common])
    p_fl_inspect.add_argument("path",
                              help="a flight-*.json dump or a raw spill "
                                   "file written by the recorder")
    p_fl_dump = flight_sub.add_parser(
        "dump", help="recover a crashed process's spill into a dump")
    p_fl_dump.add_argument("--spill", required=True,
                           help="the mmap-style spill file the dead "
                                "process left behind")
    p_fl_dump.add_argument("--out", default=None,
                           help="dump path (default: the spill path with "
                                "a .json suffix)")
    p_fl_dump.add_argument("--reason", default="manual",
                           help="reason recorded in the dump "
                                "(default: manual)")
    p_fl_stitch = flight_sub.add_parser(
        "stitch",
        help="merge the telemetry inside several dumps into one "
             "clock-aligned Chrome trace")
    p_fl_stitch.add_argument("--in", dest="inputs", action="append",
                             metavar="NAME=PATH", default=None,
                             help="a flight dump (or spill) labelled with "
                                  "its process name; repeatable")
    p_fl_stitch.add_argument("--trace-id", default=None,
                             help="keep only spans/events of this trace "
                                  "(default: everything)")
    p_fl_stitch.add_argument("--list", action="store_true",
                             help="list trace ids present instead of "
                                  "stitching")
    p_fl_stitch.add_argument("--out", default=None,
                             help="write the Chrome trace here instead of "
                                  "stdout")
    p_obs_prof = obs_sub.add_parser(
        "profile",
        help="deterministic profile of the DES kernel or a service load",
        parents=[common])
    p_obs_prof.add_argument("--target", choices=["kernel", "service"],
                            default="kernel",
                            help="kernel: the canned collective workload; "
                                 "service: an in-process server under a "
                                 "canned client load")
    p_obs_prof.add_argument("--nodes", type=int, default=8,
                            help="simulated cluster size for the workload")
    p_obs_prof.add_argument("--sizes", default=None,
                            help="comma-separated per-block sizes in bytes "
                                 "(default 1024,16384,131072)")
    p_obs_prof.add_argument("--reps", type=int, default=2,
                            help="workload repetitions (kernel target)")
    p_obs_prof.add_argument("--requests", type=int, default=32,
                            help="predict calls to drive (service target)")
    p_obs_prof.add_argument("--top", type=int, default=20,
                            help="frames shown in the terminal table")
    p_obs_prof.add_argument("--speedscope", default=None, metavar="PATH",
                            help="write a speedscope.app profile here")
    p_obs_prof.add_argument("--collapsed", default=None, metavar="PATH",
                            help="write flamegraph.pl collapsed stacks here")
    p_obs_prof.add_argument("--json-out", default=None, metavar="PATH",
                            help="write the profile document (kernel target: "
                                 "the BENCH_kernel_profile schema) here")
    p_obs_trace = obs_sub.add_parser(
        "trace",
        help="merge per-process snapshots into one distributed timeline")
    trace_sub = p_obs_trace.add_subparsers(dest="trace_action", required=True)
    p_obs_stitch = trace_sub.add_parser(
        "stitch",
        help="clock-aligned Chrome trace across processes for one trace id")
    p_obs_stitch.add_argument("--in", dest="inputs", action="append",
                              metavar="NAME=PATH", default=None,
                              help="a telemetry snapshot (or obs-verb reply) "
                                   "labelled with its process name; "
                                   "repeatable")
    p_obs_stitch.add_argument("--trace-id", default=None,
                              help="keep only spans/events of this trace "
                                   "(default: everything)")
    p_obs_stitch.add_argument("--list", action="store_true",
                              help="list trace ids present instead of "
                                   "stitching")
    p_obs_stitch.add_argument("--out", default=None,
                              help="write the Chrome trace here instead of "
                                   "stdout")

    p_exp = sub.add_parser("experiment", help="regenerate one paper table/figure",
                           parents=[common])
    p_exp.add_argument("id", help="fig1..fig7, table1, table2, estimation_cost, "
                                  "thresholds, ablations, menu_accuracy")
    p_exp.add_argument("--quick", action="store_true")
    p_exp.add_argument("--csv", default=None, help="also dump the series as CSV")

    p_rep = sub.add_parser("report", help="regenerate every experiment (markdown)",
                           parents=[common])
    p_rep.add_argument("--quick", action="store_true")
    p_rep.add_argument("--out", default=None)
    return parser


COMMANDS = {
    "describe": cmd_describe,
    "estimate": cmd_estimate,
    "predict": cmd_predict,
    "measure": cmd_measure,
    "trace": cmd_trace,
    "suite": cmd_suite,
    "partition": cmd_partition,
    "plan": cmd_plan,
    "drift": cmd_drift,
    "chaos": cmd_chaos,
    "campaign": cmd_campaign,
    "serve": cmd_serve,
    "client": cmd_client,
    "obs": cmd_obs,
    "experiment": cmd_experiment,
    "report": cmd_report,
}


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
