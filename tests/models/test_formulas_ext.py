"""Tests: extended-LMO predictions of the wider algorithm menu track the DES."""

import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.models import ExtendedLMOModel
from repro.models.collectives.formulas_ext import (
    predict_binomial_bcast,
    predict_collective,
    predict_linear_bcast,
    predict_pipeline_bcast,
    predict_rd_allgather,
    predict_rd_allreduce,
    predict_reduce_bcast_allreduce,
    predict_ring_allgather,
)
from repro.mpi import run_collective

KB = 1024


def make(n=8, seed=40):
    gt = GroundTruth.random(n, seed=seed)
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    return cluster, ExtendedLMOModel.from_ground_truth(gt)


def check(prediction: float, observed: float, rel: float) -> None:
    assert prediction == pytest.approx(observed, rel=rel)


def test_linear_bcast_prediction_tracks_des():
    cluster, model = make()
    M = 32 * KB
    observed = run_collective(cluster, "bcast", "linear", nbytes=M).time
    check(predict_linear_bcast(model, M), observed, rel=0.1)


def test_binomial_bcast_prediction_tracks_des():
    cluster, model = make(seed=41)
    M = 32 * KB
    observed = run_collective(cluster, "bcast", "binomial", nbytes=M).time
    check(predict_binomial_bcast(model, M), observed, rel=0.15)


def test_pipeline_bcast_prediction_tracks_des():
    cluster, model = make(seed=42)
    M, seg = 256 * KB, 16 * KB
    observed = run_collective(cluster, "bcast", "pipeline", nbytes=M,
                              segment_nbytes=seg).time
    check(predict_pipeline_bcast(model, M, seg), observed, rel=0.25)


def test_pipeline_bcast_predicts_segment_tradeoff_direction():
    _cluster, model = make(seed=43)
    M = 128 * KB
    assert predict_pipeline_bcast(model, M, 16 * KB) < predict_pipeline_bcast(model, M, M)
    assert predict_pipeline_bcast(model, M, 16 * KB) < predict_pipeline_bcast(model, M, 256)


def test_ring_allgather_prediction_tracks_des():
    cluster, model = make(seed=44)
    M = 16 * KB
    observed = run_collective(cluster, "allgather", "ring", nbytes=M).time
    check(predict_ring_allgather(model, M), observed, rel=0.25)


def test_rd_allgather_prediction_tracks_des():
    cluster, model = make(seed=45)
    M = 16 * KB
    observed = run_collective(cluster, "allgather", "recursive_doubling", nbytes=M).time
    check(predict_rd_allgather(model, M), observed, rel=0.25)


def test_rd_allreduce_prediction_tracks_des():
    cluster, model = make(seed=46)
    M = 32 * KB
    observed = run_collective(cluster, "allreduce", "recursive_doubling", nbytes=M,
                              combine=lambda a, b: a).time
    check(predict_rd_allreduce(model, M), observed, rel=0.25)


def test_reduce_bcast_allreduce_prediction_tracks_des():
    cluster, model = make(seed=47)
    M = 32 * KB
    observed = run_collective(cluster, "allreduce", "reduce_bcast", nbytes=M,
                              combine=lambda a, b: a).time
    check(predict_reduce_bcast_allreduce(model, M), observed, rel=0.3)


def test_predictions_rank_algorithms_like_the_des():
    """Whatever algorithm actually wins on the cluster, the model must
    pick the same one — the whole point of model-driven selection."""
    cluster, model = make(seed=48)
    cases = [
        ("bcast", ["linear", "binomial"], 256 * KB, {}),
        ("allgather", ["ring", "recursive_doubling"], 64, {}),
        ("allgather", ["ring", "recursive_doubling"], 32 * KB, {}),
        ("allreduce", ["recursive_doubling", "reduce_bcast"], 64,
         {"combine": lambda a, b: a}),
    ]
    for operation, algorithms, nbytes, kwargs in cases:
        observed = {
            algo: run_collective(cluster, operation, algo, nbytes=nbytes, **kwargs).time
            for algo in algorithms
        }
        predicted = {
            algo: predict_collective(model, operation, algo, nbytes)
            for algo in algorithms
        }
        observed_best = min(observed, key=observed.__getitem__)
        predicted_best = min(predicted, key=predicted.__getitem__)
        assert predicted_best == observed_best, (
            f"{operation}@{nbytes}: model picked {predicted_best}, "
            f"cluster says {observed_best} (obs {observed}, pred {predicted})"
        )


def test_rd_requires_power_of_two():
    _cluster, model = make(n=6, seed=49)
    with pytest.raises(ValueError, match="power-of-two"):
        predict_rd_allgather(model, KB)


def test_predict_collective_unknown_combination():
    _cluster, model = make(seed=50)
    with pytest.raises(KeyError, match="available"):
        predict_collective(model, "bcast", "quantum", KB)


def test_validation():
    _cluster, model = make(seed=51)
    with pytest.raises(ValueError):
        predict_linear_bcast(model, -1)
    with pytest.raises(ValueError):
        predict_pipeline_bcast(model, KB, 0)


def test_vdg_bcast_prediction_tracks_des():
    from repro.models.collectives.formulas_ext import predict_vdg_bcast

    cluster, model = make(seed=52)
    M = 256 * KB
    observed = run_collective(cluster, "bcast", "van_de_geijn", nbytes=M).time
    assert predict_vdg_bcast(model, M) == pytest.approx(observed, rel=0.3)


def test_rabenseifner_prediction_tracks_des():
    from repro.models.collectives.formulas_ext import predict_rabenseifner_allreduce

    cluster, model = make(seed=53)
    M = 256 * KB
    observed = run_collective(cluster, "allreduce", "rabenseifner", nbytes=M,
                              combine=lambda a, b: a).time
    assert predict_rabenseifner_allreduce(model, M) == pytest.approx(observed, rel=0.3)


def test_composite_predictions_rank_like_the_des():
    cluster, model = make(seed=54)
    for operation, algorithms, nbytes in [
        ("bcast", ["binomial", "van_de_geijn"], 512 * KB),
        ("bcast", ["binomial", "van_de_geijn"], 256),
        ("allreduce", ["recursive_doubling", "rabenseifner"], 512 * KB),
        ("allreduce", ["recursive_doubling", "rabenseifner"], 64),
    ]:
        kwargs = {"combine": (lambda a, b: a)} if operation == "allreduce" else {}
        observed = {
            algo: run_collective(cluster, operation, algo, nbytes=nbytes, **kwargs).time
            for algo in algorithms
        }
        predicted = {
            algo: predict_collective(model, operation, algo, nbytes)
            for algo in algorithms
        }
        assert min(predicted, key=predicted.__getitem__) == min(
            observed, key=observed.__getitem__
        ), f"{operation}@{nbytes}"
