"""Parallel campaigns: supervised workers, leases, deterministic merge.

The tentpole acceptance: the parallel executor's output — model
parameters, coverage, breaker board — is bit-identical to a serial run
with the same seed, including under chaos-injected worker kills (torn
tails included) and a coordinator crash followed by resume.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GroundTruth, NoiseModel, SimulatedCrash
from repro.estimation import (
    AnalyticEngineRecipe,
    Campaign,
    CampaignConfig,
    ChaosKill,
    DESEngineRecipe,
    JournalCorruption,
    JournalError,
    LeasePolicy,
    ParallelCampaign,
    ParallelConfig,
    campaign_status,
    merge_worker_journals,
    parallel_shards_exist,
    parallel_status,
    recipe_for_cluster,
    worker_journal_paths,
)
from repro.estimation.journal import replay
from repro.estimation.parallel import coordinator_path
from repro.obs import runtime as _obs

pytestmark = pytest.mark.campaign

CONFIG = CampaignConfig(seed=11, timeout=5.0)

#: Fast-reclaim lease policy so chaos tests don't wait out real deadlines.
FAST_LEASE = LeasePolicy(
    lease_seconds=10.0, heartbeat_seconds=0.1, stale_after=2.0,
    groups_per_lease=2, reassign_backoff=0.01,
)


def make_recipe(gt_seed=2):
    gt = GroundTruth.random(4, seed=gt_seed)
    return AnalyticEngineRecipe(
        gt, noise=NoiseModel(rel_sigma=0.05, spike_prob=0.0), seed=0
    )


def models_equal(a, b):
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in ("C", "t", "L", "beta")
    )


def assert_same_output(serial, parallel_result):
    """The ISSUE's byte-identical acceptance: model, coverage, breakers."""
    assert models_equal(serial.model, parallel_result.model)
    assert parallel_result.coverage == serial.coverage
    assert parallel_result.breakers == serial.breakers
    assert parallel_result.completed == serial.completed
    assert parallel_result.failed == serial.failed


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("serial") / "serial.jsonl"
    recipe = make_recipe()
    return Campaign.start(recipe.build(), str(path), CONFIG).run()


# -- the happy path --------------------------------------------------------------
def test_parallel_is_bit_identical_to_serial(serial_run, tmp_path):
    path = str(tmp_path / "par.jsonl")
    result = ParallelCampaign.start(
        make_recipe(), path, config=CONFIG,
        parallel=ParallelConfig(workers=2, lease=FAST_LEASE),
    ).run()
    assert result.stopped == "complete"
    assert result.completed == 36
    assert not result.degraded
    assert_same_output(serial_run, result)
    # The canonical merged journal exists and replays cleanly in unit order.
    rep = replay(path)
    done = rep.of_type("experiment_done")
    assert [rec["index"] for rec in done] == sorted(rec["index"] for rec in done)
    assert len(done) == 36
    assert rep.header["merged_from_workers"] == len(worker_journal_paths(path))


def test_single_worker_degenerates_to_serial(serial_run, tmp_path):
    path = str(tmp_path / "one.jsonl")
    result = ParallelCampaign.start(
        make_recipe(), path, config=CONFIG,
        parallel=ParallelConfig(workers=1, lease=FAST_LEASE),
    ).run()
    assert_same_output(serial_run, result)


def test_start_refuses_existing_journal_or_shards(serial_run, tmp_path):
    with pytest.raises(JournalError, match="already exists"):
        ParallelCampaign.start(make_recipe(), serial_run.journal_path, CONFIG)
    path = str(tmp_path / "shards.jsonl")
    lease = LeasePolicy(heartbeat_seconds=0.1)
    with pytest.raises(SimulatedCrash):
        ParallelCampaign.start(
            make_recipe(), path, config=CONFIG,
            parallel=ParallelConfig(workers=1, lease=lease,
                                    chaos_coordinator_crash_after=2),
        ).run()
    with pytest.raises(JournalError, match="shard set already exists"):
        ParallelCampaign.start(make_recipe(), path, CONFIG)


# -- chaos: worker kills ---------------------------------------------------------
def test_killed_worker_is_reclaimed_and_result_identical(serial_run, tmp_path):
    path = str(tmp_path / "kill.jsonl")
    result = ParallelCampaign.start(
        make_recipe(), path, config=CONFIG,
        parallel=ParallelConfig(
            workers=2, lease=FAST_LEASE,
            chaos_kills=(ChaosKill(worker=0, after_units=2, torn_tail=True),),
        ),
    ).run()
    assert result.stopped == "complete"
    assert_same_output(serial_run, result)
    coord = replay(coordinator_path(path))
    assert coord.of_type("worker_dead"), "the chaos kill must be supervised"
    assert coord.of_type("units_reclaimed"), "in-flight units must be reclaimed"
    # The torn tail the dying worker left is tolerated everywhere.
    assert len(replay(path).of_type("experiment_done")) == 36


def test_both_initial_workers_killed_still_completes(serial_run, tmp_path):
    path = str(tmp_path / "kill2.jsonl")
    result = ParallelCampaign.start(
        make_recipe(), path, config=CONFIG,
        parallel=ParallelConfig(
            workers=2, lease=FAST_LEASE,
            chaos_kills=(
                ChaosKill(worker=0, after_units=1, torn_tail=True),
                ChaosKill(worker=1, after_units=3),
            ),
        ),
    ).run()
    assert result.stopped == "complete"
    assert_same_output(serial_run, result)
    dead = replay(coordinator_path(path)).of_type("worker_dead")
    assert len(dead) >= 2


def test_fleet_exhaustion_finishes_serially(serial_run, tmp_path):
    """Every worker dies instantly and the respawn budget runs out: the
    leftovers are quarantined, then the assembly pass finishes them
    serially — the result still lands, still bit-identical."""
    path = str(tmp_path / "exhaust.jsonl")
    lease = LeasePolicy(
        lease_seconds=10.0, heartbeat_seconds=0.1, stale_after=2.0,
        reassign_backoff=0.01, max_worker_respawns=1,
    )
    result = ParallelCampaign.start(
        make_recipe(), path, config=CONFIG,
        parallel=ParallelConfig(
            workers=1, lease=lease,
            chaos_kills=tuple(
                ChaosKill(worker=w, after_units=0) for w in range(4)
            ),
        ),
    ).run()
    coord = replay(coordinator_path(path))
    reasons = [rec["reason"] for rec in coord.of_type("units_reclaimed")]
    assert "fleet_exhausted" in reasons
    assert result.stopped == "complete"
    assert_same_output(serial_run, result)


# -- chaos: coordinator crash + resume -------------------------------------------
def test_coordinator_crash_resumes_bit_identical(serial_run, tmp_path):
    path = str(tmp_path / "coord.jsonl")
    with pytest.raises(SimulatedCrash):
        ParallelCampaign.start(
            make_recipe(), path, config=CONFIG,
            parallel=ParallelConfig(workers=2, lease=FAST_LEASE,
                                    chaos_coordinator_crash_after=5),
        ).run()
    assert parallel_shards_exist(path)
    assert not os.path.exists(path)  # no canonical journal yet
    status = campaign_status(path)  # the status fallback reads the shard set
    assert 0 < status.completed < 36
    assert not status.complete
    resumed = ParallelCampaign.resume(
        make_recipe(), path, parallel=ParallelConfig(workers=2, lease=FAST_LEASE)
    ).run()
    assert resumed.stopped == "complete"
    assert_same_output(serial_run, resumed)
    coord = replay(coordinator_path(path))
    assert coord.of_type("coordinator_resumed")
    # Nothing measured before the crash was re-measured after it... except
    # units that were in flight when the fleet died (deduplicated anyway).
    done = replay(path).of_type("experiment_done")
    assert len(done) == 36
    assert len({rec["index"] for rec in done}) == 36


def test_worker_kill_then_coordinator_crash_then_resume(serial_run, tmp_path):
    """The compound failure: one worker dies mid-unit with a torn tail,
    then the coordinator dies, then a fresh coordinator resumes."""
    path = str(tmp_path / "compound.jsonl")
    with pytest.raises(SimulatedCrash):
        ParallelCampaign.start(
            make_recipe(), path, config=CONFIG,
            parallel=ParallelConfig(
                workers=2, lease=FAST_LEASE,
                chaos_kills=(ChaosKill(worker=0, after_units=1, torn_tail=True),),
                chaos_coordinator_crash_after=8,
            ),
        ).run()
    resumed = ParallelCampaign.resume(
        make_recipe(), path, parallel=ParallelConfig(workers=2, lease=FAST_LEASE)
    ).run()
    assert_same_output(serial_run, resumed)


def test_budget_stop_is_resumable_through_parallel_path(serial_run, tmp_path):
    path = str(tmp_path / "budget.jsonl")
    config = CampaignConfig(seed=11, timeout=5.0, max_repetitions=30)
    result = ParallelCampaign.start(
        make_recipe(), path, config=config,
        parallel=ParallelConfig(workers=2, lease=FAST_LEASE),
    ).run()
    assert result.stopped == "budget_repetitions"
    assert result.resumable
    assert result.model is None
    assert not os.path.exists(path)  # still sharded, no canonical journal
    resumed = ParallelCampaign.resume(
        make_recipe(), path,
        parallel=ParallelConfig(workers=2, lease=FAST_LEASE),
        max_repetitions=10**6,
    ).run()
    assert resumed.stopped == "complete"
    assert_same_output(serial_run, resumed)


# -- merge semantics -------------------------------------------------------------
def _shard_set_with_crash(tmp_path):
    path = str(tmp_path / "m.jsonl")
    with pytest.raises(SimulatedCrash):
        ParallelCampaign.start(
            make_recipe(), path, config=CONFIG,
            parallel=ParallelConfig(workers=2, lease=FAST_LEASE,
                                    chaos_coordinator_crash_after=6),
        ).run()
    return path


def test_merge_deduplicates_identical_records(tmp_path):
    path = _shard_set_with_crash(tmp_path)
    shards = worker_journal_paths(path)
    assert len(shards) == 2
    donor = replay(shards[0]).of_type("experiment_done")[0]
    dup = dict(donor)
    dup["wall_cost"] = 123.456  # wall clock is volatile, not identity
    with open(shards[1], "a") as handle:
        handle.write(json.dumps(dup) + "\n")
    with pytest.warns(UserWarning, match="duplicate unit record"):
        units, duplicates = merge_worker_journals(path)
    assert duplicates == 1
    done = replay(path).of_type("experiment_done")
    assert len({rec["index"] for rec in done}) == len(done) == units


def test_merge_rejects_conflicting_records(tmp_path):
    path = _shard_set_with_crash(tmp_path)
    shards = worker_journal_paths(path)
    donor = replay(shards[0]).of_type("experiment_done")[0]
    evil = dict(donor)
    evil["samples"] = [s * 2 for s in evil["samples"]]
    with open(shards[1], "a") as handle:
        handle.write(json.dumps(evil) + "\n")
    with pytest.raises(JournalCorruption, match="disagrees"):
        merge_worker_journals(path)


def test_merge_rejects_headerless_shard(tmp_path):
    """Shard headers are written atomically, so an empty worker journal
    cannot be a crash artifact — it is damage, and merge says so."""
    path = _shard_set_with_crash(tmp_path)
    open(path + ".w7", "w").close()
    with pytest.raises(JournalCorruption, match="no complete header"):
        merge_worker_journals(path)


# -- status over a shard set -----------------------------------------------------
def test_parallel_status_reports_progress(tmp_path):
    path = _shard_set_with_crash(tmp_path)
    status = parallel_status(path)
    assert status.total_experiments == 36
    assert 0 < status.completed < 36
    assert status.coverage == pytest.approx(status.completed / 36)
    assert status.repetitions > 0
    assert status.estimation_time > 0
    assert not status.complete
    text = status.summary()
    assert "s wall clock" in text
    # campaign_status falls through to the shard set when the canonical
    # journal does not exist yet.
    assert campaign_status(path).completed == status.completed


# -- recipes and config ----------------------------------------------------------
def test_recipe_for_cluster_round_trips_identity(tmp_path):
    import pickle

    from repro.cluster import (
        IDEAL, FaultInjector, FaultPlan, NodeCrash, SimulatedCluster,
        random_cluster,
    )

    gt = GroundTruth.random(4, seed=5)
    cluster = SimulatedCluster(
        random_cluster(4, seed=5), ground_truth=gt, profile=IDEAL,
        noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
    )
    cluster.attach_injector(
        FaultInjector(FaultPlan(faults=(NodeCrash(node=3),)))
    )
    recipe = recipe_for_cluster(cluster)
    assert isinstance(recipe, DESEngineRecipe)
    rebuilt = pickle.loads(pickle.dumps(recipe)).build()
    assert rebuilt.n == 4
    assert rebuilt.cluster.injector is not None


def test_lease_policy_validation_and_roundtrip():
    policy = LeasePolicy(lease_seconds=5.0, groups_per_lease=3)
    assert LeasePolicy.from_dict(policy.to_dict()) == policy
    with pytest.raises(ValueError, match="lease_seconds"):
        LeasePolicy(lease_seconds=0.0)
    with pytest.raises(ValueError, match="groups_per_lease"):
        LeasePolicy(groups_per_lease=0)
    with pytest.raises(ValueError, match="max_unit_retries"):
        LeasePolicy(max_unit_retries=-1)
    with pytest.raises(ValueError, match="workers"):
        ParallelConfig(workers=0)
    with pytest.raises(ValueError, match="chaos_coordinator_crash_after"):
        ParallelConfig(chaos_coordinator_crash_after=0)
    with pytest.raises(ValueError, match="worker"):
        ChaosKill(worker=-1, after_units=0)


# -- telemetry -------------------------------------------------------------------
def test_parallel_run_emits_lease_and_worker_metrics(tmp_path):
    path = str(tmp_path / "tel.jsonl")
    tel = _obs.enable(fresh=True)
    try:
        ParallelCampaign.start(
            make_recipe(), path, config=CONFIG,
            parallel=ParallelConfig(
                workers=2, lease=FAST_LEASE,
                chaos_kills=(ChaosKill(worker=0, after_units=1),),
            ),
        ).run()
        reg = tel.registry
        assert reg.total("parallel_workers_spawned_total") >= 2
        assert reg.total("parallel_leases_granted_total") > 0
        assert reg.total("parallel_workers_dead_total") >= 1
        assert reg.total("parallel_units_reclaimed_total") >= 1
        assert reg.total("parallel_merge_units_total") == 36
        names = {span.name for span in tel.spans.finished()}
        assert "campaign.parallel.run" in names
        assert "campaign.parallel.merge" in names
        assert tel.events.events(name="parallel_worker_dead")
    finally:
        _obs.disable()


# -- the api front door ----------------------------------------------------------
def test_api_run_campaign_workers_matches_serial(tmp_path):
    from repro import api
    from repro.cluster import IDEAL, SimulatedCluster, random_cluster

    def cluster():
        gt = GroundTruth.random(4, seed=5)
        return SimulatedCluster(
            random_cluster(4, seed=5), ground_truth=gt, profile=IDEAL,
            noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
        )

    serial = api.run_campaign(cluster(), str(tmp_path / "s.jsonl"), CONFIG)
    par = api.run_campaign(
        cluster(), str(tmp_path / "p.jsonl"), CONFIG, workers=2,
        parallel=ParallelConfig(workers=2, lease=FAST_LEASE),
    )
    assert_same_output(serial, par)


def test_api_resume_campaign_detects_shard_set(tmp_path):
    from repro import api
    from repro.cluster import IDEAL, SimulatedCluster, random_cluster

    def cluster():
        gt = GroundTruth.random(4, seed=5)
        return SimulatedCluster(
            random_cluster(4, seed=5), ground_truth=gt, profile=IDEAL,
            noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
        )

    serial = api.run_campaign(cluster(), str(tmp_path / "s.jsonl"), CONFIG)
    path = str(tmp_path / "p.jsonl")
    recipe = recipe_for_cluster(cluster())
    with pytest.raises(SimulatedCrash):
        ParallelCampaign.start(
            recipe, path, config=CONFIG,
            parallel=ParallelConfig(workers=2, lease=FAST_LEASE,
                                    chaos_coordinator_crash_after=4),
        ).run()
    resumed = api.resume_campaign(
        cluster(), path, workers=2,
        parallel=ParallelConfig(workers=2, lease=FAST_LEASE),
    )
    assert_same_output(serial, resumed)


# -- property: determinism under random schedules, fleets and kill points --------
@settings(max_examples=5, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=3),
    kill_after=st.integers(min_value=0, max_value=12),
    torn=st.booleans(),
)
def test_any_kill_point_merges_identically(
    workers, kill_after, torn, serial_run, tmp_path_factory
):
    tmp_path = tmp_path_factory.mktemp("prop")
    path = str(tmp_path / "j.jsonl")
    result = ParallelCampaign.start(
        make_recipe(), path, config=CONFIG,
        parallel=ParallelConfig(
            workers=workers, lease=FAST_LEASE,
            chaos_kills=(
                ChaosKill(worker=0, after_units=kill_after, torn_tail=torn),
            ),
        ),
    ).run()
    assert result.stopped == "complete"
    assert_same_output(serial_run, result)


def test_trace_id_propagates_into_every_journal_header(tmp_path):
    """An active trace context stamps the coordinator header, every
    worker shard, and the canonical merged journal — so a distributed
    campaign correlates with the spans of whoever launched it."""
    import random

    from repro.obs import trace as _trace

    path = str(tmp_path / "traced.jsonl")
    ctx = _trace.new_context(random.Random(5))
    with _trace.use(ctx):
        result = ParallelCampaign.start(
            make_recipe(), path, config=CONFIG,
            parallel=ParallelConfig(workers=1, lease=FAST_LEASE),
        ).run()
    assert result.stopped == "complete"
    assert replay(path).header["trace_id"] == ctx.trace_id
    for shard in worker_journal_paths(path):
        assert replay(shard).header["trace_id"] == ctx.trace_id


def test_untraced_campaign_writes_no_trace_id(serial_run, tmp_path):
    path = str(tmp_path / "untraced.jsonl")
    result = ParallelCampaign.start(
        make_recipe(), path, config=CONFIG,
        parallel=ParallelConfig(workers=1, lease=FAST_LEASE),
    ).run()
    assert result.stopped == "complete"
    assert "trace_id" not in replay(path).header
