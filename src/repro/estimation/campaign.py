"""Durable estimation campaigns: journaled, resumable, breaker-guarded.

A full extended-LMO sweep is ``2 C(n,2) + 2 * 3 C(n,3)`` experiments
(paper eqs. 6-12) — minutes of cluster time the paper spends a whole
section minimizing.  PR 1 hardened the in-process path; this module
makes the *campaign itself* durable:

* every experiment is one **idempotent unit of work**, journaled
  write-ahead (:mod:`repro.estimation.journal`): a crash at any byte
  boundary leaves a loadable prefix, and :meth:`Campaign.resume` replays
  it, skips completed units, re-queues in-flight ones, and continues to
  the *bit-identical* final model an uninterrupted run would have
  produced (each unit draws its measurement noise from a seed derived
  from ``(campaign seed, unit index)``, so results do not depend on which
  process executed the unit, or when);
* per-node **circuit breakers** (:mod:`repro.estimation.breakers`)
  reroute the schedule around a dying node instead of burning the full
  timeout/retry budget on every unit touching it; half-open probes
  re-admit recovered nodes, dead ones end up quarantined and the final
  assembly (the same :func:`~repro.estimation.robust.solve_and_assemble`
  stage the robust estimator uses) reports coverage honestly;
* **budgets** — wall-clock, simulated cluster time, total repetitions —
  stop the campaign *between* units at a checkpoint, never mid-
  experiment; the journal stays resumable with a larger budget.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
import warnings
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Optional, Sequence

import numpy as np

from repro.estimation.breakers import BreakerBoard, BreakerPolicy
from repro.estimation.engines import ExperimentEngine
from repro.estimation.experiments import Experiment, one_to_two, roundtrip
from repro.estimation.journal import (
    CampaignJournal,
    JournalCorruption,
    JournalReplay,
    replay,
    validate_fingerprint,
    validate_schedule,
)
from repro.estimation.lmo_est import (
    DEFAULT_PROBE_NBYTES,
    _rooted_triplets,
    build_experiment_set,
)
from repro.estimation.robust import screened_mean, solve_and_assemble
from repro.mpi.runtime import DeadlockError
from repro.obs import runtime as _obs

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "CampaignStatus",
    "campaign_status",
    "cluster_fingerprint",
]


# -- input validation (mirrors the validate_nbytes discipline) ------------------
def _check_int(name: str, value: Any, minimum: int) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")


def _check_positive_finite(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def _check_budget(name: str, value: Any) -> None:
    """Budgets may be None (uncapped); otherwise positive and finite —
    NaN in particular must not slip through a plain comparison."""
    if value is None:
        return
    _check_positive_finite(name, value)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs to be reproducible from its journal.

    Measurement discipline (``timeout`` / ``max_retries`` / ``backoff`` /
    ``mad_threshold``) mirrors :class:`~repro.estimation.robust.RetryPolicy`;
    assembly knobs (``physical_tol`` / ``quarantine_fraction``) mirror
    :func:`~repro.estimation.robust.estimate_extended_lmo_robust`.  The
    budgets are *hard caps*: the campaign stops at a checkpoint (between
    units, never mid-experiment) as soon as one is exceeded, leaving a
    resumable journal.
    """

    probe_nbytes: int = DEFAULT_PROBE_NBYTES
    reps: int = 3
    seed: int = 0
    timeout: float = 0.05
    max_retries: int = 4
    backoff: float = 2.0
    mad_threshold: float = 5.0
    physical_tol: float = 5e-5
    quarantine_fraction: float = 0.5
    #: Below this completed-experiment fraction the result is flagged
    #: ``coverage_ok=False`` (it is still produced — degraded, not failed).
    coverage_floor: float = 0.5
    checkpoint_every: int = 16
    #: Extra passes over still-missing units (breakers may have recovered).
    retry_passes: int = 1
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    max_wall_seconds: Optional[float] = None
    max_sim_seconds: Optional[float] = None
    max_repetitions: Optional[int] = None
    fsync: bool = True

    def __post_init__(self) -> None:
        _check_int("probe_nbytes", self.probe_nbytes, 1)
        _check_int("reps", self.reps, 1)
        _check_int("seed", self.seed, 0)
        _check_int("max_retries", self.max_retries, 0)
        _check_int("checkpoint_every", self.checkpoint_every, 1)
        _check_int("retry_passes", self.retry_passes, 0)
        _check_positive_finite("timeout", self.timeout)
        _check_positive_finite("mad_threshold", self.mad_threshold)
        if isinstance(self.backoff, bool) or not isinstance(
            self.backoff, (int, float, np.integer, np.floating)
        ):
            raise ValueError(f"backoff must be a number, got {self.backoff!r}")
        if not math.isfinite(self.backoff) or self.backoff < 1.0:
            raise ValueError(f"backoff must be finite and >= 1, got {self.backoff!r}")
        if not (isinstance(self.physical_tol, (int, float)) and self.physical_tol >= 0
                and math.isfinite(self.physical_tol)):
            raise ValueError(f"physical_tol must be finite and >= 0, got {self.physical_tol!r}")
        if not (0 < self.quarantine_fraction <= 1):
            raise ValueError(
                f"quarantine_fraction must be in (0, 1], got {self.quarantine_fraction!r}"
            )
        if not (0 < self.coverage_floor <= 1):
            raise ValueError(f"coverage_floor must be in (0, 1], got {self.coverage_floor!r}")
        _check_budget("max_wall_seconds", self.max_wall_seconds)
        _check_budget("max_sim_seconds", self.max_sim_seconds)
        if self.max_repetitions is not None:
            _check_int("max_repetitions", self.max_repetitions, 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "probe_nbytes": self.probe_nbytes,
            "reps": self.reps,
            "seed": self.seed,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
            "mad_threshold": self.mad_threshold,
            "physical_tol": self.physical_tol,
            "quarantine_fraction": self.quarantine_fraction,
            "coverage_floor": self.coverage_floor,
            "checkpoint_every": self.checkpoint_every,
            "retry_passes": self.retry_passes,
            "breaker": self.breaker.to_dict(),
            "max_wall_seconds": self.max_wall_seconds,
            "max_sim_seconds": self.max_sim_seconds,
            "max_repetitions": self.max_repetitions,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "CampaignConfig":
        doc = dict(doc)
        breaker = BreakerPolicy.from_dict(doc.pop("breaker"))
        return cls(breaker=breaker, **doc)


# -- identity: what cluster, what schedule --------------------------------------
def cluster_fingerprint(engine: ExperimentEngine) -> str:
    """Digest of the measured hardware: node count + ground-truth matrices.

    Identical for two engines built from the same spec and seed, different
    as soon as any LMO parameter differs — which is exactly the "same
    cluster?" question resume must answer.  Engines without an accessible
    ground truth hash the node count alone.
    """
    gt = getattr(engine, "ground_truth", None)
    if gt is None:
        gt = getattr(getattr(engine, "cluster", None), "ground_truth", None)
    digest = hashlib.sha256()
    digest.update(f"n={engine.n}".encode())
    if gt is not None:
        for name in ("C", "t", "L", "beta"):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(getattr(gt, name), dtype=float).tobytes())
    return digest.hexdigest()[:16]


def _experiment_to_dict(exp: Experiment) -> dict[str, Any]:
    return {
        "kind": exp.kind,
        "nodes": list(exp.nodes),
        "send_nbytes": exp.send_nbytes,
        "reply_nbytes": exp.reply_nbytes,
        "count": exp.count,
    }


def _schedule_hash(experiments: Sequence[Experiment], config: CampaignConfig) -> str:
    payload = json.dumps(
        {
            "experiments": [_experiment_to_dict(exp) for exp in experiments],
            "probe_nbytes": config.probe_nbytes,
            "reps": config.reps,
            "seed": config.seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _build_schedule(
    n: int, probe_nbytes: int, triplets: Optional[Sequence[tuple[int, int, int]]]
) -> tuple[list[tuple[int, int]], list[tuple[int, int, int]], list[Experiment]]:
    if n < 3:
        raise ValueError("LMO estimation needs at least 3 processors")
    base_triplets, rooted = _rooted_triplets(n, triplets)
    covered = {node for triple in base_triplets for node in triple}
    if covered != set(range(n)):
        raise ValueError(f"triplets leave nodes {sorted(set(range(n)) - covered)} unmeasured")
    pairs = sorted({pair for triple in base_triplets for pair in combinations(triple, 2)})
    experiments = build_experiment_set(pairs, rooted, probe_nbytes)
    return pairs, base_triplets, experiments


def _triplet_experiments(
    triple: tuple[int, int, int], probe_nbytes: int
) -> list[Experiment]:
    """The eight measurements eq. (8)/(11) need for one unordered triplet."""
    i, j, k = triple
    exps: list[Experiment] = []
    for a, b in combinations(triple, 2):
        exps.append(roundtrip(a, b, 0))
        exps.append(roundtrip(a, b, probe_nbytes))
    for root, x, y in ((i, j, k), (j, i, k), (k, i, j)):
        exps.append(one_to_two(root, x, y, 0, 0))
        exps.append(one_to_two(root, x, y, probe_nbytes, 0))
    return exps


def _unit_seed(campaign_seed: int, index: int) -> int:
    """The measurement seed of unit ``index`` — a pure function of the
    campaign seed and the unit's position, never of execution history.
    This is what makes crash-resume bit-identical to an uninterrupted run."""
    return int(np.random.SeedSequence([campaign_seed, index]).generate_state(1)[0])


def _reseed_engine(engine: ExperimentEngine, seed: int) -> None:
    """Point the engine's randomness at ``seed`` (best effort, engine-shaped)."""
    cluster = getattr(engine, "cluster", None)
    if cluster is not None and hasattr(cluster, "reseed"):
        cluster.reseed(seed)
        return
    if hasattr(engine, "rng"):
        engine.rng = np.random.default_rng(seed)  # type: ignore[attr-defined]


# -- results --------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignResult:
    """What a campaign run (or resume) produced, model plus honesty report."""

    #: The assembled :class:`~repro.models.lmo_extended.ExtendedLMOModel`,
    #: or None when the campaign stopped on a budget (resume to continue)
    #: or no triplet was fully measured.
    model: Optional[object]
    n: int
    total_experiments: int
    completed: int
    failed: int
    skipped: int
    #: Fraction of scheduled experiments with a clean measurement.
    coverage: float
    coverage_floor: float
    #: True when every scheduled experiment was measured and nothing was
    #: quarantined — False is not an error, it is an honest answer.
    degraded: bool
    quarantined: tuple[int, ...]
    solved_triplets: int
    total_triplets: int
    rejected_triplets: int
    #: "complete" | "budget_wall" | "budget_sim" | "budget_repetitions"
    stopped: str
    resumable: bool
    estimation_time: float
    wall_time: float
    repetitions: int
    breakers: dict[str, Any]
    journal_path: str

    @property
    def coverage_ok(self) -> bool:
        return self.coverage >= self.coverage_floor

    def to_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "total_experiments": self.total_experiments,
            "completed": self.completed,
            "failed": self.failed,
            "skipped": self.skipped,
            "coverage": self.coverage,
            "coverage_floor": self.coverage_floor,
            "coverage_ok": self.coverage_ok,
            "degraded": self.degraded,
            "quarantined": list(self.quarantined),
            "solved_triplets": self.solved_triplets,
            "total_triplets": self.total_triplets,
            "rejected_triplets": self.rejected_triplets,
            "stopped": self.stopped,
            "resumable": self.resumable,
            "estimation_time": self.estimation_time,
            "wall_time": self.wall_time,
            "repetitions": self.repetitions,
            "breakers": self.breakers,
            "journal_path": self.journal_path,
        }

    def summary(self) -> str:
        lines = [
            f"campaign {self.stopped}: {self.completed}/{self.total_experiments} "
            f"experiments measured (coverage {self.coverage:.1%}, "
            f"floor {self.coverage_floor:.0%})",
            f"triplets solved: {self.solved_triplets}/{self.total_triplets} "
            f"({self.rejected_triplets} rejected as unphysical)",
            f"cost: {self.estimation_time:.2f} s cluster time, "
            f"{self.repetitions} repetitions, {self.wall_time:.2f} s wall",
        ]
        if self.quarantined:
            lines.append(f"quarantined nodes: {list(self.quarantined)}")
        if self.failed or self.skipped:
            lines.append(
                f"unmeasured: {self.failed} failed, {self.skipped} rerouted "
                "around open breakers"
            )
        counts = self.breakers.get("counts", {})
        if counts.get("open") or counts.get("half_open"):
            lines.append(
                f"breakers: {counts.get('open', 0)} open, "
                f"{counts.get('half_open', 0)} half-open"
            )
        if self.resumable:
            lines.append(f"resumable journal: {self.journal_path}")
        if self.degraded:
            lines.append("DEGRADED result — treat coverage report as part of the model")
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignStatus:
    """A journal's state, readable without a cluster attached."""

    journal_path: str
    n: int
    total_experiments: int
    completed: int
    failed: int
    skipped: int
    in_flight: tuple[int, ...]
    repetitions: int
    estimation_time: float
    wall_time: float
    complete: bool
    stopped_reason: Optional[str]
    truncated_tail: bool
    #: Fraction of scheduled experiments with a journaled measurement.
    coverage: float = 0.0
    #: Nodes whose breakers the replayed outcome sequence leaves OPEN.
    quarantined: tuple[int, ...] = ()
    #: Triplets whose full eight-experiment set is already measured.
    solved_triplets: int = 0
    total_triplets: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "journal_path": self.journal_path,
            "n": self.n,
            "total_experiments": self.total_experiments,
            "completed": self.completed,
            "failed": self.failed,
            "skipped": self.skipped,
            "in_flight": list(self.in_flight),
            "repetitions": self.repetitions,
            "estimation_time": self.estimation_time,
            "wall_time": self.wall_time,
            "complete": self.complete,
            "stopped_reason": self.stopped_reason,
            "truncated_tail": self.truncated_tail,
            "coverage": self.coverage,
            "quarantined": list(self.quarantined),
            "solved_triplets": self.solved_triplets,
            "total_triplets": self.total_triplets,
        }

    def summary(self) -> str:
        state = "complete" if self.complete else "resumable"
        lines = [
            f"campaign journal {self.journal_path} ({state}): "
            f"{self.completed}/{self.total_experiments} experiments done "
            f"on {self.n} nodes",
            f"cost so far: {self.estimation_time:.2f} s cluster time, "
            f"{self.wall_time:.2f} s wall clock, {self.repetitions} repetitions",
            f"coverage {self.coverage:.1%}; triplets solvable: "
            f"{self.solved_triplets}/{self.total_triplets}",
        ]
        if self.quarantined:
            lines.append(f"quarantined nodes (open breakers): {list(self.quarantined)}")
        if self.failed:
            lines.append(f"failed experiments: {self.failed}")
        if self.in_flight:
            lines.append(
                f"in-flight at crash (will be re-queued): {list(self.in_flight)}"
            )
        if self.stopped_reason and not self.complete:
            lines.append(f"last stop reason: {self.stopped_reason}")
        if self.truncated_tail:
            lines.append("journal ends in a torn record (crash mid-append); "
                         "the partial line will be ignored on resume")
        return "\n".join(lines)


# -- replayed state -------------------------------------------------------------
@dataclass
class _ReplayedState:
    completed: dict[int, float] = field(default_factory=dict)
    last_outcome: dict[int, str] = field(default_factory=dict)
    events: list[tuple[str, int]] = field(default_factory=list)
    in_flight: list[int] = field(default_factory=list)
    repetitions: int = 0
    sim_time: float = 0.0
    wall_time: float = 0.0
    complete: bool = False
    stop_reason: Optional[str] = None

    @property
    def failed(self) -> int:
        return sum(
            1 for idx, out in self.last_outcome.items()
            if out == "failed" and idx not in self.completed
        )

    @property
    def skipped(self) -> int:
        return sum(
            1 for idx, out in self.last_outcome.items()
            if out == "skipped" and idx not in self.completed
        )


#: Unit-record fields excluded when deciding whether two records for the
#: same unit are the same measurement.  Wall clock is not deterministic
#: across processes or runs; ``sim_cost`` is a *delta* of the engine's
#: accumulated estimation time, so its trailing float bits depend on what
#: the measuring process ran beforehand.  The physics — ``samples``,
#: ``value``, ``attempts``, ``timeouts`` — is what unit determinism
#: guarantees, and is what identity compares.
_VOLATILE_RECORD_KEYS = ("wall_cost", "sim_cost")


def _record_identity(rec: dict[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in rec.items() if k not in _VOLATILE_RECORD_KEYS}


def _replay_state(rep: JournalReplay, total: int) -> _ReplayedState:
    state = _ReplayedState()
    done_records: dict[int, dict[str, Any]] = {}
    for rec in rep.records:
        rtype = rec.get("type")
        if rtype in ("experiment_started", "experiment_done", "experiment_failed",
                     "experiment_skipped"):
            idx = rec.get("index")
            if not isinstance(idx, int) or not (0 <= idx < total):
                raise JournalCorruption(
                    f"{rep.path}: record references experiment index {idx!r} "
                    f"outside the schedule (0..{total - 1})"
                )
            if rtype == "experiment_started":
                if idx not in state.in_flight:
                    state.in_flight.append(idx)
                continue
            if idx in state.in_flight:
                state.in_flight.remove(idx)
            if rtype == "experiment_done":
                if idx in state.completed:
                    # Unit results are pure functions of (campaign seed,
                    # unit index), so an identical duplicate (up to wall
                    # clock) is a benign replay — keep the first record
                    # and skip the duplicate's accounting.  A *differing*
                    # payload cannot come from the same campaign.
                    if _record_identity(done_records[idx]) != _record_identity(rec):
                        raise JournalCorruption(
                            f"{rep.path}: conflicting experiment_done records "
                            f"for index {idx}; unit results are deterministic "
                            "— differing payloads mean this journal was "
                            "concatenated or hand-edited, restart the campaign"
                        )
                    warnings.warn(
                        f"{rep.path}: duplicate experiment_done for index "
                        f"{idx} (identical payload); keeping the first record",
                        stacklevel=2,
                    )
                    continue
                done_records[idx] = rec
                state.completed[idx] = float(rec["value"])
                state.events.append(("done", idx))
                state.last_outcome[idx] = "done"
            elif rtype == "experiment_failed":
                state.events.append(("failed", idx))
                state.last_outcome[idx] = "failed"
            else:
                state.events.append(("skipped", idx))
                state.last_outcome[idx] = "skipped"
            state.repetitions += int(rec.get("attempts", 0))
            state.sim_time += float(rec.get("sim_cost", 0.0))
            state.wall_time += float(rec.get("wall_cost", 0.0))
        elif rtype == "checkpoint":
            state.stop_reason = rec.get("reason")
        elif rtype == "campaign_complete":
            state.complete = True
        elif rtype in ("breaker", "heal_cycle"):
            continue
        else:
            raise JournalCorruption(
                f"{rep.path}: unknown record type {rtype!r} "
                "(journal written by a newer build?)"
            )
    return state


def _rebuild_board(
    n: int,
    policy: BreakerPolicy,
    events: Sequence[tuple[str, int]],
    experiments: Sequence[Experiment],
) -> BreakerBoard:
    """Re-derive the breaker board by replaying unit outcomes in order.

    Applies the same calls the live run made (including the
    OPEN -> HALF_OPEN transition inside ``allows``), so a resumed
    campaign continues from the exact breaker state the crashed one had."""
    board = BreakerBoard(n, policy=policy)
    for kind, idx in events:
        nodes = experiments[idx].nodes
        board.allows(nodes)
        if kind == "done":
            board.record_success(nodes)
        elif kind == "failed":
            board.record_failure(nodes)
        board.advance()
    return board


# -- the campaign ----------------------------------------------------------------
class Campaign:
    """A durable pair+triplet estimation sweep over journaled units.

    Build one with :meth:`start` (fresh journal) or :meth:`resume`
    (continue an interrupted one), then call :meth:`run`.
    """

    def __init__(
        self,
        engine: ExperimentEngine,
        journal: CampaignJournal,
        config: CampaignConfig,
        pairs: list[tuple[int, int]],
        base_triplets: list[tuple[int, int, int]],
        experiments: list[Experiment],
        state: _ReplayedState,
        board: BreakerBoard,
    ) -> None:
        self.engine = engine
        self.journal = journal
        self.config = config
        self.pairs = pairs
        self.base_triplets = base_triplets
        self.experiments = experiments
        self.state = state
        self.board = board
        self._units_since_checkpoint = 0

    # -- construction --------------------------------------------------------
    @classmethod
    def start(
        cls,
        engine: ExperimentEngine,
        path: str,
        config: Optional[CampaignConfig] = None,
        triplets: Optional[Sequence[tuple[int, int, int]]] = None,
    ) -> "Campaign":
        """Create a fresh journal at ``path`` and a campaign over it."""
        config = config if config is not None else CampaignConfig()
        n = engine.n
        pairs, base_triplets, experiments = _build_schedule(
            n, config.probe_nbytes, triplets
        )
        header = {
            "fingerprint": cluster_fingerprint(engine),
            "schedule_hash": _schedule_hash(experiments, config),
            "n": n,
            "total_experiments": len(experiments),
            "triplets": [list(t) for t in triplets] if triplets is not None else None,
            "config": config.to_dict(),
        }
        journal = CampaignJournal.create(path, header, fsync=config.fsync)
        return cls(
            engine, journal, config, pairs, base_triplets, experiments,
            _ReplayedState(), BreakerBoard(n, policy=config.breaker),
        )

    @classmethod
    def resume(
        cls,
        engine: ExperimentEngine,
        path: str,
        max_wall_seconds: Optional[float] = None,
        max_sim_seconds: Optional[float] = None,
        max_repetitions: Optional[int] = None,
    ) -> "Campaign":
        """Continue the campaign journaled at ``path``.

        Validates the cluster fingerprint and the schedule hash, replays
        the journal (skipping completed units, re-queuing in-flight
        ones), and rebuilds the breaker board.  The budget arguments,
        when given, *replace* the journaled caps — a campaign stopped on
        a budget needs a bigger one to finish.
        """
        rep = replay(path)
        header = rep.header
        config = CampaignConfig.from_dict(header["config"])
        overrides: dict[str, Any] = {}
        if max_wall_seconds is not None:
            _check_budget("max_wall_seconds", max_wall_seconds)
            overrides["max_wall_seconds"] = max_wall_seconds
        if max_sim_seconds is not None:
            _check_budget("max_sim_seconds", max_sim_seconds)
            overrides["max_sim_seconds"] = max_sim_seconds
        if max_repetitions is not None:
            _check_int("max_repetitions", max_repetitions, 1)
            overrides["max_repetitions"] = max_repetitions
        if overrides:
            doc = config.to_dict()
            doc.update(overrides)
            config = CampaignConfig.from_dict(doc)
        n = int(header["n"])
        triplets = header.get("triplets")
        triplet_tuples = (
            [tuple(t) for t in triplets] if triplets is not None else None
        )
        pairs, base_triplets, experiments = _build_schedule(
            n, config.probe_nbytes, triplet_tuples
        )
        validate_fingerprint(header, cluster_fingerprint(engine), path)
        validate_schedule(header, _schedule_hash(experiments, config), path)
        state = _replay_state(rep, len(experiments))
        with _obs.suppressed():  # replay is history, not live breaker activity
            board = _rebuild_board(n, config.breaker, state.events, experiments)
        journal = CampaignJournal.open_append(path, fsync=config.fsync)
        return cls(
            engine, journal, config, pairs, base_triplets, experiments, state, board
        )

    # -- budget accounting ---------------------------------------------------
    def _budget_exceeded(self) -> Optional[str]:
        cfg = self.config
        if cfg.max_sim_seconds is not None and self.state.sim_time >= cfg.max_sim_seconds:
            return "budget_sim"
        if (
            cfg.max_repetitions is not None
            and self.state.repetitions >= cfg.max_repetitions
        ):
            return "budget_repetitions"
        if cfg.max_wall_seconds is not None and self.state.wall_time >= cfg.max_wall_seconds:
            return "budget_wall"
        return None

    # -- telemetry -----------------------------------------------------------
    def _flush_telemetry(self) -> None:
        """Publish campaign-level gauges (cold path: checkpoints and exits)."""
        tel = _obs.ACTIVE
        if tel is None:
            return
        state, cfg = self.state, self.config
        reg = tel.registry
        reg.gauge(
            "campaign_budget_wall_seconds_used", help="wall-clock budget consumed"
        ).set(state.wall_time)
        reg.gauge(
            "campaign_budget_sim_seconds_used", help="simulated-time budget consumed"
        ).set(state.sim_time)
        reg.gauge(
            "campaign_budget_repetitions_used", help="repetition budget consumed"
        ).set(float(state.repetitions))
        for name, limit in (
            ("campaign_budget_wall_seconds_limit", cfg.max_wall_seconds),
            ("campaign_budget_sim_seconds_limit", cfg.max_sim_seconds),
            ("campaign_budget_repetitions_limit", cfg.max_repetitions),
        ):
            if limit is not None:
                reg.gauge(name, help="configured budget cap").set(float(limit))
        for state_name, count in self.board.state_counts().items():
            reg.gauge(
                "breaker_nodes", help="nodes per breaker state", state=state_name
            ).set(float(count))
        reg.gauge(
            "campaign_coverage", help="fraction of scheduled experiments measured"
        ).set(len(state.completed) / max(1, len(self.experiments)))

    def _checkpoint(self, reason: str) -> None:
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.info(
                "campaign_checkpoint",
                reason=reason,
                completed=len(self.state.completed),
                repetitions=self.state.repetitions,
            )
            self._flush_telemetry()
        self.journal.append({
            "type": "checkpoint",
            "reason": reason,
            "completed": len(self.state.completed),
            "failed": self.state.failed,
            "skipped": self.state.skipped,
            "repetitions": self.state.repetitions,
            "sim_time": self.state.sim_time,
            "wall_time": self.state.wall_time,
        })
        self._units_since_checkpoint = 0

    # -- unit execution ------------------------------------------------------
    def _note_experiment(self) -> None:
        """Give a ProcessCrash fault its chance to kill us (tests/chaos)."""
        injector = getattr(getattr(self.engine, "cluster", None), "injector", None)
        if injector is not None and hasattr(injector, "note_experiment"):
            injector.note_experiment()

    def _process_unit(self, index: int) -> str:
        with _obs.span("campaign.unit", index=index):
            outcome = self._process_unit_inner(index)
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.counter(
                "campaign_units_total", help="campaign units by final outcome",
                outcome=outcome,
            ).inc()
            # Unit cadence drives the timeline/flight attachments (both
            # internally rate-limited) so a long campaign accrues windowed
            # history without any background thread.
            _obs.pulse()
        return outcome

    def _process_unit_inner(self, index: int) -> str:
        exp = self.experiments[index]
        state, config, journal = self.state, self.config, self.journal
        if not self.board.allows(exp.nodes):
            journal.append({
                "type": "experiment_skipped",
                "index": index,
                "open_nodes": self.board.open_nodes(),
            })
            state.events.append(("skipped", index))
            state.last_outcome[index] = "skipped"
            self.board.advance()
            return "skipped"

        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.counter(
                "campaign_units_started_total", help="campaign units started"
            ).inc()
        journal.append({
            "type": "experiment_started",
            "index": index,
            "experiment": _experiment_to_dict(exp),
        })
        _reseed_engine(self.engine, _unit_seed(config.seed, index))
        sim_start = self.engine.estimation_time
        wall_start = time.perf_counter()
        samples: list[float] = []
        attempts = timeouts = deadlocks = 0
        for _rep in range(config.reps):
            attempts += 1
            try:
                duration = float(self.engine.run(exp))
            except DeadlockError:
                deadlocks += 1
                continue
            if duration <= config.timeout:
                samples.append(duration)
            else:
                timeouts += 1
        budget = config.timeout
        for _retry in range(config.max_retries):
            if samples:
                break
            attempts += 1
            budget *= config.backoff
            try:
                duration = float(self.engine.run(exp))
            except DeadlockError:
                deadlocks += 1
                continue
            if duration <= budget:
                samples.append(duration)
            else:
                timeouts += 1
        sim_cost = float(self.engine.estimation_time - sim_start)
        wall_cost = float(time.perf_counter() - wall_start)
        state.repetitions += attempts
        state.sim_time += sim_cost
        state.wall_time += wall_cost
        if tel is not None:
            retries = attempts - config.reps
            if retries > 0:
                tel.registry.counter(
                    "campaign_unit_retries_total",
                    help="backoff retry attempts beyond the scheduled reps",
                ).inc(retries)
            tel.registry.histogram(
                "campaign_unit_wall_seconds", help="wall-clock cost of one unit"
            ).observe(wall_cost)

        common = {
            "index": index,
            "attempts": attempts,
            "timeouts": timeouts,
            "deadlocks": deadlocks,
            "sim_cost": sim_cost,
            "wall_cost": wall_cost,
        }
        if samples:
            value = float(screened_mean(samples, config.mad_threshold))
            journal.append({
                "type": "experiment_done",
                "samples": samples,
                "value": value,
                **common,
            })
            state.completed[index] = value
            state.events.append(("done", index))
            state.last_outcome[index] = "done"
            self.board.record_success(exp.nodes)
            outcome = "done"
        else:
            journal.append({"type": "experiment_failed", **common})
            state.events.append(("failed", index))
            state.last_outcome[index] = "failed"
            before = set(self.board.open_nodes())
            self.board.record_failure(exp.nodes)
            for node in self.board.open_nodes():
                if node not in before:
                    journal.append({"type": "breaker", "node": node, "state": "open"})
            outcome = "failed"
        self.board.advance()
        self._units_since_checkpoint += 1
        if self._units_since_checkpoint >= config.checkpoint_every:
            self._checkpoint("periodic")
        self._note_experiment()
        return outcome

    # -- the sweep -----------------------------------------------------------
    def run(self) -> CampaignResult:
        """Execute (or finish) the sweep; returns the assembled result.

        Stops *between* units when a budget trips, journaling a
        checkpoint and returning a model-less, resumable result.  A
        campaign whose journal already holds ``campaign_complete`` just
        re-assembles the final model from the journal — no measurement.
        """
        try:
            with _obs.span("campaign.run", n=self.engine.n,
                           total=len(self.experiments)):
                if self.state.complete:
                    return self._finalize(write_record=False)
                total = len(self.experiments)
                for pass_no in range(1 + self.config.retry_passes):
                    missing = [i for i in range(total) if i not in self.state.completed]
                    if not missing:
                        break
                    successes = 0
                    for index in missing:
                        reason = self._budget_exceeded()
                        if reason is not None:
                            tel = _obs.ACTIVE
                            if tel is not None:
                                tel.events.warning(
                                    "campaign_budget_stop", reason=reason,
                                    completed=len(self.state.completed), total=total,
                                )
                            self._checkpoint(reason)
                            return self._stopped(reason)
                        if self._process_unit(index) == "done":
                            successes += 1
                    if successes == 0:
                        break
                return self._finalize(write_record=True)
        finally:
            self.journal.close()

    def _stopped(self, reason: str) -> CampaignResult:
        self._flush_telemetry()
        state = self.state
        return CampaignResult(
            model=None,
            n=self.engine.n,
            total_experiments=len(self.experiments),
            completed=len(state.completed),
            failed=state.failed,
            skipped=state.skipped,
            coverage=len(state.completed) / len(self.experiments),
            coverage_floor=self.config.coverage_floor,
            degraded=True,
            quarantined=tuple(self.board.open_nodes()),
            solved_triplets=0,
            total_triplets=len(self.base_triplets),
            rejected_triplets=0,
            stopped=reason,
            resumable=True,
            estimation_time=state.sim_time,
            wall_time=state.wall_time,
            repetitions=state.repetitions,
            breakers=self.board.to_dict(),
            journal_path=self.journal.path,
        )

    def _finalize(self, write_record: bool) -> CampaignResult:
        self._flush_telemetry()
        state, config = self.state, self.config
        total = len(self.experiments)
        measured = {
            self.experiments[idx]: value for idx, value in state.completed.items()
        }
        solvable = [
            triple
            for triple in self.base_triplets
            if all(exp in measured
                   for exp in _triplet_experiments(triple, config.probe_nbytes))
        ]
        open_nodes = self.board.open_nodes()
        if solvable:
            assembly = solve_and_assemble(
                measured,
                self.engine.n,
                solvable,
                self.pairs,
                config.probe_nbytes,
                mad_threshold=config.mad_threshold,
                physical_tol=config.physical_tol,
                quarantine_fraction=config.quarantine_fraction,
                extra_quarantined=open_nodes,
            )
            model: Optional[object] = assembly.model
            quarantined = tuple(assembly.quarantined)
            rejected = len(assembly.rejected_triplets)
        else:
            model = None
            quarantined = tuple(sorted(open_nodes))
            rejected = 0
        coverage = len(state.completed) / total
        degraded = coverage < 1.0 or bool(quarantined) or model is None
        if write_record:
            self.journal.append({
                "type": "campaign_complete",
                "coverage": coverage,
                "degraded": degraded,
                "quarantined": list(quarantined),
                "solved_triplets": len(solvable),
            })
        return CampaignResult(
            model=model,
            n=self.engine.n,
            total_experiments=total,
            completed=len(state.completed),
            failed=state.failed,
            skipped=state.skipped,
            coverage=coverage,
            coverage_floor=config.coverage_floor,
            degraded=degraded,
            quarantined=quarantined,
            solved_triplets=len(solvable),
            total_triplets=len(self.base_triplets),
            rejected_triplets=rejected,
            stopped="complete",
            resumable=False,
            estimation_time=state.sim_time,
            wall_time=state.wall_time,
            repetitions=state.repetitions,
            breakers=self.board.to_dict(),
            journal_path=self.journal.path,
        )


def campaign_status(path: str) -> CampaignStatus:
    """Inspect a journal without touching any cluster.

    Everything here is re-derived from the journal alone: the schedule is
    rebuilt from the header's config (so triplet solvability can be
    checked against completed indices) and the breaker board is replayed
    from the outcome sequence (so "quarantined" means exactly what a
    resume would see).  Journals whose header predates the config field
    fall back to counts only.

    A path with no canonical journal but a parallel shard set (a
    coordinator journal from :mod:`repro.estimation.parallel`) is
    reported by folding the worker journals instead.
    """
    if not os.path.exists(path):
        from repro.estimation.parallel import parallel_shards_exist, parallel_status

        if parallel_shards_exist(path):
            return parallel_status(path)
    rep = replay(path)
    total = int(rep.header.get("total_experiments", 0))
    state = _replay_state(rep, total)
    coverage = len(state.completed) / total if total else 0.0
    quarantined: tuple[int, ...] = ()
    solved = total_triplets = 0
    header_config = rep.header.get("config")
    if header_config is not None:
        config = CampaignConfig.from_dict(header_config)
        n = int(rep.header["n"])
        triplets = rep.header.get("triplets")
        _, base_triplets, experiments = _build_schedule(
            n, config.probe_nbytes,
            [tuple(t) for t in triplets] if triplets is not None else None,
        )
        with _obs.suppressed():
            board = _rebuild_board(n, config.breaker, state.events, experiments)
        quarantined = tuple(board.open_nodes())
        exp_index = {exp: idx for idx, exp in enumerate(experiments)}
        total_triplets = len(base_triplets)
        solved = sum(
            1 for triple in base_triplets
            if all(exp_index[exp] in state.completed
                   for exp in _triplet_experiments(triple, config.probe_nbytes))
        )
    return CampaignStatus(
        journal_path=path,
        n=int(rep.header.get("n", 0)),
        total_experiments=total,
        completed=len(state.completed),
        failed=state.failed,
        skipped=state.skipped,
        in_flight=tuple(state.in_flight),
        repetitions=state.repetitions,
        estimation_time=state.sim_time,
        wall_time=state.wall_time,
        complete=state.complete,
        stopped_reason=state.stop_reason,
        truncated_tail=bool(rep.truncated_tail),
        coverage=coverage,
        quarantined=quarantined,
        solved_triplets=solved,
        total_triplets=total_triplets,
    )
