"""Benches of the beyond-the-paper extensions: the wider algorithm menu,
heterogeneous data partitioning, drift spot-checks, and sub-communicators.

These cover the 'future work' the paper's framework implies — every one
driven by the same extended-LMO model the paper contributes.
"""

import numpy as np

from repro.cluster import synthesize_ground_truth, table1_cluster
from repro.estimation import DESEngine, detect_model_drift
from repro.models import ExtendedLMOModel
from repro.models.collectives.formulas_ext import predict_collective
from repro.mpi import run_collective, run_group_collective
from repro.optimize import even_partition, optimal_partition, partition_makespan

KB = 1024
MB = 1024 * 1024


def table1_model():
    return ExtendedLMOModel.from_ground_truth(synthesize_ground_truth(table1_cluster()))


def test_bench_menu_predictions(benchmark):
    """Kernel: the full (operation, algorithm) prediction menu at 3 sizes."""
    model = table1_model()
    menu = [
        ("bcast", "linear"), ("bcast", "binomial"), ("bcast", "pipeline"),
        ("allgather", "ring"), ("allgather", "recursive_doubling"),
        ("allreduce", "recursive_doubling"), ("allreduce", "reduce_bcast"),
    ]

    def kernel():
        return sum(
            predict_collective(model, op, algo, m)
            for op, algo in menu
            for m in (KB, 32 * KB, 256 * KB)
        )

    assert benchmark(kernel) > 0


def test_bench_pipeline_bcast_simulation(benchmark, lam_cluster):
    """Kernel: a 16-rank pipelined broadcast of 256 KB."""

    def kernel():
        return run_collective(lam_cluster, "bcast", "pipeline", nbytes=256 * KB,
                              segment_nbytes=16 * KB).time

    assert benchmark(kernel) > 0


def test_bench_partition_lp(benchmark):
    """Kernel: the min-makespan LP for 16 heterogeneous nodes."""
    model = table1_model()
    rng = np.random.default_rng(0)
    work = rng.uniform(50e-9, 400e-9, size=16)

    def kernel():
        return optimal_partition(model, 32 * MB, work)

    part = benchmark(kernel)
    assert part.total == 32 * MB
    even = even_partition(16, 32 * MB)
    assert part.predicted_makespan <= partition_makespan(model, even, work) + 1e-12


def test_bench_drift_spot_check(benchmark):
    """Kernel: the full drift spot-check (2 probes per node, batched).

    Noise-free cluster: the benchmark repeats the kernel hundreds of
    times, and with OS-jitter enabled a rare spike under ``reps=1`` would
    (correctly!) flag drift — determinism keeps the assertion meaningful.
    """
    from repro.cluster import LAM_7_1_3, NoiseModel, SimulatedCluster, table1_cluster

    cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3,
                               noise=NoiseModel.none(), seed=42)
    model = ExtendedLMOModel.from_ground_truth(cluster.ground_truth)
    engine = DESEngine(cluster)

    def kernel():
        return detect_model_drift(model, engine, reps=1)

    report = benchmark(kernel)
    assert not report.drifted


def test_bench_group_collective(benchmark, lam_cluster):
    """Kernel: a binomial gather on an 8-node sub-communicator."""
    members = [0, 2, 4, 6, 8, 10, 12, 14]

    def kernel():
        return run_group_collective(
            lam_cluster, members, "gather", "binomial", nbytes=8 * KB
        ).time

    assert benchmark(kernel) > 0
