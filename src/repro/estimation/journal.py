"""Write-ahead journal for durable estimation campaigns.

A campaign's ``C(n,2)`` roundtrips plus ``3 C(n,3)`` one-to-two
experiments (paper eqs. 6-12) are minutes of cluster time; a crash, a
deadline or an operator Ctrl-C must not discard completed rounds.  The
journal makes every unit of work durable *before* its result is used:

* the file is JSONL — one self-describing record per line;
* the first line is the campaign header (cluster fingerprint, schedule
  hash, seed, schema version), created with write-temp-fsync-rename
  (:func:`repro.io.atomic_write_text`) so a half-created journal never
  exists on disk;
* every subsequent record is appended with ``flush`` + ``fsync`` before
  the campaign proceeds — write-ahead discipline;
* a torn final line (the crash hit mid-``write``) is *expected*, not an
  error: :func:`replay` drops it and reports the loadable prefix, which
  by the append-order invariants is always a consistent campaign state.

Corruption that cannot result from a crash at a byte boundary — a
missing or malformed header, garbage between valid records, a duplicated
``experiment_done`` — raises a specific, actionable error instead.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.io import atomic_write_text
from repro.obs import runtime as _obs

__all__ = [
    "CampaignJournal",
    "FingerprintMismatch",
    "JournalCorruption",
    "JournalError",
    "JournalReplay",
    "ScheduleMismatch",
    "JOURNAL_SCHEMA_VERSION",
    "HEADER_TYPE",
    "replay",
    "validate_fingerprint",
    "validate_schedule",
]

#: Version stamped into every header; replay refuses anything newer.
JOURNAL_SCHEMA_VERSION = 1

HEADER_TYPE = "campaign_header"


class JournalError(RuntimeError):
    """Base class of everything the journal layer can raise."""


class JournalCorruption(JournalError):
    """The journal violates an append-order invariant (not a torn tail)."""


class FingerprintMismatch(JournalError):
    """The journal was recorded against a different cluster."""


class ScheduleMismatch(JournalError):
    """The journal's schedule does not match the one derived from its header."""


@dataclass
class JournalReplay:
    """The loadable prefix of a journal file.

    ``records`` excludes the header.  ``truncated_tail`` is the partial
    final line a crash left behind (empty when the file ends cleanly) —
    callers that *resume* treat it as "the in-flight record never
    happened"; callers that *audit* can inspect it.
    """

    path: str
    header: dict[str, Any]
    records: list[dict[str, Any]] = field(default_factory=list)
    truncated_tail: str = ""

    def of_type(self, record_type: str) -> list[dict[str, Any]]:
        """All records of one type, in append order."""
        return [rec for rec in self.records if rec.get("type") == record_type]


class CampaignJournal:
    """Append-only JSONL journal with write-ahead discipline.

    Use :meth:`create` for a fresh journal (atomic header write) or
    :meth:`open_append` to continue an existing one after replay.
    """

    def __init__(self, path: str, handle) -> None:
        self.path = path
        self._handle = handle

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def create(cls, path: str, header: dict[str, Any], fsync: bool = True) -> "CampaignJournal":
        """Start a journal at ``path`` (refuses to overwrite an existing one).

        The header line is written atomically (temp + rename): either the
        complete one-line journal exists afterwards, or nothing does.
        """
        if os.path.exists(path):
            raise JournalError(
                f"journal already exists at {path}; resume it or choose a new path"
            )
        doc = {"type": HEADER_TYPE, "schema_version": JOURNAL_SCHEMA_VERSION, **header}
        atomic_write_text(path, json.dumps(doc) + "\n")
        journal = cls(path, open(path, "a"))
        journal._fsync = fsync
        return journal

    @classmethod
    def open_append(cls, path: str, fsync: bool = True) -> "CampaignJournal":
        """Open an existing journal for appending (header must be intact).

        A torn tail (crash mid-append) is truncated away first: appending
        after a partial line would weld the new record onto it, turning a
        recoverable tail into mid-journal corruption.
        """
        rep = replay(path)  # raises if the header is unreadable
        if rep.truncated_tail:
            with open(path, "rb+") as handle:
                data = handle.read()
                handle.truncate(data.rindex(b"\n") + 1)
        journal = cls(path, open(path, "a"))
        journal._fsync = fsync
        return journal

    _fsync: bool = True

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (newline-framed, flushed, fsynced)."""
        if "type" not in record:
            raise ValueError(f"journal records need a 'type' field: {record!r}")
        line = json.dumps(record)
        if "\n" in line:
            raise ValueError("journal records must serialize to a single line")
        tel = _obs.ACTIVE
        start = time.perf_counter() if tel is not None else 0.0
        self._handle.write(line + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        if tel is not None:
            tel.registry.histogram(
                "journal_append_seconds",
                help="write+flush+fsync latency of one journal record",
            ).observe(time.perf_counter() - start)
            tel.registry.counter(
                "journal_appends_total",
                help="journal records durably appended",
                record_type=str(record["type"]),
            ).inc()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay(path: str) -> JournalReplay:
    """Load the consistent prefix of a journal file.

    A partial final line (crash mid-append) is dropped and surfaced as
    ``truncated_tail``.  A malformed line *followed by* valid records
    cannot result from an append crash and raises
    :class:`JournalCorruption` with the offending line number; so does a
    missing or malformed header.
    """
    if not os.path.exists(path):
        raise JournalError(f"no journal at {path}")
    with open(path, "r", newline="") as handle:
        raw = handle.read()
    lines = raw.split("\n")
    # A file ending in "\n" splits into [..., ""]; anything else in the
    # final slot is a torn tail.
    tail = lines.pop() if lines else ""
    parsed: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            raise JournalCorruption(f"{path}:{lineno}: blank line inside the journal")
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalCorruption(
                f"{path}:{lineno}: unparseable record mid-journal ({exc.msg}); "
                "a crash can only tear the final line — this file was damaged, "
                "restore it from a copy or restart the campaign"
            ) from None
        if not isinstance(record, dict) or "type" not in record:
            raise JournalCorruption(
                f"{path}:{lineno}: record is not a typed object"
            )
        parsed.append(record)
    if not parsed:
        raise JournalCorruption(
            f"{path}: no complete header line (file is empty or fully torn)"
        )
    header = parsed[0]
    if header.get("type") != HEADER_TYPE:
        raise JournalCorruption(
            f"{path}: first record has type {header.get('type')!r}, "
            f"expected {HEADER_TYPE!r}"
        )
    version = header.get("schema_version")
    if not isinstance(version, int) or version > JOURNAL_SCHEMA_VERSION:
        raise JournalCorruption(
            f"{path}: unsupported journal schema version {version!r} "
            f"(this build reads <= {JOURNAL_SCHEMA_VERSION})"
        )
    return JournalReplay(
        path=path, header=header, records=parsed[1:], truncated_tail=tail
    )


def validate_fingerprint(header: dict[str, Any], fingerprint: str, path: str) -> None:
    """Raise :class:`FingerprintMismatch` unless the header matches."""
    recorded: Optional[str] = header.get("fingerprint")
    if recorded != fingerprint:
        raise FingerprintMismatch(
            f"{path}: journal was recorded against cluster fingerprint "
            f"{recorded!r} but the attached cluster has {fingerprint!r}; "
            "resume on the original cluster (same spec, ground truth and "
            "seed) or start a fresh campaign"
        )


def validate_schedule(header: dict[str, Any], schedule_hash: str, path: str) -> None:
    """Raise :class:`ScheduleMismatch` unless the header matches."""
    recorded: Optional[str] = header.get("schedule_hash")
    if recorded != schedule_hash:
        raise ScheduleMismatch(
            f"{path}: journal schedule hash {recorded!r} does not match the "
            f"schedule derived from its own header ({schedule_hash!r}); the "
            "header was edited or the schedule builder changed incompatibly"
        )
