"""repro.obs — dependency-free telemetry: metrics, spans, events.

The paper's argument is forensic — it *attributes* time (processor vs.
network, constant vs. variable, regular vs. escalated) — and this
subsystem makes the reproduction inspectable the same way:

* :mod:`repro.obs.metrics` — a process-local metrics registry
  (counters, gauges, log2-bucket histograms; labeled families;
  Prometheus-text and JSON exposition);
* :mod:`repro.obs.spans` — wall-clock span tracing with contextvars
  nesting, exportable to Chrome trace JSON alongside the simulated-time
  lanes of :class:`repro.simlib.trace.Tracer`;
* :mod:`repro.obs.events` — a structured, leveled event log with a
  bounded ring buffer and an optional JSONL sink;
* :mod:`repro.obs.runtime` — the on/off switchboard.  Telemetry is off
  by default; every instrumentation hook in the codebase guards on
  ``runtime.ACTIVE is None`` and costs nothing else when off.

Stdlib-only by design (no numpy — the registry must be importable from
the innermost simulation layers without cycles or heavyweight imports).

Quick start::

    from repro import obs

    tel = obs.enable()
    ... run a campaign, a chaos cycle, a sweep ...
    print(tel.to_prometheus())
    escalations = tel.events.events("rto_escalation")
"""

from repro.obs.events import LEVELS, EventLog
from repro.obs.export import (
    SNAPSHOT_FORMAT,
    chrome_trace,
    render_report,
    snapshot_prometheus,
    validate_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    prometheus_text,
)
from repro.obs.runtime import Telemetry, active, disable, enable, span, suppressed
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "LEVELS",
    "SNAPSHOT_FORMAT",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "active",
    "bucket_quantile",
    "chrome_trace",
    "disable",
    "enable",
    "insight",
    "prometheus_text",
    "render_report",
    "snapshot_prometheus",
    "span",
    "suppressed",
    "validate_snapshot",
]

from repro.obs import insight  # noqa: E402  (subpackage re-export)
