"""Ablation benches for the design decisions DESIGN.md calls out.

* D1 — rendezvous serialization off => gather's sum regime (the steeper
  M > M2 slope) collapses back toward the parallel branch.
* D2 — escalations off => the medium region is clean and the Fig. 7
  optimization becomes pointless.
* D3 — eager/rendezvous protocol off => the scatter leap disappears.
* D5 — parallel experiment schedules don't perturb results on a
  non-blocking switch (parallel == serial durations).
"""

import numpy as np

from conftest import assert_checks

from repro.cluster import IDEAL, LAM_7_1_3, NoiseModel, SimulatedCluster, table1_cluster
from repro.estimation import DESEngine
from repro.estimation.experiments import roundtrip
from repro.mpi import run_collective

KB = 1024


def make_cluster(profile, seed=7):
    return SimulatedCluster(
        table1_cluster(), profile=profile, noise=NoiseModel.none(), seed=seed
    )


def gather_min_time(cluster, nbytes, reps=6):
    return min(
        run_collective(cluster, "gather", "linear", nbytes=nbytes).time
        for _ in range(reps)
    )


def test_ablation_d1_rendezvous_creates_sum_regime(benchmark):
    """Without the rendezvous protocol, the 96->160 KB gather slope drops
    back to the wire-serialized rate: the M2 regime is a protocol effect."""
    lam = make_cluster(LAM_7_1_3)
    ideal = make_cluster(IDEAL)

    def kernel():
        return (
            gather_min_time(lam, 160 * KB) - gather_min_time(lam, 96 * KB),
            gather_min_time(ideal, 160 * KB) - gather_min_time(ideal, 96 * KB),
        )

    with_protocol, without_protocol = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert with_protocol > 1.2 * without_protocol


def test_ablation_d2_escalations_drive_fig7(benchmark):
    """With escalations disabled, native medium-size gather is already
    clean — the optimization's 10x gain is entirely the RTO model."""
    quiet_profile = LAM_7_1_3.with_overrides(escalation_p_max=0.0)
    noisy = make_cluster(LAM_7_1_3)
    quiet = make_cluster(quiet_profile)

    def kernel():
        worst_noisy = max(
            run_collective(noisy, "gather", "linear", nbytes=32 * KB).time
            for _ in range(10)
        )
        worst_quiet = max(
            run_collective(quiet, "gather", "linear", nbytes=32 * KB).time
            for _ in range(10)
        )
        return worst_noisy, worst_quiet

    worst_noisy, worst_quiet = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert worst_noisy > 0.2  # at least one RTO in ten runs
    assert worst_quiet < 0.1  # never an RTO


def test_ablation_d3_eager_threshold_creates_scatter_leap(benchmark):
    """The 64 KB scatter leap is the rendezvous switch: the IDEAL profile
    crosses 64 KB smoothly."""
    lam = make_cluster(LAM_7_1_3)
    ideal = make_cluster(IDEAL)

    def step(cluster):
        below = run_collective(cluster, "scatter", "linear", nbytes=56 * KB).time
        above = run_collective(cluster, "scatter", "linear", nbytes=72 * KB).time
        slope_below = below / (56 * KB)
        return (above - below) / (16 * KB) / slope_below

    def kernel():
        return step(lam), step(ideal)

    lam_step, ideal_step = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert lam_step > 2.0  # leap: slope across 64 KB >> average slope
    assert ideal_step < 2.0


def test_ablation_d5_parallel_schedule_is_non_intrusive(benchmark, experiment_results):
    """Disjoint experiments through one switch: batch == serial timings."""
    assert_checks(experiment_results("estimation_cost"))
    cluster = make_cluster(LAM_7_1_3)
    engine = DESEngine(cluster)
    exps = [roundtrip(0, 1, 32 * KB), roundtrip(2, 3, 32 * KB), roundtrip(4, 5, 32 * KB)]

    def kernel():
        serial = [engine.run(exp) for exp in exps]
        batch = engine.run_batch(exps)
        return serial, batch

    serial, batch = benchmark(kernel)
    assert np.allclose(serial, batch, rtol=1e-12)
