"""Model-driven algorithm selection (paper Fig. 6).

MPI implementations switch between collective algorithms by message size.
The paper shows the switch decision is only as good as the model behind
it: for 100 KB < M < 200 KB scatter on the Table I cluster, the
heterogeneous Hockney model predicts binomial < linear (wrong — it
serializes wire time the switch parallelizes, penalizing the linear
algorithm's n-1 transfers far too much), while the LMO model correctly
picks the linear algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.predict_service import predict_sweep

__all__ = [
    "AlgorithmChoice",
    "predict_algorithms",
    "predict_algorithms_sweep",
    "select_algorithm",
    "crossover_size",
]


@dataclass(frozen=True)
class AlgorithmChoice:
    """The model's verdict for one (operation, size)."""

    operation: str
    nbytes: int
    predictions: dict[str, float]

    @property
    def best(self) -> str:
        return min(self.predictions, key=self.predictions.__getitem__)


def _predict(model, operation: str, algorithm: str, nbytes: int, root: int) -> float:
    # All predictions flow through the batched service: scatter/gather
    # for every model, the wider menu (bcast / allgather / allreduce)
    # for the extended LMO model only.
    try:
        return float(predict_sweep(model, operation, algorithm, float(nbytes), root=root))
    except (KeyError, AttributeError, TypeError):
        raise KeyError(f"no prediction for {operation}/{algorithm}") from None


def predict_algorithms(
    model,
    operation: str,
    nbytes: int,
    root: int = 0,
    algorithms: Sequence[str] = ("linear", "binomial"),
) -> AlgorithmChoice:
    """Predict every candidate algorithm's time under ``model``.

    Routed through :mod:`repro.predict_service`, so repeated menu
    evaluations at the same sizes hit the sweep cache.
    """
    predictions = {
        algorithm: _predict(model, operation, algorithm, nbytes, root)
        for algorithm in algorithms
    }
    return AlgorithmChoice(operation=operation, nbytes=nbytes, predictions=predictions)


def predict_algorithms_sweep(
    model,
    operation: str,
    sizes: Sequence[float],
    root: int = 0,
    algorithms: Sequence[str] = ("linear", "binomial"),
) -> dict[str, np.ndarray]:
    """Whole algorithm menu over a whole size sweep, one array per
    algorithm — the vectorized counterpart of :func:`predict_algorithms`."""
    arr = np.asarray(sizes, dtype=float)
    return {
        algorithm: predict_sweep(model, operation, algorithm, arr, root=root)
        for algorithm in algorithms
    }


def select_algorithm(
    model,
    operation: str,
    nbytes: int,
    root: int = 0,
    algorithms: Sequence[str] = ("linear", "binomial"),
) -> str:
    """The algorithm the model recommends for this message size."""
    return predict_algorithms(model, operation, nbytes, root, algorithms).best


def crossover_size(
    model,
    operation: str = "scatter",
    lo: int = 64,
    hi: int = 1 << 21,
    root: int = 0,
    algorithms: tuple[str, str] = ("binomial", "linear"),
) -> Optional[int]:
    """Message size where the recommendation flips from ``algorithms[0]``
    to ``algorithms[1]`` (bisection; None if it never flips in range)."""
    first, second = algorithms

    def pick(nbytes: int) -> str:
        return select_algorithm(model, operation, nbytes, root, algorithms)

    if pick(lo) != first or pick(hi) != second:
        return None
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if pick(mid) == first:
            lo = mid
        else:
            hi = mid
    return hi
