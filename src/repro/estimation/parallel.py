"""Fault-tolerant parallel campaign executor: supervised workers, leases,
deterministic journal merge.

The estimation sweep (paper eqs. 6-12) is a set of *independent* units —
pair roundtrips and triplet one-to-two experiments — each of which draws
its measurement noise from a seed derived purely from ``(campaign seed,
unit index)`` (:func:`repro.estimation.campaign._unit_seed`).  That
purity is what PR 3's crash-resume determinism rests on, and it is also
what makes the sweep parallelizable without losing it: *which process*
measures a unit, and *when*, cannot change its value.

This module runs the sweep across worker processes while keeping every
durability property of the serial path:

* the **coordinator** shards units into node-locality groups (the units
  of one pair or one triplet stay together — mirroring the logical-
  cluster decomposition of Estefanel & Mounié) and hands groups to
  workers under time-bounded **leases** that are renewed by progress;
* each **worker** is a separate process that rebuilds its engine from a
  picklable :class:`EngineRecipe`, executes leased units through the
  *same* :class:`~repro.estimation.campaign.Campaign` unit executor the
  serial path uses, and appends to its own write-ahead journal
  (:mod:`repro.estimation.journal`, unchanged — torn tails included);
* a **supervisor** loop tracks worker liveness and lease progress: a
  dead worker (crashed process) or an expired lease (hung or straggling
  worker) has its in-flight units reclaimed and reassigned with bounded
  retry and exponential backoff; units that keep burning workers are
  quarantined through the breaker board instead of being retried
  forever;
* a deterministic **merge** step orders the per-worker journals back
  into canonical unit order, deduplicates double-measured units (their
  payloads are bit-identical by construction; differing payloads are
  corruption), and writes a canonical journal at the campaign path that
  replays exactly like a serial run's.  The final model, coverage
  report and breaker board are then *re-derived from that journal* by
  the serial replay path, so the merged result is bit-identical to an
  uninterrupted serial run with the same seed — by construction, not by
  bookkeeping.

Crash-resume works on the sharded set: if the coordinator dies, the
coordinator journal plus the per-worker journals are enough for
:meth:`ParallelCampaign.resume` (``repro campaign resume --workers N``)
to fold what was measured and finish the rest with a fresh fleet.
"""

from __future__ import annotations

import glob as _glob
import json
import multiprocessing as mp
import os
import queue as _queue
import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

from repro.cluster.faults import FaultInjector, FaultPlan, SimulatedCrash
from repro.cluster.machine import SimulatedCluster
from repro.estimation.breakers import BreakerBoard
from repro.estimation.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    CampaignStatus,
    _build_schedule,
    _experiment_to_dict,
    _rebuild_board,
    _record_identity,
    _ReplayedState,
    _schedule_hash,
    _triplet_experiments,
    cluster_fingerprint,
)
from repro.estimation.engines import AnalyticEngine, DESEngine, ExperimentEngine
from repro.estimation.journal import (
    CampaignJournal,
    JournalCorruption,
    JournalError,
    replay,
    validate_fingerprint,
    validate_schedule,
)
from repro.io import atomic_write_text
from repro.obs import runtime as _obs
from repro.obs import trace as _trace

__all__ = [
    "AnalyticEngineRecipe",
    "ChaosKill",
    "DESEngineRecipe",
    "EngineRecipe",
    "LeasePolicy",
    "ParallelCampaign",
    "ParallelConfig",
    "coordinator_path",
    "merge_worker_journals",
    "parallel_shards_exist",
    "parallel_status",
    "recipe_for_cluster",
    "worker_journal_paths",
]

#: Exit code a chaos-killed worker dies with (distinguishable in tests).
CHAOS_EXIT_CODE = 137

_UNIT_RECORD_TYPES = ("experiment_done", "experiment_failed", "experiment_skipped")


# -- engine recipes --------------------------------------------------------------
class EngineRecipe:
    """A picklable recipe for rebuilding an engine inside a worker process.

    Engines carry live simulator state (event heaps, generator frames)
    that must not cross a process boundary; recipes carry only the frozen
    inputs — spec, ground truth, profile, noise, fault plan — and rebuild
    a fresh engine per process.  Because every campaign unit reseeds the
    engine from ``(campaign seed, unit index)`` before measuring, a
    freshly built engine produces bit-identical measurements to any other
    engine built from the same recipe.
    """

    def build(self) -> ExperimentEngine:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class DESEngineRecipe(EngineRecipe):
    """Rebuild a :class:`~repro.estimation.engines.DESEngine`."""

    spec: Any
    ground_truth: Any
    profile: Any
    noise: Any
    seed: int = 0
    plan: Optional[FaultPlan] = None

    def build(self) -> DESEngine:
        cluster = SimulatedCluster(
            self.spec,
            ground_truth=self.ground_truth,
            profile=self.profile,
            noise=self.noise,
            seed=self.seed,
        )
        if self.plan is not None and len(self.plan):
            cluster.attach_injector(FaultInjector(self.plan))
        return DESEngine(cluster)


@dataclass(frozen=True)
class AnalyticEngineRecipe(EngineRecipe):
    """Rebuild an :class:`~repro.estimation.engines.AnalyticEngine`."""

    ground_truth: Any
    noise: Any = None
    seed: int = 0

    def build(self) -> AnalyticEngine:
        return AnalyticEngine(self.ground_truth, noise=self.noise, seed=self.seed)


def recipe_for_cluster(cluster: SimulatedCluster) -> DESEngineRecipe:
    """The recipe that rebuilds ``DESEngine(cluster)`` in a worker.

    The cluster's live state (simulator, RNG position) is deliberately
    *not* captured: campaign units reseed per unit, so only the frozen
    identity — spec, ground truth, profile, noise, fault plan — matters.
    """
    injector = getattr(cluster, "injector", None)
    plan = injector.plan if injector is not None else None
    return DESEngineRecipe(
        spec=cluster.spec,
        ground_truth=cluster.ground_truth,
        profile=cluster.profile,
        noise=cluster.noise,
        plan=plan,
    )


# -- configuration ---------------------------------------------------------------
@dataclass(frozen=True)
class LeasePolicy:
    """How leases are granted, renewed, expired and retried.

    A lease covers up to ``groups_per_lease`` unit groups and must show
    *progress* (a completed unit) every ``lease_seconds`` — progress
    renews the deadline, so a long lease on a healthy worker never
    expires, while a hung worker (heartbeats fine, no units landing)
    does.  Workers heartbeat every ``heartbeat_seconds``; a heartbeat
    older than ``stale_after`` marks the worker stale on the metrics and
    alerting side.  Reclaimed units are reassigned at most
    ``max_unit_retries`` times, with exponential backoff
    (``reassign_backoff * 2**(retries-1)`` seconds) between attempts;
    beyond that the unit is quarantined through the breaker board.  Dead
    workers are replaced while unassigned work remains, up to
    ``max_worker_respawns`` replacements.
    """

    lease_seconds: float = 30.0
    heartbeat_seconds: float = 0.5
    stale_after: float = 3.0
    groups_per_lease: int = 2
    max_unit_retries: int = 3
    reassign_backoff: float = 0.1
    max_worker_respawns: int = 8

    def __post_init__(self) -> None:
        for name in ("lease_seconds", "heartbeat_seconds", "stale_after"):
            value = getattr(self, name)
            if not value > 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.groups_per_lease < 1:
            raise ValueError(
                f"groups_per_lease must be >= 1, got {self.groups_per_lease}"
            )
        if self.max_unit_retries < 0:
            raise ValueError(
                f"max_unit_retries must be >= 0, got {self.max_unit_retries}"
            )
        if self.reassign_backoff < 0:
            raise ValueError(
                f"reassign_backoff must be >= 0, got {self.reassign_backoff}"
            )
        if self.max_worker_respawns < 0:
            raise ValueError(
                f"max_worker_respawns must be >= 0, got {self.max_worker_respawns}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "lease_seconds": self.lease_seconds,
            "heartbeat_seconds": self.heartbeat_seconds,
            "stale_after": self.stale_after,
            "groups_per_lease": self.groups_per_lease,
            "max_unit_retries": self.max_unit_retries,
            "reassign_backoff": self.reassign_backoff,
            "max_worker_respawns": self.max_worker_respawns,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "LeasePolicy":
        return cls(**doc)


@dataclass(frozen=True)
class ChaosKill:
    """Test-only chaos: worker ``worker`` dies mid-unit after ``after_units``.

    The worker journals ``experiment_started`` for its next unit (plus an
    optional torn half-record) and then ``os._exit``\\ s — the hardest
    crash shape the merge and resume paths must survive.
    """

    worker: int
    after_units: int
    torn_tail: bool = False

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.after_units < 0:
            raise ValueError(f"after_units must be >= 0, got {self.after_units}")


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the parallel executor itself.  The campaign's measurement
    discipline lives in :class:`~repro.estimation.campaign.CampaignConfig`
    and is shared verbatim with every worker."""

    workers: int = 2
    lease: LeasePolicy = field(default_factory=LeasePolicy)
    #: multiprocessing start method; None picks "fork" where available
    #: (much cheaper) with "spawn" as the portable fallback.
    start_method: Optional[str] = None
    #: Test-only chaos: kill specific workers mid-unit.
    chaos_kills: tuple[ChaosKill, ...] = ()
    #: Test-only chaos: the *coordinator* dies (SimulatedCrash) after this
    #: many unit completions reach it, leaving the sharded set behind.
    chaos_coordinator_crash_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        object.__setattr__(self, "chaos_kills", tuple(self.chaos_kills))
        if (
            self.chaos_coordinator_crash_after is not None
            and self.chaos_coordinator_crash_after < 1
        ):
            raise ValueError("chaos_coordinator_crash_after must be >= 1")


# -- journal layout --------------------------------------------------------------
def coordinator_path(path: str) -> str:
    """The coordinator's supervision journal for campaign ``path``."""
    return path + ".coord"


def worker_journal_paths(path: str) -> list[str]:
    """Every per-worker journal of campaign ``path``, in spawn order."""
    prefix = path + ".w"
    found = []
    for candidate in _glob.glob(_glob.escape(prefix) + "*"):
        suffix = candidate[len(prefix):]
        if suffix.isdigit():
            found.append((int(suffix), candidate))
    return [candidate for _seq, candidate in sorted(found)]


def parallel_shards_exist(path: str) -> bool:
    """True when ``path`` has a parallel shard set on disk (a coordinator
    journal, with or without worker journals yet)."""
    return os.path.exists(coordinator_path(path))


def _shard_groups(experiments: Sequence[Any]) -> list[list[int]]:
    """Shard the schedule into unit groups by node locality.

    The two roundtrips of a pair, and the six rooted one-to-two probes of
    a triplet, land in one group — the same locality the logical-cluster
    decomposition gives — and the group is the atom of lease assignment.
    Every experiment index appears in exactly one group; groups and their
    members preserve canonical unit order.
    """
    groups: dict[tuple[int, ...], list[int]] = {}
    for index, exp in enumerate(experiments):
        groups.setdefault(tuple(sorted(exp.nodes)), []).append(index)
    return list(groups.values())


# -- the worker process ----------------------------------------------------------
def _worker_main(
    worker_id: int,
    recipe: EngineRecipe,
    journal_path: str,
    header: dict[str, Any],
    config_doc: dict[str, Any],
    task_q: Any,
    result_q: Any,
    heartbeat_seconds: float,
    chaos: Optional[ChaosKill],
) -> None:
    """Run leased unit groups until told to stop (module-level for spawn).

    Units are executed through the serial :class:`Campaign` unit executor
    — the same measurement, journaling and screening code path — against
    the worker's own write-ahead journal and a worker-local breaker
    board.  Telemetry is disabled in the worker: the coordinator owns the
    campaign's metrics, and the worker journals are the durable truth.
    """
    _obs.disable()
    config = CampaignConfig.from_dict(config_doc)
    engine = recipe.build()
    n = int(header["n"])
    triplets = header.get("triplets")
    pairs, base_triplets, experiments = _build_schedule(
        n, config.probe_nbytes,
        [tuple(t) for t in triplets] if triplets is not None else None,
    )
    journal = CampaignJournal.create(
        journal_path, {**header, "worker": worker_id}, fsync=config.fsync
    )
    runner = Campaign(
        engine, journal, config, pairs, base_triplets, experiments,
        _ReplayedState(), BreakerBoard(n, policy=config.breaker),
    )

    stop_beat = threading.Event()

    def _beat() -> None:
        while not stop_beat.wait(heartbeat_seconds):
            try:
                result_q.put(("heartbeat", worker_id, time.time()))
            except Exception:  # queue torn down under us: we are dying anyway
                return

    threading.Thread(target=_beat, daemon=True).start()
    result_q.put(("hello", worker_id, os.getpid(), time.time()))
    units_done = 0
    try:
        while True:
            msg = task_q.get()
            if msg[0] == "stop":
                break
            _kind, lease_id, indices = msg
            for index in indices:
                if (
                    chaos is not None
                    and chaos.worker == worker_id
                    and units_done >= chaos.after_units
                ):
                    # Die mid-unit: the intent record is durably journaled,
                    # the outcome never lands — exactly an OOM kill between
                    # write-ahead and completion.
                    journal.append({
                        "type": "experiment_started",
                        "index": index,
                        "experiment": _experiment_to_dict(experiments[index]),
                    })
                    if chaos.torn_tail:
                        with open(journal_path, "a") as handle:
                            handle.write('{"type": "experiment_done", "ind')
                    os._exit(CHAOS_EXIT_CODE)
                state = runner.state
                before = (state.repetitions, state.sim_time, state.wall_time)
                outcome = runner._process_unit(index)
                units_done += 1
                result_q.put((
                    "unit", worker_id, lease_id, index, outcome,
                    {
                        "attempts": state.repetitions - before[0],
                        "sim_cost": state.sim_time - before[1],
                        "wall_cost": state.wall_time - before[2],
                    },
                    time.time(),
                ))
            result_q.put(("lease_done", worker_id, lease_id, time.time()))
    except SimulatedCrash:
        # A ProcessCrash fault plan in the worker's recipe fired: die the
        # way a real OOM-killed worker would, journal intact.
        os._exit(CHAOS_EXIT_CODE)
    finally:
        stop_beat.set()
        journal.close()
    result_q.put(("bye", worker_id, time.time()))


# -- merge -----------------------------------------------------------------------
@dataclass
class _MergedUnits:
    """Per-unit outcome records folded across worker journals."""

    done: dict[int, dict[str, Any]] = field(default_factory=dict)
    failed: dict[int, dict[str, Any]] = field(default_factory=dict)
    skipped: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: Units with a journaled intent but no outcome (crash mid-unit).
    in_flight: set[int] = field(default_factory=set)
    duplicates: int = 0

    def outcome(self, index: int) -> Optional[str]:
        if index in self.done:
            return "done"
        if index in self.failed:
            return "failed"
        if index in self.skipped:
            return "skipped"
        return None


def _collect_worker_units(path: str, header: dict[str, Any]) -> _MergedUnits:
    """Fold every worker journal of ``path`` into per-unit outcomes.

    Worker journals are replayed with the standard torn-tail-tolerant
    replay; duplicate ``experiment_done`` records for the same unit are
    legal across journals (a reclaimed lease re-measured the unit) *iff*
    their payloads are identical up to the volatile cost fields (wall
    clock, accumulated-time deltas) — determinism makes them so.  A
    differing payload means two journals disagree about physics, which
    is corruption, not a race.
    """
    merged = _MergedUnits()
    for wpath in worker_journal_paths(path):
        try:
            rep = replay(wpath)
        except JournalCorruption:
            raise
        except JournalError:
            continue  # shard created-then-crashed before its header landed
        validate_fingerprint(rep.header, header["fingerprint"], wpath)
        validate_schedule(rep.header, header["schedule_hash"], wpath)
        started: set[int] = set()
        for rec in rep.records:
            rtype = rec.get("type")
            if rtype == "experiment_started":
                started.add(int(rec["index"]))
                continue
            if rtype not in _UNIT_RECORD_TYPES:
                continue
            index = int(rec["index"])
            started.discard(index)
            if rtype == "experiment_done":
                if index in merged.done:
                    if _record_identity(merged.done[index]) != _record_identity(rec):
                        raise JournalCorruption(
                            f"{wpath}: experiment_done for unit {index} "
                            "disagrees with another worker journal's record; "
                            "unit results are deterministic, so differing "
                            "payloads mean a journal was damaged or the "
                            "shards come from different campaigns"
                        )
                    merged.duplicates += 1
                else:
                    merged.done[index] = dict(rec)
            elif rtype == "experiment_failed":
                merged.failed.setdefault(index, dict(rec))
            else:
                merged.skipped.setdefault(index, dict(rec))
        merged.in_flight.update(started)
    merged.in_flight -= set(merged.done)
    return merged


def merge_worker_journals(path: str) -> tuple[int, int]:
    """Deterministically merge ``path``'s worker journals into ``path``.

    Re-orders every *measured* unit into canonical (serial) unit order
    and writes the canonical journal atomically.  Worker-local skip
    records are dropped: a skip encodes one worker's breaker history,
    not physics, so those units are left missing for the serial
    assembly pass to re-decide against the canonical board.  The result
    replays exactly like a serial journal — same completed map, same
    outcome event sequence, same final assembly.

    Returns ``(units_merged, duplicates_dropped)``.
    """
    rep = replay(coordinator_path(path))
    header = rep.header
    with _obs.span("campaign.parallel.merge", path=path):
        merged = _collect_worker_units(path, header)
        config = CampaignConfig.from_dict(header["config"])
        triplets = header.get("triplets")
        _pairs, _base, experiments = _build_schedule(
            int(header["n"]), config.probe_nbytes,
            [tuple(t) for t in triplets] if triplets is not None else None,
        )
        canonical_header = {
            k: v for k, v in header.items() if k not in ("role", "parallel")
        }
        canonical_header["merged_from_workers"] = len(worker_journal_paths(path))
        lines = [json.dumps(canonical_header)]
        units_merged = 0
        for index in range(len(experiments)):
            record = merged.done.get(index) or merged.failed.get(index)
            if record is None:
                continue
            lines.append(json.dumps({
                "type": "experiment_started",
                "index": index,
                "experiment": _experiment_to_dict(experiments[index]),
            }))
            lines.append(json.dumps(record))
            units_merged += 1
        atomic_write_text(path, "\n".join(lines) + "\n")
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.counter(
                "parallel_merge_units_total",
                help="units merged into the canonical journal",
            ).inc(units_merged)
            if merged.duplicates:
                tel.registry.counter(
                    "parallel_merge_duplicates_total",
                    help="double-measured units dropped at merge "
                         "(identical payloads)",
                ).inc(merged.duplicates)
        if merged.duplicates:
            warnings.warn(
                f"{path}: merge dropped {merged.duplicates} duplicate unit "
                "record(s) (re-measured after lease reclamation; payloads "
                "identical)",
                stacklevel=2,
            )
        return units_merged, merged.duplicates


# -- coordinator state -----------------------------------------------------------
@dataclass
class _PendingGroup:
    indices: list[int]
    retries: int = 0
    not_before: float = 0.0


@dataclass
class _Lease:
    lease_id: int
    worker_id: int
    remaining: set[int]
    deadline: float
    granted_at: float
    groups: list[_PendingGroup]


@dataclass
class _WorkerHandle:
    worker_id: int
    process: Any
    task_q: Any
    last_seen: float
    lease: Optional[_Lease] = None
    units_completed: int = 0

    def alive(self) -> bool:
        return self.process.is_alive()


# -- the parallel campaign -------------------------------------------------------
class ParallelCampaign:
    """Coordinator of a sharded, supervised, lease-based campaign.

    Build with :meth:`start` (fresh shard set) or :meth:`resume`
    (continue one — after a budget stop, a coordinator crash, or any
    pattern of worker deaths), then call :meth:`run`.
    """

    def __init__(
        self,
        recipe: EngineRecipe,
        path: str,
        config: CampaignConfig,
        parallel: ParallelConfig,
        header: dict[str, Any],
        coord: CampaignJournal,
        done: dict[int, dict[str, Any]],
    ) -> None:
        self.recipe = recipe
        self.path = path
        self.config = config
        self.parallel = parallel
        self.header = header
        self.coord = coord
        triplets = header.get("triplets")
        self.pairs, self.base_triplets, self.experiments = _build_schedule(
            int(header["n"]), config.probe_nbytes,
            [tuple(t) for t in triplets] if triplets is not None else None,
        )
        self.n = int(header["n"])
        self.board = BreakerBoard(self.n, policy=config.breaker)
        self._ctx = mp.get_context(self._start_method())
        self.result_q = self._ctx.Queue()
        self.workers: dict[int, _WorkerHandle] = {}
        self.pending: list[_PendingGroup] = []
        self.quarantined_units: set[int] = set()
        self._spawn_seq = 0
        self._lease_seq = 0
        self._fleet_size = 0
        self._completed = set(done)
        # Budget counters start from what prior runs already spent.
        self.repetitions = sum(int(r.get("attempts", 0)) for r in done.values())
        self.sim_time = sum(float(r.get("sim_cost", 0.0)) for r in done.values())
        self.wall_time = sum(float(r.get("wall_cost", 0.0)) for r in done.values())
        self._unit_messages = 0

    # -- construction --------------------------------------------------------
    def _start_method(self) -> str:
        if self.parallel.start_method is not None:
            return self.parallel.start_method
        return "fork" if "fork" in mp.get_all_start_methods() else "spawn"

    @classmethod
    def start(
        cls,
        recipe: EngineRecipe,
        path: str,
        config: Optional[CampaignConfig] = None,
        parallel: Optional[ParallelConfig] = None,
        triplets: Optional[Sequence[tuple[int, int, int]]] = None,
    ) -> "ParallelCampaign":
        """Create a fresh shard set for campaign ``path``.

        Refuses to start over an existing canonical journal or shard set —
        resume those instead.
        """
        config = config if config is not None else CampaignConfig()
        parallel = parallel if parallel is not None else ParallelConfig()
        if os.path.exists(path):
            raise JournalError(
                f"journal already exists at {path}; resume it or pick a new path"
            )
        if parallel_shards_exist(path):
            raise JournalError(
                f"parallel shard set already exists for {path}; resume it "
                "or pick a new path"
            )
        engine = recipe.build()
        _pairs, _base, experiments = _build_schedule(
            engine.n, config.probe_nbytes, triplets
        )
        header = {
            "fingerprint": cluster_fingerprint(engine),
            "schedule_hash": _schedule_hash(experiments, config),
            "n": engine.n,
            "total_experiments": len(experiments),
            "triplets": [list(t) for t in triplets] if triplets is not None else None,
            "config": config.to_dict(),
        }
        # Stamp the active trace into the coordinator header; every
        # worker journal inherits it ({**header, "worker": id}), so all
        # shards of one campaign are greppable by a single trace id —
        # and resume preserves it (only role/parallel keys are stripped).
        ctx = _trace.current() or _trace.from_environ()
        if ctx is not None:
            header["trace_id"] = ctx.trace_id
        coord = CampaignJournal.create(
            coordinator_path(path),
            {**header, "role": "coordinator",
             "parallel": {"workers": parallel.workers,
                          "lease": parallel.lease.to_dict()}},
            fsync=config.fsync,
        )
        campaign = cls(recipe, path, config, parallel, header, coord, {})
        campaign._seed_pending(exclude=set())
        return campaign

    @classmethod
    def resume(
        cls,
        recipe: EngineRecipe,
        path: str,
        parallel: Optional[ParallelConfig] = None,
        max_wall_seconds: Optional[float] = None,
        max_sim_seconds: Optional[float] = None,
        max_repetitions: Optional[int] = None,
    ) -> "ParallelCampaign":
        """Continue a sharded campaign from its coordinator + worker journals.

        Validates the cluster fingerprint, folds every worker journal's
        completed units (idempotently — double-measured units are
        deduplicated), re-queues everything else, and spawns a fresh
        fleet.  The budget arguments, when given, *replace* the journaled
        caps, exactly as serial :meth:`Campaign.resume` does.
        """
        parallel = parallel if parallel is not None else ParallelConfig()
        coord_file = coordinator_path(path)
        rep = replay(coord_file)
        header = {
            k: v for k, v in rep.header.items()
            if k not in ("type", "schema_version", "role", "parallel")
        }
        config = CampaignConfig.from_dict(header["config"])
        overrides: dict[str, Any] = {}
        if max_wall_seconds is not None:
            overrides["max_wall_seconds"] = max_wall_seconds
        if max_sim_seconds is not None:
            overrides["max_sim_seconds"] = max_sim_seconds
        if max_repetitions is not None:
            overrides["max_repetitions"] = max_repetitions
        if overrides:
            doc = config.to_dict()
            doc.update(overrides)
            config = CampaignConfig.from_dict(doc)
            header["config"] = config.to_dict()
        engine = recipe.build()
        validate_fingerprint(header, cluster_fingerprint(engine), coord_file)
        merged = _collect_worker_units(path, header)
        coord = CampaignJournal.open_append(coord_file, fsync=config.fsync)
        coord.append({
            "type": "coordinator_resumed",
            "completed_units": len(merged.done),
            "worker_journals": len(worker_journal_paths(path)),
        })
        campaign = cls(recipe, path, config, parallel, header, coord, merged.done)
        campaign._seed_pending(exclude=set(merged.done))
        return campaign

    def _seed_pending(self, exclude: set[int]) -> None:
        for indices in _shard_groups(self.experiments):
            remaining = [idx for idx in indices if idx not in exclude]
            if remaining:
                self.pending.append(_PendingGroup(indices=remaining))

    # -- telemetry -----------------------------------------------------------
    def _count(self, name: str, help_text: str, value: float = 1.0,
               **labels: str) -> None:
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.counter(name, help=help_text, **labels).inc(value)

    def _gauge(self, name: str, help_text: str, value: float,
               **labels: str) -> None:
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.gauge(name, help=help_text, **labels).set(value)

    def _flush_worker_gauges(self) -> None:
        now = time.time()
        alive = stale = 0
        for handle in self.workers.values():
            if not handle.alive():
                continue
            alive += 1
            age = max(0.0, now - handle.last_seen)
            self._gauge(
                "parallel_worker_heartbeat_age_seconds",
                "seconds since each live worker was last heard from",
                age, worker=str(handle.worker_id),
            )
            if age > self.parallel.lease.stale_after:
                stale += 1
        self._gauge("parallel_workers_alive", "live campaign workers", float(alive))
        self._gauge(
            "parallel_worker_heartbeat_stale",
            "live workers whose heartbeat is older than stale_after",
            float(stale),
        )

    # -- worker lifecycle ----------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        # Skip ids whose journal already exists (a prior run's fleet):
        # worker journals are create-once per process generation.
        while os.path.exists(f"{self.path}.w{self._spawn_seq}"):
            self._spawn_seq += 1
        worker_id = self._spawn_seq
        self._spawn_seq += 1
        task_q = self._ctx.Queue()
        chaos = next(
            (c for c in self.parallel.chaos_kills if c.worker == worker_id), None
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id, self.recipe, f"{self.path}.w{worker_id}", self.header,
                self.config.to_dict(), task_q, self.result_q,
                self.parallel.lease.heartbeat_seconds, chaos,
            ),
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(
            worker_id=worker_id, process=process, task_q=task_q,
            last_seen=time.time(),
        )
        self.workers[worker_id] = handle
        self.coord.append({
            "type": "worker_spawned", "worker": worker_id, "pid": process.pid,
        })
        self._count("parallel_workers_spawned_total", "workers spawned")
        return handle

    def _grant_lease(self, handle: _WorkerHandle) -> bool:
        """Hand the next due unit groups to ``handle``; False when none are."""
        now = time.time()
        due = [g for g in self.pending if g.not_before <= now]
        if not due:
            return False
        batch = due[: self.parallel.lease.groups_per_lease]
        for group in batch:
            self.pending.remove(group)
        indices = [idx for group in batch for idx in group.indices]
        self._lease_seq += 1
        lease = _Lease(
            lease_id=self._lease_seq,
            worker_id=handle.worker_id,
            remaining=set(indices),
            deadline=now + self.parallel.lease.lease_seconds,
            granted_at=now,
            groups=batch,
        )
        handle.lease = lease
        handle.task_q.put(("lease", lease.lease_id, indices))
        self.coord.append({
            "type": "lease_granted", "lease": lease.lease_id,
            "worker": handle.worker_id, "units": indices,
        })
        self._count("parallel_leases_granted_total", "leases granted to workers")
        return True

    def _reclaim(self, handle: _WorkerHandle, reason: str) -> None:
        """Take a dead or expired worker's unfinished units back.

        Completed units are safe — their worker-journal records survive
        the crash, and the merge deduplicates any re-measurement.
        Unfinished units go back to pending with one more retry and
        exponential backoff, until the retry budget sends them to
        quarantine through the breaker board.
        """
        lease = handle.lease
        handle.lease = None
        if lease is None:
            return
        if not lease.remaining:
            self.coord.append({
                "type": "lease_closed", "lease": lease.lease_id,
                "worker": handle.worker_id, "reason": reason,
            })
            return
        reclaimed = sorted(lease.remaining)
        policy = self.parallel.lease
        retries = max((g.retries for g in lease.groups), default=0) + 1
        requeued: list[int] = []
        quarantined: list[int] = []
        for index in reclaimed:
            if retries > policy.max_unit_retries:
                self._quarantine_unit(index)
                quarantined.append(index)
            else:
                requeued.append(index)
        if requeued:
            self.pending.append(_PendingGroup(
                indices=requeued, retries=retries,
                not_before=time.time()
                + policy.reassign_backoff * (2 ** (retries - 1)),
            ))
        self.coord.append({
            "type": "units_reclaimed", "lease": lease.lease_id,
            "worker": handle.worker_id, "reason": reason,
            "requeued": requeued, "quarantined": quarantined,
            "retries": retries,
        })
        self._count(
            "parallel_units_reclaimed_total",
            "in-flight units reclaimed from dead or expired leases",
            float(len(reclaimed)),
        )
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.warning(
                "parallel_units_reclaimed", worker=handle.worker_id,
                reason=reason, requeued=len(requeued),
                quarantined=len(quarantined),
            )

    def _quarantine_unit(self, index: int) -> None:
        self.quarantined_units.add(index)
        self.board.record_failure(self.experiments[index].nodes)
        self.board.advance()
        self._count(
            "parallel_units_quarantined_total",
            "units quarantined after exhausting their retry budget",
        )
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.error(
                "parallel_unit_quarantined", unit=index,
                nodes=list(self.experiments[index].nodes),
            )

    def _kill_worker(self, handle: _WorkerHandle, reason: str) -> None:
        if handle.alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
        self.coord.append({
            "type": "worker_dead", "worker": handle.worker_id, "reason": reason,
        })
        self._count("parallel_workers_dead_total", "workers lost", reason=reason)
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.warning(
                "parallel_worker_dead", worker=handle.worker_id, reason=reason,
            )
            if tel.flight is not None:
                # A worker death is post-mortem material: get the current
                # rings onto the spill before anything else goes wrong.
                tel.flight.sync(reason="worker_dead")
        self._reclaim(handle, reason)
        del self.workers[handle.worker_id]

    def _shutdown_workers(self) -> None:
        for handle in self.workers.values():
            try:
                handle.task_q.put(("stop",))
            except Exception:
                pass
        deadline = time.time() + 10.0
        for handle in self.workers.values():
            handle.process.join(timeout=max(0.1, deadline - time.time()))
            if handle.alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
        self.workers.clear()

    # -- supervision ---------------------------------------------------------
    def _budget_exceeded(self) -> Optional[str]:
        cfg = self.config
        if cfg.max_sim_seconds is not None and self.sim_time >= cfg.max_sim_seconds:
            return "budget_sim"
        if (
            cfg.max_repetitions is not None
            and self.repetitions >= cfg.max_repetitions
        ):
            return "budget_repetitions"
        if cfg.max_wall_seconds is not None and self.wall_time >= cfg.max_wall_seconds:
            return "budget_wall"
        return None

    def _handle_message(self, msg: tuple) -> None:
        kind, worker_id = msg[0], msg[1]
        handle = self.workers.get(worker_id)
        if handle is not None:
            handle.last_seen = time.time()
        if kind == "unit":
            _, _, lease_id, index, outcome, costs, _t = msg
            self._unit_messages += 1
            self.repetitions += int(costs.get("attempts", 0))
            self.sim_time += float(costs.get("sim_cost", 0.0))
            self.wall_time += float(costs.get("wall_cost", 0.0))
            if handle is not None and handle.lease is not None:
                handle.lease.remaining.discard(index)
                # Progress renews the lease: a straggler is a worker that
                # stops landing units, not a worker with a long lease.
                handle.lease.deadline = (
                    time.time() + self.parallel.lease.lease_seconds
                )
                handle.units_completed += 1
            if outcome == "done":
                self._completed.add(index)
            elif outcome == "failed":
                self.board.record_failure(self.experiments[index].nodes)
                self.board.advance()
            self._count(
                "parallel_worker_units_total", "units executed per worker",
                outcome=outcome, worker=str(worker_id),
            )
            if (
                self.parallel.chaos_coordinator_crash_after is not None
                and self._unit_messages
                >= self.parallel.chaos_coordinator_crash_after
            ):
                for h in list(self.workers.values()):
                    if h.alive():
                        h.process.kill()
                        h.process.join(timeout=5.0)
                self.workers.clear()
                self.coord.close()
                raise SimulatedCrash(
                    f"coordinator died after {self._unit_messages} unit "
                    "completions (chaos_coordinator_crash_after)"
                )
        elif kind == "lease_done":
            _, _, lease_id, _t = msg
            if (
                handle is not None
                and handle.lease is not None
                and handle.lease.lease_id == lease_id
            ):
                lease = handle.lease
                handle.lease = None
                self.coord.append({
                    "type": "lease_completed", "lease": lease_id,
                    "worker": worker_id,
                })
                tel = _obs.ACTIVE
                if tel is not None:
                    tel.registry.histogram(
                        "parallel_lease_seconds",
                        help="wall clock from lease grant to completion",
                    ).observe(time.time() - lease.granted_at)
        # hello / heartbeat / bye only refresh last_seen, handled above.

    def _drain_queue(self, timeout: float) -> None:
        try:
            msg = self.result_q.get(timeout=timeout)
        except _queue.Empty:
            return
        self._handle_message(msg)
        while True:
            try:
                msg = self.result_q.get_nowait()
            except _queue.Empty:
                return
            self._handle_message(msg)

    def _supervise_once(self) -> None:
        """One supervision pass: liveness, lease expiry, respawns, grants."""
        _obs.pulse()  # coordinator cadence for the timeline/flight rings
        now = time.time()
        for handle in list(self.workers.values()):
            if not handle.alive():
                self._kill_worker(handle, "worker_died")
                continue
            lease = handle.lease
            if lease is not None and now > lease.deadline:
                self.coord.append({
                    "type": "lease_expired", "lease": lease.lease_id,
                    "worker": handle.worker_id,
                })
                self._count(
                    "parallel_leases_expired_total",
                    "leases that missed their progress deadline",
                )
                tel = _obs.ACTIVE
                if tel is not None:
                    tel.events.warning(
                        "parallel_lease_expired", worker=handle.worker_id,
                        lease=lease.lease_id,
                    )
                self._kill_worker(handle, "lease_expired")
        # Replace lost workers while unassigned work remains and the
        # respawn budget allows.
        respawns_used = max(0, self._spawn_seq - self._fleet_size)
        while (
            self.pending
            and len(self.workers) < self.parallel.workers
            and respawns_used < self.parallel.lease.max_worker_respawns
        ):
            self._spawn_worker()
            respawns_used += 1
        for handle in self.workers.values():
            if handle.lease is None:
                self._grant_lease(handle)
        self._flush_worker_gauges()

    # -- the sweep -----------------------------------------------------------
    def run(self) -> CampaignResult:
        """Execute the sharded sweep, merge, and assemble the final result.

        On a budget stop the shard set is left resumable (no canonical
        journal yet; :meth:`resume` continues it).  On completion the
        merge writes the canonical journal at the campaign path and the
        result is re-derived from it by the serial replay-and-assemble
        path — bit-identical to an uninterrupted serial run.
        """
        wall_start = time.perf_counter()
        try:
            with _obs.span(
                "campaign.parallel.run", n=self.n,
                total=len(self.experiments), workers=self.parallel.workers,
            ):
                stopped = self._run_loop()
        finally:
            self._shutdown_workers()
        if stopped is not None:
            merged = _collect_worker_units(self.path, self.header)
            self.coord.append({
                "type": "checkpoint", "reason": stopped,
                "completed": len(merged.done),
            })
            self.coord.close()
            return self._stopped_result(stopped, merged, wall_start)
        units_merged, duplicates = merge_worker_journals(self.path)
        self.coord.append({
            "type": "merge_complete",
            "units": units_merged,
            "duplicates": duplicates,
        })
        result = self._assemble(wall_start)
        self.coord.append({
            "type": "campaign_complete", "coverage": result.coverage,
        })
        self.coord.close()
        return result

    def _run_loop(self) -> Optional[str]:
        if self.pending:
            for _ in range(min(self.parallel.workers, len(self.pending))):
                self._spawn_worker()
        self._fleet_size = self._spawn_seq
        while True:
            reason = self._budget_exceeded()
            if reason is not None:
                tel = _obs.ACTIVE
                if tel is not None:
                    tel.events.warning(
                        "campaign_budget_stop", reason=reason,
                        completed=len(self._completed),
                        total=len(self.experiments),
                    )
                return reason
            self._drain_queue(timeout=0.05)
            self._supervise_once()
            in_flight = any(h.lease is not None for h in self.workers.values())
            if not self.pending and not in_flight:
                return None
            if not self.workers and self.pending:
                # Respawn budget exhausted with work still unassigned (the
                # supervision pass would have replaced the fleet otherwise):
                # quarantine the leftovers so the campaign terminates with
                # an honest degraded report instead of spinning forever.
                leftovers = sorted(
                    idx for group in self.pending for idx in group.indices
                )
                for index in leftovers:
                    self._quarantine_unit(index)
                self.coord.append({
                    "type": "units_reclaimed", "lease": None, "worker": None,
                    "reason": "fleet_exhausted", "requeued": [],
                    "quarantined": leftovers, "retries": -1,
                })
                self.pending.clear()
                return None

    # -- results -------------------------------------------------------------
    def _stopped_result(
        self, reason: str, merged: _MergedUnits, wall_start: float
    ) -> CampaignResult:
        records = list(merged.done.values()) + list(merged.failed.values())
        return CampaignResult(
            model=None,
            n=self.n,
            total_experiments=len(self.experiments),
            completed=len(merged.done),
            failed=len(merged.failed),
            skipped=len(merged.skipped),
            coverage=len(merged.done) / max(1, len(self.experiments)),
            coverage_floor=self.config.coverage_floor,
            degraded=True,
            quarantined=tuple(self.board.open_nodes()),
            solved_triplets=0,
            total_triplets=len(self.base_triplets),
            rejected_triplets=0,
            stopped=reason,
            resumable=True,
            estimation_time=sum(float(r.get("sim_cost", 0.0)) for r in records),
            wall_time=time.perf_counter() - wall_start,
            repetitions=sum(int(r.get("attempts", 0)) for r in records),
            breakers=self.board.to_dict(),
            journal_path=self.path,
        )

    def _assemble(self, wall_start: float) -> CampaignResult:
        """Re-derive the final result from the canonical merged journal.

        This goes through the serial replay-resume-assemble path: a
        canonical journal with every unit measured re-measures nothing,
        and one with gaps (units a dying fleet never landed) finishes
        them serially against the canonical breaker board — the same
        passes an interrupted serial run would make on resume.  That is
        what makes the parallel result bit-identical to the serial one
        by construction rather than by careful bookkeeping.
        """
        engine = self.recipe.build()
        result = Campaign.resume(engine, self.path).run()
        # Report the fleet's real elapsed time, not the replay's.
        return replace(result, wall_time=time.perf_counter() - wall_start)


# -- status over a shard set -----------------------------------------------------
def parallel_status(path: str) -> CampaignStatus:
    """A :class:`CampaignStatus` computed from a sharded journal set.

    Folds every worker journal (idempotently, torn tails tolerated)
    without touching a cluster, exactly as
    :func:`repro.estimation.campaign.campaign_status` does for a serial
    journal.
    """
    rep = replay(coordinator_path(path))
    header = rep.header
    merged = _collect_worker_units(path, header)
    total = int(header.get("total_experiments", 0))
    records = list(merged.done.values()) + list(merged.failed.values())
    stop_reason = None
    complete = False
    for record in rep.records:
        if record.get("type") == "checkpoint":
            stop_reason = record.get("reason")
        elif record.get("type") == "campaign_complete":
            complete = True
    solved = total_triplets = 0
    quarantined: tuple[int, ...] = ()
    header_config = header.get("config")
    if header_config is not None:
        config = CampaignConfig.from_dict(header_config)
        triplets = header.get("triplets")
        _pairs, base_triplets, experiments = _build_schedule(
            int(header["n"]), config.probe_nbytes,
            [tuple(t) for t in triplets] if triplets is not None else None,
        )
        exp_index = {exp: idx for idx, exp in enumerate(experiments)}
        total_triplets = len(base_triplets)
        solved = sum(
            1 for triple in base_triplets
            if all(exp_index[exp] in merged.done
                   for exp in _triplet_experiments(triple, config.probe_nbytes))
        )
        events = []
        for index in range(len(experiments)):
            outcome = merged.outcome(index)
            if outcome is not None:
                events.append((outcome, index))
        with _obs.suppressed():
            board = _rebuild_board(
                int(header["n"]), config.breaker, events, experiments
            )
        quarantined = tuple(board.open_nodes())
    return CampaignStatus(
        journal_path=path,
        n=int(header.get("n", 0)),
        total_experiments=total,
        completed=len(merged.done),
        failed=len(merged.failed),
        skipped=len(merged.skipped),
        in_flight=tuple(sorted(merged.in_flight)),
        repetitions=sum(int(r.get("attempts", 0)) for r in records),
        estimation_time=sum(float(r.get("sim_cost", 0.0)) for r in records),
        wall_time=sum(float(r.get("wall_cost", 0.0)) for r in records),
        complete=complete,
        stopped_reason=stop_reason,
        truncated_tail=False,
        coverage=len(merged.done) / total if total else 0.0,
        quarantined=quarantined,
        solved_triplets=solved,
        total_triplets=total_triplets,
    )
