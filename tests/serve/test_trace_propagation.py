"""End-to-end trace propagation: one trace id from client to kernel.

The tentpole acceptance: a live round trip through the service produces
spans in every layer — ``client.request`` (wire hop), ``serve.request``
(dispatch), ``serve.worker`` / ``serve.worker.batch`` (execution), and
``sim.run`` (the DES kernel, for estimate) — all stamped with the *same*
trace id, stitchable into one Chrome trace.  Plus the correlation
satellites: trace ids on ``service_*`` events and error payloads,
retries that stay on one trace, malformed headers that degrade to
untraced, and supervisor children inheriting the trace via the
environment.
"""

import json
import random
import socket

import pytest

from repro.api import errors
from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.obs.stitch import list_traces, stitch_chrome_trace
from repro.serve import ServeConfig, ServerThread, protocol
from repro.serve.client import ResilientClient, RetryExhausted, RetryPolicy

from tests.serve.conftest import make_model

pytestmark = pytest.mark.resilience


def _raw_call(address, line: bytes) -> dict:
    """One raw request line over a fresh socket; returns the reply doc."""
    with socket.create_connection(address, timeout=10.0) as sock:
        fh = sock.makefile("rwb")
        fh.write(line)
        fh.flush()
        return json.loads(fh.readline())


def test_one_trace_id_from_client_to_kernel_and_stitches(model):
    config = ServeConfig(port=0, models={"lmo": model}, telemetry=True)
    ctx = _trace.new_context(random.Random(1))
    with ServerThread(config) as running:
        with _trace.use(ctx), running.client() as client:
            client.predict("lmo", "scatter", "linear", 4096)
            # estimate runs the DES kernel server-side -> sim.run span.
            client.estimate(model="hockney", quick=True, reps=1, nodes=4)
        with running.client() as client:
            snapshot = client.obs()

    spans = snapshot["telemetry"]["spans"]
    traced = [s for s in spans if s.get("trace_id") == ctx.trace_id]
    names = {s["name"] for s in traced}
    assert {"client.request", "serve.request", "serve.worker",
            "serve.worker.batch", "sim.run"} <= names

    # The snapshot stitches into one Chrome trace for that trace id
    # (ServerThread shares the process, so one snapshot covers all
    # lanes; multi-process stitching is exercised in test_stitch.py).
    menu = list_traces([("service", snapshot)])
    assert ctx.trace_id in menu
    doc = json.loads(stitch_chrome_trace([("service", snapshot)],
                                         trace_id=ctx.trace_id))
    stitched = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"client.request", "serve.request", "sim.run"} <= stitched
    assert all(e["args"]["trace_id"] == ctx.trace_id
               for e in doc["traceEvents"] if e["ph"] == "X")


def test_wire_attempts_share_trace_with_fresh_spans(model):
    """Each wire request is a child hop: same trace id, new span id."""
    config = ServeConfig(port=0, models={"lmo": model}, telemetry=True)
    ctx = _trace.new_context(random.Random(2))
    with ServerThread(config) as running:
        host, port = running.address
        with _trace.use(ctx):
            for _ in range(2):
                reply = _raw_call((host, port), protocol.encode_request(
                    "health", {}, 1, trace=_trace.current().child().to_traceparent(),
                ))
                assert reply["ok"]
        with running.client() as client:
            snapshot = client.obs()
    traced = [s for s in snapshot["telemetry"]["spans"]
              if s.get("trace_id") == ctx.trace_id]
    assert len([s for s in traced if s["name"] == "serve.request"]) == 2


def test_retries_stay_on_one_trace_with_numbered_attempts():
    # Telemetry on, nothing listening: every attempt fails retryably, so
    # the resilient client records one client.attempt span per try — all
    # on the single auto-started trace of the logical call.
    tel = _obs.enable(fresh=True)
    with socket.socket() as placeholder:
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
    client = ResilientClient(
        port=dead_port, timeout=1.0,
        retry=RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0, seed=0),
    )
    with pytest.raises(RetryExhausted):
        client.health()
    client.close()
    attempts = tel.spans.finished("client.attempt")
    assert [s.attrs["attempt"] for s in attempts] == [1, 2, 3]
    trace_ids = {s.trace_id for s in attempts}
    assert len(trace_ids) == 1 and None not in trace_ids


def test_untraced_when_telemetry_off():
    """No telemetry -> the resilient client must not mint trace contexts."""
    assert _obs.ACTIVE is None
    with socket.socket() as placeholder:
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
    client = ResilientClient(
        port=dead_port, timeout=1.0,
        retry=RetryPolicy(max_retries=0, base_delay=0.0, jitter=0.0, seed=0),
    )
    with pytest.raises(RetryExhausted):
        client.health()
    client.close()
    assert _trace.current() is None


def test_error_reply_carries_request_and_trace_ids(model):
    config = ServeConfig(port=0, models={"lmo": model}, telemetry=True)
    ctx = _trace.new_context(random.Random(3))
    with ServerThread(config) as running:
        host, port = running.address
        reply = _raw_call((host, port), protocol.encode_request(
            "predict",
            {"model": "no-such-model", "operation": "scatter",
             "algorithm": "linear", "nbytes": 1024},
            "req-77", trace=ctx.to_traceparent(),
        ))
        with running.client() as client:
            snapshot = client.obs()
    assert not reply["ok"]
    assert reply["error"]["request_id"] == "req-77"
    assert reply["error"]["trace_id"] == ctx.trace_id
    # ...and the server-side failure event carries the same correlation.
    failures = [e for e in snapshot["telemetry"]["events"]
                if e["name"] == "service_request_failed"]
    assert failures and failures[-1]["request_id"] == "req-77"
    assert failures[-1]["trace_id"] == ctx.trace_id


def test_malformed_trace_header_is_served_untraced(model):
    config = ServeConfig(port=0, models={"lmo": model}, telemetry=True)
    with ServerThread(config) as running:
        host, port = running.address
        reply = _raw_call((host, port), protocol.encode_request(
            "health", {}, 9, trace="00-THIS-IS-GARBAGE",
        ))
        with running.client() as client:
            snapshot = client.obs()
    assert reply["ok"]
    served = [s for s in snapshot["telemetry"]["spans"]
              if s["name"] == "serve.request"
              and s.get("attrs", {}).get("request_id") == 9]
    assert served and all(s.get("trace_id") is None for s in served)


def test_supervisor_injects_traceparent_into_child_environment():
    import sys

    from repro.serve.supervisor import Supervisor, SupervisorConfig, resolve_port

    ctx = _trace.new_context(random.Random(4))
    config = SupervisorConfig(
        command=[sys.executable, "-c",
                 "import os, sys; sys.exit(0 if os.environ.get("
                 "'REPRO_TRACEPARENT', '').startswith('00-"
                 + ctx.trace_id + "-') else 7)"],
        port=resolve_port(), health_interval=0.05, health_timeout=0.5,
        startup_grace=0.5, restart_limit=2, restart_window=30.0,
        backoff_base=0.01, backoff_max=0.05,
    )
    with _trace.use(ctx):
        supervisor = Supervisor(config)
        code = supervisor.run()
    # Exit 0 = the child saw our trace id (with a fresh span id) in its
    # environment; exit 7 would crash-loop into a nonzero code.
    assert code == 0
