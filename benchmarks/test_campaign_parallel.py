"""Parallel campaign executor: speedup and determinism benchmark.

Races a serial campaign against the sharded, supervised, lease-based
executor (:mod:`repro.estimation.parallel`) on the same DES cluster and
seed, and asserts two things:

1. **Determinism, always**: the parallel result's model parameters,
   coverage and breaker board are bit-identical to the serial run's —
   on any machine, at any core count.
2. **Speedup, where cores exist**: on >= 4 cores the fleet must beat
   the serial run by >= 2x (the CI bar; the local 8-core target is
   4x).  Boxes with fewer cores — CI runners are often 2-core, this
   container is 1-core — still run the determinism check but skip the
   timing assertion: a fleet of processes on one core measures
   scheduler overhead, not the executor.

Results land in ``BENCH_campaign_parallel.json`` at the repo root::

    PYTHONPATH=src python -m pytest benchmarks/test_campaign_parallel.py -s
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.cluster import IDEAL, GroundTruth, NoiseModel, random_cluster
from repro.estimation import (
    Campaign,
    CampaignConfig,
    DESEngineRecipe,
    LeasePolicy,
    ParallelCampaign,
    ParallelConfig,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign_parallel.json"

N = 10  # 2*C(10,2) + 6*C(10,3) = 810 units, ~2 s serial — amortizes spawns
WORKER_TARGET = 8
SPEEDUP_FLOOR = 2.0  # CI bar at >= 4 cores; the 8-core local target is 4x
CONFIG = CampaignConfig(seed=11, timeout=5.0)


def make_recipe():
    gt = GroundTruth.random(N, seed=5)
    return DESEngineRecipe(
        spec=random_cluster(N, seed=5),
        ground_truth=gt,
        profile=IDEAL,
        noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0),
        seed=7,
    )


def models_equal(a, b):
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in ("C", "t", "L", "beta")
    )


def test_parallel_speedup_and_determinism(tmp_path):
    cores = os.cpu_count() or 1
    workers = min(WORKER_TARGET, max(2, cores))

    start = time.perf_counter()
    serial = Campaign.start(
        make_recipe().build(), str(tmp_path / "serial.jsonl"), CONFIG
    ).run()
    serial_s = time.perf_counter() - start
    assert serial.stopped == "complete"

    lease = LeasePolicy(lease_seconds=60.0, heartbeat_seconds=0.2,
                        groups_per_lease=4)
    start = time.perf_counter()
    parallel = ParallelCampaign.start(
        make_recipe(), str(tmp_path / "par.jsonl"), config=CONFIG,
        parallel=ParallelConfig(workers=workers, lease=lease),
    ).run()
    parallel_s = time.perf_counter() - start
    assert parallel.stopped == "complete"

    determinism_ok = (
        models_equal(serial.model, parallel.model)
        and parallel.coverage == serial.coverage
        and parallel.breakers == serial.breakers
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    timing_gated = cores < 4
    payload = {
        "benchmark": "parallel campaign executor vs serial sweep",
        "n": N,
        "units": serial.total_experiments,
        "workers": workers,
        "cpu_count": cores,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "timing_asserted": not timing_gated,
        "determinism_ok": bool(determinism_ok),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nserial {serial_s:.2f} s, {workers} workers {parallel_s:.2f} s "
          f"({speedup:.2f}x on {cores} cores) -> {RESULT_PATH.name}")

    assert determinism_ok, (
        "parallel result diverged from the serial run — the deterministic "
        "merge is broken"
    )
    if not timing_gated:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{workers} workers on {cores} cores managed only "
            f"{speedup:.2f}x over serial (floor {SPEEDUP_FLOOR}x)"
        )
