"""Stateful worker tasks behind the prediction server.

The server owns a small fleet of workers, each an asyncio task with an
explicit state machine (``created -> running -> draining -> stopped``)
and a *bounded* inbox queue — the StatefulService discipline: work is
rejected loudly (:class:`~repro.api.errors.Overloaded`) rather than
buffered without limit, and shutdown is a first-class state in which the
queue is emptied before the task exits, never abandoned.

Two worker types:

* :class:`PredictWorker` — cheap vectorized work (``predict``,
  ``predict_many``, ``optimize``).  ``predict`` requests are *coalesced*:
  after the first request is picked up, the worker sleeps one batch
  window (letting concurrently-arriving requests land in its queue),
  then evaluates everything queued as one
  :func:`repro.api.predict_many` call per model.  The scalar and the
  vectorized paths share one formula evaluation
  (:mod:`repro.predict_service`), so a batched reply is bit-identical
  to an in-process :func:`repro.api.predict` — determinism is tested,
  not hoped for.  The server shards these workers by model fingerprint,
  so one model's requests always meet in the same queue and coalesce.
* :class:`EstimateWorker` — expensive simulation-driven estimation,
  pushed off the event loop with ``asyncio.to_thread`` so a running
  estimation never blocks predict traffic.  Estimated models are
  registered into the server's model registry under
  ``params.register_as`` (default ``<model>-<n>``).
"""

from __future__ import annotations

import asyncio
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro import api
from repro.api import schema
from repro.api.errors import DeadlineExceeded, InvalidRequest, Overloaded
from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.predict_service import PredictRequest, model_fingerprint
from repro.serve.protocol import Request

__all__ = [
    "CREATED",
    "DRAINING",
    "RUNNING",
    "STOPPED",
    "EstimateWorker",
    "PredictWorker",
    "StatefulWorker",
    "WorkItem",
]

# -- worker/server states ---------------------------------------------------------
CREATED = "created"
RUNNING = "running"
DRAINING = "draining"
STOPPED = "stopped"

#: Queue sentinel: drain marker, always the last item a worker sees.
_STOP = object()


@dataclass
class WorkItem:
    """One queued request: the decoded wire request, the model it was
    routed by (resolved at dispatch, so a registry reload mid-queue never
    changes what an accepted request computes against), and the future
    the connection handler awaits."""

    request: Request
    model: Any
    future: "asyncio.Future[Mapping[str, Any]]" = field(repr=False)
    #: Absolute ``time.monotonic()`` instant past which the request is
    #: shed unexecuted (from the envelope's ``deadline_ms``), or None.
    deadline: Optional[float] = None
    #: Trace context captured at dispatch — the worker task runs in its
    #: own asyncio context, so the request's trace must travel with the
    #: item, not in a contextvar.
    trace: Optional[_trace.TraceContext] = None


def _shed_if_expired(item: WorkItem, worker_name: str) -> bool:
    """Fail an expired queued item with ``deadline_exceeded`` (unrun).

    Returns True when the item was shed; the caller skips execution.
    The check sits at the moment a worker *picks the item up* — work
    already executing is never abandoned mid-flight.
    """
    if item.deadline is None or time.monotonic() <= item.deadline:
        return False
    if not item.future.cancelled():
        item.future.set_exception(DeadlineExceeded(
            f"request spent its whole deadline_ms budget queued on "
            f"worker {worker_name}; shed without executing"
        ))
    tel = _obs.ACTIVE
    if tel is not None:
        tel.registry.counter(
            "service_deadline_shed_total",
            help="requests shed unexecuted after their deadline expired",
            worker=worker_name,
        ).inc()
        tel.events.warning(
            "service_deadline_shed", worker=worker_name,
            verb=item.request.verb, request_id=item.request.id,
            trace_id=None if item.trace is None else item.trace.trace_id,
        )
    return True


class StatefulWorker:
    """One worker task: bounded inbox, explicit lifecycle, loud overload."""

    def __init__(self, name: str, queue_limit: int = 64) -> None:
        self.name = name
        self.state = CREATED
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=max(1, queue_limit))
        self.processed = 0
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self.state != CREATED:
            raise RuntimeError(f"worker {self.name} already started ({self.state})")
        self.state = RUNNING
        self._task = asyncio.create_task(
            self._run(), name=f"repro-serve-{self.name}"
        )

    @property
    def depth(self) -> int:
        """Requests currently queued (the backpressure signal)."""
        return self.queue.qsize()

    def submit(self, item: WorkItem) -> None:
        """Enqueue or reject — never block the event loop on a full queue."""
        if self.state != RUNNING:
            raise Overloaded(
                f"worker {self.name} is {self.state}; not accepting work"
            )
        try:
            self.queue.put_nowait(item)
        except asyncio.QueueFull:
            raise Overloaded(
                f"worker {self.name} queue is full ({self.queue.maxsize} "
                f"requests); back off and retry"
            ) from None
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.gauge(
                "service_queue_depth", help="queued requests per worker",
                worker=self.name,
            ).set(float(self.depth))

    async def drain(self) -> None:
        """Stop accepting, finish everything already queued, then exit."""
        if self.state == STOPPED:
            return
        if self.state == CREATED:
            self.state = STOPPED
            return
        self.state = DRAINING
        await self.queue.put(_STOP)  # FIFO: lands behind all accepted work
        if self._task is not None:
            await self._task
        self.state = STOPPED

    # -- processing ---------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            item = await self.queue.get()
            if item is _STOP:
                break
            await self._process([item])

    async def _process(self, batch: list[WorkItem]) -> None:
        for item in batch:
            self.processed += 1
            if item.future.cancelled():
                continue
            if _shed_if_expired(item, self.name):
                continue
            # Re-activate the request's trace: this task was spawned at
            # server startup, so the dispatch-time context does not reach
            # it by inheritance — it rides on the WorkItem instead.
            traced = nullcontext() if item.trace is None else _trace.use(item.trace)
            try:
                with traced, _obs.span(
                    "serve.worker", verb=item.request.verb, worker=self.name,
                    request_id=item.request.id,
                ):
                    result = await self._handle(item)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 - mapped to the taxonomy
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            else:
                if not item.future.cancelled():
                    item.future.set_result(result)
        # Worker cadence keeps the timeline/flight attachments current
        # even when the dispatch path is starved (both rate-limited).
        _obs.pulse()

    async def _handle(self, item: WorkItem) -> Mapping[str, Any]:
        raise NotImplementedError


class PredictWorker(StatefulWorker):
    """Vectorized-prediction worker with a coalescing batch window."""

    def __init__(self, name: str, queue_limit: int = 64,
                 batch_window: float = 0.002) -> None:
        super().__init__(name, queue_limit)
        self.batch_window = max(0.0, batch_window)
        self.batches = 0

    async def _run(self) -> None:
        stopping = False
        while not stopping:
            item = await self.queue.get()
            if item is _STOP:
                break
            batch = [item]
            if self.batch_window > 0.0:
                # Let concurrently-arriving requests land; the event loop
                # keeps serving connections during this sleep.
                await asyncio.sleep(self.batch_window)
            while True:
                try:
                    extra = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            await self._process(batch)

    async def _process(self, batch: list[WorkItem]) -> None:
        predicts = [item for item in batch if item.request.verb == "predict"]
        others = [item for item in batch if item.request.verb != "predict"]
        if predicts:
            self._process_predicts(predicts)
        if others:
            await super()._process(others)

    def _process_predicts(self, items: list[WorkItem]) -> None:
        """Coalesce a batch of predict requests into one vectorized
        evaluation per model; per-item failures stay per-item."""
        self.batches += 1
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.histogram(
                "service_batch_size",
                help="predict requests coalesced per evaluation",
                lo=0, hi=10,
            ).observe(float(len(items)))
        # A coalesced batch may serve several traces at once; the batch
        # span joins the first traced request and names every trace it
        # carried, so a stitched timeline shows which batch answered you.
        trace_ids = sorted({
            item.trace.trace_id for item in items if item.trace is not None
        })
        first_traced = next(
            (item.trace for item in items if item.trace is not None), None
        )
        traced = nullcontext() if first_traced is None else _trace.use(first_traced)
        with traced, _obs.span(
            "serve.worker.batch", worker=self.name, coalesced=len(items),
            traces=trace_ids,
        ):
            self._evaluate_predicts(items)

    def _evaluate_predicts(self, items: list[WorkItem]) -> None:
        groups: dict[str, list[tuple[WorkItem, schema.PredictParams]]] = {}
        for item in items:
            self.processed += 1
            if item.future.cancelled():
                continue
            if _shed_if_expired(item, self.name):
                continue
            try:
                params = schema.PredictParams.from_dict(item.request.params)
            except Exception as exc:  # noqa: BLE001 - reported per item
                item.future.set_exception(exc)
                continue
            groups.setdefault(model_fingerprint(item.model), []).append(
                (item, params)
            )
        for members in groups.values():
            model = members[0][0].model
            requests = [
                PredictRequest(operation=p.operation, algorithm=p.algorithm,
                               nbytes=p.nbytes, root=p.root, dest=p.dest)
                for _, p in members
            ]
            try:
                seconds = api.predict_many(model, requests)
            except Exception:  # noqa: BLE001 - one bad point: retry singly
                self._process_predicts_singly(model, members)
                continue
            for (item, p), value in zip(members, seconds):
                if item.future.cancelled():
                    continue
                prediction = api._as_prediction(
                    model, p.operation, p.algorithm, p.nbytes, p.root, value
                )
                item.future.set_result(prediction.to_dict())

    @staticmethod
    def _process_predicts_singly(
        model: Any, members: list[tuple[WorkItem, schema.PredictParams]]
    ) -> None:
        """Fallback when a coalesced evaluation fails: evaluate each
        request alone so only the actually-bad ones error out."""
        for item, p in members:
            if item.future.cancelled():
                continue
            kwargs = {"dest": p.dest} if p.operation == "p2p" else {}
            try:
                prediction = api.predict(
                    model, p.operation, p.algorithm, p.nbytes, root=p.root,
                    **kwargs,
                )
            except Exception as exc:  # noqa: BLE001 - reported per item
                item.future.set_exception(exc)
            else:
                item.future.set_result(prediction.to_dict())

    async def _handle(self, item: WorkItem) -> Mapping[str, Any]:
        verb = item.request.verb
        if verb == "predict_many":
            params = schema.PredictManyParams.from_dict(item.request.params)
            mismatched = sorted({
                p.model for p in params.requests if p.model != params.model
            })
            if mismatched:
                raise InvalidRequest(
                    f"predict_many evaluates one model per call; batch names "
                    f"{params.model!r} but items name {mismatched}"
                )
            requests = [
                PredictRequest(operation=p.operation, algorithm=p.algorithm,
                               nbytes=p.nbytes, root=p.root, dest=p.dest)
                for p in params.requests
            ]
            seconds = api.predict_many(item.model, requests)
            return schema.PredictionBatch(
                seconds=tuple(float(s) for s in seconds)
            ).to_dict()
        if verb == "optimize":
            params = schema.OptimizeParams.from_dict(item.request.params)
            outcome = api.optimize_gather(
                item.model, params.sizes, root=params.root, safety=params.safety
            )
            return outcome.to_dict()
        raise InvalidRequest(f"worker {self.name} cannot handle verb {verb!r}")


class EstimateWorker(StatefulWorker):
    """Serialized estimation off the event loop, results registered."""

    def __init__(self, name: str, registry: Any, queue_limit: int = 4) -> None:
        super().__init__(name, queue_limit)
        self.registry = registry

    async def _handle(self, item: WorkItem) -> Mapping[str, Any]:
        params = schema.EstimateParams.from_dict(item.request.params)
        outcome = await asyncio.to_thread(self._estimate, params)
        name = params.register_as or f"{params.model}-{outcome.n}"
        self.registry.register(name, outcome.model)
        tel = _obs.ACTIVE
        if tel is not None:
            # ``name`` is the event name's positional slot on EventLog —
            # the registry name must ride under a different key.
            tel.events.info("service_model_registered", registered_as=name,
                            model=params.model, n=outcome.n)
        return {**outcome.to_dict(), "registered_as": name}

    @staticmethod
    def _estimate(params: schema.EstimateParams) -> schema.EstimateOutcome:
        cluster = api.load_cluster(
            nodes=params.nodes, profile=params.profile, seed=params.seed
        )
        return api.estimate(
            cluster, model=params.model, reps=params.reps,
            quick=params.quick, empirical=params.empirical,
        )
