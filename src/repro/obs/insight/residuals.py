"""Streaming residual monitors: is each model still predicting reality?

A *residual* is one (prediction, measurement) pair reduced to its signed
relative error ``(predicted - measured) / measured`` — the same
convention as :mod:`repro.analysis.accuracy` (positive = pessimistic,
negative = optimistic).  :class:`ResidualMonitor` ingests pairs from
``api.measure``, the benchlib suite and maintainer spot-checks, and
folds them into the ordinary metrics registry:

* ``residual_abs_error`` — histogram of |signed error| per
  (model, operation, bucket), giving count / mean / p50 / p95 through
  :func:`repro.obs.metrics.bucket_quantile`;
* ``residual_signed_error_sum`` — running signed-error sum per child
  (bias = sum / count);
* ``residual_max_abs_error`` — worst |error| seen per child.

Because the aggregates live in the registry, scorecards can be rebuilt
from *any* metrics snapshot — a live session or a ``--metrics-out`` file
— which is what ``repro obs dashboard`` does.

Size buckets are powers of two (the upper bound, as a string label):
message-size regimes are the paper's unit of model error, and log2 edges
match both the histogram layer and the gather irregularity thresholds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.obs import runtime as _runtime
from repro.obs.metrics import MetricsRegistry, bucket_quantile

__all__ = [
    "ABS_ERROR_METRIC",
    "BucketScore",
    "MAX_ERROR_METRIC",
    "ResidualMonitor",
    "ResidualRecord",
    "SIGNED_SUM_METRIC",
    "Scorecard",
    "render_scorecards",
    "scorecards",
    "size_bucket",
]

ABS_ERROR_METRIC = "residual_abs_error"
SIGNED_SUM_METRIC = "residual_signed_error_sum"
MAX_ERROR_METRIC = "residual_max_abs_error"

#: |relative error| histograms span 2**-20 (~1e-6, exact) .. 2**4 (16x off).
_ERR_LO = -20
_ERR_HI = 4


def size_bucket(nbytes: float) -> str:
    """Power-of-two size-regime label: the smallest 2**k >= nbytes."""
    n = int(math.ceil(float(nbytes)))
    if n <= 1:
        return "1"
    return str(1 << (n - 1).bit_length())


@dataclass(frozen=True)
class ResidualRecord:
    """One ingested (prediction, measurement) pair, reduced."""

    model: str
    operation: str
    nbytes: int
    predicted: float
    measured: float
    signed_error: float

    @property
    def abs_error(self) -> float:
        return abs(self.signed_error)

    @property
    def bucket(self) -> str:
        return size_bucket(self.nbytes)


class ResidualMonitor:
    """Folds (prediction, measurement) pairs into residual metrics.

    With no explicit ``registry`` the monitor targets whatever telemetry
    session is active *at ingest time* — and is a silent no-op while
    telemetry is off, so instrumented call sites need no guard of their
    own beyond the usual ``ACTIVE is None`` fast path.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry

    def _target(self) -> Optional[MetricsRegistry]:
        if self._registry is not None:
            return self._registry
        tel = _runtime.ACTIVE
        return tel.registry if tel is not None else None

    def record(
        self,
        model: str,
        operation: str,
        nbytes: int,
        predicted: float,
        measured: float,
    ) -> Optional[ResidualRecord]:
        """Ingest one pair; returns the reduced record (None if dropped).

        Pairs with a non-positive or non-finite measurement are dropped —
        a relative error against zero is undefined, not infinite.
        """
        reg = self._target()
        if reg is None:
            return None
        predicted = float(predicted)
        measured = float(measured)
        if not (math.isfinite(predicted) and math.isfinite(measured)) or measured <= 0:
            return None
        signed = (predicted - measured) / measured
        record = ResidualRecord(
            model=str(model), operation=str(operation), nbytes=int(nbytes),
            predicted=predicted, measured=measured, signed_error=signed,
        )
        labels = dict(model=record.model, operation=record.operation,
                      bucket=record.bucket)
        reg.histogram(
            ABS_ERROR_METRIC, "abs relative prediction error",
            lo=_ERR_LO, hi=_ERR_HI, **labels,
        ).observe(record.abs_error)
        reg.gauge(
            SIGNED_SUM_METRIC, "running signed relative error sum", **labels
        ).inc(signed)
        worst = reg.gauge(
            MAX_ERROR_METRIC, "worst abs relative error seen", **labels
        )
        if record.abs_error > worst.value:
            worst.set(record.abs_error)
        return record


# -- scorecards -------------------------------------------------------------------
@dataclass(frozen=True)
class BucketScore:
    """Residual aggregates for one (model, operation, size bucket)."""

    bucket: str
    count: int
    mean_abs_error: float
    bias: float
    p50: float
    p95: float
    max_abs_error: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "bucket": self.bucket, "count": self.count,
            "mean_abs_error": self.mean_abs_error, "bias": self.bias,
            "p50": self.p50, "p95": self.p95,
            "max_abs_error": self.max_abs_error,
        }


@dataclass(frozen=True)
class Scorecard:
    """Calibration of one model on one operation, across size buckets.

    The top-level numbers mirror :class:`repro.analysis.accuracy.ModelScore`
    (mean/max relative error, signed bias, point count); the per-bucket
    breakdown is what a one-shot accuracy table cannot give you.
    """

    model: str
    operation: str
    count: int
    mean_abs_error: float
    bias: float
    p50: float
    p95: float
    max_abs_error: float
    buckets: tuple[BucketScore, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model, "operation": self.operation,
            "count": self.count, "mean_abs_error": self.mean_abs_error,
            "bias": self.bias, "p50": self.p50, "p95": self.p95,
            "max_abs_error": self.max_abs_error,
            "buckets": [b.to_dict() for b in self.buckets],
        }


def _merge_buckets(samples: list[Mapping[str, Any]]) -> list[list[Any]]:
    """Sum per-bucket counts across histogram samples (same fixed bounds)."""
    merged: list[list[Any]] = []
    for sample in samples:
        if not merged:
            merged = [[bound, 0] for bound, _ in sample["buckets"]]
        for slot, (_, n) in zip(merged, sample["buckets"]):
            slot[1] += n
    return merged


def _gauge_value(family: Optional[Mapping[str, Any]], labels: Mapping[str, str]) -> float:
    if not family:
        return 0.0
    for sample in family.get("samples", ()):
        if sample.get("labels", {}) == dict(labels):
            return float(sample["value"])
    return 0.0


def scorecards(metrics: Mapping[str, Any]) -> list[Scorecard]:
    """Rebuild every scorecard from a metrics snapshot section.

    ``metrics`` is the ``"metrics"`` mapping of a snapshot document (or
    ``registry.snapshot()`` of a live session).  Returns one card per
    (model, operation), sorted by model then operation.
    """
    hist_family = metrics.get(ABS_ERROR_METRIC)
    if not hist_family:
        return []
    grouped: dict[tuple[str, str], list[Mapping[str, Any]]] = {}
    for sample in hist_family.get("samples", ()):
        labels = sample.get("labels", {})
        key = (str(labels.get("model", "")), str(labels.get("operation", "")))
        grouped.setdefault(key, []).append(sample)

    signed_family = metrics.get(SIGNED_SUM_METRIC)
    max_family = metrics.get(MAX_ERROR_METRIC)
    cards: list[Scorecard] = []
    for (model, operation), samples in sorted(grouped.items()):
        bucket_scores: list[BucketScore] = []
        for sample in sorted(
            samples, key=lambda s: int(s.get("labels", {}).get("bucket", "0"))
        ):
            labels = sample.get("labels", {})
            count = int(sample["count"])
            if count == 0:
                continue
            signed_sum = _gauge_value(signed_family, labels)
            bucket_scores.append(BucketScore(
                bucket=str(labels.get("bucket", "")),
                count=count,
                mean_abs_error=float(sample["sum"]) / count,
                bias=signed_sum / count,
                p50=bucket_quantile(sample["buckets"], count, 0.50),
                p95=bucket_quantile(sample["buckets"], count, 0.95),
                max_abs_error=_gauge_value(
                    max_family, {**labels}
                ),
            ))
        if not bucket_scores:
            continue
        total = sum(b.count for b in bucket_scores)
        merged = _merge_buckets(samples)
        cards.append(Scorecard(
            model=model,
            operation=operation,
            count=total,
            mean_abs_error=sum(float(s["sum"]) for s in samples) / total,
            bias=sum(b.bias * b.count for b in bucket_scores) / total,
            p50=bucket_quantile(merged, total, 0.50),
            p95=bucket_quantile(merged, total, 0.95),
            max_abs_error=max(b.max_abs_error for b in bucket_scores),
            buckets=tuple(bucket_scores),
        ))
    return cards


def render_scorecards(cards: list[Scorecard]) -> str:
    """Terminal table in the :meth:`AccuracyReport.render` style."""
    if not cards:
        return "residual scorecards: (no pairs ingested)"
    lines = [
        f"{'model':<14} {'operation':<12} {'n':>5} {'mean err':>9} "
        f"{'p50':>7} {'p95':>7} {'worst':>7} {'bias':>12}"
    ]
    for card in sorted(cards, key=lambda c: c.mean_abs_error):
        tendency = "pessimistic" if card.bias > 0 else "optimistic"
        lines.append(
            f"{card.model:<14} {card.operation:<12} {card.count:>5} "
            f"{card.mean_abs_error:>8.1%} {card.p50:>6.1%} {card.p95:>6.1%} "
            f"{card.max_abs_error:>6.1%} {card.bias:>+7.1%} ({tendency[:4]})"
        )
    return "\n".join(lines)
