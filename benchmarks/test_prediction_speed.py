"""Microbenchmark: vectorized sweep prediction vs the scalar path.

The tentpole claim of the batched prediction engine: evaluating a full
algorithm menu over a message-size sweep as array ops is >= 10x faster
than calling the scalar predictors size by size.  This file measures
exactly that (16-node model, 200 sizes, the whole menu), asserts the
floor, and writes ``BENCH_prediction.json`` at the repo root so the
numbers are committed alongside the code that produced them.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_prediction_speed.py -s
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.cluster import synthesize_ground_truth, table1_cluster
from repro.models import (
    ExtendedLMOModel,
    GatherIrregularity,
    GatherPrediction,
    predict_binomial_gather,
    predict_binomial_scatter,
    predict_linear_gather,
    predict_linear_scatter,
)
from repro.models.collectives.formulas_ext import _PREDICTORS, predict_collective
from repro.predict_service import clear_cache, predict_sweep

KB = 1024
N_SIZES = 200
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_prediction.json"

_CORE_SCALAR = {
    ("scatter", "linear"): lambda model, m, root: float(
        predict_linear_scatter(model, m, root=root)),
    ("scatter", "binomial"): lambda model, m, root: float(
        predict_binomial_scatter(model, m, root=root)),
    ("gather", "linear"): lambda model, m, root: _gather_value(model, m, root),
    ("gather", "binomial"): lambda model, m, root: float(
        predict_binomial_gather(model, m, root=root)),
}


def _gather_value(model, m, root):
    value = predict_linear_gather(model, m, root=root)
    return value.expected if isinstance(value, GatherPrediction) else float(value)


def _menu(model):
    return sorted(_CORE_SCALAR) + sorted(_PREDICTORS)


def _scalar_pass(model, menu, sizes):
    out = {}
    for (operation, algorithm) in menu:
        core = _CORE_SCALAR.get((operation, algorithm))
        if core is not None:
            out[(operation, algorithm)] = [core(model, m, 0) for m in sizes]
        else:
            out[(operation, algorithm)] = [
                float(predict_collective(model, operation, algorithm, m, root=0))
                if operation == "bcast"
                else float(predict_collective(model, operation, algorithm, m))
                for m in sizes
            ]
    return out


def _batch_pass(model, menu, sizes):
    clear_cache()  # time cold sweeps, not cache hits
    return {
        (operation, algorithm): predict_sweep(model, operation, algorithm, sizes)
        for (operation, algorithm) in menu
    }


def _best_of(fn, *args):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_menu_sweep_is_10x_faster():
    gt = synthesize_ground_truth(table1_cluster(), seed=0)
    model = ExtendedLMOModel.from_ground_truth(
        gt, GatherIrregularity(m1=4 * KB, m2=64 * KB, escalation_value=0.25)
    )
    sizes = np.logspace(0, np.log10(1 << 20), N_SIZES)
    menu = _menu(model)

    scalar_s, scalar_out = _best_of(_scalar_pass, model, menu, sizes)
    batch_s, batch_out = _best_of(_batch_pass, model, menu, sizes)

    # Same numbers, not just faster numbers.
    for key in menu:
        assert np.array_equal(np.array(scalar_out[key]), batch_out[key]), key

    speedup = scalar_s / batch_s
    payload = {
        "benchmark": "full-menu sweep, scalar loop vs vectorized batch",
        "nodes": model.n,
        "n_sizes": N_SIZES,
        "menu_entries": len(menu),
        "predictions": N_SIZES * len(menu),
        "scalar_seconds": round(scalar_s, 6),
        "batch_seconds": round(batch_s, 6),
        "speedup": round(speedup, 2),
        "floor": 10.0,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nscalar {scalar_s * 1e3:.1f} ms, batch {batch_s * 1e3:.1f} ms, "
          f"speedup {speedup:.1f}x -> {RESULT_PATH.name}")
    assert speedup >= 10.0, f"batched sweep only {speedup:.1f}x faster"
