"""The Hockney model and its heterogeneous extension (paper Sec. II).

Hockney [6] describes a point-to-point transfer as ``alpha + beta * M``:
``alpha`` is the latency (all constant contributions of processors *and*
network lumped together) and ``beta`` the per-byte time (all variable
contributions lumped).  The heterogeneous extension gives each processor
pair its own ``alpha_ij`` / ``beta_ij``.

The paper's central criticism applies here: because processor and network
contributions are inseparable, there is no way to express "serial at the
root CPU, parallel in the switch", so linear-collective predictions are
either fully *sequential* (pessimistic) or fully *parallel* (optimistic) —
compare Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import (
    ArrayLike,
    broadcast_result,
    decode_array,
    encode_array,
    validate_nbytes_batch,
    validate_rank_batch,
)

__all__ = ["HockneyModel", "HeterogeneousHockneyModel"]


@dataclass(frozen=True)
class HockneyModel:
    """Homogeneous Hockney: one (alpha, beta) for the whole cluster.

    Attributes
    ----------
    alpha:
        Latency, seconds.
    beta:
        Per-byte time, seconds/byte (the paper's ``beta`` in
        ``alpha + beta M``; note this is 1/bandwidth).
    n:
        Number of processors the model was estimated for.
    """

    alpha: float
    beta: float
    n: int

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError(f"negative Hockney parameters: {self}")
        if self.n < 2:
            raise ValueError("a communication model needs n >= 2")

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``alpha + beta * M``, independent of the pair."""
        return float(self.p2p_time_batch(i, j, nbytes))

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized ``alpha + beta * M`` over broadcastable arrays."""
        validate_rank_batch(self.n, i, j)
        nb = validate_nbytes_batch(nbytes)
        return broadcast_result(self.alpha + self.beta * nb, i, j, nb)

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"alpha": self.alpha, "beta": self.beta, "n": self.n}

    @classmethod
    def from_dict(cls, params: dict) -> "HockneyModel":
        """Inverse of :meth:`to_dict`."""
        return cls(alpha=params["alpha"], beta=params["beta"], n=params["n"])


@dataclass(frozen=True)
class HeterogeneousHockneyModel:
    """Heterogeneous Hockney: per-pair ``alpha_ij`` and ``beta_ij``.

    Attributes
    ----------
    alpha:
        Latency matrix, shape ``(n, n)``, symmetric, seconds.
    beta:
        Per-byte-time matrix, shape ``(n, n)``, symmetric, seconds/byte.
    """

    alpha: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        if (
            self.alpha.ndim != 2
            or self.alpha.shape[0] != self.alpha.shape[1]
            or self.alpha.shape != self.beta.shape
        ):
            raise ValueError("alpha and beta must be square matrices of equal shape")
        if self.alpha.shape[0] < 2:
            raise ValueError("a communication model needs n >= 2")
        off = ~np.eye(self.alpha.shape[0], dtype=bool)
        if (self.alpha[off] < 0).any() or (self.beta[off] < 0).any():
            raise ValueError("negative Hockney parameters")

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.alpha.shape[0]

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``alpha_ij + beta_ij * M``."""
        return float(self.p2p_time_batch(i, j, nbytes))

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized ``alpha_ij + beta_ij * M`` with broadcast ranks/sizes."""
        ii, jj = validate_rank_batch(self.n, i, j)
        nb = validate_nbytes_batch(nbytes)
        ii, jj = np.broadcast_arrays(ii, jj)
        return broadcast_result(self.alpha[ii, jj] + self.beta[ii, jj] * nb, ii, nb)

    def averaged(self) -> HockneyModel:
        """Collapse to a homogeneous model by averaging over pairs.

        This is the paper's "treat the heterogeneous cluster as
        homogeneous" option (Sec. II): simple, compact, less accurate.
        """
        off = ~np.eye(self.n, dtype=bool)
        return HockneyModel(
            alpha=float(self.alpha[off].mean()),
            beta=float(self.beta[off].mean()),
            n=self.n,
        )

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"alpha": encode_array(self.alpha), "beta": encode_array(self.beta)}

    @classmethod
    def from_dict(cls, params: dict) -> "HeterogeneousHockneyModel":
        """Inverse of :meth:`to_dict`."""
        return cls(alpha=decode_array(params["alpha"]), beta=decode_array(params["beta"]))

    @staticmethod
    def from_ground_truth(ground_truth) -> "HeterogeneousHockneyModel":
        """The *exact* Hockney view of an extended-LMO ground truth:
        ``alpha_ij = C_i + L_ij + C_j``, ``beta_ij = t_i + 1/b_ij + t_j``."""
        return HeterogeneousHockneyModel(
            alpha=ground_truth.hockney_alpha(),
            beta=ground_truth.hockney_beta(),
        )
