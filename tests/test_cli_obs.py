"""CLI surface of the telemetry layer: --metrics-out, obs, trace export.

These are the acceptance paths from the observability issue: a campaign
run must leave a queryable snapshot behind, ``repro obs`` must re-render
it (including valid Prometheus text exposition), ``repro trace export``
must round-trip through Chrome trace JSON, and a chaos run over a flaky
link must narrate exactly the RTO escalations the injector reports.
"""

import json
import re

import pytest

from repro.cli import main
from repro.obs import runtime as _obs
from tests.obs.test_metrics import assert_valid_prometheus


@pytest.fixture(autouse=True)
def _telemetry_off():
    _obs.disable()
    yield
    _obs.disable()


@pytest.fixture()
def snapshot(tmp_path, capsys):
    """One finished 4-node campaign and its telemetry snapshot."""
    journal = str(tmp_path / "camp.jsonl")
    metrics = str(tmp_path / "metrics.json")
    assert main(["campaign", "run", "--journal", journal, "--nodes", "4",
                 "--metrics-out", metrics]) == 0
    capsys.readouterr()
    return journal, metrics


def _value(doc, name, **labels):
    total = 0.0
    for sample in doc["metrics"].get(name, {}).get("samples", []):
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            total += sample["value"]
    return total


def test_campaign_metrics_out_writes_live_snapshot(snapshot):
    _journal, metrics = snapshot
    doc = json.load(open(metrics))
    assert doc["format"] == "repro-telemetry" and doc["version"] == 1
    # Non-zero unit, journal and breaker metrics — the acceptance bar.
    assert _value(doc, "campaign_units_total", outcome="done") == 36
    assert _value(doc, "journal_appends_total") >= 72
    assert _value(doc, "breaker_nodes", state="closed") == 4
    assert _value(doc, "sim_events_total") > 0
    assert doc["metrics"]["journal_append_seconds"]["samples"][0]["count"] >= 72
    assert any(s["name"] == "campaign.run" for s in doc["spans"])
    # The CLI turned telemetry off again on the way out.
    assert _obs.ACTIVE is None


def test_obs_report_summarizes_snapshot(snapshot, capsys):
    _journal, metrics = snapshot
    assert main(["obs", "report", "--metrics", metrics]) == 0
    out = capsys.readouterr().out
    assert "campaign_units_total{outcome=done}: 36" in out
    assert "journal_append_seconds" in out
    assert "campaign.run: 1 x" in out

    assert main(["obs", "report", "--metrics", metrics,
                 "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["format"] == "repro-telemetry"


def test_obs_export_prom_is_valid_exposition(snapshot, capsys):
    _journal, metrics = snapshot
    assert main(["obs", "export", "--metrics", metrics]) == 0
    text = capsys.readouterr().out
    assert_valid_prometheus(text)
    assert re.search(r'campaign_units_total\{outcome="done"\} 36', text)
    assert 'journal_append_seconds_bucket{le="+Inf"}' in text


def test_obs_export_chrome_and_json(snapshot, tmp_path, capsys):
    _journal, metrics = snapshot
    out = str(tmp_path / "trace.json")
    assert main(["obs", "export", "--metrics", metrics,
                 "--format", "chrome", "--out", out]) == 0
    capsys.readouterr()
    doc = json.load(open(out))
    names = {e["name"] for e in doc["traceEvents"]}
    assert "campaign.run" in names and "campaign.unit" in names

    assert main(["obs", "export", "--metrics", metrics,
                 "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["version"] == 1


def test_obs_rejects_non_snapshot_files(tmp_path, capsys):
    bogus = tmp_path / "model.json"
    bogus.write_text(json.dumps({"format": "lmo-model"}))
    assert main(["obs", "report", "--metrics", str(bogus)]) == 2
    assert "not a telemetry snapshot" in capsys.readouterr().err
    assert main(["obs", "report", "--metrics", str(tmp_path / "absent.json")]) == 2


def test_campaign_status_json_schema(snapshot, capsys):
    journal, _metrics = snapshot
    assert main(["campaign", "status", "--journal", journal,
                 "--format", "json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["coverage"] == 1.0
    assert status["quarantined"] == []
    assert status["solved_triplets"] == status["total_triplets"] == 4
    assert status["completed"] == status["total_experiments"] == 36
    assert status["complete"] is True


def test_predict_json_reports_cache_stats(tmp_path, capsys):
    model_file = str(tmp_path / "lmo.json")
    main(["estimate", "--model", "lmo", "--quick", "--reps", "1",
          "--out", model_file])
    capsys.readouterr()
    for expected_hits in (0, 1):
        assert main(["predict", "--model-file", model_file,
                     "--nbytes", "65536", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        cache = payload["cache"]
        assert cache["hits"] >= expected_hits
        assert cache["misses"] >= 1
        assert set(cache) == {"hits", "misses", "evictions", "size", "maxsize"}


def test_trace_export_chrome_roundtrip(tmp_path, capsys):
    out = str(tmp_path / "trace.json")
    assert main(["trace", "export", "--chrome", out, "--nbytes", "4096",
                 "--format", "json"]) == 0
    meta = json.loads(capsys.readouterr().out)
    assert meta["out"] == out
    doc = json.load(open(out))
    sim_lanes = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
    assert any(name.startswith("sim:cpu") for name in sim_lanes)
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == meta["intervals"]
    assert len(sim_lanes) == len(meta["lanes"])
    assert all(e["dur"] >= 0 for e in slices)


def test_trace_export_requires_chrome_path(capsys):
    assert main(["trace", "export", "--nbytes", "4096"]) == 2
    assert "--chrome" in capsys.readouterr().err


def test_trace_show_still_default(capsys):
    assert main(["trace", "--nbytes", "4096"]) == 0
    assert "root CPU utilization" in capsys.readouterr().out


def test_chaos_narrates_every_injected_escalation(tmp_path, capsys):
    metrics = str(tmp_path / "chaos.json")
    assert main(["chaos", "--nodes", "4", "--cycles", "1", "--reps", "2",
                 "--flaky-link", "0:3:0.3", "--metrics-out", metrics]) == 0
    out = capsys.readouterr().out
    match = re.search(r"loss escalations: (\d+)", out)
    assert match, out
    injected = int(match.group(1))
    assert injected > 0

    doc = json.load(open(metrics))
    assert _value(doc, "rto_escalations_total", cause="loss") == injected
    events = [e for e in doc["events"]
              if e["name"] == "rto_escalation" and e["cause"] == "loss"]
    assert len(events) == injected
    assert all(e["level"] == "warning" and e["delay"] > 0 for e in events)
    # Heal-cycle narration rides in the same snapshot.
    assert any(e["name"] == "heal_cycle" for e in doc["events"])


def test_obs_dashboard_writes_self_contained_html(snapshot, tmp_path, capsys):
    _journal, metrics = snapshot
    out = str(tmp_path / "dash.html")
    bench = tmp_path / "BENCH_fake.json"
    bench.write_text(json.dumps({"overhead_fraction": 0.003}))
    assert main(["obs", "dashboard", "--metrics", metrics, "--out", out,
                 "--bench", str(bench)]) == 0
    text = capsys.readouterr().out
    assert "repro model-fidelity observatory" in text
    assert f"dashboard written to {out}" in text
    html = open(out).read()
    assert html.startswith("<!DOCTYPE html>")
    lowered = html.lower()
    assert "<script" not in lowered
    assert "http://" not in lowered and "https://" not in lowered
    assert "<link" not in lowered
    assert "BENCH_fake.json" in html
    assert "escalation_rate_high" in html  # the alert catalog rendered


def test_obs_dashboard_format_json_roundtrips(snapshot, tmp_path, capsys):
    _journal, metrics = snapshot
    out = str(tmp_path / "dash.html")
    assert main(["obs", "dashboard", "--metrics", metrics, "--out", out,
                 "--format", "json", "--bench", str(tmp_path / "none.json")]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["title"] == "repro model-fidelity observatory"
    assert {a["rule"]["name"] for a in data["alerts"]} >= {
        "escalation_rate_high", "breaker_open", "model_drift_high",
        "residual_p95_high",
    }
    assert open(out).read().startswith("<!DOCTYPE html>")


def test_obs_dashboard_rejects_bad_snapshot(tmp_path, capsys):
    bogus = tmp_path / "x.json"
    bogus.write_text(json.dumps({"format": "nope"}))
    assert main(["obs", "dashboard", "--metrics", str(bogus),
                 "--out", str(tmp_path / "d.html")]) == 2
    assert "not a telemetry snapshot" in capsys.readouterr().err


def test_obs_watch_bounded_refreshes(snapshot, capsys):
    _journal, metrics = snapshot
    assert main(["obs", "watch", "--metrics", metrics, "--count", "2",
                 "--interval", "0"]) == 0
    out = capsys.readouterr().out
    assert out.count("repro model-fidelity observatory") == 2


def test_obs_watch_format_json_roundtrips(snapshot, capsys):
    _journal, metrics = snapshot
    assert main(["obs", "watch", "--metrics", metrics, "--count", "1",
                 "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["title"] == "repro model-fidelity observatory"


def test_obs_watch_missing_file_is_an_error(tmp_path, capsys):
    assert main(["obs", "watch", "--metrics", str(tmp_path / "absent.json"),
                 "--count", "1"]) == 2
    assert "cannot" in capsys.readouterr().err.lower()


def test_suite_metrics_out(tmp_path, capsys):
    metrics = str(tmp_path / "suite.json")
    assert main(["suite", "--sizes", "1024", "--max-reps", "2",
                 "--metrics-out", metrics]) == 0
    capsys.readouterr()
    doc = json.load(open(metrics))
    assert doc["format"] == "repro-telemetry"
    assert _value(doc, "sim_events_total") > 0


# -- obs profile ------------------------------------------------------------------
def test_obs_profile_kernel_writes_every_artifact(tmp_path, capsys):
    json_out = str(tmp_path / "profile.json")
    speedscope = str(tmp_path / "profile.speedscope.json")
    collapsed = str(tmp_path / "profile.collapsed")
    assert main(["obs", "profile", "--target", "kernel", "--nodes", "4",
                 "--sizes", "1024", "--reps", "1", "--top", "5",
                 "--json-out", json_out, "--speedscope", speedscope,
                 "--collapsed", collapsed]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out and "frame" in out

    doc = json.load(open(json_out))
    assert doc["bench"] == "kernel_profile"
    assert doc["events_processed"] > 0
    assert doc["profile"]["frames"]

    scope = json.load(open(speedscope))
    assert scope["profiles"][0]["unit"] == "nanoseconds"
    lines = open(collapsed).read().strip().splitlines()
    assert lines and all(" " in line for line in lines)


def test_obs_profile_service_mixes_load_and_kernel_frames(tmp_path, capsys):
    json_out = str(tmp_path / "service.json")
    assert main(["obs", "profile", "--target", "service", "--nodes", "4",
                 "--sizes", "1024", "--requests", "3",
                 "--json-out", json_out]) == 0
    doc = json.load(open(json_out))
    names = {frame["name"] for frame in doc["frames"]}
    assert "load.predict" in names and "load.kernel" in names
    counts = {f["name"]: f["count"] for f in doc["frames"]}
    assert counts["load.predict"] == 3


def test_obs_profile_json_format(capsys):
    assert main(["obs", "profile", "--target", "kernel", "--nodes", "4",
                 "--sizes", "1024", "--reps", "1", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["bench"] == "kernel_profile"


# -- obs trace stitch -------------------------------------------------------------
def _write_snapshot(path, epoch, spans):
    json.dump({"format": "repro-telemetry", "version": 1, "metrics": {},
               "spans_epoch_unix": epoch, "spans": spans, "events": []},
              open(path, "w"))


def _span(name, start, end, trace_id):
    return {"name": name, "start": start, "end": end, "span_id": 1,
            "parent_id": None, "attrs": {}, "trace_id": trace_id}


def test_obs_trace_stitch_lists_and_stitches(tmp_path, capsys):
    trace_id = "c" * 32
    client = str(tmp_path / "client.json")
    server = str(tmp_path / "server.json")
    _write_snapshot(client, 100.0, [_span("client.request", 0.0, 1.0, trace_id)])
    _write_snapshot(server, 100.2, [_span("serve.request", 0.1, 0.7, trace_id)])

    assert main(["obs", "trace", "stitch", "--in", f"client={client}",
                 "--in", f"server={server}", "--list"]) == 0
    listing = capsys.readouterr().out
    assert trace_id in listing and "client,server" in listing

    out = str(tmp_path / "stitched.json")
    assert main(["obs", "trace", "stitch", "--in", f"client={client}",
                 "--in", f"server={server}", "--trace-id", trace_id,
                 "--out", out]) == 0
    doc = json.load(open(out))
    lanes = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
    assert lanes == {"client", "server"}


def test_obs_trace_stitch_bare_path_uses_file_stem(tmp_path, capsys):
    path = str(tmp_path / "worker7.json")
    _write_snapshot(path, 10.0, [_span("serve.worker", 0.0, 0.5, "d" * 32)])
    assert main(["obs", "trace", "stitch", "--in", path]) == 0
    doc = json.loads(capsys.readouterr().out)
    lanes = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
    assert lanes == {"worker7"}


def test_obs_trace_stitch_error_paths(tmp_path, capsys):
    assert main(["obs", "trace", "stitch"]) == 2
    assert "nothing to stitch" in capsys.readouterr().err

    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"nope": 1}')
    assert main(["obs", "trace", "stitch", "--in", str(bogus)]) == 2
    assert "cannot read telemetry snapshot" in capsys.readouterr().err

    good = str(tmp_path / "good.json")
    _write_snapshot(good, 10.0, [_span("s", 0.0, 0.1, "e" * 32)])
    assert main(["obs", "trace", "stitch", "--in", good,
                 "--trace-id", "f" * 32]) == 2
    assert "stitch failed" in capsys.readouterr().err


# -- client --traceparent ---------------------------------------------------------
def test_client_rejects_malformed_traceparent(capsys):
    assert main(["client", "health", "--traceparent", "garbage"]) == 2
    assert "malformed --traceparent" in capsys.readouterr().err


# -- obs dashboard bench hardening ------------------------------------------------
def test_obs_dashboard_survives_truncated_bench_file(snapshot, tmp_path,
                                                     capsys):
    """A half-written BENCH_*.json (a crashed benchmark, a torn copy)
    must become a warning panel, never a traceback."""
    _journal, metrics = snapshot
    out = str(tmp_path / "dash.html")
    truncated = tmp_path / "BENCH_torn.json"
    truncated.write_text('{"bench": "torn", "guard_ns"')  # mid-key EOF
    good = tmp_path / "BENCH_good.json"
    good.write_text(json.dumps({"overhead_fraction": 0.003}))
    wrong_shape = tmp_path / "BENCH_list.json"
    wrong_shape.write_text("[1, 2, 3]")

    assert main(["obs", "dashboard", "--metrics", metrics, "--out", out,
                 "--bench", str(truncated), "--bench", str(good),
                 "--bench", str(wrong_shape),
                 "--bench", str(tmp_path / "BENCH_absent.json")]) == 0
    text = capsys.readouterr().out
    assert "BENCH_torn.json skipped" in text
    assert "BENCH_list.json skipped" in text
    assert "BENCH_absent.json skipped" in text
    html = open(out).read()
    assert "Ingest warnings" in html
    assert "BENCH_torn.json" in html
    assert "BENCH_good.json" in html  # the healthy file still renders


# -- obs top ----------------------------------------------------------------------
def test_obs_top_renders_operator_view(snapshot, capsys):
    _journal, metrics = snapshot
    assert main(["obs", "top", "--metrics", metrics, "--count", "2",
                 "--interval", "0"]) == 0
    out = capsys.readouterr().out
    assert out.count("repro model-fidelity observatory") == 2
    # campaign snapshots carry no timeline section; top says so instead
    # of pretending rates exist
    assert "no timeline in this snapshot" in out


def test_obs_top_format_json_is_dashboard_data(snapshot, capsys):
    _journal, metrics = snapshot
    assert main(["obs", "top", "--metrics", metrics, "--count", "1",
                 "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["title"] == "repro model-fidelity observatory"
    assert "slos" in data and "timeline" in data


# -- obs flight -------------------------------------------------------------------
def _write_spill(tmp_path):
    """A real recorder spill with one traced serve.request span."""
    import random as _random

    from repro.obs import trace as _tracectx
    from repro.obs.flight import FlightRecorder

    tel = _obs.enable(fresh=True)
    ctx = _tracectx.new_context(_random.Random(5))
    token = _tracectx.activate(ctx)
    with _obs.span("serve.request", verb="predict"):
        pass
    _tracectx.restore(token)
    spill = str(tmp_path / "child-1.spill")
    recorder = FlightRecorder(tel, process="serve", spill_path=spill,
                              sync_interval=0.0)
    recorder.sync()
    recorder.close()
    _obs.disable()
    return spill, ctx.trace_id


def test_obs_flight_dump_inspect_stitch_round_trip(tmp_path, capsys):
    spill, trace_id = _write_spill(tmp_path)
    dump = str(tmp_path / "flight.json")

    assert main(["obs", "flight", "dump", "--spill", spill,
                 "--out", dump, "--reason", "crashed"]) == 0
    assert f"flight dump written to {dump}" in capsys.readouterr().out

    assert main(["obs", "flight", "inspect", dump]) == 0
    text = capsys.readouterr().out
    assert "process=serve" in text
    assert "serve.request" in text
    assert trace_id in text
    assert "crashed" in text

    assert main(["obs", "flight", "inspect", dump, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["reason"] == "crashed"

    # spills inspect directly too (no recovery step needed to peek)
    assert main(["obs", "flight", "inspect", spill]) == 0
    assert "serve.request" in capsys.readouterr().out

    assert main(["obs", "flight", "stitch", "--in", f"serve={dump}",
                 "--list"]) == 0
    assert trace_id in capsys.readouterr().out
    out = str(tmp_path / "stitched.json")
    assert main(["obs", "flight", "stitch", "--in", f"serve={dump}",
                 "--trace-id", trace_id, "--out", out]) == 0
    capsys.readouterr()
    doc = json.load(open(out))
    names = {e["name"] for e in doc["traceEvents"]}
    assert "serve.request" in names


def test_obs_flight_dump_default_out_path(tmp_path, capsys):
    spill, _trace_id = _write_spill(tmp_path)
    assert main(["obs", "flight", "dump", "--spill", spill]) == 0
    expected = spill[: -len(".spill")] + ".json"
    assert f"written to {expected}" in capsys.readouterr().out
    assert json.load(open(expected))["format"] == "repro-flight-dump"


def test_obs_flight_error_paths(tmp_path, capsys):
    assert main(["obs", "flight", "inspect",
                 str(tmp_path / "absent.json")]) == 2
    assert "cannot read flight recording" in capsys.readouterr().err

    assert main(["obs", "flight", "dump", "--spill",
                 str(tmp_path / "absent.spill")]) == 2
    assert "cannot recover spill" in capsys.readouterr().err

    assert main(["obs", "flight", "stitch"]) == 2
    assert "nothing to stitch" in capsys.readouterr().err

    not_a_dump = tmp_path / "model.json"
    not_a_dump.write_text('{"nope": 1}')
    assert main(["obs", "flight", "stitch", "--in",
                 f"x={not_a_dump}"]) == 2
    assert "cannot read flight dump" in capsys.readouterr().err
