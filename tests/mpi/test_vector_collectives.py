"""Tests for scatterv / gatherv and their predictions."""

import numpy as np
import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.models import (
    ExtendedLMOModel,
    HeterogeneousHockneyModel,
    predict_linear_gatherv,
    predict_linear_scatterv,
)
from repro.mpi import run_collective

KB = 1024


def quiet_cluster(n=6, seed=0):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


def test_scatterv_delivers_correct_blocks():
    cluster = quiet_cluster()
    counts = [0, 10, 20, 0, 40, 50]
    data = [
        None if counts[rank] == 0 else np.full(counts[rank], rank, dtype=np.uint8)
        for rank in range(6)
    ]
    run = run_collective(cluster, "scatterv", "linear", nbytes=0, root=0,
                         data=data, counts=counts)
    for rank in range(1, 6):
        block = run.value(rank)
        if counts[rank] == 0:
            assert block is None
        else:
            assert (np.asarray(block) == rank).all()
            assert len(block) == counts[rank]


def test_gatherv_collects_blocks():
    cluster = quiet_cluster()
    counts = [8, 16, 0, 32, 8, 8]
    data = [np.full(max(counts[rank], 1), rank, dtype=np.uint8) for rank in range(6)]
    run = run_collective(cluster, "gatherv", "linear", nbytes=0, root=1,
                         data=data, counts=counts)
    blocks = run.value(1)
    assert blocks is not None
    assert blocks[2] is None  # zero-count rank sent nothing
    assert (np.asarray(blocks[3]) == 3).all()


def test_scatterv_validation():
    cluster = quiet_cluster()
    with pytest.raises(Exception, match="entries"):
        run_collective(cluster, "scatterv", "linear", nbytes=0, counts=[1, 2])
    with pytest.raises(Exception, match="negative"):
        run_collective(cluster, "scatterv", "linear", nbytes=0, counts=[-1] * 6)


def test_scatterv_time_matches_uniform_scatter_for_equal_counts():
    cluster = quiet_cluster(seed=3)
    M = 16 * KB
    t_scatterv = run_collective(
        cluster, "scatterv", "linear", nbytes=0, counts=[M] * 6
    ).time
    t_scatter = run_collective(cluster, "scatter", "linear", nbytes=M).time
    assert t_scatterv == pytest.approx(t_scatter, rel=1e-12)


def test_scatterv_prediction_reduces_to_scatter_for_equal_counts():
    gt = GroundTruth.random(5, seed=4)
    model = ExtendedLMOModel.from_ground_truth(gt)
    from repro.models import predict_linear_scatter

    M = 8 * KB
    assert predict_linear_scatterv(model, [M] * 5) == pytest.approx(
        predict_linear_scatter(model, M)
    )


def test_scatterv_prediction_tracks_des():
    n = 6
    gt = GroundTruth.random(n, seed=5)
    model = ExtendedLMOModel.from_ground_truth(gt)
    cluster = SimulatedCluster(
        random_cluster(n, seed=5), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=5,
    )
    counts = [0, 4 * KB, 64 * KB, 16 * KB, 2 * KB, 32 * KB]
    predicted = predict_linear_scatterv(model, counts)
    observed = run_collective(cluster, "scatterv", "linear", nbytes=0, counts=counts).time
    assert predicted == pytest.approx(observed, rel=0.1)


def test_scatterv_prediction_skips_zero_counts():
    gt = GroundTruth.random(4, seed=6)
    model = ExtendedLMOModel.from_ground_truth(gt)
    only_one = predict_linear_scatterv(model, [0, 10 * KB, 0, 0])
    assert only_one == pytest.approx(model.p2p_time(0, 1, 10 * KB))
    assert predict_linear_scatterv(model, [0, 0, 0, 0]) == 0.0


def test_hockney_scatterv_is_sum():
    gt = GroundTruth.random(4, seed=7)
    model = HeterogeneousHockneyModel.from_ground_truth(gt)
    counts = [0, KB, 2 * KB, 3 * KB]
    expected = sum(model.p2p_time(0, i, counts[i]) for i in (1, 2, 3))
    assert predict_linear_scatterv(model, counts) == pytest.approx(expected)


def test_gatherv_prediction_uses_sender_costs():
    gt = GroundTruth.random(4, seed=8)
    model = ExtendedLMOModel.from_ground_truth(gt)
    counts = [0, KB, 8 * KB, 2 * KB]
    value = predict_linear_gatherv(model, counts)
    serial = sum(model.send_cost(0, counts[i]) for i in (1, 2, 3))
    parallel = max(
        model.L[0, i] + counts[i] / model.beta[0, i] + model.C[i] + counts[i] * model.t[i]
        for i in (1, 2, 3)
    )
    assert value == pytest.approx(serial + parallel)


def test_scatterv_prediction_validation():
    gt = GroundTruth.random(4, seed=9)
    model = ExtendedLMOModel.from_ground_truth(gt)
    with pytest.raises(ValueError):
        predict_linear_scatterv(model, [1, 2])
    with pytest.raises(ValueError):
        predict_linear_scatterv(model, [-1, 1, 1, 1])
    with pytest.raises(TypeError):
        predict_linear_scatterv(object(), [1, 2, 3])


# ---------------------------------------------------------------- binomial v
def test_binomial_scatterv_delivers_blocks_and_prunes_zero_subtrees():
    cluster = quiet_cluster(n=8, seed=12)
    counts = [0, 10, 0, 0, 40, 50, 0, 8]
    data = [
        None if counts[rank] == 0 else np.full(counts[rank], rank, dtype=np.uint8)
        for rank in range(8)
    ]
    run = run_collective(cluster, "scatterv", "binomial", nbytes=0, root=0,
                         data=data, counts=counts)
    for rank in range(1, 8):
        block = run.value(rank)
        if counts[rank] == 0:
            assert block is None
        else:
            assert (np.asarray(block) == rank).all()


def test_binomial_scatterv_matches_uniform_binomial_for_equal_counts():
    cluster = quiet_cluster(n=8, seed=13)
    M = 16 * KB
    t_v = run_collective(cluster, "scatterv", "binomial", nbytes=0,
                         counts=[M] * 8).time
    t_u = run_collective(cluster, "scatter", "binomial", nbytes=M).time
    assert t_v == pytest.approx(t_u, rel=1e-12)


def test_binomial_scatterv_prediction_tracks_des():
    from repro.models import predict_binomial_scatterv

    n = 8
    gt = GroundTruth.random(n, seed=14, beta_range=(0.9e8, 1.1e8))
    cluster = SimulatedCluster(
        random_cluster(n, seed=14), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=14,
    )
    model = ExtendedLMOModel.from_ground_truth(gt)
    counts = [0, 4 * KB, 64 * KB, 16 * KB, 2 * KB, 32 * KB, 0, 24 * KB]
    predicted = predict_binomial_scatterv(model, counts)
    observed = run_collective(cluster, "scatterv", "binomial", nbytes=0,
                              counts=counts).time
    assert predicted == pytest.approx(observed, rel=0.2)


def test_binomial_scatterv_validation():
    cluster = quiet_cluster(n=4, seed=15)
    with pytest.raises(Exception, match="entries"):
        run_collective(cluster, "scatterv", "binomial", nbytes=0, counts=[1])
