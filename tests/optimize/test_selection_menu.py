"""Tests: model-driven selection across the full algorithm menu."""

import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.models import ExtendedLMOModel
from repro.mpi import run_collective
from repro.optimize import predict_algorithms, select_algorithm

KB = 1024


def make(n=8, seed=60):
    gt = GroundTruth.random(n, seed=seed)
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    return cluster, ExtendedLMOModel.from_ground_truth(gt)


def test_bcast_menu_selection_matches_des():
    cluster, model = make()
    for nbytes in (256, 64 * KB):
        choice = predict_algorithms(
            model, "bcast", nbytes, algorithms=("linear", "binomial", "pipeline")
        )
        observed = {
            algo: run_collective(cluster, "bcast", algo, nbytes=nbytes).time
            for algo in ("linear", "binomial", "pipeline")
        }
        assert choice.best == min(observed, key=observed.__getitem__)


def test_allgather_menu_selection():
    _cluster, model = make(seed=61)
    best_small = select_algorithm(
        model, "allgather", 64, algorithms=("ring", "recursive_doubling")
    )
    assert best_small == "recursive_doubling"  # latency-bound: log2 rounds win


def test_allreduce_menu_selection():
    _cluster, model = make(seed=62)
    best = select_algorithm(
        model, "allreduce", 64, algorithms=("recursive_doubling", "reduce_bcast")
    )
    assert best == "recursive_doubling"


def test_unknown_menu_combination_rejected():
    _cluster, model = make(seed=63)
    with pytest.raises(KeyError, match="no prediction"):
        select_algorithm(model, "bcast", KB, algorithms=("telepathic",))


def test_non_lmo_model_has_no_menu_formulas():
    _cluster, model = make(seed=64)
    hockney = model.to_heterogeneous_hockney()
    with pytest.raises(KeyError, match="no prediction"):
        select_algorithm(hockney, "allgather", KB, algorithms=("ring",))


# ------------------------------------------------------------------- planner
def test_planner_builds_a_plan_and_predicts_total():
    from repro.optimize import CollectiveCall, plan_collectives

    _cluster, model = make(seed=65)
    calls = [
        CollectiveCall("bcast", 64, count=10),
        CollectiveCall("allreduce", 128 * KB, count=3),
        CollectiveCall("scatter", 150 * KB),
    ]
    plan = plan_collectives(model, calls)
    assert len(plan.calls) == 3
    assert plan.predicted_total == pytest.approx(
        sum(p.predicted_each * p.call.count for p in plan.calls)
    )
    text = plan.render()
    assert "predicted communication total" in text
    # Per-call choices are the per-call argmins (spot check one).
    from repro.models.collectives.formulas_ext import predict_collective

    first = plan.calls[0]
    for algo in ("linear", "binomial", "pipeline", "van_de_geijn"):
        assert first.predicted_each <= predict_collective(
            model, "bcast", algo, 64
        ) + 1e-15


def test_planner_plan_beats_fixed_single_algorithm_on_des():
    """Following the plan end to end beats running everything with one
    fixed algorithm choice."""
    from repro.optimize import CollectiveCall, plan_collectives

    cluster, model = make(seed=66)
    calls = [
        CollectiveCall("bcast", 64, count=5),
        CollectiveCall("bcast", 512 * KB, count=2),
    ]
    plan = plan_collectives(model, calls)

    def run_with(algorithms):
        total = 0.0
        for call, algo in zip(calls, algorithms):
            for _ in range(call.count):
                total += run_collective(cluster, call.operation, algo,
                                        nbytes=call.nbytes).time
        return total

    planned_time = run_with([p.algorithm for p in plan.calls])
    fixed_linear = run_with(["linear", "linear"])
    fixed_binomial = run_with(["binomial", "binomial"])
    assert planned_time <= fixed_linear
    assert planned_time <= fixed_binomial


def test_planner_validation():
    from repro.optimize import CollectiveCall

    with pytest.raises(ValueError, match="unplannable"):
        CollectiveCall("barrier", 0)
    with pytest.raises(ValueError, match="invalid"):
        CollectiveCall("bcast", -1)
    with pytest.raises(ValueError, match="invalid"):
        CollectiveCall("bcast", 8, count=0)
