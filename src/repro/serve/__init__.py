"""repro.serve — the always-on prediction service daemon.

An asyncio server speaking newline-delimited JSON over TCP or a Unix
socket, answering the verbs ``predict`` / ``predict_many`` /
``estimate`` / ``optimize`` / ``obs`` / ``health`` / ``drain`` with the
same schema-v3 payloads and error codes as :mod:`repro.api` — one
serialization in-process and on the wire.  See ``docs/service.md`` for
the protocol reference and ``repro serve`` / ``repro client`` for the
command-line entry points.

Layout:

* :mod:`~repro.serve.protocol` — pure framing: en/decode request and
  response lines, line-size limit, verb table, CRC-32 integrity stamps,
  the ``deadline_ms`` / ``idempotency_key`` resilience envelope;
* :mod:`~repro.serve.service` — stateful worker tasks (bounded queues,
  coalescing predict batches, threaded estimation, deadline shedding);
* :mod:`~repro.serve.server` — the daemon: routing, model registry
  (with a crash-safe snapshot), idempotent retry dedup, SIGHUP reload,
  graceful drain, telemetry;
* :mod:`~repro.serve.client` — blocking clients raising the same typed
  errors the facade raises: plain :class:`ServiceClient` and the
  retrying, deadline-aware :class:`ResilientClient`;
* :mod:`~repro.serve.supervisor` — crash-safe child supervision with a
  health-verb watchdog, backoff restarts and crash-loop detection
  (``repro serve --supervised``);
* :mod:`~repro.serve.chaos` — a deterministic wire-level fault-injecting
  proxy for the resilience suite and benchmark;
* :mod:`~repro.serve.runner` — in-process server hosting for tests and
  the load benchmark.
"""

from repro.serve.chaos import ChaosConfig, ChaosProxy, ChaosStats
from repro.serve.client import (
    EstimateReply,
    ResilientClient,
    RetryExhausted,
    RetryPolicy,
    ServiceClient,
)
from repro.serve.protocol import MAX_LINE_BYTES, VERBS, WireError
from repro.serve.runner import ServerThread
from repro.serve.server import (
    ModelRegistry,
    PredictionServer,
    ServeConfig,
    run_server,
    serve,
)
from repro.serve.supervisor import (
    CRASH_LOOP_EXIT,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "CRASH_LOOP_EXIT",
    "MAX_LINE_BYTES",
    "VERBS",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosStats",
    "EstimateReply",
    "ModelRegistry",
    "PredictionServer",
    "ResilientClient",
    "RetryExhausted",
    "RetryPolicy",
    "ServeConfig",
    "ServerThread",
    "ServiceClient",
    "Supervisor",
    "SupervisorConfig",
    "WireError",
    "run_server",
    "serve",
]
