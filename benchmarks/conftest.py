"""Shared fixtures for the per-experiment benchmarks.

Each benchmark file regenerates one of the paper's tables/figures (in
quick mode, cached for the session), asserts its shape checks, and times
that experiment's computational kernel with pytest-benchmark.
"""

import pytest

from repro.cluster import LAM_7_1_3, NoiseModel, SimulatedCluster, table1_cluster
from repro.experiments import run_experiment
from repro.experiments.common import get_model_suite

_RESULTS: dict[str, object] = {}


@pytest.fixture(scope="session")
def experiment_results():
    """Lazily computed quick-mode experiment results, cached per session."""

    def get(experiment_id: str):
        if experiment_id not in _RESULTS:
            _RESULTS[experiment_id] = run_experiment(experiment_id, quick=True)
        return _RESULTS[experiment_id]

    return get


@pytest.fixture(scope="session")
def model_suite():
    """All models estimated on the Table I cluster (quick mode)."""
    return get_model_suite(quick=True)


@pytest.fixture()
def lam_cluster():
    """A fresh Table I cluster under LAM (deterministic noise stream)."""
    return SimulatedCluster(
        table1_cluster(), profile=LAM_7_1_3, noise=NoiseModel.default(), seed=42
    )


def assert_checks(result) -> None:
    """Fail loudly if any of the experiment's shape checks failed."""
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{result.experiment_id} failed shape checks: {failed}"
