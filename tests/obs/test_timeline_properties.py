"""Property tests for the timeline's algebra (hypothesis).

The guarantees the SLO layer leans on:

* window merging is associative — tier roll-ups and query-time merges
  may group windows however they like;
* counter rates are never negative, whatever order increments, registry
  resets and clock jumps arrive in;
* ``quantile_over_window`` (and the alert engine's
  ``_histogram_quantile``) are monotone in ``q`` — a p99 threshold can
  never read below a p50 one on the same data.

Counter/histogram values are integer-valued so float addition is exact
and associativity can be asserted with ``==``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.insight.alerts import _histogram_quantile
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import (
    TimelineStore,
    Window,
    WindowTier,
    merge_windows,
)

KEYS = st.sampled_from([
    ("requests_total", ()),
    ("requests_total", (("outcome", "ok"),)),
    ("requests_total", (("outcome", "error"),)),
    ("queue_depth", ()),
])

BOUNDS = (0.01, 0.1, "+Inf")

counts = st.integers(min_value=0, max_value=10 ** 6).map(float)


@st.composite
def windows(draw):
    win = Window(width=1.0, index=draw(st.integers(0, 5)),
                 ticks=draw(st.integers(0, 3)))
    for key in draw(st.lists(KEYS, unique=True)):
        win.add_counter(key, draw(counts))
    for key in draw(st.lists(KEYS, unique=True)):
        win.add_gauge(key, ts=float(draw(st.integers(0, 100))),
                      value=float(draw(st.integers(-50, 50))))
    for key in draw(st.lists(KEYS, unique=True, max_size=2)):
        bucket_counts = [draw(counts) for _ in BOUNDS]
        win.add_histogram(key,
                          [[b, n] for b, n in zip(BOUNDS, bucket_counts)],
                          dsum=float(draw(st.integers(0, 1000))),
                          dcount=sum(bucket_counts))
    return win


@settings(max_examples=60, deadline=None)
@given(windows(), windows(), windows())
def test_merge_is_associative(a, b, c):
    left = merge_windows(merge_windows(a, b), c)
    right = merge_windows(a, merge_windows(b, c))
    assert left.to_dict() == right.to_dict()


@settings(max_examples=60, deadline=None)
@given(windows(), windows())
def test_merge_commutes_on_counters_and_histograms(a, b):
    ab, ba = merge_windows(a, b), merge_windows(b, a)
    assert ab.counters == ba.counters
    assert ab.to_dict().get("histograms") == ba.to_dict().get("histograms")


# One step of timeline traffic: increment, reset the registry (a process
# restart), or advance/rewind the clock and tick.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.sampled_from(["ok", "error"]),
                  st.integers(0, 100)),
        st.tuples(st.just("reset"), st.none(), st.none()),
        st.tuples(st.just("tick"), st.floats(-5.0, 10.0), st.none()),
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(steps, st.floats(min_value=0.5, max_value=200.0))
def test_rates_never_negative(script, horizon):
    reg = MetricsRegistry()
    clock = [0.0]
    store = TimelineStore(
        registry=reg,
        tiers=(WindowTier(1.0, 32), WindowTier(10.0, 16)),
        clock=lambda: clock[0],
    )
    store.tick(0.0)
    for op, arg1, arg2 in script:
        if op == "inc":
            reg.counter("requests_total", outcome=arg1).inc(arg2)
        elif op == "reset":
            reg.reset()
        else:
            clock[0] += arg1  # may move backwards; tick clamps
            store.tick(clock[0])
    assert store.rate("requests_total", horizon) >= 0.0
    assert store.sum_over_window("requests_total", horizon) >= 0.0
    for labels in ({"outcome": "ok"}, {"outcome": "error"}):
        assert store.sum_over_window("requests_total", horizon,
                                     labels=labels) >= 0.0


quantiles = st.lists(st.floats(min_value=0.01, max_value=1.0),
                     min_size=2, max_size=6)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=1e-4, max_value=2.0),
                min_size=1, max_size=50),
       quantiles)
def test_quantile_over_window_monotone_in_q(observations, qs):
    reg = MetricsRegistry()
    clock = [0.0]
    store = TimelineStore(registry=reg, tiers=(WindowTier(1.0, 64),),
                          clock=lambda: clock[0])
    store.tick(0.0)
    hist = reg.histogram("latency_seconds", buckets=(0.01, 0.1, 0.25, 1.0))
    for value in observations:
        clock[0] += 1.0
        hist.observe(value)
        store.tick(clock[0])
    results = [store.quantile_over_window("latency_seconds", q, 64.0)
               for q in sorted(qs)]
    assert all(a <= b for a, b in zip(results, results[1:]))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=1e-4, max_value=2.0),
                min_size=1, max_size=50),
       quantiles)
def test_alert_histogram_quantile_monotone_in_q(observations, qs):
    reg = MetricsRegistry()
    hist = reg.histogram("latency_seconds", buckets=(0.01, 0.1, 0.25, 1.0))
    for value in observations:
        hist.observe(value)
    metrics = reg.snapshot()
    results = [_histogram_quantile(metrics, "latency_seconds", (), q)
               for q in sorted(qs)]
    assert all(a <= b for a, b in zip(results, results[1:]))
