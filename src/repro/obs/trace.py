"""Cross-process trace context (W3C ``traceparent``-style).

A *trace* is one logical operation — a client request riding through
retries, the server, a worker, and down into the simulation kernel; a
*span* is one timed piece of it in one process.  This module carries the
correlation state between processes:

* :class:`TraceContext` — an immutable ``(trace_id, span_id, sampled)``
  triple, serialized as a W3C-traceparent-style header
  ``00-<32 hex>-<16 hex>-<01|00>``;
* a :mod:`contextvars` slot holding the *current* context, which
  :class:`repro.obs.spans.SpanRecorder` reads to stamp every span it
  opens with the active ``trace_id``;
* :func:`parse_traceparent` — **strict but forgiving**: any malformed
  header parses to ``None`` (the untraced fallback) and never raises.
  A bad header must degrade a request to untraced, not kill it;
* :data:`ENV_VAR` / :func:`from_environ` — propagation into child
  processes that are spawned rather than called (the service
  supervisor, parallel campaign workers).

The wire protocol (:mod:`repro.serve.protocol`) carries the header in
the request envelope's ``trace`` key; :class:`repro.serve.client.ResilientClient`
keeps one trace across every retry of a logical call and mints a fresh
span id per attempt, so a stitched timeline shows the retry structure.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import contextvars
import os
import random
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

__all__ = [
    "ENV_VAR",
    "TRACEPARENT_VERSION",
    "TraceContext",
    "current",
    "current_traceparent",
    "from_environ",
    "new_context",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "use",
]

#: The traceparent version this module emits (the W3C original).
TRACEPARENT_VERSION = "00"

#: Environment variable carrying a traceparent into spawned children
#: (supervised servers, campaign worker processes).
ENV_VAR = "REPRO_TRACEPARENT"

_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16
_HEX_DIGITS = frozenset("0123456789abcdef")


def new_trace_id(rng: Optional[random.Random] = None) -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars, never all-zero).

    Pass a seeded ``rng`` for deterministic ids in tests; the default
    draws from :mod:`secrets`.
    """
    while True:
        if rng is None:
            trace_id = secrets.token_hex(_TRACE_ID_HEX // 2)
        else:
            trace_id = f"{rng.getrandbits(4 * _TRACE_ID_HEX):0{_TRACE_ID_HEX}x}"
        if trace_id != "0" * _TRACE_ID_HEX:
            return trace_id


def new_span_id(rng: Optional[random.Random] = None) -> str:
    """A fresh 64-bit span id (16 lowercase hex chars, never all-zero)."""
    while True:
        if rng is None:
            span_id = secrets.token_hex(_SPAN_ID_HEX // 2)
        else:
            span_id = f"{rng.getrandbits(4 * _SPAN_ID_HEX):0{_SPAN_ID_HEX}x}"
        if span_id != "0" * _SPAN_ID_HEX:
            return span_id


@dataclass(frozen=True)
class TraceContext:
    """One point in a distributed trace: which trace, which parent span."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def __post_init__(self) -> None:
        if not _is_hex(self.trace_id, _TRACE_ID_HEX) \
                or self.trace_id == "0" * _TRACE_ID_HEX:
            raise ValueError(f"invalid trace_id {self.trace_id!r}")
        if not _is_hex(self.span_id, _SPAN_ID_HEX) \
                or self.span_id == "0" * _SPAN_ID_HEX:
            raise ValueError(f"invalid span_id {self.span_id!r}")

    def to_traceparent(self) -> str:
        """The wire form: ``00-<trace_id>-<span_id>-<flags>``."""
        flags = "01" if self.sampled else "00"
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    def child(self, rng: Optional[random.Random] = None) -> "TraceContext":
        """Same trace, fresh span id — one hop deeper (a retry attempt, a
        spawned worker, a queued work item)."""
        return TraceContext(self.trace_id, new_span_id(rng), self.sampled)


def _is_hex(value: object, length: int) -> bool:
    return (
        isinstance(value, str)
        and len(value) == length
        and all(ch in _HEX_DIGITS for ch in value)
    )


def new_context(rng: Optional[random.Random] = None,
                sampled: bool = True) -> TraceContext:
    """Start a brand-new trace (fresh trace id and span id)."""
    return TraceContext(new_trace_id(rng), new_span_id(rng), sampled)


def parse_traceparent(header: object) -> Optional[TraceContext]:
    """Parse a traceparent header; ``None`` for anything malformed.

    This function **never raises**: a request carrying a garbage header
    must be served untraced, not rejected.  Accepted form (the W3C
    version-00 layout, lowercase hex only)::

        00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01

    Rejected (→ ``None``): wrong field count or lengths, non-hex digits,
    uppercase hex, all-zero trace or span ids, and the reserved version
    ``ff``.  Unknown (non-``00``) versions are accepted when their first
    four fields have the version-00 shape, per the spec's
    forward-compatibility rule.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if not _is_hex_lower(version, 2) or version == "ff":
        return None
    if version == TRACEPARENT_VERSION and len(parts) != 4:
        return None
    if not _is_hex_lower(trace_id, _TRACE_ID_HEX) \
            or trace_id == "0" * _TRACE_ID_HEX:
        return None
    if not _is_hex_lower(span_id, _SPAN_ID_HEX) \
            or span_id == "0" * _SPAN_ID_HEX:
        return None
    if not _is_hex_lower(flags, 2):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id, span_id, sampled)


def _is_hex_lower(value: str, length: int) -> bool:
    # The W3C grammar is lowercase-only; uppercase hex is malformed.
    return len(value) == length and all(ch in _HEX_DIGITS for ch in value)


# -- the current context ----------------------------------------------------------
_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_obs_trace_context", default=None
)


def current() -> Optional[TraceContext]:
    """The active trace context in this task/thread, or ``None``."""
    return _CURRENT.get()


def current_traceparent() -> Optional[str]:
    """The active context's wire header, or ``None`` when untraced."""
    ctx = _CURRENT.get()
    return None if ctx is None else ctx.to_traceparent()


def activate(ctx: Optional[TraceContext]) -> contextvars.Token:
    """Set the current context (including ``None`` = untraced); returns
    the token for :func:`restore`.  Prefer :func:`use` where a ``with``
    block fits."""
    return _CURRENT.set(ctx)


def restore(token: contextvars.Token) -> None:
    """Undo a matching :func:`activate`."""
    _CURRENT.reset(token)


@contextmanager
def use(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """``with use(ctx):`` — activate ``ctx`` for the block, restoring the
    previous context even when the block raises."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def from_environ(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[TraceContext]:
    """The trace context a parent process handed us via :data:`ENV_VAR`,
    or ``None`` (malformed values fall back to untraced, never raise)."""
    env = os.environ if environ is None else environ
    return parse_traceparent(env.get(ENV_VAR))
