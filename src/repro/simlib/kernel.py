"""Core discrete-event simulation kernel: events, processes, simulator.

Design notes
------------
The kernel is deliberately small and allocation-light (the guides for this
domain stress avoiding needless object churn in inner loops):

* The event queue is a binary heap of ``(time, priority, seq, event)``
  tuples.  ``seq`` is a monotonically increasing tie-breaker, so event
  ordering is fully deterministic — two runs with the same seed produce
  identical traces.
* Processes are plain generators.  A process yields an :class:`Event`; the
  kernel resumes it with the event's value when the event fires (or throws
  :class:`Interrupt` into it).
* There is no global state: any number of :class:`Simulator` instances can
  coexist (the test-suite relies on this).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "AllOf",
    "AnyOf",
]

#: Event priorities: lower fires first at equal times.  URGENT is used for
#: internal bookkeeping (resource releases) so that releases at time *t*
#: are observed by acquisitions at time *t*.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running a finished sim...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it becomes *triggered* when given a value (or
    an exception) and scheduled; callbacks run when the simulator pops it.

    Attributes
    ----------
    callbacks:
        List of callables invoked with the event when it fires.  ``None``
        after the event has been processed (guards against double fire).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after processing)."""
        return self._exc is None

    @property
    def value(self) -> Any:
        """The event's value (raises if the event failed)."""
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully after ``delay`` sim-seconds."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay, priority)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception after ``delay`` sim-seconds."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, delay, priority)
        return self

    # -- internals ------------------------------------------------------
    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` sim-seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._schedule(self, delay, NORMAL)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator yields :class:`Event` instances.  When a yielded event
    fires, the generator resumes with the event's value; if the event
    failed, its exception is thrown into the generator (which may catch it).
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once the sim starts processing events.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        evt = Event(self.sim)
        evt.callbacks.append(self._resume_interrupt)
        evt.succeed(cause, priority=URGENT)

    # -- internals ------------------------------------------------------
    def _resume_interrupt(self, evt: Event) -> None:
        if self._triggered:  # finished in the meantime: drop silently
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._waiting_on = None
        self._step(throw=Interrupt(evt._value))

    def _resume(self, evt: Event) -> None:
        self._waiting_on = None
        if evt._exc is not None:
            self._step(throw=evt._exc)
        else:
            self._step(value=evt._value)

    def _step(self, value: Any = None, throw: Optional[BaseException] = None) -> None:
        self.sim._active_process = self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            if not self.callbacks:
                # Nobody is watching this process: crash the simulation
                # rather than swallow the error.
                self.sim._crash(exc)
                self._triggered = True
                return
            self.fail(exc, priority=URGENT)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event"
            )
        if target.callbacks is None:
            # Already fired: resume immediately via a zero-delay event to
            # keep the stack shallow and ordering deterministic.
            evt = Event(self.sim)
            evt.callbacks.append(self._resume)
            if target._exc is not None:
                evt.fail(target._exc, priority=URGENT)
            else:
                evt.succeed(target._value, priority=URGENT)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for evt in self._events:
            if evt.callbacks is None:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _check(self, evt: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when all child events have fired; value is the list of values."""

    __slots__ = ()

    def _check(self, evt: Event) -> None:
        if self._triggered:
            return
        if evt._exc is not None:
            self.fail(evt._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ()

    def _check(self, evt: Event) -> None:
        if self._triggered:
            return
        if evt._exc is not None:
            self.fail(evt._exc)
            return
        self.succeed(evt._value)


class Simulator:
    """Event loop owning a virtual clock.

    Parameters
    ----------
    start:
        Initial value of the virtual clock (seconds).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._crashed: Optional[BaseException] = None
        #: Events popped and fired so far.  A plain int, always maintained:
        #: the kernel is the hottest loop in the repo, so telemetry reads
        #: this after the fact instead of hooking every step.
        self.events_processed = 0
        #: Optional deterministic profiler (duck-typed against
        #: :class:`repro.obs.prof.Profiler`: ``event_begin(event)`` /
        #: ``event_end()``).  ``None`` keeps the hot path at one attribute
        #: load and an ``is None`` branch per event — the kernel never
        #: imports :mod:`repro.obs`.
        self.profiler: Optional[Any] = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction ---------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    # Backwards-friendly alias mirroring SimPy.
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def _crash(self, exc: BaseException) -> None:
        self._crashed = exc

    # -- running ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no events scheduled")
        time, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = time
        self.events_processed += 1
        prof = self.profiler
        if prof is None:
            event._fire()
        else:
            prof.event_begin(event)
            try:
                event._fire()
            finally:
                prof.event_end()
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or event fires.

        Returns the value of ``until`` when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            return stop.value
        horizon = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if until is not None and horizon > self._now:
            self._now = horizon
        return None
