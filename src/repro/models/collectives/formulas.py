"""Closed-form collective predictions per model — the paper's Table II.

================  =====================================================
Model             Linear scatter / gather prediction
================  =====================================================
hom. Hockney      sequential ``(n-1)(a + bM)`` or parallel ``a + bM``
het. Hockney      sequential ``sum (a_ri + b_ri M)`` or parallel ``max``
LogGP             ``L + 2o + (n-1)(M-1)G + (n-2)g``
PLogP             ``L + (n-1) g(M)``
extended LMO      scatter: formula (4); gather: formula (5) with the
                  empirical M1/M2 thresholds and escalation statistics
================  =====================================================

Traditional models predict gather and scatter identically ("Because of
the design of the Hockney model, the same formulas can be applied to the
estimation of linear gather" — Sec. II); only the LMO model distinguishes
them.

Binomial predictions use the recursion (1)/(2) via
:func:`~repro.models.collectives.tree_eval.predict_tree_time`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import singledispatch
from typing import Optional, Sequence

import numpy as np

from repro.models.base import ArrayLike, validate_nbytes, validate_nbytes_batch, validate_rank
from repro.models.collectives.tree_eval import predict_tree_time, predict_tree_time_batch
from repro.models.collectives.trees import CommTree, binomial_tree, flat_tree
from repro.models.hockney import HeterogeneousHockneyModel, HockneyModel
from repro.models.loggp import LogGPModel
from repro.models.logp import LogPModel
from repro.models.lmo import LMOModel
from repro.models.lmo_extended import ExtendedLMOModel
from repro.models.plogp import PLogPModel

__all__ = [
    "GatherPrediction",
    "predict_linear_scatter",
    "predict_linear_scatter_sweep",
    "predict_linear_scatterv",
    "predict_linear_gather",
    "predict_linear_gather_sweep",
    "predict_linear_gatherv",
    "predict_binomial_scatter",
    "predict_binomial_scatter_sweep",
    "predict_binomial_scatterv",
    "predict_binomial_gather",
    "predict_binomial_gather_sweep",
    "lmo_serial_parallel_split",
    "lmo_serial_parallel_split_batch",
]

SEQUENTIAL = "sequential"
PARALLEL = "parallel"


@dataclass(frozen=True)
class GatherPrediction:
    """LMO's linear-gather prediction (paper formula (5)).

    ``base`` is the deterministic branch value; in the *medium* regime the
    model additionally reports the escalation probability and magnitude —
    the empirical part of the LMO model.
    """

    base: float
    regime: str
    escalation_probability: float = 0.0
    escalation_value: float = 0.0

    @property
    def expected(self) -> float:
        """Expected execution time including expected escalation cost."""
        return self.base + self.escalation_probability * self.escalation_value

    def __float__(self) -> float:  # pragma: no cover - convenience
        return float(self.expected)


def _participants(model, root: int, participants: Optional[Sequence[int]]) -> list[int]:
    ranks = list(range(model.n)) if participants is None else list(participants)
    if root not in ranks:
        raise ValueError(f"root {root} not among participants {ranks}")
    if len(set(ranks)) != len(ranks):
        raise ValueError("duplicate participants")
    return ranks


# ===================================================================== scatter
@singledispatch
def predict_linear_scatter(
    model,
    nbytes: float,
    root: int = 0,
    participants: Optional[Sequence[int]] = None,
    assumption: str = SEQUENTIAL,
) -> float:
    """Predicted linear-scatter time for ``nbytes`` blocks (Table II)."""
    raise TypeError(f"no linear-scatter formula for {type(model).__name__}")


@predict_linear_scatter.register
def _(model: HockneyModel, nbytes, root=0, participants=None, assumption=SEQUENTIAL):
    validate_nbytes(nbytes)
    ranks = _participants(model, root, participants)
    per_message = model.alpha + model.beta * nbytes
    if assumption == SEQUENTIAL:
        return (len(ranks) - 1) * per_message
    if assumption == PARALLEL:
        return per_message
    raise ValueError(f"unknown assumption {assumption!r}")


@predict_linear_scatter.register
def _(model: HeterogeneousHockneyModel, nbytes, root=0, participants=None,
      assumption=SEQUENTIAL):
    validate_nbytes(nbytes)
    ranks = _participants(model, root, participants)
    terms = [model.p2p_time(root, i, nbytes) for i in ranks if i != root]
    if assumption == SEQUENTIAL:
        return float(sum(terms))
    if assumption == PARALLEL:
        return float(max(terms))
    raise ValueError(f"unknown assumption {assumption!r}")


@predict_linear_scatter.register
def _(model: LogGPModel, nbytes, root=0, participants=None, assumption=SEQUENTIAL):
    validate_nbytes(nbytes)
    n = len(_participants(model, root, participants))
    return (
        model.L
        + 2 * model.o
        + (n - 1) * max(nbytes - 1, 0) * model.G
        + (n - 2) * model.g
    )


@predict_linear_scatter.register
def _(model: LogPModel, nbytes, root=0, participants=None, assumption=SEQUENTIAL):
    validate_nbytes(nbytes)
    n = len(_participants(model, root, participants))
    # LogP's large-message story: (n-1) packet trains back to back.
    packets = model.packets(nbytes)
    return model.L + 2 * model.o + ((n - 1) * packets - 1) * model.g


@predict_linear_scatter.register
def _(model: PLogPModel, nbytes, root=0, participants=None, assumption=SEQUENTIAL):
    validate_nbytes(nbytes)
    n = len(_participants(model, root, participants))
    return model.L + (n - 1) * model.g(nbytes)


@predict_linear_scatter.register
def _(model: LMOModel, nbytes, root=0, participants=None, assumption=SEQUENTIAL):
    validate_nbytes(nbytes)
    ranks = _participants(model, root, participants)
    others = [i for i in ranks if i != root]
    serial = len(others) * (model.C[root] + nbytes * model.t[root])
    parallel = max(
        nbytes / model.beta[root, i] + model.C[i] + nbytes * model.t[i] for i in others
    )
    return float(serial + parallel)


@predict_linear_scatter.register
def _(model: ExtendedLMOModel, nbytes, root=0, participants=None, assumption=SEQUENTIAL):
    validate_nbytes(nbytes)
    ranks = _participants(model, root, participants)
    others = [i for i in ranks if i != root]
    serial = len(others) * model.send_cost(root, nbytes)
    parallel = max(model.wire_and_remote_cost(root, i, nbytes) for i in others)
    return float(serial + parallel)


# ====================================================================== gather
def predict_linear_gather(
    model,
    nbytes: float,
    root: int = 0,
    participants: Optional[Sequence[int]] = None,
    assumption: str = SEQUENTIAL,
):
    """Predicted linear-gather time (Table II).

    Traditional models return the same value as scatter (a float); the
    extended LMO model returns a :class:`GatherPrediction` implementing
    formula (5), including the empirical medium-regime statistics.
    """
    if isinstance(model, ExtendedLMOModel):
        return _lmo_gather(model, nbytes, root, participants)
    return predict_linear_scatter(model, nbytes, root, participants, assumption)


def _lmo_gather(model: ExtendedLMOModel, nbytes, root, participants) -> GatherPrediction:
    validate_nbytes(nbytes)
    ranks = _participants(model, root, participants)
    others = [i for i in ranks if i != root]
    serial = len(others) * model.send_cost(root, nbytes)
    # Direction matters: senders i feed the root, so each parallel term
    # carries the *sender's* processor cost C_i + M t_i plus the wire.
    terms = [
        float(
            model.L[root, i]
            + nbytes / model.beta[root, i]
            + model.C[i]
            + nbytes * model.t[i]
        )
        for i in others
    ]
    irr = model.gather_irregularity
    if irr is None:
        return GatherPrediction(base=serial + max(terms), regime="small")
    regime = irr.regime(nbytes)
    if regime == "large":
        return GatherPrediction(base=serial + sum(terms), regime=regime)
    prediction = GatherPrediction(
        base=serial + max(terms),
        regime=regime,
        escalation_probability=irr.escalation_probability(nbytes),
        escalation_value=irr.escalation_value if regime == "medium" else 0.0,
    )
    return prediction


# ==================================================================== binomial
def lmo_serial_parallel_split(model: ExtendedLMOModel):
    """The extended-LMO cost split used by tree predictions."""

    def serial(i: int, _j: int, nbytes: float) -> float:
        return model.send_cost(i, nbytes)

    def parallel(i: int, j: int, nbytes: float) -> float:
        return model.wire_and_remote_cost(i, j, nbytes)

    return serial, parallel


def lmo_serial_parallel_split_batch(model: ExtendedLMOModel):
    """Array-valued :func:`lmo_serial_parallel_split` for sweep evaluation."""

    def serial(i: int, _j: int, nbytes):
        return model.send_cost_batch(i, nbytes)

    def parallel(i: int, j: int, nbytes):
        return model.wire_and_remote_cost_batch(i, j, nbytes)

    return serial, parallel


def predict_binomial_scatter(
    model,
    nbytes: float,
    root: int = 0,
    n: Optional[int] = None,
    tree: Optional[CommTree] = None,
) -> float:
    """Binomial scatter prediction via the paper's recursion (1)/(2).

    Traditional models charge whole point-to-point times serially along
    the tree; the extended LMO model serializes only sender CPU costs.
    """
    validate_nbytes(nbytes)
    if tree is None:
        tree = binomial_tree(model.n if n is None else n, root)
    if isinstance(model, ExtendedLMOModel):
        serial, parallel = lmo_serial_parallel_split(model)
        return predict_tree_time(tree, nbytes, serial, parallel)
    return predict_tree_time(
        tree, nbytes, serial_cost=model.p2p_time, parallel_cost=lambda i, j, b: 0.0
    )


def predict_binomial_gather(
    model,
    nbytes: float,
    root: int = 0,
    n: Optional[int] = None,
    tree: Optional[CommTree] = None,
) -> float:
    """Binomial gather: identical recursion over the reversed tree.

    The deterministic branch of the paper's formula (1) is symmetric under
    time reversal (sums stay sums, maxima stay maxima), so the same
    evaluation applies; for the extended LMO model the serialized part is
    charged on the *receiving* side of each arc.
    """
    validate_nbytes(nbytes)
    if tree is None:
        tree = binomial_tree(model.n if n is None else n, root)
    if isinstance(model, ExtendedLMOModel):
        # Reverse the roles: the parent's CPU serializes receives.
        def serial(i: int, _j: int, nbytes_: float) -> float:
            return model.send_cost(i, nbytes_)

        def parallel(i: int, j: int, nbytes_: float) -> float:
            return float(
                model.L[i, j]
                + nbytes_ / model.beta[i, j]
                + model.C[j]
                + nbytes_ * model.t[j]
            )

        return predict_tree_time(tree, nbytes, serial, parallel)
    return predict_binomial_scatter(model, nbytes, root=root, n=n, tree=tree)


# ==================================================================== scatterv
@singledispatch
def predict_linear_scatterv(
    model,
    counts: Sequence[float],
    root: int = 0,
) -> float:
    """Predicted linear-scatterv time for per-rank byte ``counts``.

    The natural generalization of the Table II linear formulas to
    variable block sizes (the basis of heterogeneous data partitioning):
    the root's serial part accumulates every non-root block, the parallel
    part is the max over per-destination wire+receiver terms.
    """
    raise TypeError(f"no linear-scatterv formula for {type(model).__name__}")


def _check_counts(model, counts: Sequence[float], root: int) -> list[float]:
    counts = list(counts)
    if len(counts) != model.n:
        raise ValueError(f"counts must have {model.n} entries")
    if any(c < 0 for c in counts):
        raise ValueError("negative counts")
    validate_rank(model.n, root)
    return counts


@predict_linear_scatterv.register
def _(model: ExtendedLMOModel, counts, root=0):
    counts = _check_counts(model, counts, root)
    others = [i for i in range(model.n) if i != root and counts[i] > 0]
    if not others:
        return 0.0
    serial = sum(model.send_cost(root, counts[i]) for i in others)
    parallel = max(model.wire_and_remote_cost(root, i, counts[i]) for i in others)
    return float(serial + parallel)


@predict_linear_scatterv.register
def _(model: HeterogeneousHockneyModel, counts, root=0):
    counts = _check_counts(model, counts, root)
    return float(
        sum(
            model.p2p_time(root, i, counts[i])
            for i in range(model.n)
            if i != root and counts[i] > 0
        )
    )


@predict_linear_scatterv.register
def _(model: HockneyModel, counts, root=0):
    counts = _check_counts(model, counts, root)
    return float(
        sum(
            model.alpha + model.beta * counts[i]
            for i in range(model.n)
            if i != root and counts[i] > 0
        )
    )


def predict_linear_gatherv(model, counts: Sequence[float], root: int = 0) -> float:
    """Predicted linear-gatherv time (deterministic branch).

    For the extended LMO model the per-sender processor costs enter the
    parallel term; traditional models reuse the scatterv formula, exactly
    as their fixed-size gather reuses scatter.
    """
    if isinstance(model, ExtendedLMOModel):
        counts = _check_counts(model, counts, root)
        others = [i for i in range(model.n) if i != root and counts[i] > 0]
        if not others:
            return 0.0
        serial = sum(model.send_cost(root, counts[i]) for i in others)
        parallel = max(
            float(
                model.L[root, i]
                + counts[i] / model.beta[root, i]
                + model.C[i]
                + counts[i] * model.t[i]
            )
            for i in others
        )
        return float(serial + parallel)
    return predict_linear_scatterv(model, counts, root)


def predict_linear_pipelined(model: ExtendedLMOModel, nbytes: float, root: int = 0) -> float:
    """Pipeline-exact linear scatter for LMO (flat tree through the
    generic evaluator) — a refinement of formula (4) that accounts for
    early transfers overlapping later send slots."""
    serial, parallel = lmo_serial_parallel_split(model)
    return predict_tree_time(flat_tree(model.n, root), nbytes, serial, parallel)


def predict_binomial_scatterv(
    model: ExtendedLMOModel,
    counts: Sequence[float],
    root: int = 0,
    tree=None,
) -> float:
    """Binomial scatterv: the recursion (1) with per-sub-tree byte sums."""
    from repro.models.collectives.trees import binomial_tree

    counts = _check_counts(model, counts, root)
    if tree is None:
        tree = binomial_tree(model.n, root)

    volume = {
        rank: sum(counts[r] for r in tree.subtree_ranks(rank))
        for rank in range(model.n)
    }

    def serial(i: int, j: int, _b: float) -> float:
        return model.send_cost(i, volume[j]) if volume[j] > 0 else 0.0

    def parallel(i: int, j: int, _b: float) -> float:
        return model.wire_and_remote_cost(i, j, volume[j]) if volume[j] > 0 else 0.0

    return predict_tree_time(tree, 1.0, serial, parallel)


# ====================================================================== sweeps
# The vectorized prediction engine: each *_sweep function evaluates the
# matching scalar formula over a whole array of message sizes in one pass
# of NumPy ops.  Sums and maxima over participants accumulate in the same
# left-to-right order as the scalar code, so sweep values match the
# element-wise scalar loop bit for bit.
@singledispatch
def predict_linear_scatter_sweep(
    model,
    sizes: ArrayLike,
    root: int = 0,
    participants: Optional[Sequence[int]] = None,
    assumption: str = SEQUENTIAL,
) -> np.ndarray:
    """Vectorized :func:`predict_linear_scatter` over an array of sizes."""
    raise TypeError(f"no linear-scatter formula for {type(model).__name__}")


@predict_linear_scatter_sweep.register
def _(model: HockneyModel, sizes, root=0, participants=None, assumption=SEQUENTIAL):
    nb = validate_nbytes_batch(sizes)
    ranks = _participants(model, root, participants)
    per_message = model.alpha + model.beta * nb
    if assumption == SEQUENTIAL:
        return (len(ranks) - 1) * per_message
    if assumption == PARALLEL:
        return per_message.copy()
    raise ValueError(f"unknown assumption {assumption!r}")


@predict_linear_scatter_sweep.register
def _(model: HeterogeneousHockneyModel, sizes, root=0, participants=None,
      assumption=SEQUENTIAL):
    nb = validate_nbytes_batch(sizes)
    ranks = _participants(model, root, participants)
    others = [i for i in ranks if i != root]
    terms = [model.p2p_time_batch(root, i, nb) for i in others]
    if assumption == SEQUENTIAL:
        total = np.zeros(nb.shape)
        for term in terms:
            total = total + term
        return total
    if assumption == PARALLEL:
        best = terms[0]
        for term in terms[1:]:
            best = np.maximum(best, term)
        return np.broadcast_to(best, nb.shape).copy()
    raise ValueError(f"unknown assumption {assumption!r}")


@predict_linear_scatter_sweep.register
def _(model: LogGPModel, sizes, root=0, participants=None, assumption=SEQUENTIAL):
    nb = validate_nbytes_batch(sizes)
    n = len(_participants(model, root, participants))
    return (
        model.L
        + 2 * model.o
        + (n - 1) * np.maximum(nb - 1, 0) * model.G
        + (n - 2) * model.g
    )


@predict_linear_scatter_sweep.register
def _(model: LogPModel, sizes, root=0, participants=None, assumption=SEQUENTIAL):
    nb = validate_nbytes_batch(sizes)
    n = len(_participants(model, root, participants))
    packets = model.packets_batch(nb)
    return model.L + 2 * model.o + ((n - 1) * packets - 1) * model.g


@predict_linear_scatter_sweep.register
def _(model: PLogPModel, sizes, root=0, participants=None, assumption=SEQUENTIAL):
    nb = validate_nbytes_batch(sizes)
    n = len(_participants(model, root, participants))
    return model.L + (n - 1) * model.g.batch(nb)


@predict_linear_scatter_sweep.register
def _(model: LMOModel, sizes, root=0, participants=None, assumption=SEQUENTIAL):
    nb = validate_nbytes_batch(sizes)
    ranks = _participants(model, root, participants)
    others = [i for i in ranks if i != root]
    serial = len(others) * (model.C[root] + nb * model.t[root])
    terms = [nb / model.beta[root, i] + model.C[i] + nb * model.t[i] for i in others]
    parallel = terms[0]
    for term in terms[1:]:
        parallel = np.maximum(parallel, term)
    return serial + parallel


@predict_linear_scatter_sweep.register
def _(model: ExtendedLMOModel, sizes, root=0, participants=None, assumption=SEQUENTIAL):
    nb = validate_nbytes_batch(sizes)
    ranks = _participants(model, root, participants)
    others = [i for i in ranks if i != root]
    serial = len(others) * model.send_cost_batch(root, nb)
    parallel = model.wire_and_remote_cost_batch(root, others[0], nb)
    for i in others[1:]:
        parallel = np.maximum(parallel, model.wire_and_remote_cost_batch(root, i, nb))
    return serial + parallel


def predict_linear_gather_sweep(
    model,
    sizes: ArrayLike,
    root: int = 0,
    participants: Optional[Sequence[int]] = None,
    assumption: str = SEQUENTIAL,
) -> np.ndarray:
    """Vectorized :func:`predict_linear_gather` over an array of sizes.

    Returns *expected* times: for the extended LMO model each element is
    ``float(GatherPrediction)`` — the deterministic branch of formula (5)
    for its regime plus the expected escalation cost in the medium regime.
    """
    if isinstance(model, ExtendedLMOModel):
        return _lmo_gather_sweep(model, sizes, root, participants)
    return predict_linear_scatter_sweep(model, sizes, root, participants, assumption)


def _lmo_gather_sweep(model: ExtendedLMOModel, sizes, root, participants) -> np.ndarray:
    nb = validate_nbytes_batch(sizes)
    ranks = _participants(model, root, participants)
    others = [i for i in ranks if i != root]
    serial = len(others) * model.send_cost_batch(root, nb)
    terms = [
        model.L[root, i] + nb / model.beta[root, i] + model.C[i] + nb * model.t[i]
        for i in others
    ]
    parallel = terms[0]
    total = np.zeros(nb.shape)
    for term in terms[1:]:
        parallel = np.maximum(parallel, term)
    for term in terms:
        total = total + term
    irr = model.gather_irregularity
    if irr is None:
        return np.broadcast_to(serial + parallel, nb.shape).copy()
    base = np.where(nb > irr.m2, serial + total, serial + parallel)
    return base + irr.escalation_probability_batch(nb) * irr.escalation_value


def predict_binomial_scatter_sweep(
    model,
    sizes: ArrayLike,
    root: int = 0,
    n: Optional[int] = None,
    tree: Optional[CommTree] = None,
) -> np.ndarray:
    """Vectorized :func:`predict_binomial_scatter` over an array of sizes."""
    nb = validate_nbytes_batch(sizes)
    if tree is None:
        tree = binomial_tree(model.n if n is None else n, root)
    if isinstance(model, ExtendedLMOModel):
        serial, parallel = lmo_serial_parallel_split_batch(model)
        return predict_tree_time_batch(tree, nb, serial, parallel)
    return predict_tree_time_batch(
        tree, nb,
        serial_cost=model.p2p_time_batch,
        parallel_cost=lambda i, j, b: np.zeros(np.shape(b)),
    )


def predict_binomial_gather_sweep(
    model,
    sizes: ArrayLike,
    root: int = 0,
    n: Optional[int] = None,
    tree: Optional[CommTree] = None,
) -> np.ndarray:
    """Vectorized :func:`predict_binomial_gather` over an array of sizes."""
    if isinstance(model, ExtendedLMOModel):
        nb = validate_nbytes_batch(sizes)
        if tree is None:
            tree = binomial_tree(model.n if n is None else n, root)
        serial, parallel = lmo_serial_parallel_split_batch(model)
        return predict_tree_time_batch(tree, nb, serial, parallel)
    return predict_binomial_scatter_sweep(model, sizes, root=root, n=n, tree=tree)
