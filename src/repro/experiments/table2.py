"""Table II: the linear scatter/gather prediction formulas per model.

Rendered symbolically (as the paper prints them) and evaluated
numerically with the estimated parameters at representative sizes, which
is how the formulas are actually *used*.  Also asserts the structural
claims: traditional models predict gather == scatter; only LMO has a
distinct gather formula with the M1/M2 branches.
"""

from __future__ import annotations

from repro.experiments.common import (
    KB,
    ExperimentResult,
    Series,
    get_model_suite,
)
from repro.models import GatherPrediction, predict_linear_gather, predict_linear_scatter

__all__ = ["run", "FORMULAS"]

#: The paper's Table II, verbatim (in ASCII).
FORMULAS = {
    "het-Hockney": {
        "scatter": "sum_{i != r} (alpha_ri + beta_ri * M)",
        "gather": "same as scatter",
    },
    "LogGP": {
        "scatter": "L + 2o + (n-1)(M-1)G + (n-2)g",
        "gather": "same as scatter",
    },
    "PLogP": {
        "scatter": "L + (n-1) g(M)",
        "gather": "same as scatter",
    },
    "LMO": {
        "scatter": "(n-1)(C_r + M t_r) + max_{i != r} (L_ri + C_i + M (1/beta_ri + t_i))",
        "gather": (
            "(n-1)(C_r + M t_r) + { max_{i != r}(...)  if M < M1 ;"
            "  sum_{i != r}(...)  if M > M2 }"
        ),
    },
}

SAMPLE_SIZES = (1 * KB, 32 * KB, 160 * KB)


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Table II: formulas + numeric evaluation."""
    suite = get_model_suite(seed=seed, quick=quick)
    models = {
        "het-Hockney": suite.hockney_het,
        "LogGP": suite.loggp,
        "PLogP": suite.plogp,
        "LMO": suite.lmo,
    }
    lines = []
    for name, formulas in FORMULAS.items():
        lines.append(f"{name}:")
        lines.append(f"  scatter: {formulas['scatter']}")
        lines.append(f"  gather:  {formulas['gather']}")
    series = []
    for name, model in models.items():
        scatter_vals, gather_vals = [], []
        for m in SAMPLE_SIZES:
            scatter_vals.append(float(predict_linear_scatter(model, m)))
            gather = predict_linear_gather(model, m)
            gather_vals.append(
                gather.expected if isinstance(gather, GatherPrediction) else float(gather)
            )
        series.append(Series(f"{name}-scatter", SAMPLE_SIZES, tuple(scatter_vals)))
        series.append(Series(f"{name}-gather", SAMPLE_SIZES, tuple(gather_vals)))

    result = ExperimentResult(
        experiment_id="table2",
        title="Prediction formulas for linear scatter and gather",
        series=series,
        text="\n".join(lines),
    )
    irr = suite.lmo.gather_irregularity
    assert irr is not None
    traditional_same = all(
        result.get(f"{name}-scatter").values == result.get(f"{name}-gather").values
        for name in ("het-Hockney", "LogGP", "PLogP")
    )
    lmo_pred_large = predict_linear_gather(suite.lmo, 160 * KB)
    assert isinstance(lmo_pred_large, GatherPrediction)
    result.checks = {
        "traditional models predict gather identically to scatter": traditional_same,
        "LMO's gather differs from its scatter": (
            result.get("LMO-gather").values != result.get("LMO-scatter").values
        ),
        "LMO's gather uses the sum branch above M2": lmo_pred_large.regime == "large",
        "LMO reports escalation statistics in the medium region": (
            predict_linear_gather(suite.lmo, 32 * KB).escalation_probability > 0
        ),
    }
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
