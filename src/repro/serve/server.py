"""The always-on prediction daemon.

:class:`PredictionServer` listens on TCP or a Unix socket, speaks the
NDJSON protocol of :mod:`repro.serve.protocol`, and routes queued verbs
onto the stateful workers of :mod:`repro.serve.service`:

* ``predict`` / ``predict_many`` / ``optimize`` go to one of
  ``config.workers`` :class:`PredictWorker` shards, chosen by the target
  model's content fingerprint — one model's requests always meet in the
  same queue, where concurrent ``predict`` calls coalesce into one
  vectorized evaluation;
* ``estimate`` goes to the single :class:`EstimateWorker` (bounded to a
  few queued estimations; estimation runs in a thread);
* ``health`` / ``obs`` / ``drain`` are answered inline by the server.

Backpressure is explicit: a full worker queue rejects the request with
the ``overloaded`` error code instead of buffering.  Lifecycle:

* ``SIGHUP`` reloads every file-backed model and atomically swaps the
  registry — in-flight and queued requests keep the model object they
  were dispatched with, so a reload drops nothing;
* ``SIGTERM`` (or the ``drain`` verb) drains: no new work is accepted,
  everything queued completes and is answered, workers and the listener
  shut down, and :meth:`serve_forever` returns.

Run it with ``repro serve`` (see ``docs/service.md``) or embed it::

    config = ServeConfig(port=0, models={"lmo": "/path/model.json"})
    server = PredictionServer(config)
    await server.start()
    print(server.endpoint)
    await server.serve_forever()
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro import api
from repro import io as _io
from repro.api.errors import (
    InvalidRequest,
    ModelNotLoaded,
    Overloaded,
    error_payload,
)
from repro.api.schema import SCHEMA_VERSION
from repro.obs import flight as _flight
from repro.obs import runtime as _obs
from repro.obs import slo as _slo
from repro.obs import timeline as _timeline
from repro.obs import trace as _trace
from repro.obs.insight.alerts import AlertEngine
from repro.predict_service import model_fingerprint
from repro.serve import protocol
from repro.serve.service import (
    CREATED,
    DRAINING,
    RUNNING,
    STOPPED,
    EstimateWorker,
    PredictWorker,
    StatefulWorker,
    WorkItem,
)

__all__ = ["ModelRegistry", "PredictionServer", "ServeConfig", "run_server", "serve"]


@dataclass
class ServeConfig:
    """Everything the daemon needs to come up."""

    #: TCP bind address; ignored when ``unix_path`` is set.
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it from ``endpoint``).
    port: int = 0
    #: Serve on a Unix socket at this path instead of TCP.
    unix_path: Optional[str] = None
    #: name -> model JSON path (reloadable on SIGHUP) or model object.
    models: Mapping[str, Any] = field(default_factory=dict)
    #: Predict worker shards.
    workers: int = 2
    #: Seconds the predict shard waits after the first request for
    #: concurrent ones to coalesce with (0 disables batching).
    batch_window: float = 0.002
    #: Per-predict-worker queue bound; beyond it: ``overloaded``.
    queue_limit: int = 64
    #: Queued estimations bound (each can take minutes).
    estimate_queue_limit: int = 4
    #: Enable process telemetry at startup (the ``obs`` verb's source).
    telemetry: bool = True
    #: Attach a timeline store (windowed metric history driving the
    #: ``slo_burn_rate`` alerts and the dashboard's time-series panels).
    #: Requires ``telemetry``; ticks ride the request path via pulse().
    timeline: bool = True
    #: Flight-recorder spill file: the bounded black box re-mirrored at
    #: most every ``flight_sync_interval`` seconds, surviving kill -9.
    #: None falls back to the REPRO_FLIGHT_SPILL environment variable
    #: (how the supervisor assigns one per child incarnation).
    flight_spill: Optional[str] = None
    #: Directory for durable flight dumps (alert fires, exceptions).
    flight_dump_dir: Optional[str] = None
    #: Minimum seconds between spill re-mirrors (0 syncs every pulse —
    #: deterministic, for tests).
    flight_sync_interval: float = 0.25
    #: Crash-safe registry snapshot: every runtime-registered model is
    #: persisted here (atomic fsynced write) and restored at startup, so
    #: a ``kill -9`` + restart recovers the estimate overlay.
    snapshot_path: Optional[str] = None
    #: Completed idempotency keys remembered for retry deduplication.
    idempotency_capacity: int = 1024


#: Envelope kind of the registry snapshot file.
_SNAPSHOT_KIND = "serve_registry_snapshot"
_SNAPSHOT_VERSION = 1


class ModelRegistry:
    """Named models with atomic reload and a crash-safe overlay snapshot.

    ``load()`` re-reads every file-backed source into a *new* dict and
    swaps it in one assignment — readers either see the old set or the
    new one, never a half-loaded mix.  Models registered at runtime (the
    ``estimate`` verb) live in a separate overlay that survives reloads;
    with a ``snapshot_path`` the overlay is also persisted on every
    registration (write-temp-fsync-rename, the journal discipline of
    :func:`repro.io.atomic_write_text`) and restored by
    :meth:`restore`, so a ``kill -9`` loses nothing that was ever
    acknowledged as registered.
    """

    def __init__(self, sources: Optional[Mapping[str, Any]] = None,
                 snapshot_path: Optional[str] = None) -> None:
        self._sources = dict(sources or {})
        self._dynamic: dict[str, Any] = {}
        self._models: dict[str, Any] = {}
        self.snapshot_path = snapshot_path

    def load(self) -> int:
        """(Re)load every source; returns the number of models served."""
        loaded = {
            name: api.load_model(source) if isinstance(source, str) else source
            for name, source in self._sources.items()
        }
        loaded.update(self._dynamic)
        self._models = loaded  # atomic swap
        return len(loaded)

    def register(self, name: str, model: Any) -> None:
        """Add a runtime-estimated model (copy-on-write, reload-proof).

        With a snapshot path the overlay hits disk *before* the caller
        sees the registration — an acknowledged ``registered_as`` is
        durable against a hard kill the instant the reply is sent.
        """
        self._dynamic[name] = model
        self._persist()
        merged = dict(self._models)
        merged[name] = model
        self._models = merged

    # -- crash-safe overlay snapshot ----------------------------------------------
    def _persist(self) -> None:
        if self.snapshot_path is None:
            return
        doc = {
            "kind": _SNAPSHOT_KIND,
            "schema_version": _SNAPSHOT_VERSION,
            "models": {
                name: json.loads(_io.dumps(model))
                for name, model in sorted(self._dynamic.items())
            },
        }
        _io.atomic_write_text(self.snapshot_path, json.dumps(doc, indent=2))

    def restore(self) -> int:
        """Rehydrate the overlay from the snapshot file (startup path).

        Returns the number of models restored; in-memory registrations
        win over snapshot entries of the same name.  A missing file is a
        fresh start; a corrupt one (impossible under the atomic-write
        discipline, but disks lie) is reported and skipped rather than
        wedging startup into a crash loop.
        """
        if self.snapshot_path is None or not os.path.exists(self.snapshot_path):
            return 0
        try:
            with open(self.snapshot_path) as handle:
                doc = json.load(handle)
            if not isinstance(doc, dict) or doc.get("kind") != _SNAPSHOT_KIND:
                raise ValueError(f"not a {_SNAPSHOT_KIND} document")
            if doc.get("schema_version") != _SNAPSHOT_VERSION:
                raise ValueError(
                    f"unsupported snapshot version {doc.get('schema_version')!r}"
                )
            restored = {
                str(name): _io.loads(json.dumps(envelope))
                for name, envelope in doc.get("models", {}).items()
            }
        except (OSError, ValueError) as exc:
            tel = _obs.ACTIVE
            if tel is not None:
                tel.events.error("service_snapshot_unreadable",
                                 path=self.snapshot_path, error=str(exc))
            return 0
        count = 0
        added: dict[str, Any] = {}
        for name, model in restored.items():
            if name not in self._dynamic:
                self._dynamic[name] = model
                added[name] = model
                count += 1
        if added:
            merged = dict(self._models)
            merged.update(added)
            self._models = merged  # atomic swap, same as load()
        return count

    def get(self, name: Any) -> Any:
        if not isinstance(name, str):
            raise InvalidRequest(
                f"params.model must be a string model name, "
                f"got {type(name).__name__}"
            )
        try:
            return self._models[name]
        except KeyError:
            raise ModelNotLoaded(
                f"no model named {name!r}; loaded: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._models)


class PredictionServer:
    """The daemon: listener + worker fleet + registry + lifecycle."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.registry = ModelRegistry(config.models,
                                      snapshot_path=config.snapshot_path)
        self.state = CREATED
        self.requests_total = 0
        #: idempotency key -> the future answering that logical call.
        #: Retried requests attach to it instead of re-executing.
        self._idempotent: "OrderedDict[str, asyncio.Future]" = OrderedDict()
        self._workers: list[PredictWorker] = []
        self._estimator: Optional[EstimateWorker] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._idle: asyncio.Event
        self._stopped: asyncio.Event
        self._alerts = AlertEngine()
        self._started_at = 0.0
        self._signals: list[int] = []
        self._drain_task: Optional[asyncio.Task] = None
        #: Trace context handed down by a parent process (the supervisor)
        #: via REPRO_TRACEPARENT; stamps lifecycle events so a restart
        #: correlates with the supervisor's timeline.
        self._boot_trace: Optional[_trace.TraceContext] = None

    # -- lifecycle ----------------------------------------------------------------
    async def start(self) -> None:
        if self.state != CREATED:
            raise RuntimeError(f"server already started ({self.state})")
        if self.config.telemetry:
            _obs.enable()
            if self.config.timeline:
                _timeline.enable_timeline()
            spill = self.config.flight_spill or os.environ.get(_flight.ENV_SPILL)
            if spill or self.config.flight_dump_dir:
                _flight.enable_flight(
                    process="serve",
                    spill_path=spill or None,
                    dump_dir=self.config.flight_dump_dir,
                    sync_interval=self.config.flight_sync_interval,
                )
        restored = self.registry.restore()
        count = self.registry.load()
        if restored:
            tel0 = _obs.ACTIVE
            if tel0 is not None:
                tel0.events.info("service_snapshot_restored", models=restored,
                                 path=self.config.snapshot_path)
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._workers = [
            PredictWorker(f"predict-{i}", self.config.queue_limit,
                          self.config.batch_window)
            for i in range(max(1, self.config.workers))
        ]
        self._estimator = EstimateWorker(
            "estimate", self.registry, self.config.estimate_queue_limit
        )
        for worker in self._all_workers():
            worker.start()
        if self.config.unix_path is not None:
            if os.path.exists(self.config.unix_path):
                os.unlink(self.config.unix_path)  # stale socket from a crash
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.unix_path,
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port,
                limit=protocol.MAX_LINE_BYTES,
            )
        self._install_signal_handlers()
        self._started_at = time.monotonic()
        self.state = RUNNING
        self._boot_trace = _trace.from_environ()
        tel = _obs.ACTIVE
        if tel is not None:
            fields: dict[str, Any] = {}
            if self._boot_trace is not None:
                fields["trace_id"] = self._boot_trace.trace_id
            tel.events.info(
                "service_started", endpoint=self.endpoint, models=count,
                workers=len(self._workers), **fields,
            )

    @property
    def endpoint(self) -> str:
        """``host:port`` (the *bound* port, also for ``port=0``) or the
        Unix socket path."""
        if self.config.unix_path is not None:
            return self.config.unix_path
        if self._server is None or not self._server.sockets:
            return f"{self.config.host}:{self.config.port}"
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"{host}:{port}"

    async def serve_forever(self) -> None:
        """Block until a drain (signal or verb) completes."""
        await self._stopped.wait()

    def reload(self) -> int:
        """SIGHUP handler: atomically swap in freshly-loaded models.

        Requests already dispatched keep the model object they were
        routed with — nothing in flight is dropped or re-answered.
        """
        count = self.registry.load()
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.info("service_models_reloaded", models=count)
        return count

    def request_drain(self) -> None:
        """Idempotently schedule a graceful drain (signal-handler safe)."""
        if self.state == RUNNING and self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self.drain())

    async def drain(self) -> None:
        """Graceful shutdown: answer everything accepted, then stop."""
        if self.state in (DRAINING, STOPPED):
            await self._stopped.wait()
            return
        self.state = DRAINING
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.info("service_drain", inflight=self._inflight)
        if self._server is not None:
            self._server.close()  # no new connections
        if self._inflight > 0:
            self._idle.clear()
            await self._idle.wait()
        for worker in self._all_workers():
            await worker.drain()
        if self._server is not None:
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._remove_signal_handlers()
        if self.config.unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.unix_path)
        self.state = STOPPED
        self._stopped.set()

    async def abort(self) -> None:
        """Hard-stop for abnormal exit paths: no drain, no new answers.

        Closes the listener and every connection, cancels the worker
        tasks, and — crucially — unlinks the Unix socket so the *next*
        startup does not trip over a stale path.  Queued futures are
        cancelled, not answered; anything durable (the registry
        snapshot) is already on disk.  Idempotent, and safe to call on a
        half-started server.
        """
        if self.state == STOPPED:
            return
        self.state = STOPPED
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.warning("service_aborted", inflight=self._inflight)
        if self._server is not None:
            self._server.close()
        for worker in self._all_workers():
            task = worker._task
            if task is not None and not task.done():
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await task
            worker.state = STOPPED
        for writer in list(self._connections):
            writer.close()
        self._remove_signal_handlers()
        self._cleanup_socket()
        self._stopped.set()

    def _cleanup_socket(self) -> None:
        """Best-effort unlink of the Unix socket path (abnormal exits)."""
        if self.config.unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.unix_path)

    def _remember(self, key: str, future: asyncio.Future) -> None:
        """Record an idempotency key while its call runs; keep it after
        success (bounded LRU) and drop it on failure, so a retry of a
        *failed* attempt re-executes while a retry of a *successful* one
        replays the recorded result."""
        self._idempotent[key] = future
        while len(self._idempotent) > max(1, self.config.idempotency_capacity):
            self._idempotent.popitem(last=False)

        def _settle(fut: asyncio.Future) -> None:
            if (fut.cancelled() or fut.exception() is not None) \
                    and self._idempotent.get(key) is fut:
                del self._idempotent[key]

        future.add_done_callback(_settle)

    def _all_workers(self) -> list[StatefulWorker]:
        workers: list[StatefulWorker] = list(self._workers)
        if self._estimator is not None:
            workers.append(self._estimator)
        return workers

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGHUP, self.reload)
            self._signals.append(signal.SIGHUP)
            loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            self._signals.append(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):
            # Not the main thread (ServerThread) or no signal support:
            # lifecycle still works via the drain verb / drain().
            pass

    def _remove_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in self._signals:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)
        self._signals.clear()

    # -- connections --------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.gauge(
                "service_connections", help="open client connections"
            ).inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line never fit in the buffer: the stream cannot
                    # be resynchronized.  Report and hang up.
                    oversized = InvalidRequest(
                        f"request line exceeds {protocol.MAX_LINE_BYTES} "
                        f"bytes; closing connection"
                    )
                    with contextlib.suppress(ConnectionError):
                        writer.write(protocol.encode_error(None, oversized))
                        await writer.drain()
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break  # EOF: client hung up
                if not line.strip():
                    continue  # blank keep-alive line
                response = await self._dispatch(line)
                try:
                    writer.write(response)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break  # client vanished mid-reply; work already done
        finally:
            self._connections.discard(writer)
            if tel is not None:
                tel.registry.gauge(
                    "service_connections", help="open client connections"
                ).dec()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, line: bytes) -> bytes:
        """One request line in, one response line out — never raises."""
        self.requests_total += 1
        tel = _obs.ACTIVE
        start = time.perf_counter()
        verb = "invalid"
        outcome = "ok"
        try:
            try:
                request = protocol.decode_request(line)
            except InvalidRequest as exc:
                outcome = exc.code
                return protocol.encode_error(protocol.peek_id(line), exc)
            verb = request.verb
            # A malformed trace header yields None — the request is
            # served untraced, never rejected (satellite contract).
            ctx = _trace.parse_traceparent(request.trace)
            trace_id = None if ctx is None else ctx.trace_id
            try:
                with _trace.use(ctx), \
                        _obs.span("serve.request", verb=verb,
                                  request_id=request.id):
                    result = await self._handle_request(request)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 - mapped to taxonomy
                payload = error_payload(exc)
                outcome = payload["code"]
                if tel is not None:
                    if outcome == Overloaded.code:
                        tel.events.warning(
                            "service_overloaded", verb=verb,
                            message=payload["message"],
                            request_id=request.id, trace_id=trace_id,
                        )
                    tel.events.error(
                        "service_request_failed", verb=verb,
                        code=outcome, request_id=request.id,
                        trace_id=trace_id,
                    )
                return protocol.encode_error(
                    request.id, exc,
                    extra={"request_id": request.id, "trace_id": trace_id},
                )
            return protocol.encode_response(request.id, result)
        finally:
            if tel is not None:
                tel.registry.counter(
                    "service_requests_total", help="wire requests by outcome",
                    verb=verb, outcome=outcome,
                ).inc()
                tel.registry.histogram(
                    "service_request_seconds",
                    help="wall latency per request", verb=verb,
                ).observe(time.perf_counter() - start)
                # Request cadence drives the periodic attachments (the
                # watchdog's health probes keep them alive when idle);
                # both are rate-limited internally.
                _obs.pulse()

    # -- verbs --------------------------------------------------------------------
    async def _handle_request(self, request: protocol.Request) -> Mapping[str, Any]:
        verb = request.verb
        if verb == "health":
            return self._health()
        if verb == "obs":
            return self._obs_snapshot()
        if verb == "drain":
            queued = sum(w.depth for w in self._all_workers())
            self.request_drain()
            return {"draining": True, "inflight": self._inflight,
                    "queued": queued}
        if self.state != RUNNING:
            raise Overloaded(f"server is {self.state}; no new work accepted")
        tel = _obs.ACTIVE
        key = request.idempotency_key
        if key is not None:
            cached = self._idempotent.get(key)
            if cached is not None:
                # A retry of a call we have answered (or are answering):
                # never re-execute — replay or attach.
                self._idempotent.move_to_end(key)
                if tel is not None:
                    tel.registry.counter(
                        "service_idempotent_hits_total",
                        help="retried requests deduplicated by idempotency key",
                        verb=verb,
                    ).inc()
                if cached.done():
                    return cached.result()
                return await asyncio.shield(cached)
        deadline: Optional[float] = None
        if request.deadline_ms is not None:
            deadline = time.monotonic() + request.deadline_ms / 1000.0
        if verb == "estimate":
            assert self._estimator is not None
            worker: StatefulWorker = self._estimator
            model = None
        else:  # predict / predict_many / optimize
            model = self.registry.get(request.params.get("model"))
            shard = int(model_fingerprint(model), 16) % len(self._workers)
            worker = self._workers[shard]
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if key is not None:
            self._remember(key, future)
        try:
            worker.submit(WorkItem(request=request, model=model, future=future,
                                   deadline=deadline, trace=_trace.current()))
        except BaseException:
            # Never queued: the key must not block a retry from executing.
            if key is not None and self._idempotent.get(key) is future:
                del self._idempotent[key]
            raise
        self._inflight += 1
        self._idle.clear()
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.gauge(
                "service_inflight", help="accepted, unanswered requests"
            ).set(float(self._inflight))
        try:
            return await future
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            if tel is not None:
                tel.registry.gauge(
                    "service_inflight", help="accepted, unanswered requests"
                ).set(float(self._inflight))

    def _health(self) -> dict[str, Any]:
        return {
            "status": self.state,
            "schema_version": SCHEMA_VERSION,
            "endpoint": self.endpoint,
            "models": self.registry.names(),
            "inflight": self._inflight,
            "requests_total": self.requests_total,
            "uptime_seconds": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "workers": {
                worker.name: {
                    "state": worker.state,
                    "depth": worker.depth,
                    "processed": worker.processed,
                }
                for worker in self._all_workers()
            },
        }

    def _obs_snapshot(self) -> dict[str, Any]:
        tel = _obs.ACTIVE
        if tel is None:
            return {"enabled": False}
        snapshot = tel.to_dict()
        states = self._alerts.evaluate(snapshot["metrics"],
                                       timeline=tel.timeline)
        reply = {
            "enabled": True,
            "telemetry": snapshot,
            "alerts": [state.to_dict() for state in states],
            "firing": self._alerts.firing(),
            "alerts_engine": self._alerts.to_dict(),
        }
        if tel.timeline is not None:
            reply["slos"] = [
                status.to_dict()
                for status in _slo.evaluate_slos(
                    list(self._alerts.slos.values()), tel.timeline)
            ]
        return reply


async def run_server(config: ServeConfig) -> PredictionServer:
    """Start a server and block until it drains; returns the server.

    Exits that bypass the graceful drain — a cancelled task, an
    exception escaping the loop — still clean up: the listener closes
    and the Unix socket is unlinked (:meth:`PredictionServer.abort`), so
    a crashed daemon never leaves a stale socket a restart trips over.
    """
    server = PredictionServer(config)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        if server.state != STOPPED:
            await server.abort()
    return server


def serve(config: ServeConfig) -> None:
    """Synchronous entry point (the ``repro serve`` command)."""
    asyncio.run(run_server(config))
