"""Communication-experiment descriptors and their DES rank programs.

Section IV of the paper builds its estimation procedure from a small
vocabulary of experiments:

* ``roundtrip`` — ``i <-M/N-> j``: send M bytes, receive an N-byte reply,
  timed on the initiator (used by every model's estimator);
* ``one_to_two`` — ``i -M-> j,k`` with N-byte replies: the *collective*
  experiment that makes the LMO parameters identifiable (point-to-point
  experiments alone cannot separate ``C`` from ``L``);
* ``overhead_send`` / ``overhead_recv`` — the LogP-family tricks: time the
  send call itself; or delay the receive until the message has certainly
  arrived and time the receive call itself;
* ``saturation`` — a train of messages to one destination closed by a
  zero-byte acknowledgement, measuring the per-message gap.  (The paper
  measures the open train on the sender side; on this simulator's
  transport a sender-side measurement would only observe the CPU gap, so
  we close the loop with an ack, as MPIBlib-era tools do.  DESIGN.md
  records this substitution.)

Every experiment is timed **on the initiator** (the paper's sender-side
timing method) and knows which nodes it occupies, so non-overlapping
experiments can run in parallel (Sec. IV's optimization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.mpi.comm import RankComm

__all__ = ["Experiment", "roundtrip", "one_to_two", "overhead_send", "overhead_recv",
           "saturation", "build_programs"]

TAG = 11


@dataclass(frozen=True)
class Experiment:
    """One timed communication experiment.

    ``nodes[0]`` is the initiator whose completion time is the result.
    """

    kind: str
    nodes: tuple[int, ...]
    send_nbytes: int = 0
    reply_nbytes: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"experiment nodes must be distinct: {self.nodes}")
        expected_arity = {"roundtrip": 2, "one_to_two": 3,
                          "overhead_send": 2, "overhead_recv": 2, "saturation": 2}
        if self.kind not in expected_arity:
            raise ValueError(f"unknown experiment kind {self.kind!r}")
        if len(self.nodes) != expected_arity[self.kind]:
            raise ValueError(f"{self.kind} needs {expected_arity[self.kind]} nodes")
        if self.send_nbytes < 0 or self.reply_nbytes < 0 or self.count < 1:
            raise ValueError(f"invalid experiment sizes: {self}")

    @property
    def initiator(self) -> int:
        return self.nodes[0]

    def overlaps(self, other: "Experiment") -> bool:
        """True when the two experiments share a node."""
        return bool(set(self.nodes) & set(other.nodes))


# -- constructors -------------------------------------------------------------
def roundtrip(i: int, j: int, send_nbytes: int, reply_nbytes: int | None = None) -> Experiment:
    """``i <-> j`` roundtrip (reply defaults to the same size)."""
    reply = send_nbytes if reply_nbytes is None else reply_nbytes
    return Experiment("roundtrip", (i, j), send_nbytes, reply)


def one_to_two(i: int, j: int, k: int, send_nbytes: int, reply_nbytes: int = 0) -> Experiment:
    """``i -> j,k`` with replies; the LMO collective experiment."""
    return Experiment("one_to_two", (i, j, k), send_nbytes, reply_nbytes)


def overhead_send(i: int, j: int, nbytes: int) -> Experiment:
    """Time the send call of an ``nbytes`` message (LogP's ``o_s``)."""
    return Experiment("overhead_send", (i, j), nbytes)


def overhead_recv(i: int, j: int, nbytes: int) -> Experiment:
    """Time a deliberately-late receive call at ``j`` for a message from
    ``i`` (LogP's ``o_r``).  The receiver is the initiator/timer."""
    return Experiment("overhead_recv", (j, i), nbytes)


def saturation(i: int, j: int, nbytes: int, count: int) -> Experiment:
    """An ack-closed train of ``count`` messages (gap measurement)."""
    return Experiment("saturation", (i, j), nbytes, 0, count)


#: Delay before the late receive in overhead_recv: generous upper bound on
#: delivery time for any plausible cluster (simulated seconds are free).
_LATE_RECV_DELAY = 0.2
_LATE_RECV_PER_BYTE = 5e-7  # covers links down to 2 MB/s


def build_programs(exp: Experiment) -> dict[int, Callable[[RankComm], Generator]]:
    """Rank programs realizing ``exp``; the initiator returns its elapsed time."""
    if exp.kind == "roundtrip":
        return _roundtrip_programs(exp)
    if exp.kind == "one_to_two":
        return _one_to_two_programs(exp)
    if exp.kind == "overhead_send":
        return _overhead_send_programs(exp)
    if exp.kind == "overhead_recv":
        return _overhead_recv_programs(exp)
    if exp.kind == "saturation":
        return _saturation_programs(exp)
    raise AssertionError("unreachable: validated in Experiment")


def _roundtrip_programs(exp: Experiment):
    i, j = exp.nodes

    def initiator(comm: RankComm):
        start = comm.sim.now
        yield from comm.send(j, nbytes=exp.send_nbytes, tag=TAG)
        yield from comm.recv(j, tag=TAG)
        return comm.sim.now - start

    def responder(comm: RankComm):
        yield from comm.recv(i, tag=TAG)
        yield from comm.send(i, nbytes=exp.reply_nbytes, tag=TAG)
        return None

    return {i: initiator, j: responder}


def _one_to_two_programs(exp: Experiment):
    i, j, k = exp.nodes

    def initiator(comm: RankComm):
        start = comm.sim.now
        # Linear scatter to the two peers (serialized send slots) ...
        yield from comm.send(j, nbytes=exp.send_nbytes, tag=TAG)
        yield from comm.send(k, nbytes=exp.send_nbytes, tag=TAG)
        # ... then a linear gather of the replies (receives posted
        # up-front; processing serializes on this CPU as it completes).
        req_j = comm.irecv(j, tag=TAG)
        req_k = comm.irecv(k, tag=TAG)
        yield from comm.wait(req_j)
        yield from comm.wait(req_k)
        return comm.sim.now - start

    def peer(of: int):
        def program(comm: RankComm):
            yield from comm.recv(i, tag=TAG)
            yield from comm.send(i, nbytes=exp.reply_nbytes, tag=TAG)
            return None

        return program

    return {i: initiator, j: peer(j), k: peer(k)}


def _overhead_send_programs(exp: Experiment):
    i, j = exp.nodes

    def initiator(comm: RankComm):
        start = comm.sim.now
        yield from comm.send(j, nbytes=exp.send_nbytes, tag=TAG)
        return comm.sim.now - start

    def responder(comm: RankComm):
        yield from comm.recv(i, tag=TAG)
        return None

    return {i: initiator, j: responder}


def _overhead_recv_programs(exp: Experiment):
    receiver, sender_rank = exp.nodes
    delay = _LATE_RECV_DELAY + exp.send_nbytes * _LATE_RECV_PER_BYTE

    def sender(comm: RankComm):
        yield from comm.send(receiver, nbytes=exp.send_nbytes, tag=TAG)
        return None

    def initiator(comm: RankComm):
        # Wait long enough that the message has certainly been delivered,
        # then the receive call's duration is pure receive processing.
        yield comm.sim.timeout(delay)
        start = comm.sim.now
        yield from comm.recv(sender_rank, tag=TAG)
        return comm.sim.now - start

    return {receiver: initiator, sender_rank: sender}


def _saturation_programs(exp: Experiment):
    i, j = exp.nodes

    def initiator(comm: RankComm):
        start = comm.sim.now
        for _msg in range(exp.count):
            yield from comm.send(j, nbytes=exp.send_nbytes, tag=TAG)
        yield from comm.recv(j, tag=TAG + 1)  # zero-byte ack closes the train
        return comm.sim.now - start

    def sink(comm: RankComm):
        for _msg in range(exp.count):
            yield from comm.recv(i, tag=TAG)
        yield from comm.send(i, nbytes=0, tag=TAG + 1)
        return None

    return {i: initiator, j: sink}
