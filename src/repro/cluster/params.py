"""Ground-truth LMO parameters of a simulated cluster.

The simulated cluster "is" its ground truth: every node carries a fixed
processing delay ``C_i`` (seconds) and a per-byte processing delay ``t_i``
(seconds/byte); every link carries a fixed network latency ``L_ij`` and a
transmission rate ``beta_ij`` (bytes/second).  These are exactly the six
parameters of the paper's *extended LMO* point-to-point model

    T_ij(M) = C_i + L_ij + C_j + M * (t_i + 1/beta_ij + t_j)

so estimator correctness can be phrased as "recover the ground truth".

:func:`synthesize_ground_truth` derives plausible values from the hardware
specification (clock speed, FSB, L2) so the Table I cluster exhibits the
~2x processor heterogeneity the paper reports, while :meth:`GroundTruth.random`
draws arbitrary heterogeneous instances for property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.spec import ClusterSpec

__all__ = ["GroundTruth", "synthesize_ground_truth"]


@dataclass(frozen=True)
class GroundTruth:
    """Per-node and per-link LMO parameters of a cluster.

    Attributes
    ----------
    C:
        Fixed processing delay per node, shape ``(n,)``, seconds.
    t:
        Per-byte processing delay per node, shape ``(n,)``, seconds/byte.
    L:
        Fixed network latency per link, shape ``(n, n)``, symmetric,
        seconds.  The diagonal is zero and never used.
    beta:
        Transmission rate per link, shape ``(n, n)``, symmetric,
        bytes/second.  The diagonal is ``inf`` and never used.
    """

    C: np.ndarray
    t: np.ndarray
    L: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        n = self.C.shape[0]
        if self.t.shape != (n,) or self.L.shape != (n, n) or self.beta.shape != (n, n):
            raise ValueError("inconsistent ground-truth array shapes")
        if not np.allclose(self.L, self.L.T):
            raise ValueError("L must be symmetric (single-switch cluster)")
        if not np.allclose(self.beta, self.beta.T):
            raise ValueError("beta must be symmetric (single-switch cluster)")
        if (self.C < 0).any() or (self.t < 0).any():
            raise ValueError("processor delays must be non-negative")
        off = ~np.eye(n, dtype=bool)
        if (self.L[off] < 0).any() or (self.beta[off] <= 0).any():
            raise ValueError("link parameters must be positive")

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.C.shape[0]

    # -- point-to-point time ------------------------------------------------
    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """Extended-LMO point-to-point time for an ``nbytes`` message i -> j."""
        return float(
            self.C[i]
            + self.L[i, j]
            + self.C[j]
            + nbytes * (self.t[i] + 1.0 / self.beta[i, j] + self.t[j])
        )

    def send_cost(self, i: int, nbytes: float) -> float:
        """CPU cost of node ``i`` sending (or receiving) ``nbytes``."""
        return float(self.C[i] + nbytes * self.t[i])

    def wire_time(self, i: int, j: int, nbytes: float) -> float:
        """Network time (latency + occupancy) for ``nbytes`` on link i-j."""
        return float(self.L[i, j] + nbytes / self.beta[i, j])

    # -- views in terms of other models --------------------------------------
    def hockney_alpha(self) -> np.ndarray:
        """Heterogeneous Hockney latency: ``alpha_ij = C_i + L_ij + C_j``."""
        alpha = self.C[:, None] + self.L + self.C[None, :]
        np.fill_diagonal(alpha, 0.0)
        return alpha

    def hockney_beta(self) -> np.ndarray:
        """Heterogeneous Hockney per-byte time: ``t_i + 1/beta_ij + t_j``.

        (The paper writes this ``beta^H_ij``; note it is a *time per byte*,
        the reciprocal of a bandwidth.)
        """
        with np.errstate(divide="ignore"):
            inv = 1.0 / self.beta
        np.fill_diagonal(inv, 0.0)
        bh = self.t[:, None] + inv + self.t[None, :]
        np.fill_diagonal(bh, 0.0)
        return bh

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary (see :mod:`repro.io`)."""
        from repro.models.base import encode_array

        return {"C": encode_array(self.C), "t": encode_array(self.t),
                "L": encode_array(self.L), "beta": encode_array(self.beta)}

    @classmethod
    def from_dict(cls, params: dict) -> "GroundTruth":
        """Inverse of :meth:`to_dict`."""
        from repro.models.base import decode_array

        return cls(C=decode_array(params["C"]), t=decode_array(params["t"]),
                   L=decode_array(params["L"]), beta=decode_array(params["beta"]))

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def random(
        n: int,
        seed: int = 0,
        c_range: tuple[float, float] = (20e-6, 90e-6),
        t_range: tuple[float, float] = (2e-9, 9e-9),
        l_range: tuple[float, float] = (20e-6, 60e-6),
        beta_range: tuple[float, float] = (9e6, 13e6),
    ) -> "GroundTruth":
        """A random heterogeneous ground truth (deterministic per seed)."""
        rng = np.random.default_rng(seed)
        C = rng.uniform(*c_range, size=n)
        t = rng.uniform(*t_range, size=n)
        L = rng.uniform(*l_range, size=(n, n))
        L = (L + L.T) / 2.0
        np.fill_diagonal(L, 0.0)
        beta = rng.uniform(*beta_range, size=(n, n))
        beta = (beta + beta.T) / 2.0
        np.fill_diagonal(beta, np.inf)
        return GroundTruth(C, t, L, beta)


def synthesize_ground_truth(spec: ClusterSpec, seed: int = 0) -> GroundTruth:
    """Derive ground-truth LMO parameters from a hardware specification.

    The mapping is deterministic given ``(spec, seed)``:

    * ``C_i``: inversely proportional to the architecture-adjusted clock —
      a 3.4 GHz Xeon lands near 40 us, the 2.9 GHz Celeron near 62 us,
      matching the order of magnitude of MPI software overhead on Fast
      Ethernet clusters of the paper's era.
    * ``t_i``: per-byte memory/TCP-stack cost, driven by FSB speed with a
      small L2 correction (spills hurt the 256 KB Celeron most).
    * ``L_ij``: a common single-switch store-and-forward latency plus a
      small symmetric per-pair component (cabling/NIC variation).
    * ``beta_ij``: ``min`` of the two endpoints' effective NIC rates
      (~100 Mbit/s Ethernet minus per-host overhead).

    ``seed`` only controls the +-5% per-pair link variation, never the
    processor parameters.
    """
    rng = np.random.default_rng(seed)
    n = spec.n

    eff = np.array([node.effective_ghz for node in spec.nodes])
    fsb = np.array([float(node.fsb_mhz) for node in spec.nodes])
    l2 = np.array([float(node.l2_cache_kb) for node in spec.nodes])

    # Constant processor costs (MPI call + kernel fixed path) are
    # CPU-bound: strongly heterogeneous across the Table I mix.
    C = 55e-6 * (3.4 / eff) ** 0.9
    # Per-byte processor costs (memcpy + TCP checksum per byte) are
    # memory-system bound.  On the gigabit network of the HCL cluster
    # they are *comparable to the wire time per byte* — that is what
    # produces the paper's two gather slopes (CPU-bound small-message
    # regime vs fully serialized large-message regime) and what makes
    # PLogP's measured gap track scatter.  The spread is kept mild:
    # memory systems of the era differed far less than their MPI fixed
    # costs, and a near-uniform variable part is also what leads the
    # heterogeneous Hockney model into the Fig. 6 misprediction.
    t = 10.5e-9 * (800.0 / fsb) ** 0.2 * (3.4 / eff) ** 0.15 * (
        1.0 + 0.02 * np.sqrt(1024.0 / l2)
    )

    base_latency = 55e-6
    pair_jitter = rng.uniform(-4e-6, 4e-6, size=(n, n))
    L = base_latency + (pair_jitter + pair_jitter.T) / 2.0
    np.fill_diagonal(L, 0.0)

    # One switch, identical gigabit NICs: link rates are near-uniform
    # (~105 MB/s effective TCP throughput).
    nic_rate = 105e6 * (1.0 - 0.01 * (3.4 / eff - 1.0)) * rng.uniform(0.998, 1.002, size=n)
    beta = np.minimum(nic_rate[:, None], nic_rate[None, :]) * 1.0
    rate_jitter = rng.uniform(0.999, 1.001, size=(n, n))
    beta = beta * (rate_jitter + rate_jitter.T) / 2.0
    np.fill_diagonal(beta, np.inf)

    return GroundTruth(C, t, L, beta)
