"""Hardened LMO estimation: timeouts, retries, outlier and triplet rejection.

The plain estimation path (:func:`~repro.estimation.lmo_est.estimate_extended_lmo`)
assumes a well-behaved cluster.  Real clusters are not: the paper's own
measurements show non-deterministic TCP RTO escalations up to 0.25 s —
two orders of magnitude above a medium roundtrip — and hardware degrades
*while* being measured.  One contaminated sample poisons every parameter
of every triplet it touches, and eq. (12)'s plain averaging spreads the
damage across the whole model.  This module closes the gaps end-to-end:

1. **Per-experiment sim-time timeout with bounded retry/backoff**
   (:func:`run_schedule_robust`): a repetition slower than the timeout is
   discarded and re-measured with a geometrically growing budget, so
   transient escalations are rejected while genuine persistent slowness
   (a degraded node) is eventually accepted.  Hangs that starve the
   simulation (``DeadlockError``) are survived, not propagated.
2. **Per-sample outlier screening**: within each experiment's repetitions
   the MAD rule (:func:`repro.stats.mad_outlier_mask`) drops jitter
   spikes before aggregation.
3. **RANSAC-style triplet rejection** (:func:`estimate_extended_lmo_robust`):
   per-triplet solves whose values leave the physical range are rejected
   before the eq. (12) averaging, and the surviving redundant samples are
   screened again with the MAD rule.
4. **Graceful degradation**: nodes implicated in a majority of rejected
   triplets are quarantined, the model is re-solved from the healthy
   subset, and the result reports exactly what was dropped — instead of
   returning garbage with a straight face.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from repro.estimation.engines import ExperimentEngine
from repro.estimation.experiments import Experiment
from repro.estimation.lmo_est import (
    DEFAULT_PROBE_NBYTES,
    _rooted_triplets,
    assemble_model,
    build_experiment_set,
    collect_parameter_samples,
    solve_triplet,
)
from repro.estimation.scheduling import _grouped_rounds
from repro.mpi.runtime import DeadlockError
from repro.obs import runtime as _obs
from repro.stats.ci import mad_outlier_mask

__all__ = [
    "EstimationFailure",
    "RetryPolicy",
    "RobustAssembly",
    "RobustLMOResult",
    "RobustRunStats",
    "estimate_extended_lmo_robust",
    "run_schedule_robust",
    "screened_mean",
    "solve_and_assemble",
]


class EstimationFailure(RuntimeError):
    """Raised when an experiment yields no sample within the retry budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry discipline for one measurement repetition.

    The default timeout (50 ms of simulated time) sits two orders of
    magnitude above a medium roundtrip on the Table I cluster but well
    below a TCP RTO escalation (~0.2-0.25 s), so escalated repetitions
    are rejected while even a 4x-degraded node still passes.  Each retry
    multiplies the budget by ``backoff``: persistent slowness (the thing
    drift detection must *see*) is accepted after a couple of retries;
    only transient contamination is filtered out.
    """

    timeout: float = 0.05
    max_retries: int = 4
    backoff: float = 2.0
    mad_threshold: float = 5.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.mad_threshold <= 0:
            raise ValueError(f"mad_threshold must be positive, got {self.mad_threshold}")


@dataclass
class RobustRunStats:
    """What the robust schedule runner had to do to get clean numbers."""

    timeouts: int = 0
    retries: int = 0
    deadlocks: int = 0
    dropped_outliers: int = 0
    #: Experiments that never produced a within-timeout sample; their
    #: least-contaminated observation was used instead.
    degraded: list[Experiment] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"timeouts: {self.timeouts}, retries: {self.retries}, "
            f"deadlocks: {self.deadlocks}, "
            f"outlier samples dropped: {self.dropped_outliers}, "
            f"degraded experiments: {len(self.degraded)}"
        )


def screened_mean(values: Sequence[float], mad_threshold: float = 5.0) -> float:
    """Mean of the MAD-rule inliers (plain mean if everything is inlier)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot reduce an empty sample list")
    if arr.size < 3:
        return float(arr.mean())
    mask = mad_outlier_mask(arr, threshold=mad_threshold)
    inliers = arr[~mask]
    return float(inliers.mean()) if inliers.size else float(np.median(arr))


def run_schedule_robust(
    engine: ExperimentEngine,
    experiments: Sequence[Experiment],
    reps: int = 3,
    policy: Optional[RetryPolicy] = None,
    parallel: bool = True,
) -> tuple[dict[Experiment, float], RobustRunStats]:
    """Execute experiments with timeouts, bounded retries and screening.

    Repetitions above ``policy.timeout`` are discarded; each experiment
    short of ``reps`` clean samples is re-measured serially up to
    ``policy.max_retries`` times with a ``policy.backoff``-growing budget.
    A round (or retry) that deadlocks the simulation is counted and
    survived.  Surviving samples are MAD-screened per experiment and the
    inlier mean is reported.

    Returns ``(results, stats)``.  An experiment that produced *no*
    within-budget sample falls back to its fastest contaminated
    observation and is listed in ``stats.degraded``; if even that does
    not exist, :class:`EstimationFailure` is raised — the caller gets a
    hard error, never silence or garbage.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    policy = policy if policy is not None else RetryPolicy()
    stats = RobustRunStats()
    samples: dict[Experiment, list[float]] = {exp: [] for exp in experiments}
    contaminated: dict[Experiment, list[float]] = {exp: [] for exp in experiments}

    rounds = _grouped_rounds(experiments) if parallel else [[exp] for exp in experiments]
    for round_exps in rounds:
        for _rep in range(reps):
            try:
                durations = engine.run_batch(list(round_exps))
            except DeadlockError:
                # One stuck rank poisons the whole batch; the per-
                # experiment retry phase below recovers the survivors.
                stats.deadlocks += 1
                continue
            for exp, duration in zip(round_exps, durations):
                if duration <= policy.timeout:
                    samples[exp].append(duration)
                else:
                    stats.timeouts += 1
                    contaminated[exp].append(duration)

    for exp in experiments:
        budget = policy.timeout
        for _attempt in range(policy.max_retries):
            if samples[exp]:
                break
            budget *= policy.backoff
            stats.retries += 1
            try:
                duration = engine.run(exp)
            except DeadlockError:
                stats.deadlocks += 1
                continue
            if duration <= budget:
                samples[exp].append(duration)
            else:
                stats.timeouts += 1
                contaminated[exp].append(duration)
        if not samples[exp]:
            if not contaminated[exp]:
                raise EstimationFailure(
                    f"{exp.kind} on nodes {exp.nodes}: no sample within "
                    f"{policy.max_retries} retries (every attempt deadlocked)"
                )
            # Graceful degradation: keep the least-contaminated value and
            # report it, rather than dropping the experiment silently.
            samples[exp].append(min(contaminated[exp]))
            stats.degraded.append(exp)

    results: dict[Experiment, float] = {}
    for exp, values in samples.items():
        arr = np.asarray(values, dtype=float)
        if arr.size >= 3:
            mask = mad_outlier_mask(arr, threshold=policy.mad_threshold)
            stats.dropped_outliers += int(mask.sum())
            inliers = arr[~mask]
            arr = inliers if inliers.size else arr
        results[exp] = float(arr.mean())
    tel = _obs.ACTIVE
    if tel is not None:
        # One flush per schedule run — the hot measurement loop stays clean.
        for reason, count in (
            ("timeout", stats.timeouts),
            ("retry", stats.retries),
            ("deadlock", stats.deadlocks),
            ("mad_rejection", stats.dropped_outliers),
            ("degraded", len(stats.degraded)),
        ):
            if count:
                tel.registry.counter(
                    "robust_samples_total",
                    help="robust-runner interventions by reason",
                    reason=reason,
                ).inc(count)
    return results, stats


@dataclass
class RobustAssembly:
    """The solve/reject/quarantine/average stage's outcome, measurement-free.

    :func:`solve_and_assemble` is the back half of
    :func:`estimate_extended_lmo_robust`, split out so callers that
    already *have* measurements — the durable campaign runner replaying
    its journal — reuse the identical physicality rejection, quarantine
    and screened averaging instead of re-implementing eq. (12).
    """

    model: "object"
    rejected_triplets: list[tuple[int, int, int]]
    total_triplets: int
    quarantined: list[int]
    fallback_nodes: list[int]


def solve_and_assemble(
    measured,
    n: int,
    base_triplets: Sequence[tuple[int, int, int]],
    pairs: Sequence[tuple[int, int]],
    probe_nbytes: int,
    mad_threshold: float = 5.0,
    physical_tol: float = 5e-5,
    quarantine_fraction: float = 0.5,
    extra_quarantined: Sequence[int] = (),
) -> RobustAssembly:
    """Solve eqs. (8)/(11) per triplet, reject, quarantine, average (eq. 12).

    ``measured`` maps every experiment of ``base_triplets``'s pairs and
    rooted configurations to its aggregated duration.  ``pairs`` may be a
    superset of the measured pairs (a campaign with open breakers leaves
    links unmeasured); missing links are completed with measured means by
    :func:`assemble_model`.  ``extra_quarantined`` adds nodes condemned
    by an outer mechanism (campaign circuit breakers) to the quarantine
    set before the healthy averaging.
    """
    solves = [solve_triplet(measured, triple, probe_nbytes) for triple in base_triplets]
    physical = [s for s in solves if s.is_physical(tol=physical_tol)]
    rejected = [s.nodes for s in solves if not s.is_physical(tol=physical_tol)]

    # -- quarantine: who keeps showing up in the wreckage? --------------------
    triplet_count: dict[int, int] = {i: 0 for i in range(n)}
    bad_count: dict[int, int] = {i: 0 for i in range(n)}
    for solve in solves:
        for node in solve.nodes:
            triplet_count[node] += 1
    for nodes in rejected:
        for node in nodes:
            bad_count[node] += 1
    quarantined = sorted(
        set(extra_quarantined)
        | {
            node
            for node in range(n)
            if triplet_count[node] > 0
            and bad_count[node] / triplet_count[node] > quarantine_fraction
        }
    )

    healthy = [
        s for s in physical if not (set(s.nodes) & set(quarantined))
    ]
    if not healthy:
        # Everything implicated: fall back to the physical solves, or to
        # all solves as the last resort — clamping keeps the result legal.
        healthy = physical if physical else solves

    reduce = lambda values: screened_mean(values, mad_threshold)  # noqa: E731
    c_samples, t_samples, l_samples, beta_samples = collect_parameter_samples(
        healthy, n, pairs
    )

    # -- recover parameters the healthy subset cannot see ---------------------
    fallback_nodes: list[int] = []
    for source in (physical, solves):
        missing_nodes = [i for i in range(n) if not c_samples[i]]
        missing_pairs = [p for p in pairs if not l_samples[p]]
        if not missing_nodes and not missing_pairs:
            break
        extra_c, extra_t, extra_l, extra_b = collect_parameter_samples(
            source, n, pairs
        )
        for node in missing_nodes:
            if extra_c[node]:
                c_samples[node] = extra_c[node]
                t_samples[node] = extra_t[node]
                if node not in fallback_nodes:
                    fallback_nodes.append(node)
        for pair in missing_pairs:
            if extra_l[pair]:
                l_samples[pair] = extra_l[pair]
                beta_samples[pair] = extra_b[pair]

    model = assemble_model(
        n, c_samples, t_samples, l_samples, beta_samples, clamp=True, reduce=reduce
    )
    return RobustAssembly(
        model=model,
        rejected_triplets=rejected,
        total_triplets=len(solves),
        quarantined=quarantined,
        fallback_nodes=sorted(fallback_nodes),
    )


@dataclass
class RobustLMOResult:
    """Hardened estimation outcome: a physical model plus a damage report."""

    model: "object"
    probe_nbytes: int
    estimation_time: float
    run_stats: RobustRunStats
    #: Unphysical per-triplet solves rejected before averaging.
    rejected_triplets: list[tuple[int, int, int]]
    total_triplets: int
    #: Nodes implicated in a majority of rejected triplets.
    quarantined: list[int]
    #: Quarantined nodes whose parameters had to be recovered from
    #: rejected-adjacent (but physical) solves.
    fallback_nodes: list[int]

    @property
    def clean(self) -> bool:
        """True when nothing had to be dropped, retried or quarantined."""
        stats = self.run_stats
        return (
            not self.rejected_triplets
            and not self.quarantined
            and stats.timeouts == 0
            and stats.deadlocks == 0
            and not stats.degraded
        )

    def summary(self) -> str:
        lines = [
            f"triplets: {self.total_triplets - len(self.rejected_triplets)}"
            f"/{self.total_triplets} accepted",
            self.run_stats.summary(),
        ]
        if self.quarantined:
            lines.append(f"quarantined nodes: {self.quarantined}")
        if self.fallback_nodes:
            lines.append(f"fallback-recovered nodes: {self.fallback_nodes}")
        if self.clean:
            lines.append("clean run: no faults encountered")
        return "\n".join(lines)


def estimate_extended_lmo_robust(
    engine: ExperimentEngine,
    probe_nbytes: int = DEFAULT_PROBE_NBYTES,
    reps: int = 3,
    parallel: bool = True,
    triplets: Optional[Sequence[tuple[int, int, int]]] = None,
    policy: Optional[RetryPolicy] = None,
    physical_tol: float = 5e-5,
    quarantine_fraction: float = 0.5,
) -> RobustLMOResult:
    """Estimate the extended LMO model on a cluster that may misbehave.

    The experiment set and the closed-form solves are exactly those of
    :func:`~repro.estimation.lmo_est.estimate_extended_lmo`; what changes
    is everything around them — measurement (timeout/retry/screening via
    :func:`run_schedule_robust`), triplet acceptance (solves outside the
    physical range, judged with tolerance ``physical_tol`` on the delay
    parameters, are rejected wholesale), node quarantine (a node present
    in more than ``quarantine_fraction`` of its triplets' rejections is
    excluded from the healthy averaging set), and the final reduction
    (MAD-screened means, always clamped).

    Quarantined nodes still get parameters: from their own *physical*
    solves when any exist, falling back to clamped averages of everything
    measured — and the result records which nodes needed that.
    """
    n = engine.n
    if n < 3:
        raise ValueError("LMO estimation needs at least 3 processors")
    if probe_nbytes <= 0:
        raise ValueError("probe_nbytes must be positive")
    if not (0 < quarantine_fraction <= 1):
        raise ValueError(f"quarantine_fraction must be in (0, 1], got {quarantine_fraction}")
    policy = policy if policy is not None else RetryPolicy()
    base_triplets, rooted = _rooted_triplets(n, triplets)
    covered = {node for triple in base_triplets for node in triple}
    if covered != set(range(n)):
        raise ValueError(f"triplets leave nodes {sorted(set(range(n)) - covered)} unmeasured")
    pairs = sorted({pair for triple in base_triplets for pair in combinations(triple, 2)})

    experiments = build_experiment_set(pairs, rooted, probe_nbytes)
    t_start = engine.estimation_time
    measured, run_stats = run_schedule_robust(
        engine, experiments, reps=reps, policy=policy, parallel=parallel
    )
    cost = engine.estimation_time - t_start

    assembly = solve_and_assemble(
        measured,
        n,
        base_triplets,
        pairs,
        probe_nbytes,
        mad_threshold=policy.mad_threshold,
        physical_tol=physical_tol,
        quarantine_fraction=quarantine_fraction,
    )
    return RobustLMOResult(
        model=assembly.model,
        probe_nbytes=probe_nbytes,
        estimation_time=cost,
        run_stats=run_stats,
        rejected_triplets=assembly.rejected_triplets,
        total_triplets=assembly.total_triplets,
        quarantined=assembly.quarantined,
        fallback_nodes=assembly.fallback_nodes,
    )
