"""The canned kernel-profiling workload.

One fixed, seeded mix of collectives driven through the DES kernel —
shared by ``repro obs profile --target kernel`` and the
``BENCH_kernel_profile.json`` benchmark, so the CLI's flamegraph and the
CI gate describe the *same* workload.  Determinism matters twice here:
the seeded cluster makes the event stream identical run to run (so the
profiler's frame *counts* are exact and comparable across machines), and
the events/sec baseline gives the upcoming kernel-optimization work a
measured before/after.

The workload leans on the operations the paper's figures exercise —
scatter and gather, linear and binomial — across three message-size
decades, which together cover the kernel's event mix: timeouts (CPU
holds, wire occupancy), process resumptions, and condition events.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Sequence

from repro import api
from repro.mpi.runtime import run_collective
from repro.obs import prof as _prof

__all__ = [
    "DEFAULT_COLLECTIVES",
    "DEFAULT_SIZES",
    "kernel_profile_document",
    "run_kernel_workload",
]

#: (operation, algorithm) pairs the canned workload cycles through.
DEFAULT_COLLECTIVES: tuple[tuple[str, str], ...] = (
    ("scatter", "linear"),
    ("scatter", "binomial"),
    ("gather", "linear"),
    ("gather", "binomial"),
    ("bcast", "binomial"),
)

#: Per-block message sizes (bytes), one per decade the figures sweep.
DEFAULT_SIZES: tuple[int, ...] = (1024, 16384, 131072)


def run_kernel_workload(
    nodes: int = 8,
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: int = 2,
    seed: int = 0,
    collectives: Sequence[tuple[str, str]] = DEFAULT_COLLECTIVES,
) -> dict[str, Any]:
    """Run the canned workload once; returns run stats.

    Profiling is controlled by the caller: attach via
    ``with repro.obs.profiling():`` (the MPI runtime hands the active
    profiler to the kernel per run).  Returns ``events_processed`` (the
    kernel counter summed over runs), ``wall_seconds``, and the derived
    rates the benchmark gates on.
    """
    cluster = api.load_cluster(nodes=nodes, seed=seed)
    events = 0
    runs = 0
    start = time.perf_counter()
    for _ in range(max(1, reps)):
        for nbytes in sizes:
            for operation, algorithm in collectives:
                run_collective(cluster, operation, algorithm, int(nbytes))
                events += cluster.sim.events_processed
                runs += 1
    wall = time.perf_counter() - start
    return {
        "nodes": nodes,
        "sizes": [int(s) for s in sizes],
        "reps": int(reps),
        "seed": int(seed),
        "collective_runs": runs,
        "events_processed": events,
        "wall_seconds": wall,
        "events_per_second": events / wall if wall > 0 else 0.0,
        "wall_seconds_per_million_events": (
            wall / (events / 1e6) if events else 0.0
        ),
    }


def kernel_profile_document(
    nodes: int = 8,
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: int = 2,
    seed: int = 0,
    top_frames: Optional[int] = 30,
) -> tuple[dict[str, Any], _prof.Profiler]:
    """The ``BENCH_kernel_profile.json`` document plus the profiler.

    Two passes over the same workload: an *uninstrumented* baseline run
    (profiler detached — this is the events/sec number the regression
    gate tracks, so it must not include instrumentation cost) and a
    *profiled* run producing the per-event-type breakdown.  The profiler
    is returned too, so callers can also write the speedscope/collapsed
    artifacts without a third pass.
    """
    baseline = run_kernel_workload(nodes=nodes, sizes=sizes, reps=reps,
                                   seed=seed)
    with _prof.profiling() as profiler:
        profiled = run_kernel_workload(nodes=nodes, sizes=sizes, reps=reps,
                                       seed=seed)
    profile = profiler.to_dict()
    frames = profile["frames"]
    if top_frames is not None and len(frames) > top_frames:
        profile["frames_truncated"] = len(frames) - top_frames
        profile["frames"] = frames[:top_frames]
    doc = {
        "bench": "kernel_profile",
        **baseline,
        "profiled_wall_seconds": profiled["wall_seconds"],
        "profiled_events": profiler.events_recorded,
        "profile": profile,
    }
    return doc, profiler
