"""Write-ahead journal: append/replay roundtrips and corruption handling."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.journal import (
    HEADER_TYPE,
    JOURNAL_SCHEMA_VERSION,
    CampaignJournal,
    FingerprintMismatch,
    JournalCorruption,
    JournalError,
    ScheduleMismatch,
    replay,
    validate_fingerprint,
    validate_schedule,
)

pytestmark = pytest.mark.campaign

HEADER = {"fingerprint": "abc123", "schedule_hash": "def456", "n": 4}


def make_journal(path, records=()):
    with CampaignJournal.create(str(path), HEADER) as journal:
        for record in records:
            journal.append(record)
    return str(path)


def test_create_writes_header_and_replays(tmp_path):
    path = make_journal(tmp_path / "j.jsonl")
    rep = replay(path)
    assert rep.header["type"] == HEADER_TYPE
    assert rep.header["schema_version"] == JOURNAL_SCHEMA_VERSION
    assert rep.header["fingerprint"] == "abc123"
    assert rep.records == []
    assert rep.truncated_tail == ""


def test_create_refuses_existing_path(tmp_path):
    path = make_journal(tmp_path / "j.jsonl")
    with pytest.raises(JournalError, match="already exists"):
        CampaignJournal.create(path, HEADER)


def test_append_and_replay_roundtrip(tmp_path):
    records = [
        {"type": "experiment_started", "index": 0},
        {"type": "experiment_done", "index": 0, "value": 1.5},
    ]
    path = make_journal(tmp_path / "j.jsonl", records)
    rep = replay(path)
    assert rep.records == records
    assert rep.of_type("experiment_done") == [records[1]]


def test_append_requires_type(tmp_path):
    with CampaignJournal.create(str(tmp_path / "j.jsonl"), HEADER) as journal:
        with pytest.raises(ValueError, match="'type' field"):
            journal.append({"index": 0})


def test_open_append_continues(tmp_path):
    path = make_journal(tmp_path / "j.jsonl", [{"type": "a"}])
    with CampaignJournal.open_append(path) as journal:
        journal.append({"type": "b"})
    assert [rec["type"] for rec in replay(path).records] == ["a", "b"]


def test_torn_tail_is_tolerated(tmp_path):
    path = make_journal(tmp_path / "j.jsonl", [{"type": "a"}, {"type": "b"}])
    with open(path, "a") as handle:
        handle.write('{"type": "experiment_done", "ind')  # crash mid-append
    rep = replay(path)
    assert [rec["type"] for rec in rep.records] == ["a", "b"]
    assert rep.truncated_tail.startswith('{"type": "experiment_done"')


def test_garbage_mid_journal_is_corruption(tmp_path):
    path = make_journal(tmp_path / "j.jsonl", [{"type": "a"}])
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"type": "b"}) + "\n")
    with pytest.raises(JournalCorruption, match="unparseable record mid-journal"):
        replay(path)


def test_blank_line_is_corruption(tmp_path):
    path = make_journal(tmp_path / "j.jsonl", [{"type": "a"}])
    with open(path, "a") as handle:
        handle.write("\n" + json.dumps({"type": "b"}) + "\n")
    with pytest.raises(JournalCorruption, match="blank line"):
        replay(path)


def test_untyped_record_is_corruption(tmp_path):
    path = make_journal(tmp_path / "j.jsonl")
    with open(path, "a") as handle:
        handle.write(json.dumps({"index": 3}) + "\n")
        handle.write(json.dumps({"type": "b"}) + "\n")
    with pytest.raises(JournalCorruption, match="not a typed object"):
        replay(path)


def test_missing_journal(tmp_path):
    with pytest.raises(JournalError, match="no journal"):
        replay(str(tmp_path / "absent.jsonl"))


def test_empty_file_is_corruption(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(JournalCorruption, match="no complete header"):
        replay(str(path))


def test_wrong_first_record_is_corruption(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text(json.dumps({"type": "experiment_done"}) + "\n")
    with pytest.raises(JournalCorruption, match="first record has type"):
        replay(str(path))


def test_newer_schema_version_is_refused(tmp_path):
    path = tmp_path / "j.jsonl"
    doc = {"type": HEADER_TYPE, "schema_version": JOURNAL_SCHEMA_VERSION + 1}
    path.write_text(json.dumps(doc) + "\n")
    with pytest.raises(JournalCorruption, match="unsupported journal schema"):
        replay(str(path))


def test_fingerprint_validation(tmp_path):
    header = replay(make_journal(tmp_path / "j.jsonl")).header
    validate_fingerprint(header, "abc123", "j")
    with pytest.raises(FingerprintMismatch, match="different cluster|recorded against"):
        validate_fingerprint(header, "zzz", "j")


def test_schedule_validation(tmp_path):
    header = replay(make_journal(tmp_path / "j.jsonl")).header
    validate_schedule(header, "def456", "j")
    with pytest.raises(ScheduleMismatch, match="schedule hash"):
        validate_schedule(header, "zzz", "j")


def test_header_write_is_atomic(tmp_path):
    """No temp debris and no partial journal after creation."""
    path = tmp_path / "j.jsonl"
    make_journal(path)
    assert [p.name for p in tmp_path.iterdir()] == ["j.jsonl"]


@settings(max_examples=25, deadline=None)
@given(cut=st.integers(min_value=0, max_value=400), data=st.data())
def test_replay_of_any_byte_truncation(tmp_path_factory, cut, data):
    """Chopping a journal at ANY byte yields a loadable prefix or a
    header-level corruption error — never a crash, never garbage records."""
    tmp_path = tmp_path_factory.mktemp("trunc")
    records = [{"type": "experiment_done", "index": i, "value": float(i)}
               for i in range(5)]
    path = make_journal(tmp_path / "j.jsonl", records)
    raw = open(path, "rb").read()
    cut = min(cut, len(raw))
    header_len = raw.index(b"\n") + 1
    cut_path = str(tmp_path / "cut.jsonl")
    with open(cut_path, "wb") as handle:
        handle.write(raw[:cut])
    if cut < header_len:
        with pytest.raises(JournalCorruption):
            replay(cut_path)
    else:
        rep = replay(cut_path)
        # The loadable prefix is exactly the records whose full line fits.
        assert rep.records == records[: max(0, raw[:cut].count(b"\n") - 1)]
    os.unlink(cut_path)
