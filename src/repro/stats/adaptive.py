"""Adaptive repetition: measure until the confidence target is met.

Implements MPIBlib's stopping rule: repeat a measurement until the
Student-t confidence interval at level ``confidence`` is narrower than
``rel_err`` of the mean, bounded by ``min_reps``/``max_reps``.  The paper
runs all its experiments at confidence 95% and relative error 2.5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.stats.ci import SampleSummary, summarize

__all__ = ["MeasurementPolicy", "measure_until_confident"]


@dataclass(frozen=True)
class MeasurementPolicy:
    """Stopping rule for repeated measurements (MPIBlib defaults)."""

    confidence: float = 0.95
    rel_err: float = 0.025
    min_reps: int = 5
    max_reps: int = 100

    def __post_init__(self) -> None:
        if not (0 < self.confidence < 1):
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.rel_err <= 0:
            raise ValueError(f"rel_err must be positive, got {self.rel_err}")
        if not (1 <= self.min_reps <= self.max_reps):
            raise ValueError(f"need 1 <= min_reps <= max_reps, got {self}")

    @staticmethod
    def paper() -> "MeasurementPolicy":
        """The paper's setting: CI 95%, relative error 2.5%."""
        return MeasurementPolicy(confidence=0.95, rel_err=0.025)

    @staticmethod
    def fixed(reps: int) -> "MeasurementPolicy":
        """Exactly ``reps`` repetitions, no early stopping."""
        return MeasurementPolicy(min_reps=reps, max_reps=reps)


def measure_until_confident(
    measure: Callable[[], float],
    policy: MeasurementPolicy = MeasurementPolicy.paper(),
) -> SampleSummary:
    """Call ``measure()`` repeatedly until the policy's CI target is met.

    Returns the summary of all collected samples.  The measurement
    callable is invoked at least ``min_reps`` and at most ``max_reps``
    times; after ``min_reps``, sampling stops as soon as the CI half-width
    falls within ``rel_err`` of the running mean.
    """
    samples: list[float] = []
    for _rep in range(policy.max_reps):
        samples.append(float(measure()))
        if len(samples) >= policy.min_reps:
            summary = summarize(samples, policy.confidence)
            if summary.within(policy.rel_err):
                return summary
    return summarize(samples, policy.confidence)
