"""Tests for the prediction-accuracy scorer."""

import pytest

from repro.analysis import score_models
from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.models import ExtendedLMOModel

KB = 1024


def make(n=8, seed=110):
    gt = GroundTruth.random(n, seed=seed, beta_range=(0.9e8, 1.1e8))
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    return cluster, ExtendedLMOModel.from_ground_truth(gt)


POINTS = [
    ("scatter", "linear", 8 * KB),
    ("scatter", "linear", 48 * KB),
    ("scatter", "binomial", 8 * KB),
    ("gather", "linear", 8 * KB),
]


def test_scoring_ranks_lmo_above_hockney():
    cluster, model = make()
    hockney = model.to_heterogeneous_hockney()
    report = score_models(cluster, {"lmo": model, "het-hockney": hockney}, POINTS)
    assert report.ranking[0] == "lmo"
    assert report.score("lmo").mean_relative_error < 0.2
    assert report.score("het-hockney").mean_relative_error > 0.3


def test_bias_signs_match_the_paper_story():
    """Sequential Hockney is pessimistic (positive bias) on linear
    scatter; the homogeneous parallel reading is optimistic."""
    cluster, model = make(seed=111)
    het = model.to_heterogeneous_hockney()
    report = score_models(
        cluster, {"het-seq": het}, [("scatter", "linear", 32 * KB)]
    )
    assert report.score("het-seq").bias > 0


def test_report_contents_and_rendering():
    cluster, model = make(seed=112)
    report = score_models(cluster, {"lmo": model}, POINTS)
    assert len(report.observations) == len(POINTS)
    assert len(report.predictions) == len(POINTS)
    text = report.render()
    assert "lmo" in text
    assert "mean err" in text
    with pytest.raises(KeyError):
        report.score("nope")


def test_validation():
    cluster, model = make(seed=113)
    with pytest.raises(ValueError):
        score_models(cluster, {"lmo": model}, [])
    with pytest.raises(KeyError):
        score_models(cluster, {"lmo": model}, [("bcast", "telepathy", 8)])
