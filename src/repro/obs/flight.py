"""Crash-surviving flight recorder: the process's black box.

When the supervisor SIGKILLs a wedged server child (PR 8) every span,
event and metric the child held dies with it — exactly the telemetry a
post-mortem needs.  The flight recorder closes that hole with two
mechanisms:

* **Spill file** — a bounded, pre-sized binary file the recorder
  re-mirrors its rings into (``MAGIC | version | length | crc32 | JSON``)
  at most once per ``sync_interval``.  Writes go through the page cache,
  which survives the *process* dying (kill -9 included); only a kernel
  crash or power loss can lose the last sync, which is the right
  trade-off for a hot path (no fsync per sync).  The supervisor points
  each child at a spill via the ``REPRO_FLIGHT_SPILL`` environment
  variable and recovers it into a dump after reaping the child.
* **Dumps** — full JSON documents (``repro-flight-dump`` v1, CRC'd over
  the canonical payload encoding) written atomically *with* fsync on
  the slow paths where durability beats latency: an alert-rule firing
  transition, an unhandled exception (:func:`install_excepthook`), an
  explicit ``repro obs flight dump``, or supervisor recovery.

The payload embeds a full ``repro-telemetry`` snapshot document, so
every existing reader — ``repro obs report``, the dashboard,
``repro.obs.stitch`` — works on a dump unchanged; ``flight stitch``
merges dumps from several processes onto one Chrome-trace timeline via
the PR 9 trace ids.
"""

from __future__ import annotations

import binascii
import json
import os
import struct
import sys
import time
from collections import deque
from typing import Any, Callable, Mapping, Optional

__all__ = [
    "DUMP_FORMAT",
    "ENV_SPILL",
    "FlightRecorder",
    "enable_flight",
    "install_excepthook",
    "load_dump",
    "read_spill",
    "recover_spill",
    "render_inspect",
    "telemetry_of",
    "write_dump",
]

ENV_SPILL = "REPRO_FLIGHT_SPILL"
SPILL_MAGIC = b"RPROFLT\x01"
_SPILL_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
FLIGHT_FORMAT = "repro-flight"
DUMP_FORMAT = "repro-flight-dump"
FLIGHT_VERSION = 1

#: Default spill size: 1 MiB holds ~256 spans + 256 events + a full
#: registry snapshot with lots of headroom.
DEFAULT_SPILL_CAPACITY = 1 << 20


def _crc32(payload_bytes: bytes) -> int:
    return binascii.crc32(payload_bytes) & 0xFFFFFFFF


def _canonical(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


class FlightRecorder:
    """Bounded black box over one telemetry session.

    Keeps its own rings for what the session does not retain — alert
    transitions and periodic metric snapshots — and reads the session's
    span/event rings at sync time, so the hot path adds nothing beyond
    the ``pulse()`` guard.
    """

    def __init__(
        self,
        telemetry: Any,
        process: str = "",
        spill_path: Optional[str] = None,
        spill_capacity: int = DEFAULT_SPILL_CAPACITY,
        dump_dir: Optional[str] = None,
        span_limit: int = 256,
        event_limit: int = 256,
        snapshot_limit: int = 4,
        alert_limit: int = 64,
        sync_interval: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if spill_capacity < 4096:
            raise ValueError(f"spill_capacity too small: {spill_capacity}")
        self._tel = telemetry
        self.process = process or f"pid-{os.getpid()}"
        self.spill_path = spill_path
        self.spill_capacity = spill_capacity
        self.dump_dir = dump_dir
        self.span_limit = span_limit
        self.event_limit = event_limit
        self.sync_interval = sync_interval
        self._clock = clock
        self._alerts: deque[dict[str, Any]] = deque(maxlen=alert_limit)
        self._snapshots: deque[dict[str, Any]] = deque(maxlen=snapshot_limit)
        self._spill_fh: Optional[Any] = None
        self._last_sync: Optional[float] = None
        self._dump_seq = 0
        self.syncs = 0
        self.dumps = 0

    # -- ring feeds ----------------------------------------------------------
    def note_alert(self, rule: str, firing: bool, value: float,
                   threshold: float, level: str = "warning") -> None:
        """Record an alert transition; dump on fire when a dump_dir is set."""
        self._alerts.append({
            "ts": time.time(), "rule": rule, "firing": bool(firing),
            "value": float(value), "threshold": float(threshold),
            "level": level,
        })
        if self.spill_path is not None:
            self.sync(reason="alert")
        if firing and self.dump_dir is not None:
            try:
                self.dump(reason=f"alert_{rule}")
            except OSError:
                pass  # a full disk must not take the alert path down

    def note_snapshot(self) -> None:
        """Append a timestamped metrics snapshot to the snapshot ring."""
        self._snapshots.append({
            "ts": time.time(),
            "metrics": self._tel.registry.snapshot(),
        })

    # -- payload -------------------------------------------------------------
    def payload(self, reason: str = "sync",
                extra: Optional[Mapping[str, Any]] = None,
                span_limit: Optional[int] = None,
                event_limit: Optional[int] = None,
                with_snapshots: bool = True,
                with_metrics: bool = True) -> dict[str, Any]:
        """The black-box document: rings plus an embedded telemetry snapshot."""
        tel = self._tel
        spans = tel.spans.to_dicts()
        events = tel.events.to_dicts()
        n_spans = span_limit if span_limit is not None else self.span_limit
        n_events = event_limit if event_limit is not None else self.event_limit
        doc: dict[str, Any] = {
            "format": FLIGHT_FORMAT,
            "version": FLIGHT_VERSION,
            "process": self.process,
            "pid": os.getpid(),
            "reason": reason,
            "ts_unix": time.time(),
            "syncs": self.syncs,
            "alerts": list(self._alerts),
            "snapshots": list(self._snapshots) if with_snapshots else [],
            "telemetry": {
                "format": "repro-telemetry",
                "version": 1,
                "metrics": tel.registry.snapshot() if with_metrics else {},
                "spans": spans[-n_spans:],
                "spans_epoch_unix": tel.spans.epoch_unix,
                "events": events[-n_events:],
                "dropped": {
                    "spans": tel.spans.dropped + max(0, len(spans) - n_spans),
                    "events": tel.events.dropped + max(0, len(events) - n_events),
                },
            },
        }
        if extra:
            doc.update(dict(extra))
        return doc

    # -- spill ---------------------------------------------------------------
    def _encode_spill(self, reason: str) -> bytes:
        """Frame the payload, trimming rings until it fits the spill."""
        budget = self.spill_capacity - len(SPILL_MAGIC) - _SPILL_HEADER.size
        attempts = (
            {},
            {"span_limit": self.span_limit // 4, "event_limit": self.event_limit // 4},
            {"span_limit": 32, "event_limit": 32, "with_snapshots": False},
            {"span_limit": 8, "event_limit": 8, "with_snapshots": False,
             "with_metrics": False},
        )
        body = b"{}"
        for kwargs in attempts:
            body = _canonical(self.payload(reason=reason, **kwargs))
            if len(body) <= budget:
                break
        else:
            body = b'{"format":"repro-flight","version":1,"truncated":true}'
        return SPILL_MAGIC + _SPILL_HEADER.pack(len(body), _crc32(body)) + body

    def sync(self, reason: str = "sync") -> bool:
        """Re-mirror the rings into the spill file (no fsync — see module
        docstring); returns False when no spill is configured."""
        if self.spill_path is None:
            return False
        frame = self._encode_spill(reason)
        if self._spill_fh is None:
            fd = os.open(self.spill_path, os.O_RDWR | os.O_CREAT, 0o644)
            self._spill_fh = os.fdopen(fd, "r+b")
            self._spill_fh.truncate(self.spill_capacity)
        self._spill_fh.seek(0)
        self._spill_fh.write(frame)
        self._spill_fh.flush()  # into the page cache; survives kill -9
        self.syncs += 1
        self._last_sync = self._clock()
        return True

    def maybe_sync(self, now: Optional[float] = None) -> bool:
        """Sync if ``sync_interval`` has elapsed (the ``pulse()`` path)."""
        if self.spill_path is None:
            return False
        if now is None:
            now = self._clock()
        if self._last_sync is not None and now - self._last_sync < self.sync_interval:
            return False
        return self.sync()

    def close(self) -> None:
        if self._spill_fh is not None:
            try:
                self._spill_fh.close()
            finally:
                self._spill_fh = None

    # -- dumps ---------------------------------------------------------------
    def dump(self, path: Optional[str] = None, reason: str = "manual",
             extra: Optional[Mapping[str, Any]] = None) -> str:
        """Write a durable dump document; returns the path written."""
        if path is None:
            if self.dump_dir is None:
                raise ValueError("no dump path given and no dump_dir configured")
            os.makedirs(self.dump_dir, exist_ok=True)
            self._dump_seq += 1
            safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in reason)
            path = os.path.join(
                self.dump_dir,
                f"flight-{self.process}-{self._dump_seq:03d}-{safe}.json",
            )
        write_dump(self.payload(reason=reason, extra=extra), path)
        self.dumps += 1
        return path


# -- module-level readers/writers (no recorder needed) -----------------------

def write_dump(payload: Mapping[str, Any], path: str) -> dict[str, Any]:
    """Wrap a flight payload in the dump envelope; write atomically + fsync."""
    body = _canonical(payload)
    doc = {
        "format": DUMP_FORMAT,
        "version": FLIGHT_VERSION,
        "crc32": _crc32(body),
        "flight": payload,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return doc


def load_dump(path: str) -> dict[str, Any]:
    """Read and verify a dump document (CRC over the canonical payload)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != DUMP_FORMAT:
        raise ValueError(f"{path}: not a flight dump (format={doc.get('format')!r})")
    if int(doc.get("version", 0)) > FLIGHT_VERSION:
        raise ValueError(f"{path}: dump version {doc.get('version')} is newer "
                         f"than supported ({FLIGHT_VERSION})")
    payload = doc.get("flight")
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: dump has no flight payload")
    expected = doc.get("crc32")
    if expected is not None and _crc32(_canonical(payload)) != int(expected):
        raise ValueError(f"{path}: flight dump CRC mismatch")
    return doc


def read_spill(path: str) -> dict[str, Any]:
    """Decode a spill file into its last-synced payload (CRC-verified)."""
    with open(path, "rb") as fh:
        magic = fh.read(len(SPILL_MAGIC))
        if magic != SPILL_MAGIC:
            raise ValueError(f"{path}: not a flight spill (bad magic)")
        header = fh.read(_SPILL_HEADER.size)
        if len(header) < _SPILL_HEADER.size:
            raise ValueError(f"{path}: truncated spill header")
        length, crc = _SPILL_HEADER.unpack(header)
        body = fh.read(length)
    if len(body) < length:
        raise ValueError(f"{path}: truncated spill body "
                         f"({len(body)} of {length} bytes)")
    if _crc32(body) != crc:
        raise ValueError(f"{path}: spill CRC mismatch (torn write)")
    payload = json.loads(body.decode("utf-8"))
    if payload.get("format") != FLIGHT_FORMAT:
        raise ValueError(f"{path}: spill payload is not a flight document")
    return payload


def recover_spill(spill_path: str, out_path: str, reason: str,
                  extra: Optional[Mapping[str, Any]] = None) -> dict[str, Any]:
    """Promote a dead process's spill into a durable dump.

    The supervisor calls this after reaping a child: the spill's last
    sync becomes a proper fsynced dump, stamped with the recovery reason
    and any supervisor-side context (``extra``).
    """
    payload = read_spill(spill_path)
    payload = dict(payload)
    payload["recovered"] = {
        "reason": reason,
        "spill_path": spill_path,
        "synced_reason": payload.get("reason"),
    }
    payload["reason"] = reason
    if extra:
        payload.update(dict(extra))
    write_dump(payload, out_path)
    return payload


def load_any(path: str) -> dict[str, Any]:
    """Load a flight payload from a dump *or* a raw spill file."""
    with open(path, "rb") as fh:
        head = fh.read(len(SPILL_MAGIC))
    if head == SPILL_MAGIC:
        return read_spill(path)
    doc = load_dump(path)
    return doc["flight"]


def telemetry_of(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The embedded ``repro-telemetry`` snapshot of a flight payload."""
    if payload.get("format") == DUMP_FORMAT:
        payload = payload["flight"]
    tel = payload.get("telemetry")
    if not isinstance(tel, dict):
        raise ValueError("flight payload has no telemetry section")
    return tel


def render_inspect(payload: Mapping[str, Any], span_rows: int = 15,
                   event_rows: int = 10) -> str:
    """Human post-mortem view of one flight payload."""
    if payload.get("format") == DUMP_FORMAT:
        payload = payload["flight"]
    lines: list[str] = []
    ts = payload.get("ts_unix")
    when = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts)) + "Z" if ts else "?"
    lines.append(f"flight recorder: process={payload.get('process', '?')} "
                 f"pid={payload.get('pid', '?')}")
    lines.append(f"  reason={payload.get('reason', '?')}  captured={when}  "
                 f"syncs={payload.get('syncs', 0)}")
    recovered = payload.get("recovered")
    if recovered:
        lines.append(f"  recovered from spill {recovered.get('spill_path')} "
                     f"(last synced for: {recovered.get('synced_reason')})")
    if payload.get("exception"):
        lines.append(f"  exception: {payload['exception']}")
    alerts = payload.get("alerts") or []
    if alerts:
        lines.append(f"  alert transitions ({len(alerts)}):")
        for entry in alerts[-event_rows:]:
            arrow = "FIRING" if entry.get("firing") else "resolved"
            lines.append(f"    [{entry.get('level', '?'):7s}] "
                         f"{entry.get('rule', '?')} {arrow} "
                         f"value={entry.get('value'):.4g} "
                         f"threshold={entry.get('threshold'):.4g}")
    tel = payload.get("telemetry") or {}
    metrics = tel.get("metrics") or {}
    spans = tel.get("spans") or []
    events = tel.get("events") or []
    lines.append(f"  telemetry: {len(metrics)} metric families, "
                 f"{len(spans)} spans, {len(events)} events")
    if events:
        lines.append(f"  last events ({min(event_rows, len(events))}):")
        for entry in events[-event_rows:]:
            lines.append(f"    [{entry.get('level', '?'):7s}] {entry.get('name', '?')} "
                         f"{json.dumps(entry.get('attrs', {}), sort_keys=True)}")
    if spans:
        lines.append(f"  last spans ({min(span_rows, len(spans))}):")
        for entry in spans[-span_rows:]:
            dur = entry.get("end", 0.0) - entry.get("start", 0.0)
            trace = entry.get("trace_id") or "-"
            lines.append(f"    {entry.get('name', '?'):28s} "
                         f"{dur * 1e3:9.3f} ms  trace={trace}")
    return "\n".join(lines)


def enable_flight(
    process: str = "",
    spill_path: Optional[str] = None,
    dump_dir: Optional[str] = None,
    sync_interval: float = 0.25,
    **kwargs: Any,
) -> FlightRecorder:
    """Attach a flight recorder to the active telemetry session.

    Enables telemetry if needed; an already-attached recorder is
    returned unchanged.  ``spill_path`` defaults to the
    ``REPRO_FLIGHT_SPILL`` environment variable (how the supervisor
    hands each child its spill).
    """
    from repro.obs import runtime as _runtime

    tel = _runtime.enable()
    if tel.flight is None:
        if spill_path is None:
            spill_path = os.environ.get(ENV_SPILL) or None
        tel.flight = FlightRecorder(
            tel, process=process, spill_path=spill_path, dump_dir=dump_dir,
            sync_interval=sync_interval, **kwargs,
        )
    return tel.flight


def install_excepthook() -> Callable[..., Any]:
    """Dump the black box on unhandled exceptions; returns the old hook.

    The dump happens before the normal traceback printing, never
    replaces it, and swallows its own failures — a broken disk must not
    mask the original crash.
    """
    from repro.obs import runtime as _runtime

    previous = sys.excepthook

    def _hook(exc_type, exc, tb):
        tel = _runtime.ACTIVE
        recorder = getattr(tel, "flight", None) if tel is not None else None
        if recorder is not None:
            try:
                if recorder.dump_dir is not None:
                    recorder.dump(reason="unhandled_exception",
                                  extra={"exception": repr(exc)})
                elif recorder.spill_path is not None:
                    recorder.sync(reason="unhandled_exception")
            except Exception:  # noqa: BLE001 - never mask the real crash
                pass
        previous(exc_type, exc, tb)

    sys.excepthook = _hook
    return previous
