"""Tests for the MPIBlib-style benchmark driver and timing methods."""

import pytest

from repro.benchlib import CollectiveBenchmark, duration
from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.mpi import run_collective
from repro.stats import MeasurementPolicy

KB = 1024


def quiet_cluster(n=6, seed=0, noise=None):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=IDEAL,
        noise=noise if noise is not None else NoiseModel.none(),
        seed=seed,
    )


def test_duration_methods():
    cluster = quiet_cluster()
    run = run_collective(cluster, "scatter", "linear", nbytes=4 * KB)
    assert duration(run, "global") == run.time
    assert duration(run, "maxrank") == run.time
    assert duration(run, "root") == run.root_time
    assert duration(run, "root") < duration(run, "global")
    with pytest.raises(KeyError, match="timing method"):
        duration(run, "psychic")


def test_benchmark_deterministic_cluster_stops_at_min_reps():
    bench = CollectiveBenchmark(quiet_cluster(), policy=MeasurementPolicy(min_reps=3, max_reps=50))
    point = bench.measure("scatter", "linear", 8 * KB)
    assert point.summary.count == 3
    assert point.mean > 0


def test_benchmark_reaches_paper_confidence_on_noisy_cluster():
    cluster = quiet_cluster(noise=NoiseModel(rel_sigma=0.03, spike_prob=0.0))
    bench = CollectiveBenchmark(cluster)
    point = bench.measure("gather", "linear", 4 * KB)
    assert point.summary.within(0.025)
    assert point.summary.confidence == 0.95


def test_benchmark_time_accounting_accumulates():
    bench = CollectiveBenchmark(quiet_cluster(), policy=MeasurementPolicy.fixed(2))
    p1 = bench.measure("scatter", "linear", KB)
    total_after_one = bench.benchmark_time
    bench.measure("scatter", "binomial", KB)
    assert p1.benchmark_time > 0
    assert bench.benchmark_time > total_after_one


def test_sweep_covers_all_sizes():
    bench = CollectiveBenchmark(quiet_cluster(), policy=MeasurementPolicy.fixed(1))
    sizes = [KB, 2 * KB, 4 * KB]
    points = bench.sweep("scatter", "linear", sizes)
    assert sorted(points) == sizes
    assert all(points[s].nbytes == s for s in sizes)
    means = [points[s].mean for s in sizes]
    assert means == sorted(means)  # larger messages take longer


def test_root_timing_method_selectable():
    bench = CollectiveBenchmark(
        quiet_cluster(), policy=MeasurementPolicy.fixed(1), timing_method="root"
    )
    root_point = bench.measure("scatter", "linear", 8 * KB)
    bench_global = CollectiveBenchmark(quiet_cluster(), policy=MeasurementPolicy.fixed(1))
    global_point = bench_global.measure("scatter", "linear", 8 * KB)
    assert root_point.mean < global_point.mean


# ------------------------------------------------------------------- suite
def test_suite_measures_grid_and_marks_winners():
    from repro.benchlib import BenchmarkSuite
    from repro.cluster import random_cluster

    cluster = SimulatedCluster(
        random_cluster(8, seed=30),
        ground_truth=GroundTruth.random(8, seed=30, beta_range=(0.9e8, 1.1e8)),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=30,
    )
    suite = BenchmarkSuite(cluster, policy=MeasurementPolicy.fixed(2))
    result = suite.run(operations=["bcast"], sizes=[KB, 128 * KB])
    algos = {algo for (_op, algo, _m) in result.points}
    assert algos == {"linear", "binomial", "pipeline", "van_de_geijn"}
    # The reported winner is the argmin of the measured means, per size.
    for m in (KB, 128 * KB):
        means = {algo: result.points[("bcast", algo, m)].mean for algo in algos}
        assert result.best_algorithm("bcast", m) == min(means, key=means.__getitem__)
    # Winners differ across the size range on this hardware (the whole
    # point of switching), and the table marks them.
    text = result.render()
    assert "*" in text and "bcast" in text


def test_suite_skips_power_of_two_only_algorithms():
    from repro.benchlib import BenchmarkSuite

    suite = BenchmarkSuite(quiet_cluster(n=6, seed=31),
                           policy=MeasurementPolicy.fixed(1))
    result = suite.run(operations=["allgather"], sizes=[KB])
    algos = {algo for (_op, algo, _m) in result.points}
    assert "ring" in algos
    assert "recursive_doubling" not in algos  # n=6 is not a power of two


def test_suite_unknown_point_raises():
    from repro.benchlib import SuiteResult

    with pytest.raises(KeyError):
        SuiteResult().best_algorithm("bcast", 1)


def test_suite_barrier_measured_once():
    from repro.benchlib import BenchmarkSuite

    suite = BenchmarkSuite(quiet_cluster(n=4, seed=32),
                           policy=MeasurementPolicy.fixed(1))
    result = suite.run(operations=["barrier"], sizes=[KB, 2 * KB, 4 * KB])
    barrier_points = [k for k in result.points if k[0] == "barrier"]
    assert len(barrier_points) == 1
