"""Tests for empirical-parameter detection (M1/M2, escalations, leaps)."""

import pytest

from repro.cluster import (
    IDEAL,
    LAM_7_1_3,
    MPICH_1_2_7,
    NoiseModel,
    SimulatedCluster,
    table1_cluster,
)
from repro.estimation import (
    DESEngine,
    detect_gather_irregularity,
    detect_scatter_leap,
    sweep_collective,
)
from repro.estimation.empirical import GatherSweep

KB = 1024


def lam_cluster(seed=0, profile=LAM_7_1_3):
    return SimulatedCluster(
        table1_cluster(), profile=profile, noise=NoiseModel.none(), seed=seed
    )


@pytest.fixture(scope="module")
def lam_gather_sweep():
    engine = DESEngine(lam_cluster(seed=1))
    sizes = [1 * KB, 2 * KB, 4 * KB, 6 * KB, 8 * KB, 16 * KB, 32 * KB,
             48 * KB, 64 * KB, 80 * KB, 96 * KB, 128 * KB]
    return sweep_collective(engine, "gather", "linear", sizes=sizes, reps=12)


def test_gather_thresholds_bracket_lam_values(lam_gather_sweep):
    """M1 ~ 4 KB and M2 ~ 65 KB under LAM on 16 nodes (paper Sec. III)."""
    irr = detect_gather_irregularity(lam_gather_sweep)
    assert 2 * KB <= irr.m1 <= 8 * KB
    assert 48 * KB <= irr.m2 <= 96 * KB


def test_gather_escalations_magnitude_is_rto_scale(lam_gather_sweep):
    """Escalations 'are non-deterministic and reach 0.25 sec'."""
    irr = detect_gather_irregularity(lam_gather_sweep)
    assert 0.15 <= irr.escalation_value <= 0.3


def test_gather_escalation_probability_grows(lam_gather_sweep):
    irr = detect_gather_irregularity(lam_gather_sweep)
    mid = (irr.m1 + irr.m2) / 2
    assert irr.escalation_probability(mid) > 0
    assert irr.escalation_probability(irr.m2) >= irr.escalation_probability(mid)


def test_mpich_profile_shifts_thresholds():
    """MPICH 1.2.7: M1 ~ 3 KB, M2 ~ 125 KB (paper Sec. III)."""
    engine = DESEngine(lam_cluster(seed=2, profile=MPICH_1_2_7))
    sizes = [1 * KB, 2 * KB, 3 * KB, 4 * KB, 8 * KB, 32 * KB, 64 * KB,
             96 * KB, 112 * KB, 125 * KB, 144 * KB, 176 * KB]
    sweep = sweep_collective(engine, "gather", "linear", sizes=sizes, reps=20)
    irr = detect_gather_irregularity(sweep)
    # Escalation onset near 3 KB is probabilistic; with finite repetitions
    # the detected M1 lands within the first escalating sizes.
    assert irr.m1 <= 8 * KB
    assert 112 * KB <= irr.m2 <= 176 * KB


def test_no_escalations_on_ideal_profile_raises():
    engine = DESEngine(lam_cluster(seed=3, profile=IDEAL))
    sweep = sweep_collective(engine, "gather", "linear",
                             sizes=[4 * KB, 16 * KB, 48 * KB], reps=5)
    with pytest.raises(ValueError, match="no escalations"):
        detect_gather_irregularity(sweep)


def test_scatter_leap_detected_at_eager_threshold():
    """Linear scatter leaps at LAM's 64 KB eager/rendezvous switch."""
    engine = DESEngine(lam_cluster(seed=4))
    sizes = [8 * KB, 16 * KB, 24 * KB, 32 * KB, 40 * KB, 48 * KB, 56 * KB,
             64 * KB, 72 * KB, 80 * KB, 96 * KB]
    sweep = sweep_collective(engine, "scatter", "linear", sizes=sizes, reps=3)
    leap = detect_scatter_leap(sweep)
    assert 64 * KB < leap.location <= 80 * KB
    assert leap.magnitude > 0


def test_no_leap_on_ideal_profile():
    engine = DESEngine(lam_cluster(seed=5, profile=IDEAL))
    sizes = [8 * KB, 32 * KB, 56 * KB, 64 * KB, 72 * KB, 96 * KB]
    sweep = sweep_collective(engine, "scatter", "linear", sizes=sizes, reps=3)
    with pytest.raises(ValueError, match="no leap"):
        detect_scatter_leap(sweep)


def test_sweep_statistics_accessors():
    sweep = GatherSweep(sizes=(10, 20), samples={10: [1.0, 3.0], 20: [2.0, 2.0]})
    assert sweep.medians().tolist() == [2.0, 2.0]
    assert sweep.minima().tolist() == [1.0, 2.0]


def test_detect_scatter_leap_needs_enough_sizes():
    sweep = GatherSweep(sizes=(1, 2, 3), samples={1: [1.0], 2: [2.0], 3: [3.0]})
    with pytest.raises(ValueError, match="at least 4"):
        detect_scatter_leap(sweep)
