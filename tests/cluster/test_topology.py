"""Tests for the two-switch topology extension.

The point: within one switch nothing changes (the LMO platform
assumption holds); across switches, isolated flows stay linear (so
estimation still works) but *concurrent* flows contend on the uplink —
the effect the single-switch model cannot express, and a measurable
degradation of its collective predictions.
"""

import numpy as np
import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.cluster.topology import TwoSwitchTopology
from repro.estimation import DESEngine, estimate_extended_lmo
from repro.models import predict_linear_scatter
from repro.mpi import run_collective

KB = 1024


def two_switch_cluster(n=8, seed=95):
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed, beta_range=(0.9e8, 1.1e8)),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )
    cluster.attach_topology(TwoSwitchTopology.split_evenly(n))
    return cluster


# ----------------------------------------------------------------- structure
def test_topology_validation():
    with pytest.raises(ValueError, match="partition"):
        TwoSwitchTopology(left=(0, 1), right=(1, 2))
    with pytest.raises(ValueError, match="at least one"):
        TwoSwitchTopology(left=(0, 1, 2), right=())
    with pytest.raises(ValueError, match="uplink"):
        TwoSwitchTopology(left=(0,), right=(1,), uplink_rate=0)


def test_same_switch_classification():
    topo = TwoSwitchTopology.split_evenly(8)
    assert topo.same_switch(0, 3)
    assert topo.same_switch(4, 7)
    assert not topo.same_switch(0, 4)


def test_apply_adds_latency_only_across_switches():
    gt = GroundTruth.random(6, seed=1)
    topo = TwoSwitchTopology.split_evenly(6, uplink_latency=50e-6)
    new = topo.apply_to_ground_truth(gt)
    assert new.L[0, 1] == pytest.approx(gt.L[0, 1])
    assert new.L[0, 4] == pytest.approx(gt.L[0, 4] + 50e-6)
    assert np.array_equal(new.beta, gt.beta)


def test_apply_rejects_size_mismatch():
    with pytest.raises(ValueError):
        TwoSwitchTopology.split_evenly(6).apply_to_ground_truth(GroundTruth.random(4))


# ------------------------------------------------------------------ transport
def test_intra_switch_transfers_unchanged():
    cluster = two_switch_cluster()
    gt = cluster.ground_truth
    done = cluster.sim.spawn(cluster.transmit(0, 1, 32 * KB))
    cluster.sim.run(until=done)
    expected = gt.send_cost(0, 32 * KB) + gt.wire_time(0, 1, 32 * KB)
    assert cluster.sim.now == pytest.approx(expected, rel=1e-12)


def test_cross_switch_transfer_pays_uplink_serially():
    cluster = two_switch_cluster()
    gt = cluster.ground_truth
    topo = cluster.topology
    M = 32 * KB
    done = cluster.sim.spawn(cluster.transmit(0, 4, M))
    cluster.sim.run(until=done)
    expected = (
        gt.send_cost(0, M) + gt.L[0, 4] + M / topo.uplink_rate + M / gt.beta[0, 4]
    )
    assert cluster.sim.now == pytest.approx(expected, rel=1e-12)


def test_concurrent_cross_switch_flows_contend_on_uplink():
    """Two cross-switch flows to *different* destinations serialize on the
    uplink; on one switch they would run fully in parallel."""
    cluster = two_switch_cluster()
    M = 64 * KB
    cluster.sim.spawn(cluster.transmit(0, 4, M))
    cluster.sim.spawn(cluster.transmit(1, 5, M))
    cluster.sim.run()
    with_uplink = cluster.sim.now

    flat = SimulatedCluster(
        random_cluster(8, seed=95),
        ground_truth=cluster.ground_truth,  # same parameters, one switch
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=95,
    )
    flat.sim.spawn(flat.transmit(0, 4, M))
    flat.sim.spawn(flat.transmit(1, 5, M))
    flat.sim.run()
    assert with_uplink > flat.sim.now + 0.8 * M / cluster.topology.uplink_rate


# ------------------------------------------------------------------ modelling
def test_estimation_technique_relies_on_the_platform_assumption():
    """The paper scopes its method to single-switch clusters for a
    reason: the one-to-two equations assume all of a triplet's links
    behave alike.  On two switches, triplets straddling the uplink
    violate eq. (9)'s same-maximizer assumption and the per-pair fits
    scatter badly — while the identical procedure on a single switch
    (same hardware parameters) is tight."""
    n = 8
    gt = GroundTruth.random(n, seed=96, beta_range=(0.9e8, 1.1e8))

    def max_p2p_error(cluster, reference) -> float:
        model = estimate_extended_lmo(DESEngine(cluster), reps=1, clamp=True).model
        M = 48 * KB
        return max(
            abs(model.p2p_time(i, j, M) - reference(i, j, M)) / reference(i, j, M)
            for i in range(n)
            for j in range(n)
            if i != j
        )

    flat = SimulatedCluster(random_cluster(n, seed=96), ground_truth=gt,
                            profile=IDEAL, noise=NoiseModel.none(), seed=96)
    flat_err = max_p2p_error(flat, lambda i, j, M: gt.p2p_time(i, j, M))

    two = SimulatedCluster(random_cluster(n, seed=96), ground_truth=gt,
                           profile=IDEAL, noise=NoiseModel.none(), seed=96)
    two.attach_topology(TwoSwitchTopology.split_evenly(n))
    topo, gt2 = two.topology, two.ground_truth

    def two_reference(i, j, M):
        extra = 0.0 if topo.same_switch(i, j) else M / topo.uplink_rate
        return gt2.p2p_time(i, j, M) + extra

    two_err = max_p2p_error(two, two_reference)

    assert flat_err < 0.1  # single switch: the technique is tight
    assert two_err > 0.25  # two switches: the equations break down
    assert two_err > 2 * flat_err


def test_scatter_prediction_degrades_across_switches():
    """The estimated model predicts an intra-switch scatter well, but
    underpredicts a cross-switch scatter: the uplink contention (n/2
    flows through one pipe) is invisible to any p2p model."""
    cluster = two_switch_cluster(seed=97)
    model = estimate_extended_lmo(DESEngine(cluster), reps=1, clamp=True).model
    M = 48 * KB

    intra = run_collective(cluster, "scatter", "linear", nbytes=M, root=0).time
    # Restrict prediction/observation to one switch: participants 0..3.
    intra_members = [0, 1, 2, 3]
    from repro.mpi import run_group_collective

    intra = run_group_collective(cluster, intra_members, "scatter", "linear",
                                 nbytes=M).time
    intra_pred = predict_linear_scatter(model, M, root=0, participants=intra_members)
    intra_err = abs(intra_pred - intra) / intra

    full = run_collective(cluster, "scatter", "linear", nbytes=M, root=0).time
    full_pred = predict_linear_scatter(model, M, root=0)
    full_err = abs(full_pred - full) / full

    assert intra_err < 0.15  # platform assumption holds within a switch
    assert full_pred < full  # contention makes reality slower than the model
    assert full_err > intra_err  # ... and measurably less predictable


def test_reset_preserves_topology():
    cluster = two_switch_cluster()
    cluster.reset()
    assert cluster.uplink is not None
    assert cluster.topology is not None


def test_detach_topology_restores_single_switch():
    cluster = two_switch_cluster()
    cluster.attach_topology(None)
    assert cluster.uplink is None
    M = 32 * KB
    done = cluster.sim.spawn(cluster.transmit(0, 4, M))
    cluster.sim.run(until=done)
    gt = cluster.ground_truth
    # No uplink occupancy any more (latency stays: ground truth was rewritten).
    expected = gt.send_cost(0, M) + gt.wire_time(0, 4, M)
    assert cluster.sim.now == pytest.approx(expected, rel=1e-12)
