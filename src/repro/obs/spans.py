"""Wall-clock span tracing with contextvars nesting.

A *span* is a named wall-time interval with attributes and a parent —
the observability twin of the simulated-time intervals
:class:`repro.simlib.trace.Tracer` records.  Both export to the same
Chrome trace-event JSON (``chrome://tracing`` / Perfetto), so one file
can show "what the process did" (wall spans: campaign units, heal
cycles, sweep evaluations) above "what the simulated hardware did"
(sim-time lanes: CPU holds, wire occupancy, RTO gaps) — see
:func:`repro.obs.export.chrome_trace`.

Usage::

    recorder = SpanRecorder()
    with recorder.span("campaign.unit", index=17):
        ...

Nesting is tracked with a :mod:`contextvars` variable, so spans nest
correctly across generators and threads without any explicit parent
bookkeeping.  The recorder keeps a bounded ring of finished spans
(oldest dropped first) — telemetry must never grow without bound.
"""

from __future__ import annotations

import contextvars
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs import trace as _trace

__all__ = ["Span", "SpanRecorder"]

_CURRENT_SPAN: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One finished (or in-flight) wall-clock interval."""

    name: str
    start: float
    end: Optional[float] = None
    span_id: int = 0
    parent_id: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: The distributed trace this span belongs to (32 hex chars), stamped
    #: from :mod:`repro.obs.trace`'s current context; ``None`` = untraced.
    trace_id: Optional[str] = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Span":
        return cls(
            name=doc["name"],
            start=float(doc["start"]),
            end=None if doc.get("end") is None else float(doc["end"]),
            span_id=int(doc.get("span_id", 0)),
            parent_id=doc.get("parent_id"),
            attrs=dict(doc.get("attrs", {})),
            trace_id=doc.get("trace_id"),
        )


class _SpanContext:
    """Context manager driving one span's lifetime."""

    __slots__ = ("_recorder", "_span", "_token")

    def __init__(self, recorder: "SpanRecorder", span: Span):
        self._recorder = recorder
        self._span = span
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        # The parent span MUST be restored no matter what goes wrong in
        # here (a monkeypatched clock, a failing ring append): an orphaned
        # context variable would silently re-parent every later span in
        # this task onto a finished one.
        try:
            self._span.end = self._recorder.clock()
            if exc_type is not None:
                self._span.attrs.setdefault("error", exc_type.__name__)
        finally:
            if self._token is not None:
                token, self._token = self._token, None
                _CURRENT_SPAN.reset(token)
            self._recorder._finish(self._span)


class SpanRecorder:
    """Collects finished spans into a bounded ring buffer.

    The clock is :func:`time.perf_counter` rebased to zero at recorder
    creation, so span timestamps are small, stable numbers independent
    of process start time (and Chrome-trace friendly).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._epoch = time.perf_counter()
        #: Wall-clock instant of this recorder's time zero — lets the
        #: trace stitcher align span clocks from different processes.
        self.epoch_unix = time.time()
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._next_id = 1
        self.dropped = 0

    def clock(self) -> float:
        """Seconds since this recorder was created."""
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span; use as ``with recorder.span("name", k=v):``."""
        parent = _CURRENT_SPAN.get()
        ctx = _trace.current()
        span = Span(
            name=name,
            start=self.clock(),
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
            trace_id=None if ctx is None else ctx.trace_id,
        )
        self._next_id += 1
        return _SpanContext(self, span)

    def current(self) -> Optional[Span]:
        """The innermost open span in this context (None outside any)."""
        return _CURRENT_SPAN.get()

    def _finish(self, span: Span) -> None:
        if len(self._finished) == self._finished.maxlen:
            self.dropped += 1
        self._finished.append(span)

    # -- reading -------------------------------------------------------------
    def finished(self, name: Optional[str] = None) -> list[Span]:
        """Finished spans in completion order (optionally one name only)."""
        spans = list(self._finished)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def clear(self) -> None:
        self._finished.clear()
        self.dropped = 0

    def to_dicts(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self._finished]
