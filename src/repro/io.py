"""JSON (de)serialization of models, ground truths and irregularities.

Estimation is expensive (the paper spends a section minimizing its cost),
so estimated models are worth persisting: estimate once at cluster-bringup,
reload at application start.  The format is a tagged JSON document —
human-inspectable, diff-friendly, and versioned.

Example
-------
>>> from repro.cluster import GroundTruth
>>> from repro.models import ExtendedLMOModel
>>> from repro.io import dumps, loads
>>> model = ExtendedLMOModel.from_ground_truth(GroundTruth.random(3))
>>> loads(dumps(model)).p2p_time(0, 1, 1024) == model.p2p_time(0, 1, 1024)
True
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.cluster.params import GroundTruth
from repro.cluster.spec import ClusterSpec, NodeType
from repro.models.hockney import HeterogeneousHockneyModel, HockneyModel
from repro.models.loggp import LogGPModel
from repro.models.logp import LogPModel
from repro.models.lmo import LMOModel
from repro.models.lmo_extended import ExtendedLMOModel, GatherIrregularity
from repro.models.plogp import PiecewiseLinear, PLogPModel

__all__ = ["dumps", "loads", "save", "load", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def _matrix(values: np.ndarray) -> list:
    """JSON-safe nested lists (inf encoded as the string 'inf')."""
    def encode(x: float):
        if np.isinf(x):
            return "inf"
        return float(x)

    if values.ndim == 1:
        return [encode(x) for x in values]
    return [[encode(x) for x in row] for row in values]


def _unmatrix(values: list) -> np.ndarray:
    def decode(x):
        return np.inf if x == "inf" else float(x)

    if values and isinstance(values[0], list):
        return np.array([[decode(x) for x in row] for row in values])
    return np.array([decode(x) for x in values])


# -- per-type encoders ---------------------------------------------------------
def _encode(obj: Any) -> dict:
    if isinstance(obj, ClusterSpec):
        return {
            "type": "ClusterSpec",
            "name": obj.name,
            "nodes": [
                {
                    "model": node.model, "os": node.os, "processor": node.processor,
                    "cpu_ghz": node.cpu_ghz, "fsb_mhz": node.fsb_mhz,
                    "l2_cache_kb": node.l2_cache_kb, "arch_factor": node.arch_factor,
                }
                for node in obj.nodes
            ],
        }
    if isinstance(obj, GroundTruth):
        return {"type": "GroundTruth", "C": _matrix(obj.C), "t": _matrix(obj.t),
                "L": _matrix(obj.L), "beta": _matrix(obj.beta)}
    if isinstance(obj, ExtendedLMOModel):
        doc = {"type": "ExtendedLMOModel", "C": _matrix(obj.C), "t": _matrix(obj.t),
               "L": _matrix(obj.L), "beta": _matrix(obj.beta)}
        if obj.gather_irregularity is not None:
            doc["gather_irregularity"] = _encode(obj.gather_irregularity)
        return doc
    if isinstance(obj, LMOModel):
        return {"type": "LMOModel", "C": _matrix(obj.C), "t": _matrix(obj.t),
                "beta": _matrix(obj.beta)}
    if isinstance(obj, GatherIrregularity):
        return {"type": "GatherIrregularity", "m1": obj.m1, "m2": obj.m2,
                "escalation_value": obj.escalation_value,
                "p_at_m1": obj.p_at_m1, "p_at_m2": obj.p_at_m2}
    if isinstance(obj, HeterogeneousHockneyModel):
        return {"type": "HeterogeneousHockneyModel",
                "alpha": _matrix(obj.alpha), "beta": _matrix(obj.beta)}
    if isinstance(obj, HockneyModel):
        return {"type": "HockneyModel", "alpha": obj.alpha, "beta": obj.beta, "n": obj.n}
    if isinstance(obj, LogGPModel):
        return {"type": "LogGPModel", "L": obj.L, "o": obj.o, "g": obj.g,
                "G": obj.G, "P": obj.P}
    if isinstance(obj, LogPModel):
        return {"type": "LogPModel", "L": obj.L, "o": obj.o, "g": obj.g,
                "P": obj.P, "packet_bytes": obj.packet_bytes}
    if isinstance(obj, PLogPModel):
        return {"type": "PLogPModel", "L": obj.L, "P": obj.P,
                "o_s": _encode(obj.o_s), "o_r": _encode(obj.o_r), "g": _encode(obj.g)}
    if isinstance(obj, PiecewiseLinear):
        return {"type": "PiecewiseLinear", "xs": list(obj.xs), "ys": list(obj.ys)}
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def _decode(doc: dict) -> Any:
    kind = doc.get("type")
    if kind == "ClusterSpec":
        return ClusterSpec(
            nodes=tuple(NodeType(**node) for node in doc["nodes"]),
            name=doc["name"],
        )
    if kind == "GroundTruth":
        return GroundTruth(C=_unmatrix(doc["C"]), t=_unmatrix(doc["t"]),
                           L=_unmatrix(doc["L"]), beta=_unmatrix(doc["beta"]))
    if kind == "ExtendedLMOModel":
        irregularity = None
        if "gather_irregularity" in doc:
            irregularity = _decode(doc["gather_irregularity"])
        return ExtendedLMOModel(C=_unmatrix(doc["C"]), t=_unmatrix(doc["t"]),
                                L=_unmatrix(doc["L"]), beta=_unmatrix(doc["beta"]),
                                gather_irregularity=irregularity)
    if kind == "LMOModel":
        return LMOModel(C=_unmatrix(doc["C"]), t=_unmatrix(doc["t"]),
                        beta=_unmatrix(doc["beta"]))
    if kind == "GatherIrregularity":
        return GatherIrregularity(m1=doc["m1"], m2=doc["m2"],
                                  escalation_value=doc["escalation_value"],
                                  p_at_m1=doc["p_at_m1"], p_at_m2=doc["p_at_m2"])
    if kind == "HeterogeneousHockneyModel":
        return HeterogeneousHockneyModel(alpha=_unmatrix(doc["alpha"]),
                                         beta=_unmatrix(doc["beta"]))
    if kind == "HockneyModel":
        return HockneyModel(alpha=doc["alpha"], beta=doc["beta"], n=doc["n"])
    if kind == "LogGPModel":
        return LogGPModel(L=doc["L"], o=doc["o"], g=doc["g"], G=doc["G"], P=doc["P"])
    if kind == "LogPModel":
        return LogPModel(L=doc["L"], o=doc["o"], g=doc["g"], P=doc["P"],
                         packet_bytes=doc["packet_bytes"])
    if kind == "PLogPModel":
        return PLogPModel(L=doc["L"], P=doc["P"], o_s=_decode(doc["o_s"]),
                          o_r=_decode(doc["o_r"]), g=_decode(doc["g"]))
    if kind == "PiecewiseLinear":
        return PiecewiseLinear(xs=tuple(doc["xs"]), ys=tuple(doc["ys"]))
    raise ValueError(f"unknown document type {kind!r}")


# -- public API -----------------------------------------------------------------
def dumps(obj: Any, indent: int = 2) -> str:
    """Serialize a model / ground truth / irregularity to a JSON string."""
    return json.dumps(
        {"format": "repro-model", "version": FORMAT_VERSION, "payload": _encode(obj)},
        indent=indent,
    )


def loads(text: str) -> Any:
    """Inverse of :func:`dumps` (validates the envelope)."""
    doc = json.loads(text)
    if doc.get("format") != "repro-model":
        raise ValueError("not a repro-model document")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {doc.get('version')!r}")
    return _decode(doc["payload"])


def save(obj: Any, path: str) -> None:
    """Serialize to a file."""
    with open(path, "w") as handle:
        handle.write(dumps(obj))


def load(path: str) -> Any:
    """Deserialize from a file."""
    with open(path) as handle:
        return loads(handle.read())
