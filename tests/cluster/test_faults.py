"""Fault-injection subsystem: plans, windows, and transport effects."""

import math

import pytest

from repro.cluster import (
    FaultInjector,
    FaultPlan,
    FlakyLink,
    IDEAL,
    LAM_7_1_3,
    GroundTruth,
    LinkDegradation,
    NodeHang,
    NodeSlowdown,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.estimation import DESEngine, roundtrip

KB = 1024


def quiet(n=4, seed=5, profile=IDEAL):
    gt = GroundTruth.random(n, seed=seed)
    return SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=profile, noise=NoiseModel.none(), seed=seed,
    )


def rt(cluster, i, j, nbytes=8 * KB):
    return DESEngine(cluster).run(roundtrip(i, j, nbytes))


# -- fault dataclass validation ----------------------------------------------

def test_slowdown_rejects_nonpositive_factor():
    with pytest.raises(ValueError, match="factor"):
        NodeSlowdown(node=0, factor=0.0)


def test_slowdown_rejects_inverted_window():
    with pytest.raises(ValueError, match="start"):
        NodeSlowdown(node=0, factor=2.0, start=1.0, end=0.5)


def test_link_degradation_rejects_self_link():
    with pytest.raises(ValueError, match="distinct"):
        LinkDegradation(a=1, b=1, latency_factor=2.0)


def test_link_degradation_rejects_improving_factors():
    with pytest.raises(ValueError, match="latency_factor"):
        LinkDegradation(a=0, b=1, latency_factor=0.5)
    with pytest.raises(ValueError, match="rate_factor"):
        LinkDegradation(a=0, b=1, rate_factor=1.5)


def test_flaky_link_rejects_bad_probability():
    with pytest.raises(ValueError, match="loss_prob"):
        FlakyLink(a=0, b=1, loss_prob=0.0)
    with pytest.raises(ValueError, match="loss_prob"):
        FlakyLink(a=0, b=1, loss_prob=1.5)


def test_hang_must_be_finite():
    with pytest.raises(ValueError, match="finite"):
        NodeHang(node=0, start=0.0, duration=math.inf)
    assert NodeHang(node=0, start=1.0, duration=0.5).end == 1.5


def test_plan_rejects_non_faults_and_out_of_range_nodes():
    with pytest.raises(TypeError, match="not a fault"):
        FaultPlan(faults=("whoops",))
    plan = FaultPlan(faults=(NodeSlowdown(node=7, factor=2.0),))
    with pytest.raises(ValueError, match="out-of-range"):
        plan.validate(4)
    plan.validate(8)


def test_plan_describe_and_nodes_touched():
    plan = FaultPlan(faults=(
        NodeSlowdown(node=1, factor=4.0),
        FlakyLink(a=0, b=2, loss_prob=0.2, start=1.0, end=2.0),
        LinkDegradation(a=2, b=3, latency_factor=3.0, rate_factor=0.5),
        NodeHang(node=0, start=0.5, duration=0.25),
    ))
    assert plan.nodes_touched() == {0, 1, 2, 3}
    text = plan.describe()
    assert "slow node 1 x4" in text
    assert "flaky link 0-2" in text and "[1, 2)" in text
    assert "degrade link 2-3" in text
    assert "hang node 0" in text
    assert FaultPlan().describe() == "(no faults)"
    assert len(plan) == 4


def test_attach_validates_against_cluster_size():
    cluster = quiet(n=4)
    plan = FaultPlan(faults=(NodeSlowdown(node=9, factor=2.0),))
    with pytest.raises(ValueError, match="out-of-range"):
        cluster.attach_injector(FaultInjector(plan))


# -- transport effects --------------------------------------------------------

def test_node_slowdown_inflates_roundtrips_through_that_node():
    baseline = rt(quiet(), 0, 1)
    other = rt(quiet(), 2, 3)
    cluster = quiet()
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(NodeSlowdown(node=0, factor=4.0),),
    )))
    assert rt(cluster, 0, 1) > baseline
    # A pair not touching node 0 is unaffected, bit-for-bit.
    assert rt(cluster, 2, 3) == other


def test_brownout_auto_reverts_on_the_cumulative_clock():
    baseline = rt(quiet(), 0, 1)
    cluster = quiet()
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(NodeSlowdown(node=0, factor=8.0, start=0.0, end=0.004),),
    )))
    during = rt(cluster, 0, 1)
    assert during > baseline
    # Burn cumulative simulated time past the window's end.
    while cluster.injector.now < 0.004:
        rt(cluster, 2, 3)
    assert rt(cluster, 0, 1) == baseline


def test_link_degradation_slows_exactly_that_link():
    baseline_01 = rt(quiet(), 0, 1)
    baseline_02 = rt(quiet(), 0, 2)
    cluster = quiet()
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(LinkDegradation(a=0, b=1, latency_factor=4.0, rate_factor=0.25),),
    )))
    assert rt(cluster, 0, 1) > baseline_01
    assert rt(cluster, 0, 2) == baseline_02


def test_flaky_link_costs_full_rto_per_loss():
    baseline = rt(quiet(profile=LAM_7_1_3), 0, 1)
    cluster = quiet(profile=LAM_7_1_3)
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(FlakyLink(a=0, b=1, loss_prob=1.0),),
    )))
    lossy = rt(cluster, 0, 1)
    # Two one-way transfers cross the link, each losing its head-of-line
    # burst: at least two full retransmission timeouts.
    assert lossy >= baseline + 2 * LAM_7_1_3.rto_base
    assert cluster.injector.stats.loss_escalations >= 2
    assert cluster.injector.stats.loss_escalation_time > 0


def test_hang_stalls_transfers_until_it_clears():
    cluster = quiet()
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(NodeHang(node=1, start=0.0, duration=0.05),),
    )))
    stalled = rt(cluster, 0, 1)
    assert stalled >= 0.05  # waited out the hang, then completed
    assert cluster.injector.stats.hang_stalls >= 1


def test_epoch_accumulates_across_runs():
    cluster = quiet()
    injector = FaultInjector(FaultPlan())
    cluster.attach_injector(injector)
    rt(cluster, 0, 1)
    rt(cluster, 0, 1)
    assert injector.epoch > 0.0


def test_detaching_injector_restores_fault_free_times():
    baseline = rt(quiet(), 0, 1)
    cluster = quiet()
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(NodeSlowdown(node=0, factor=4.0),),
    )))
    assert rt(cluster, 0, 1) != baseline
    cluster.attach_injector(None)
    assert rt(cluster, 0, 1) == baseline


def test_same_plan_same_seed_is_bit_identical():
    plan = FaultPlan(faults=(
        NodeSlowdown(node=1, factor=3.0),
        FlakyLink(a=0, b=2, loss_prob=0.5),
    ), seed=42)
    times = []
    for _ in range(2):
        cluster = quiet(profile=LAM_7_1_3)
        cluster.attach_injector(FaultInjector(plan))
        times.append([rt(cluster, 0, 2), rt(cluster, 0, 2), rt(cluster, 1, 3)])
    assert times[0] == times[1]


def test_different_fault_seeds_diverge():
    def trace(fault_seed):
        cluster = quiet(profile=LAM_7_1_3)
        cluster.attach_injector(FaultInjector(FaultPlan(
            faults=(FlakyLink(a=0, b=1, loss_prob=0.5),), seed=fault_seed,
        )))
        return [rt(cluster, 0, 1) for _ in range(6)]

    assert trace(1) != trace(2)


# -- crash faults (campaign durability hooks) ---------------------------------

def test_node_crash_validation():
    from repro.cluster import NodeCrash
    with pytest.raises(ValueError, match="start"):
        NodeCrash(node=0, start=-1.0)
    assert NodeCrash(node=2).start == 0.0


def test_process_crash_validation():
    from repro.cluster import ProcessCrash
    with pytest.raises(ValueError, match="after_experiments"):
        ProcessCrash(after_experiments=0)


def test_crash_faults_in_plan_describe_and_nodes_touched():
    from repro.cluster import NodeCrash, ProcessCrash
    plan = FaultPlan(faults=(
        NodeCrash(node=2, start=1.5),
        ProcessCrash(after_experiments=7),
    ))
    assert plan.nodes_touched() == {2}  # process death touches no hardware
    text = plan.describe()
    assert "crash node 2 at 1.5 s" in text
    assert "7 experiments" in text


def test_crashed_node_stalls_every_transfer():
    from repro.cluster import NodeCrash
    from repro.cluster.faults import DEAD_PEER_STALL
    cluster = quiet(n=4)
    baseline = rt(cluster, 0, 1)
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(NodeCrash(node=3),),
    )))
    assert rt(cluster, 0, 1) == baseline      # healthy pair untouched
    dead = rt(cluster, 0, 3)
    assert dead >= DEAD_PEER_STALL            # every touch costs the stall
    assert rt(cluster, 0, 3) >= DEAD_PEER_STALL  # and it never clears


def test_node_crash_respects_start_time():
    from repro.cluster import NodeCrash
    from repro.cluster.faults import DEAD_PEER_STALL
    cluster = quiet(n=4)
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(NodeCrash(node=1, start=1e9),),
    )))
    assert rt(cluster, 0, 1) < DEAD_PEER_STALL  # not dead yet


def test_process_crash_raises_on_schedule():
    from repro.cluster import ProcessCrash, SimulatedCrash
    injector = FaultInjector(FaultPlan(
        faults=(ProcessCrash(after_experiments=3),),
    ))
    injector.note_experiment()
    injector.note_experiment()
    with pytest.raises(SimulatedCrash, match="after 3 experiments"):
        injector.note_experiment()
    assert injector.experiments_completed == 3
