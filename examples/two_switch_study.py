"""Where the model's platform assumption ends: two cascaded switches.

The paper scopes the LMO model to clusters with a *single* switch, whose
crossbar forwards flows to distinct ports fully in parallel.  This study
splits the cluster across two switches joined by one uplink and measures
what breaks:

1. within one switch, estimation and prediction stay tight;
2. isolated cross-switch flows still fit a linear model (the estimator
   absorbs the uplink into an effective rate);
3. *concurrent* cross-switch flows contend on the shared uplink — no
   point-to-point model can express that, and the scatter prediction
   degrades exactly there.

Run with::

    python examples/two_switch_study.py
"""


from repro.cluster import (
    IDEAL,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    TwoSwitchTopology,
    random_cluster,
)
from repro import api
from repro.estimation import DESEngine, estimate_extended_lmo
from repro.mpi import run_collective, run_group_collective
from repro.simlib import Tracer

KB = 1024
N = 8


def main() -> None:
    gt = GroundTruth.random(N, seed=200, beta_range=(0.95e8, 1.05e8))
    cluster = SimulatedCluster(random_cluster(N, seed=200), ground_truth=gt,
                               profile=IDEAL, noise=NoiseModel.none(), seed=200)
    topo = TwoSwitchTopology.split_evenly(N)
    cluster.attach_topology(topo)
    print(f"{N}-node cluster on two switches: nodes {list(topo.left)} | "
          f"{list(topo.right)}, one shared uplink "
          f"({topo.uplink_rate / 1e6:.0f} MB/s)")
    print()

    model = estimate_extended_lmo(DESEngine(cluster), reps=3, clamp=True).model
    M = 48 * KB

    intra_members = list(topo.left)
    observed_intra = run_group_collective(
        cluster, intra_members, "scatter", "linear", nbytes=M
    ).time
    predicted_intra = api.predict(model, "scatter", "linear", M,
                                  root=intra_members[0],
                                  participants=tuple(intra_members)).seconds
    observed_full = run_collective(cluster, "scatter", "linear", nbytes=M).time
    predicted_full = api.predict(model, "scatter", "linear", M).seconds

    print(f"linear scatter of {M // KB} KB blocks (estimated-model predictions):")
    print(f"  within one switch : predicted {predicted_intra * 1e3:6.2f} ms, "
          f"observed {observed_intra * 1e3:6.2f} ms "
          f"({abs(predicted_intra - observed_intra) / observed_intra:.0%} error)")
    print(f"  across both       : predicted {predicted_full * 1e3:6.2f} ms, "
          f"observed {observed_full * 1e3:6.2f} ms "
          f"({abs(predicted_full - observed_full) / observed_full:.0%} error)")
    print()
    print("the cross-switch scatter is slower than ANY p2p model can say:")
    print(f"  {N // 2} concurrent flows share the uplink; the model charges "
          "each flow the uplink alone.")
    print()

    tracer = Tracer()
    cluster.attach_tracer(tracer)
    run_collective(cluster, "scatter", "linear", nbytes=M)
    print("timeline (u = shared uplink — note the serialized stripe):")
    print(tracer.render(width=72, lanes=["cpu0", "uplink", "port4", "port5",
                                         "port6", "port7"]))


if __name__ == "__main__":
    main()
