"""Tests for confidence intervals, adaptive repetition, and fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    MeasurementPolicy,
    linear_fit,
    measure_until_confident,
    summarize,
    t_confidence_halfwidth,
    two_segment_fit,
)


# --------------------------------------------------------------------- CI
def test_halfwidth_zero_for_single_sample():
    assert t_confidence_halfwidth([1.0]) == 0.0


def test_halfwidth_zero_for_constant_samples():
    assert t_confidence_halfwidth([2.0, 2.0, 2.0]) == 0.0


def test_halfwidth_shrinks_with_sample_count():
    rng = np.random.default_rng(0)
    base = rng.normal(1.0, 0.1, size=400)
    assert t_confidence_halfwidth(base[:10]) > t_confidence_halfwidth(base)


def test_halfwidth_grows_with_confidence():
    samples = [1.0, 1.1, 0.9, 1.05, 0.95]
    assert t_confidence_halfwidth(samples, 0.99) > t_confidence_halfwidth(samples, 0.9)


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0])
    assert s.mean == 2.0
    assert s.count == 3
    assert s.minimum == 1.0 and s.maximum == 3.0
    assert s.std == pytest.approx(1.0)
    assert s.relative_error > 0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_within_threshold():
    s = summarize([1.0, 1.0, 1.0])
    assert s.within(0.01)


# ----------------------------------------------------------------- adaptive
def test_policy_validation():
    with pytest.raises(ValueError):
        MeasurementPolicy(confidence=1.5)
    with pytest.raises(ValueError):
        MeasurementPolicy(rel_err=0)
    with pytest.raises(ValueError):
        MeasurementPolicy(min_reps=10, max_reps=5)


def test_paper_policy_values():
    policy = MeasurementPolicy.paper()
    assert policy.confidence == 0.95
    assert policy.rel_err == 0.025


def test_fixed_policy_runs_exactly_n():
    calls = []
    policy = MeasurementPolicy.fixed(7)
    summary = measure_until_confident(lambda: calls.append(1) or 1.0, policy)
    assert summary.count == 7 and len(calls) == 7


def test_adaptive_stops_early_for_stable_measurements():
    policy = MeasurementPolicy(min_reps=3, max_reps=100)
    summary = measure_until_confident(lambda: 1.0, policy)
    assert summary.count == 3


def test_adaptive_keeps_sampling_noisy_measurements():
    rng = np.random.default_rng(1)
    policy = MeasurementPolicy(min_reps=3, max_reps=50, rel_err=0.001)
    summary = measure_until_confident(lambda: float(rng.normal(1, 0.3)), policy)
    assert summary.count == 50  # never reached 0.1% precision


def test_adaptive_reaches_paper_precision():
    rng = np.random.default_rng(2)
    summary = measure_until_confident(
        lambda: float(rng.normal(1, 0.02)), MeasurementPolicy.paper()
    )
    assert summary.within(0.025)
    assert summary.count < 100


# ------------------------------------------------------------------ fitting
def test_linear_fit_exact_line():
    fit = linear_fit([0, 1, 2, 3], [5, 7, 9, 11])
    assert fit.intercept == pytest.approx(5.0)
    assert fit.slope == pytest.approx(2.0)
    assert fit.rms == pytest.approx(0.0, abs=1e-12)
    assert fit(10) == pytest.approx(25.0)


def test_linear_fit_requires_two_points():
    with pytest.raises(ValueError):
        linear_fit([1.0], [1.0])


def test_two_segment_fit_finds_slope_change():
    xs = list(range(20))
    ys = [1.0 * x for x in range(10)] + [9.0 + 5.0 * (x - 9) for x in range(10, 20)]
    fit = two_segment_fit(xs, ys)
    assert 9 <= fit.split_x <= 11
    assert fit.left.slope == pytest.approx(1.0, abs=0.1)
    assert fit.right.slope == pytest.approx(5.0, abs=0.2)


def test_two_segment_fit_evaluates_by_side():
    xs = [0, 1, 2, 3, 10, 11, 12, 13]
    ys = [0, 1, 2, 3, 100, 110, 120, 130]
    fit = two_segment_fit(xs, ys)
    assert fit(1.0) == pytest.approx(1.0, abs=0.5)
    assert fit(12.0) == pytest.approx(120.0, rel=0.05)


def test_two_segment_fit_validation():
    with pytest.raises(ValueError):
        two_segment_fit([0, 1, 2], [0, 1, 2])
    with pytest.raises(ValueError):
        two_segment_fit([0, 0, 1, 2], [0, 1, 2, 3])


@settings(max_examples=25, deadline=None)
@given(
    slope=st.floats(-10, 10),
    intercept=st.floats(-10, 10),
)
def test_linear_fit_recovers_any_line(slope, intercept):
    xs = np.linspace(0, 5, 12)
    ys = intercept + slope * xs
    fit = linear_fit(xs, ys)
    assert fit.intercept == pytest.approx(intercept, abs=1e-6)
    assert fit.slope == pytest.approx(slope, abs=1e-6)


# ------------------------------------------------------------------- robust
def test_trimmed_mean_drops_spikes():
    from repro.stats import trimmed_mean

    samples = [1.0] * 18 + [100.0, 0.0]
    assert trimmed_mean(samples, 0.1) == pytest.approx(1.0)
    assert trimmed_mean([5.0], 0.0) == 5.0
    with pytest.raises(ValueError):
        trimmed_mean(samples, 0.6)
    with pytest.raises(ValueError):
        trimmed_mean([], 0.1)


def test_mad_outlier_mask_flags_the_spike():
    from repro.stats import mad_outlier_mask

    rng = np.random.default_rng(0)
    samples = list(rng.normal(1.0, 0.01, size=50)) + [2.0]
    mask = mad_outlier_mask(samples)
    assert mask[-1]
    assert mask[:-1].sum() == 0


def test_mad_outlier_mask_constant_batch_has_none():
    from repro.stats import mad_outlier_mask

    assert not mad_outlier_mask([3.0, 3.0, 3.0]).any()
    with pytest.raises(ValueError):
        mad_outlier_mask([], 5.0)
    with pytest.raises(ValueError):
        mad_outlier_mask([1.0], 0.0)
