"""Estimation of the extended LMO parameters (paper Sec. IV, eqs. 6-12).

The point-to-point experiments alone cannot separate the processor
constant ``C_i`` from the network constant ``L_ij`` (only their sum is
observable in a roundtrip), so the procedure adds *one-to-two* collective
experiments between triplets of processors:

1. measure roundtrips ``T_ij(0)`` and ``T_ij(M)`` for all pairs;
2. measure one-to-two exchanges ``T_ijk(0)`` and ``T_ijk(M)`` for all
   rooted triplets (empty replies, medium ``M`` chosen outside the
   irregularity regions);
3. per triplet, solve the closed-form systems:

   * eq. (8):  ``C_i = (T_ijk(0) - max_x T_ix(0)) / 2``,
     ``L_ij = T_ij(0)/2 - C_i - C_j``;
   * eq. (11): ``t_i = (T_ijk(M) - max_x (T_ix(0)+T_ix(M))/2 - 2 C_i)/M``,
     ``1/beta_ij = (T_ij(M)/2 - C_i - L_ij - C_j)/M - t_i - t_j``;

4. average the redundant per-triplet values (eq. 12): each ``C_i``/``t_i``
   comes from ``C(n-1, 2)`` triplets, each ``L_ij``/``beta_ij`` from
   ``n-2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.estimation.engines import ExperimentEngine
from repro.estimation.experiments import Experiment, one_to_two, roundtrip
from repro.estimation.scheduling import run_schedule, run_schedule_adaptive
from repro.models.lmo_extended import ExtendedLMOModel
from repro.stats.adaptive import MeasurementPolicy

__all__ = [
    "LMOEstimationResult",
    "TripletSolve",
    "all_triplets",
    "assemble_model",
    "build_experiment_set",
    "collect_parameter_samples",
    "estimate_extended_lmo",
    "estimate_original_lmo",
    "solve_triplet",
    "star_triplets",
]

KB = 1024

#: Default probe size: medium, i.e. comfortably below typical eager
#: thresholds and incast regions (the paper: "we send the messages of
#: medium size to avoid a possible leap in the execution time of scatter
#: ... and receive empty replies to eliminate the escalations").
DEFAULT_PROBE_NBYTES = 32 * KB


@dataclass
class LMOEstimationResult:
    """Estimated model plus per-triplet raw values and cost accounting."""

    model: ExtendedLMOModel
    probe_nbytes: int
    estimation_time: float
    #: Per-parameter sample lists (for statistical inspection / tests).
    c_samples: dict[int, list[float]] = field(default_factory=dict)
    t_samples: dict[int, list[float]] = field(default_factory=dict)
    l_samples: dict[tuple[int, int], list[float]] = field(default_factory=dict)
    beta_samples: dict[tuple[int, int], list[float]] = field(default_factory=dict)

    def parameter_spread(self) -> dict[str, float]:
        """Max relative std-dev across redundant samples, per parameter."""

        def spread(sample_map) -> float:
            worst = 0.0
            for values in sample_map.values():
                arr = np.asarray(values)
                if arr.size > 1 and abs(arr.mean()) > 0:
                    worst = max(worst, float(arr.std() / abs(arr.mean())))
            return worst

        return {
            "C": spread(self.c_samples),
            "t": spread(self.t_samples),
            "L": spread(self.l_samples),
            "beta": spread(self.beta_samples),
        }


def all_triplets(n: int) -> list[tuple[int, int, int]]:
    """Every unordered triplet — the paper's full ``C(n,3)`` design."""
    return list(combinations(range(n), 3))


def star_triplets(n: int, center: int = 0) -> list[tuple[int, int, int]]:
    """The ``C(n-1, 2)`` triplets containing ``center``.

    A reduced design that still covers *every* pair (each pair ``(i, j)``
    appears inside the triplet ``(center, i, j)``) and every node, at
    roughly ``3/(n-2)`` of the full experiment count — the kind of
    redundancy-aware reduction Sec. IV anticipates.
    """
    if not (0 <= center < n):
        raise ValueError(f"center {center} out of range")
    others = [x for x in range(n) if x != center]
    return [tuple(sorted((center, a, b))) for a, b in combinations(others, 2)]


def _rooted_triplets(n: int, triplets: Optional[Sequence[tuple[int, int, int]]]):
    """All (root, a, b) one-to-two configurations to measure.

    Base triplets are normalized to sorted node order (the solve and the
    experiment keys both assume it), and peers are sorted within each
    rooted configuration.
    """
    if triplets is None:
        base = list(combinations(range(n), 3))
    else:
        base = sorted({tuple(sorted(triple)) for triple in triplets})
        if any(len(set(triple)) != 3 for triple in base):
            raise ValueError("triplets must contain three distinct nodes each")
    rooted: list[tuple[int, int, int]] = []
    for i, j, k in base:
        rooted.extend([(i, j, k), (j, i, k), (k, i, j)])
    return base, rooted


@dataclass(frozen=True)
class TripletSolve:
    """The closed-form solution of eqs. (8)/(11) for one unordered triplet.

    Keeping per-triplet solutions as records (instead of flattening them
    straight into sample lists) is what lets the robust estimation path
    (:mod:`repro.estimation.robust`) judge whole triplets — a single
    escalation-contaminated measurement poisons *every* parameter its
    triplet produces, so rejection must happen at triplet granularity.
    """

    nodes: tuple[int, int, int]
    C: dict[int, float]
    t: dict[int, float]
    L: dict[tuple[int, int], float]
    inv_beta: dict[tuple[int, int], float]

    def is_physical(self, tol: float = 0.0) -> bool:
        """True when every solved value lies in its physical range.

        ``tol`` absorbs measurement noise: delays may dip ``tol`` below
        zero before the solve counts as unphysical; inverse rates must be
        strictly positive regardless (a non-positive ``1/beta`` has no
        noise interpretation at medium probe sizes).
        """
        delays = (*self.C.values(), *self.t.values(), *self.L.values())
        if any(value < -tol for value in delays):
            return False
        return all(value > 0 for value in self.inv_beta.values())


def build_experiment_set(
    pairs: Sequence[tuple[int, int]],
    rooted: Sequence[tuple[int, int, int]],
    probe_nbytes: int,
) -> list[Experiment]:
    """The full measurement set: empty + probe-sized roundtrips and
    one-to-twos (the paper's ``2 C(n,2) + 2 * 3 C(n,3)`` experiments)."""
    experiments: list[Experiment] = []
    for i, j in pairs:
        experiments.append(roundtrip(i, j, 0))
        experiments.append(roundtrip(i, j, probe_nbytes))
    for root, a, b in rooted:
        experiments.append(one_to_two(root, a, b, 0, 0))
        experiments.append(one_to_two(root, a, b, probe_nbytes, 0))
    return experiments


def solve_triplet(
    measured: Mapping[Experiment, float],
    triple: tuple[int, int, int],
    probe_nbytes: int,
) -> TripletSolve:
    """Solve eqs. (8) and (11) on one triplet's measurements."""
    i, j, k = triple
    M = float(probe_nbytes)

    def rt(a: int, b: int, nbytes: int) -> float:
        key = (min(a, b), max(a, b))
        return measured[roundtrip(key[0], key[1], nbytes)]

    def ott(root: int, a: int, b: int, nbytes: int) -> float:
        lo, hi = min(a, b), max(a, b)
        return measured[one_to_two(root, lo, hi, nbytes, 0)]

    C = {}
    for root, a, b in ((i, j, k), (j, i, k), (k, i, j)):
        C[root] = (ott(root, a, b, 0) - max(rt(root, a, 0), rt(root, b, 0))) / 2.0
    L = {
        (i, j): rt(i, j, 0) / 2.0 - C[i] - C[j],
        (j, k): rt(j, k, 0) / 2.0 - C[j] - C[k],
        (i, k): rt(i, k, 0) / 2.0 - C[i] - C[k],
    }
    t = {}
    for root, a, b in ((i, j, k), (j, i, k), (k, i, j)):
        best = max(
            (rt(root, a, 0) + rt(root, a, probe_nbytes)) / 2.0,
            (rt(root, b, 0) + rt(root, b, probe_nbytes)) / 2.0,
        )
        t[root] = (ott(root, a, b, probe_nbytes) - best - 2.0 * C[root]) / M
    inv_beta = {
        pair: (rt(*pair, probe_nbytes) / 2.0 - C[pair[0]] - L[pair] - C[pair[1]]) / M
        - t[pair[0]]
        - t[pair[1]]
        for pair in ((i, j), (j, k), (i, k))
    }
    return TripletSolve(nodes=(i, j, k), C=C, t=t, L=L, inv_beta=inv_beta)


def collect_parameter_samples(
    solves: Sequence[TripletSolve],
    n: int,
    pairs: Sequence[tuple[int, int]],
):
    """Flatten triplet solves into per-parameter sample lists (eq. 12 input)."""
    c_samples: dict[int, list[float]] = {i: [] for i in range(n)}
    t_samples: dict[int, list[float]] = {i: [] for i in range(n)}
    l_samples: dict[tuple[int, int], list[float]] = {tuple(p): [] for p in pairs}
    beta_samples: dict[tuple[int, int], list[float]] = {tuple(p): [] for p in pairs}
    for solve in solves:
        for node, value in solve.C.items():
            c_samples[node].append(value)
        for node, value in solve.t.items():
            t_samples[node].append(value)
        for pair, value in solve.L.items():
            l_samples[pair].append(value)
        for pair, value in solve.inv_beta.items():
            beta_samples[pair].append(1.0 / value if value > 0 else np.inf)
    return c_samples, t_samples, l_samples, beta_samples


def _default_reduce(values: Sequence[float]) -> float:
    return float(np.mean(values))


def assemble_model(
    n: int,
    c_samples: dict[int, list[float]],
    t_samples: dict[int, list[float]],
    l_samples: dict[tuple[int, int], list[float]],
    beta_samples: dict[tuple[int, int], list[float]],
    clamp: bool = False,
    reduce: Callable[[Sequence[float]], float] = _default_reduce,
) -> ExtendedLMOModel:
    """Average redundant samples (eq. 12) into an :class:`ExtendedLMOModel`.

    ``reduce`` collapses each parameter's redundant sample list to one
    value — plain mean by default, an outlier-screened robust location in
    the hardened path.  Non-finite rate samples are dropped before
    reduction (an unphysical triplet contributes ``inf`` for its rates).
    """
    C_est = np.array([reduce(c_samples[i]) if c_samples[i] else 0.0 for i in range(n)])
    t_est = np.array([reduce(t_samples[i]) if t_samples[i] else 0.0 for i in range(n)])
    L_est = np.zeros((n, n))
    beta_est = np.full((n, n), np.inf)
    for (a, b), values in l_samples.items():
        if values:
            L_est[a, b] = L_est[b, a] = reduce(values)
    for (a, b), values in beta_samples.items():
        finite = [v for v in values if np.isfinite(v)]
        rate = reduce(finite) if finite else np.inf
        beta_est[a, b] = beta_est[b, a] = rate

    # Sparse designs may leave some pairs unmeasured.  On a single-switch
    # cluster the link parameters are near-uniform (one store-and-forward
    # hop, identical NICs), so complete the matrices with the measured
    # means rather than silently leaving L=0 / beta=inf — this is what
    # lets the LMO model generalize to links it never probed, which no
    # per-pair (Hockney-style) model can do.
    off = ~np.eye(n, dtype=bool)
    measured_mask = np.zeros((n, n), dtype=bool)
    for a, b in l_samples:
        if l_samples[a, b]:
            measured_mask[a, b] = measured_mask[b, a] = True
    unmeasured = off & ~measured_mask
    if unmeasured.any():
        link_means = [reduce(v) for v in l_samples.values() if v]
        if link_means:
            L_est[unmeasured] = float(np.mean(link_means))
        finite_rates = [
            reduce([x for x in v if np.isfinite(x)])
            for v in beta_samples.values()
            if any(np.isfinite(x) for x in v)
        ]
        if finite_rates:
            beta_est[unmeasured] = float(np.mean(finite_rates))

    if clamp:
        C_est = np.maximum(C_est, 0.0)
        t_est = np.maximum(t_est, 0.0)
        L_est = np.maximum(L_est, 0.0)
        np.fill_diagonal(L_est, 0.0)
        beta_est = np.where(beta_est <= 0, np.inf, beta_est)

    return ExtendedLMOModel(C=C_est, t=t_est, L=L_est, beta=beta_est)


def estimate_extended_lmo(
    engine: ExperimentEngine,
    probe_nbytes: int = DEFAULT_PROBE_NBYTES,
    reps: int = 5,
    parallel: bool = True,
    triplets: Optional[Sequence[tuple[int, int, int]]] = None,
    clamp: bool = False,
    policy: Optional[MeasurementPolicy] = None,
) -> LMOEstimationResult:
    """Run the full experiment set and solve for the LMO parameters.

    Parameters
    ----------
    engine:
        Measurement source (DES cluster or analytic oracle).
    probe_nbytes:
        The medium message size ``M`` of the non-empty experiments.
    reps:
        Measurement repetitions averaged per experiment (the paper: short
        series suffice, "typically up to ten", because the parameters are
        averaged again across triplets).
    parallel:
        Pack node-disjoint experiments into concurrent rounds (Sec. IV's
        estimation-cost optimization).
    triplets:
        Subset of unordered triplets to use (default: all ``C(n,3)``).
        Every node must appear in at least one triplet.
    clamp:
        Clamp estimates to physical ranges (non-negative delays, positive
        rates).  Off by default so exactness tests see raw solutions.
    policy:
        When given, use MPIBlib's CI-driven stopping rule per experiment
        instead of the fixed ``reps`` (the paper's 95%/2.5% discipline).
    """
    n = engine.n
    if n < 3:
        raise ValueError("LMO estimation needs at least 3 processors")
    if probe_nbytes <= 0:
        raise ValueError("probe_nbytes must be positive")
    base_triplets, rooted = _rooted_triplets(n, triplets)
    covered = {node for triple in base_triplets for node in triple}
    if covered != set(range(n)):
        raise ValueError(f"triplets leave nodes {sorted(set(range(n)) - covered)} unmeasured")

    pairs = sorted({pair for triple in base_triplets for pair in combinations(triple, 2)})

    # -- measure -------------------------------------------------------------
    experiments = build_experiment_set(pairs, rooted, probe_nbytes)
    t_start = engine.estimation_time
    if policy is not None:
        measured = run_schedule_adaptive(engine, experiments, policy=policy,
                                         parallel=parallel)
    else:
        measured = run_schedule(engine, experiments, parallel=parallel, reps=reps)
    cost = engine.estimation_time - t_start

    # -- solve per triplet (eqs. 8 and 11), average (eq. 12) ------------------
    solves = [solve_triplet(measured, triple, probe_nbytes) for triple in base_triplets]
    c_samples, t_samples, l_samples, beta_samples = collect_parameter_samples(
        solves, n, pairs
    )
    model = assemble_model(
        n, c_samples, t_samples, l_samples, beta_samples, clamp=clamp
    )
    return LMOEstimationResult(
        model=model,
        probe_nbytes=probe_nbytes,
        estimation_time=cost,
        c_samples=c_samples,
        t_samples=t_samples,
        l_samples=l_samples,
        beta_samples=beta_samples,
    )


def estimate_original_lmo(
    engine: ExperimentEngine,
    probe_nbytes: int = DEFAULT_PROBE_NBYTES,
    reps: int = 5,
    parallel: bool = True,
    triplets: Optional[Sequence[tuple[int, int, int]]] = None,
):
    """Estimate the *original* five-parameter LMO model [8, 9].

    Runs the same experiment set as the extended estimation and folds the
    identified network latencies back into the fixed processor delays —
    the pre-extension model in which "the parameters describing the fixed
    delays combine the constant contributions of both the processors and
    the network".
    """
    result = estimate_extended_lmo(
        engine, probe_nbytes=probe_nbytes, reps=reps, parallel=parallel,
        triplets=triplets, clamp=True,
    )
    return result.model.to_original_lmo()
