"""Shared infrastructure of the per-figure experiment harnesses.

Each ``figN``/``tableN`` module exposes ``run(quick=..., seed=...)``
returning an :class:`ExperimentResult`: named series over message sizes,
shape ``checks`` (the qualitative claims the paper makes, evaluated on our
measurements), and an ASCII rendering.  The model suite (all five models
estimated on the same simulated cluster) is cached per (profile, seed,
quick) because several figures share it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.benchlib import CollectiveBenchmark
from repro.cluster import LAM_7_1_3, MpiProfile, NoiseModel, SimulatedCluster, table1_cluster
from repro.estimation import (
    DESEngine,
    detect_gather_irregularity,
    estimate_extended_lmo,
    estimate_heterogeneous_hockney,
    estimate_logp,
    estimate_plogp,
    star_triplets,
    sweep_collective,
)
from repro.models import ExtendedLMOModel, HeterogeneousHockneyModel, HockneyModel
from repro.models.loggp import LogGPModel
from repro.models.plogp import PLogPModel
from repro.predict_service import predict_sweep
from repro.stats import MeasurementPolicy

__all__ = [
    "KB",
    "SIZES_FULL",
    "SIZES_QUICK",
    "ExperimentResult",
    "ModelSuite",
    "Series",
    "get_model_suite",
    "observation_benchmark",
    "paper_cluster",
    "prediction_series",
]

KB = 1024

#: Message-size grids for sweeps (full for figures, quick for CI).
SIZES_FULL = tuple(
    int(m * KB) for m in (1, 2, 4, 8, 16, 24, 32, 48, 56, 64, 72, 80, 96, 128, 160, 200)
)
SIZES_QUICK = tuple(int(m * KB) for m in (1, 4, 16, 48, 64, 96, 160))


@dataclass(frozen=True)
class Series:
    """One named curve: values (seconds) over message sizes (bytes)."""

    name: str
    sizes: tuple[int, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.values):
            raise ValueError(f"series {self.name!r}: sizes/values length mismatch")

    def at(self, nbytes: int) -> float:
        return self.values[self.sizes.index(nbytes)]

    def mean_relative_error(self, reference: "Series") -> float:
        """Mean |self - reference| / reference over shared sizes."""
        shared = [m for m in self.sizes if m in reference.sizes]
        if not shared:
            raise ValueError("no shared sizes")
        errs = [abs(self.at(m) - reference.at(m)) / reference.at(m) for m in shared]
        return float(np.mean(errs))


@dataclass
class ExperimentResult:
    """Outcome of one reproduced table/figure."""

    experiment_id: str
    title: str
    series: list[Series] = field(default_factory=list)
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    text: str = ""

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series {name!r} in {self.experiment_id}")

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def to_csv(self) -> str:
        """The series as CSV (sizes in bytes, values in seconds).

        Header row ``nbytes,<series>...``; empty string when the
        experiment has no numeric series (structural tables).
        """
        if not self.series:
            return ""
        sizes = self.series[0].sizes
        lines = ["nbytes," + ",".join(s.name for s in self.series)]
        for idx, m in enumerate(sizes):
            row = [str(m)]
            for s in self.series:
                row.append(repr(s.values[idx]) if idx < len(s.values) else "")
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==", ""]
        if self.text:
            lines.append(self.text)
        if self.series:
            sizes = self.series[0].sizes
            header = f"{'M (KB)':>8} " + " ".join(f"{s.name:>18}" for s in self.series)
            lines.append(header)
            for idx, m in enumerate(sizes):
                row = f"{m / KB:8.1f} "
                for s in self.series:
                    value = s.values[idx] if idx < len(s.values) else float("nan")
                    row += f" {value * 1e3:17.3f}"
                lines.append(row)
            lines.append("(values in milliseconds)")
        if self.checks:
            lines.append("")
            lines.append("shape checks:")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def prediction_series(
    name: str,
    model,
    operation: str,
    algorithm: str,
    sizes: tuple[int, ...],
    root: int = 0,
    **kwargs,
) -> Series:
    """A prediction curve, evaluated as one vectorized sweep.

    All figure prediction series route through
    :func:`repro.predict_service.predict_sweep`, so each (model,
    collective, size-grid) combination is computed once per process.
    """
    values = predict_sweep(
        model, operation, algorithm, np.asarray(sizes, dtype=float), root=root, **kwargs
    )
    return Series(name, tuple(sizes), tuple(float(v) for v in values))


def paper_cluster(
    profile: MpiProfile = LAM_7_1_3,
    seed: int = 0,
    noise: Optional[NoiseModel] = None,
) -> SimulatedCluster:
    """The Table I cluster under a given MPI profile."""
    return SimulatedCluster(
        table1_cluster(),
        profile=profile,
        noise=noise if noise is not None else NoiseModel.default(),
        seed=seed,
    )


def observation_benchmark(cluster: SimulatedCluster, quick: bool) -> CollectiveBenchmark:
    """MPIBlib-style benchmark used for every 'observation' series.

    The paper's policy is CI 95% / 2.5%; in the gather escalation region
    the CI target is unreachable (escalations are non-deterministic), so
    the repetition cap bounds the work, as any real benchmark must.
    """
    policy = MeasurementPolicy(
        confidence=0.95, rel_err=0.025,
        min_reps=3 if quick else 5,
        max_reps=8 if quick else 25,
    )
    return CollectiveBenchmark(cluster, policy=policy)


@dataclass
class ModelSuite:
    """All models estimated on one simulated cluster."""

    lmo: ExtendedLMOModel
    hockney_het: HeterogeneousHockneyModel
    hockney_hom: HockneyModel
    loggp: LogGPModel
    plogp: PLogPModel
    estimation_times: dict[str, float]

    @staticmethod
    def estimate(cluster: SimulatedCluster, quick: bool = False) -> "ModelSuite":
        """Run every model's estimation procedure on the cluster."""
        n = cluster.n
        engine = DESEngine(cluster)
        times: dict[str, float] = {}

        mark = engine.estimation_time
        hockney = estimate_heterogeneous_hockney(engine, reps=3 if quick else 5)
        times["hockney"] = engine.estimation_time - mark

        mark = engine.estimation_time
        pairs = [(0, j) for j in range(1, n)] if quick else None
        logp_result = estimate_logp(engine, reps=2 if quick else 3, pairs=pairs)
        times["loggp"] = engine.estimation_time - mark

        mark = engine.estimation_time
        plogp_result = estimate_plogp(engine, pair=(0, 1), reps=2 if quick else 3)
        times["plogp"] = engine.estimation_time - mark

        mark = engine.estimation_time
        triplets = star_triplets(n) if quick else None
        lmo_result = estimate_extended_lmo(
            engine, reps=3 if quick else 5, triplets=triplets, clamp=True
        )
        times["lmo_analytic"] = engine.estimation_time - mark

        # Empirical part: the preliminary irregularity sweep of Sec. IV.
        mark = engine.estimation_time
        sweep = sweep_collective(
            engine, "gather", "linear",
            sizes=[2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 48 * KB, 64 * KB,
                   80 * KB, 96 * KB],
            reps=8 if quick else 15,
        )
        irregularity = detect_gather_irregularity(sweep)
        times["lmo_empirical"] = engine.estimation_time - mark

        return ModelSuite(
            lmo=lmo_result.model.with_irregularity(irregularity),
            hockney_het=hockney.model,
            hockney_hom=hockney.model.averaged(),
            loggp=logp_result.loggp(n),
            plogp=plogp_result.model,
            estimation_times=times,
        )


_SUITE_CACHE: dict[tuple[str, int, bool], ModelSuite] = {}


def get_model_suite(
    profile: MpiProfile = LAM_7_1_3, seed: int = 0, quick: bool = False
) -> ModelSuite:
    """Cached model suite for the Table I cluster under ``profile``.

    Estimation runs on a cluster instance seeded differently from the
    observation cluster (seed + 1000): the models never see the noise
    realizations they will be judged against.
    """
    key = (profile.name, seed, quick)
    if key not in _SUITE_CACHE:
        cluster = paper_cluster(profile=profile, seed=seed + 1000)
        _SUITE_CACHE[key] = ModelSuite.estimate(cluster, quick=quick)
    return _SUITE_CACHE[key]
