"""Heterogeneous processor-to-tree-node mapping (paper Sec. I, Hatta [5]).

On a heterogeneous cluster, a collective's communication tree shape is
fixed by the algorithm, but *which processor sits at which tree node* is
free — and a heterogeneous model can rank mappings, whereas a homogeneous
model predicts the same time for all of them (the paper's motivation for
heterogeneous models).  We search the permutation space with the
predicted time as the objective: exhaustively for tiny clusters, else by
steepest-descent pairwise swaps from the identity mapping.
"""

from __future__ import annotations

from itertools import permutations
from typing import Callable, Optional

from repro.models.collectives.formulas import lmo_serial_parallel_split
from repro.models.collectives.tree_eval import predict_tree_time
from repro.models.collectives.trees import CommTree
from repro.models.lmo_extended import ExtendedLMOModel

__all__ = ["MappingResult", "predict_mapped_time", "optimize_mapping"]


class MappingResult:
    """Outcome of a mapping search."""

    def __init__(self, perm: list[int], tree: CommTree, predicted: float, evaluations: int):
        self.perm = perm
        self.tree = tree
        self.predicted = predicted
        self.evaluations = evaluations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MappingResult(predicted={self.predicted:.6f}, perm={self.perm})"


def predict_mapped_time(
    model: ExtendedLMOModel, tree: CommTree, nbytes: float, perm: list[int]
) -> float:
    """Predicted tree-collective time with processors remapped by ``perm``."""
    serial, parallel = lmo_serial_parallel_split(model)
    return predict_tree_time(tree.remap(perm), nbytes, serial, parallel)


def optimize_mapping(
    model: ExtendedLMOModel,
    tree: CommTree,
    nbytes: float,
    fixed_root: bool = True,
    exhaustive_limit: int = 7,
    max_rounds: int = 50,
    predictor: Optional[Callable[[CommTree], float]] = None,
) -> MappingResult:
    """Find a low-predicted-time processor permutation for ``tree``.

    Parameters
    ----------
    fixed_root:
        Keep the data root where it is (usual in practice: the root owns
        the data); only non-root positions are permuted.
    exhaustive_limit:
        Up to this many ranks, enumerate all permutations; beyond it, use
        steepest-descent pairwise swaps (local optimum).
    predictor:
        Custom objective ``tree -> predicted time`` (defaults to the
        extended-LMO tree evaluation).
    """
    n = tree.n
    if predictor is None:
        serial, parallel = lmo_serial_parallel_split(model)

        def predictor(candidate: CommTree) -> float:
            return predict_tree_time(candidate, nbytes, serial, parallel)

    evaluations = 0

    def evaluate(perm: list[int]) -> float:
        nonlocal evaluations
        evaluations += 1
        return predictor(tree.remap(perm))

    identity = list(range(n))
    movable = [v for v in identity if not (fixed_root and v == tree.root)]

    if n <= exhaustive_limit:
        best_perm, best_time = identity[:], evaluate(identity)
        for arrangement in permutations(movable):
            perm = identity[:]
            for position, value in zip(movable, arrangement):
                perm[position] = value
            time = evaluate(perm)
            if time < best_time:
                best_perm, best_time = perm, time
        return MappingResult(best_perm, tree.remap(best_perm), best_time, evaluations)

    # Steepest-descent pairwise swaps.
    perm = identity[:]
    best_time = evaluate(perm)
    for _round in range(max_rounds):
        best_swap = None
        for a_idx in range(len(movable)):
            for b_idx in range(a_idx + 1, len(movable)):
                a, b = movable[a_idx], movable[b_idx]
                perm[a], perm[b] = perm[b], perm[a]
                time = evaluate(perm)
                perm[a], perm[b] = perm[b], perm[a]
                if time < best_time - 1e-15:
                    best_time = time
                    best_swap = (a, b)
        if best_swap is None:
            break
        a, b = best_swap
        perm[a], perm[b] = perm[b], perm[a]
    return MappingResult(perm, tree.remap(perm), best_time, evaluations)
