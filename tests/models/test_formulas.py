"""Tests for Table II closed forms and the binomial recursion (eqs. 1-3)."""

import pytest

from repro.cluster import GroundTruth
from repro.models import (
    ExtendedLMOModel,
    GatherIrregularity,
    GatherPrediction,
    HeterogeneousHockneyModel,
    HockneyModel,
    LogGPModel,
    LogPModel,
    PiecewiseLinear,
    PLogPModel,
    binomial_tree,
    flat_tree,
    predict_binomial_gather,
    predict_binomial_scatter,
    predict_linear_gather,
    predict_linear_pipelined,
    predict_linear_scatter,
    predict_tree_time,
)

KB = 1024


def lmo_model(n=8, seed=0):
    return ExtendedLMOModel.from_ground_truth(GroundTruth.random(n, seed=seed))


# ------------------------------------------------------------- linear scatter
def test_hom_hockney_sequential_and_parallel():
    model = HockneyModel(alpha=50e-6, beta=8e-8, n=16)
    M = 10 * KB
    per = 50e-6 + 8e-8 * M
    assert predict_linear_scatter(model, M, assumption="sequential") == pytest.approx(15 * per)
    assert predict_linear_scatter(model, M, assumption="parallel") == pytest.approx(per)
    with pytest.raises(ValueError):
        predict_linear_scatter(model, M, assumption="quantum")


def test_het_hockney_sequential_is_sum_parallel_is_max():
    gt = GroundTruth.random(6, seed=1)
    model = HeterogeneousHockneyModel.from_ground_truth(gt)
    M = 20 * KB
    terms = [model.p2p_time(0, i, M) for i in range(1, 6)]
    assert predict_linear_scatter(model, M) == pytest.approx(sum(terms))
    assert predict_linear_scatter(model, M, assumption="parallel") == pytest.approx(max(terms))


def test_loggp_table2_formula():
    model = LogGPModel(L=30e-6, o=10e-6, g=15e-6, G=8e-8, P=16)
    M, n = 10 * KB, 16
    expected = 30e-6 + 20e-6 + (n - 1) * (M - 1) * 8e-8 + (n - 2) * 15e-6
    assert predict_linear_scatter(model, M) == pytest.approx(expected)


def test_plogp_table2_formula():
    g = PiecewiseLinear((0.0, 64 * 1024.0), (40e-6, 5.3e-3))
    model = PLogPModel(L=35e-6, o_s=g, o_r=g, g=g, P=16)
    M = 32 * KB
    assert predict_linear_scatter(model, M) == pytest.approx(35e-6 + 15 * g(M))


def test_logp_linear_prediction_counts_packets():
    model = LogPModel(L=30e-6, o=10e-6, g=12e-6, P=4, packet_bytes=1000)
    t = predict_linear_scatter(model, 2000)  # 2 packets x 3 receivers
    assert t == pytest.approx(30e-6 + 20e-6 + 5 * 12e-6)


def test_lmo_formula4_structure():
    """(n-1)(C_r + M t_r) + max_i (L_ri + M/b_ri + C_i + M t_i)."""
    model = lmo_model(n=5, seed=2)
    M = 40 * KB
    serial = 4 * (model.C[0] + M * model.t[0])
    parallel = max(
        model.L[0, i] + M / model.beta[0, i] + model.C[i] + M * model.t[i]
        for i in range(1, 5)
    )
    assert predict_linear_scatter(model, M) == pytest.approx(serial + parallel)


def test_lmo_scatter_beats_het_hockney_sequential_pessimism():
    """Same parameters, regrouped: Hockney-sequential must exceed LMO
    because it serializes wire time the switch actually parallelizes."""
    model = lmo_model(n=16, seed=3)
    hockney = model.to_heterogeneous_hockney()
    M = 100 * KB
    assert predict_linear_scatter(hockney, M) > predict_linear_scatter(model, M)
    # ... and Hockney-parallel is optimistic: below LMO.
    assert predict_linear_scatter(hockney, M, assumption="parallel") < (
        predict_linear_scatter(model, M)
    )


def test_participants_subset_and_validation():
    model = lmo_model(n=8, seed=4)
    t_all = predict_linear_scatter(model, KB)
    t_sub = predict_linear_scatter(model, KB, participants=[0, 1, 2])
    assert t_sub < t_all
    with pytest.raises(ValueError, match="root"):
        predict_linear_scatter(model, KB, root=5, participants=[0, 1])
    with pytest.raises(ValueError, match="duplicate"):
        predict_linear_scatter(model, KB, participants=[0, 1, 1])


def test_unknown_model_type_rejected():
    with pytest.raises(TypeError):
        predict_linear_scatter(object(), 100)


# -------------------------------------------------------------- linear gather
def test_traditional_gather_equals_scatter():
    """Paper Sec. II: same formulas for scatter and gather."""
    gt = GroundTruth.random(6, seed=5)
    for model in [
        HeterogeneousHockneyModel.from_ground_truth(gt),
        LogGPModel(L=30e-6, o=10e-6, g=15e-6, G=8e-8, P=6),
    ]:
        M = 8 * KB
        assert predict_linear_gather(model, M) == predict_linear_scatter(model, M)


def test_lmo_gather_small_regime_uses_max_branch():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    model = lmo_model(n=8, seed=6).with_irregularity(irr)
    M = 2 * KB
    pred = predict_linear_gather(model, M)
    assert isinstance(pred, GatherPrediction)
    assert pred.regime == "small"
    assert pred.escalation_probability == 0.0
    serial = 7 * (model.C[0] + M * model.t[0])
    parallel = max(
        model.L[0, i] + M / model.beta[0, i] + model.C[i] + M * model.t[i]
        for i in range(1, 8)
    )
    assert pred.base == pytest.approx(serial + parallel)
    assert pred.expected == pred.base


def test_lmo_gather_large_regime_uses_sum_branch():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    model = lmo_model(n=8, seed=7).with_irregularity(irr)
    M = 100 * KB
    pred = predict_linear_gather(model, M)
    assert pred.regime == "large"
    serial = 7 * (model.C[0] + M * model.t[0])
    total = sum(
        model.L[0, i] + M / model.beta[0, i] + model.C[i] + M * model.t[i]
        for i in range(1, 8)
    )
    assert pred.base == pytest.approx(serial + total)


def test_lmo_gather_medium_regime_reports_escalations():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.25, p_at_m2=0.8)
    model = lmo_model(n=8, seed=8).with_irregularity(irr)
    pred = predict_linear_gather(model, 30 * KB)
    assert pred.regime == "medium"
    assert 0 < pred.escalation_probability < 0.8
    assert pred.escalation_value == 0.25
    assert pred.expected > pred.base


def test_lmo_gather_slope_steeper_above_m2():
    """The sum branch has a much steeper slope than the max branch —
    the two lines of paper Fig. 5."""
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    model = lmo_model(n=16, seed=9).with_irregularity(irr)
    small_slope = (
        predict_linear_gather(model, 3 * KB).base - predict_linear_gather(model, 1 * KB).base
    ) / (2 * KB)
    large_slope = (
        predict_linear_gather(model, 200 * KB).base
        - predict_linear_gather(model, 150 * KB).base
    ) / (50 * KB)
    assert large_slope > 3 * small_slope


def test_lmo_gather_without_irregularity_defaults_to_max_branch():
    model = lmo_model(n=4, seed=10)
    pred = predict_linear_gather(model, 10 * KB)
    assert pred.regime == "small"


# ------------------------------------------------------------------- binomial
def test_hom_hockney_binomial_matches_eq3():
    """For power-of-two n, the recursion gives log2(n) a + (n-1) b M."""
    model = HockneyModel(alpha=50e-6, beta=8e-8, n=8)
    M = 4 * KB
    t = predict_binomial_scatter(model, M)
    assert t == pytest.approx(3 * 50e-6 + 7 * 8e-8 * M)


def test_het_hockney_binomial_matches_eq2_expansion():
    """Hand-expand formula (2) for 8 processors and compare."""
    gt = GroundTruth.random(8, seed=11)
    model = HeterogeneousHockneyModel.from_ground_truth(gt)
    M = 16 * KB
    a, b = model.alpha, model.beta

    def p2p(i, j, nbytes):
        return a[i, j] + b[i, j] * nbytes

    expected = p2p(0, 4, 4 * M) + max(
        p2p(0, 2, 2 * M) + max(p2p(0, 1, M), p2p(2, 3, M)),
        p2p(4, 6, 2 * M) + max(p2p(4, 5, M), p2p(6, 7, M)),
    )
    assert predict_binomial_scatter(model, M) == pytest.approx(expected)


def test_binomial_gather_equals_scatter_for_traditional_models():
    gt = GroundTruth.random(8, seed=12)
    model = HeterogeneousHockneyModel.from_ground_truth(gt)
    assert predict_binomial_gather(model, KB) == predict_binomial_scatter(model, KB)


def test_lmo_binomial_below_hockney_binomial():
    """LMO parallelizes wire+receiver inside each stage, so its binomial
    estimate is below the Hockney recursion on the same hardware."""
    model = lmo_model(n=16, seed=13)
    hockney = model.to_heterogeneous_hockney()
    M = 50 * KB
    assert predict_binomial_scatter(model, M) < predict_binomial_scatter(hockney, M)


def test_binomial_accepts_custom_tree():
    model = lmo_model(n=4, seed=14)
    tree = binomial_tree(4, 0)
    default = predict_binomial_scatter(model, KB)
    explicit = predict_binomial_scatter(model, KB, tree=tree)
    assert default == explicit
    remapped = predict_binomial_scatter(model, KB, tree=tree.remap([1, 0, 2, 3]))
    assert remapped != default  # mapping matters on a heterogeneous cluster


def test_lmo_binomial_gather_close_to_scatter():
    model = lmo_model(n=8, seed=15)
    s = predict_binomial_scatter(model, 10 * KB)
    g = predict_binomial_gather(model, 10 * KB)
    assert g == pytest.approx(s, rel=0.3)


# -------------------------------------------------------------- tree evaluator
def test_tree_eval_flat_tree_sequential_hockney():
    """Flat tree + all-serial costs = the sequential linear formula."""
    gt = GroundTruth.random(5, seed=16)
    model = HeterogeneousHockneyModel.from_ground_truth(gt)
    M = 2 * KB
    t = predict_tree_time(
        flat_tree(5, 0), M, serial_cost=model.p2p_time, parallel_cost=lambda i, j, b: 0.0
    )
    assert t == pytest.approx(predict_linear_scatter(model, M))


def test_pipelined_linear_at_most_formula4():
    """The pipelined refinement never exceeds the paper's formula (4)."""
    model = lmo_model(n=16, seed=17)
    for M in [0, KB, 64 * KB, 200 * KB]:
        assert predict_linear_pipelined(model, M) <= predict_linear_scatter(model, M) + 1e-15


def test_tree_eval_rejects_negative_block():
    model = lmo_model(n=4, seed=18)
    with pytest.raises(ValueError):
        predict_tree_time(flat_tree(4, 0), -1.0, model.p2p_time, lambda i, j, b: 0.0)
