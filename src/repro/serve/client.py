"""Blocking client for the prediction daemon.

One socket, one request line per call, one response line back.  Error
replies re-raise as the *same* typed exceptions :mod:`repro.api` raises
in-process (:func:`repro.api.errors.from_payload`), and result payloads
parse back into the same schema-v3 dataclasses — code written against
the facade ports to the wire by swapping ``api.predict(model_obj, ...)``
for ``client.predict("model-name", ...)``::

    with ServiceClient(port=7725) as client:
        p = client.predict("lmo", "scatter", "linear", 65536)
        print(p.seconds)

The client is deliberately synchronous (benchmarks drive concurrency by
running many clients, as real callers would); it is not thread-safe —
use one client per thread.
"""

from __future__ import annotations

import socket
from typing import Any, Mapping, NamedTuple, Optional, Sequence, Union

from repro.api import errors, schema
from repro.api.errors import InternalError
from repro.predict_service import PredictRequest
from repro.serve import protocol

__all__ = ["EstimateReply", "ServiceClient"]


class EstimateReply(NamedTuple):
    """An ``estimate`` verb's reply: the outcome document (``model`` is
    ``None`` — the model lives server-side) and its registry name."""

    outcome: schema.EstimateOutcome
    registered_as: str


class ServiceClient:
    """One connection to a running ``repro serve`` daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7725,
        unix_path: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        if unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(unix_path)
            self.endpoint = unix_path
        else:
            sock = socket.create_connection((host, port), timeout=timeout)
            self.endpoint = f"{host}:{port}"
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------------
    def call(self, verb: str, params: Optional[Mapping[str, Any]] = None) -> dict:
        """One request/response round trip; raises the typed taxonomy."""
        self._next_id += 1
        request_id = self._next_id
        self._file.write(protocol.encode_request(verb, params or {}, request_id))
        self._file.flush()
        doc = protocol.decode_response(self._file.readline())
        got_id = doc.get("id")
        if got_id is not None and got_id != request_id:
            raise InternalError(
                f"response id {got_id!r} does not match request id {request_id}"
            )
        if not doc.get("ok"):
            raise errors.from_payload(doc.get("error", {}))
        result = doc.get("result", {})
        if not isinstance(result, dict):
            raise InternalError(f"malformed result payload: {result!r}")
        return result

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- verbs --------------------------------------------------------------------
    def predict(
        self,
        model: str,
        operation: str,
        algorithm: str,
        nbytes: float,
        root: int = 0,
        dest: Optional[int] = None,
    ) -> schema.Prediction:
        params: dict[str, Any] = {
            "model": model, "operation": operation, "algorithm": algorithm,
            "nbytes": nbytes, "root": root,
        }
        if dest is not None:
            params["dest"] = dest
        return schema.Prediction.from_dict(self.call("predict", params))

    def predict_many(
        self,
        model: str,
        requests: Sequence[Union[Mapping[str, Any], PredictRequest,
                                 schema.PredictParams]],
    ) -> schema.PredictionBatch:
        items = []
        for request in requests:
            if isinstance(request, PredictRequest):
                item: dict[str, Any] = {
                    "model": model, "operation": request.operation,
                    "algorithm": request.algorithm, "nbytes": request.nbytes,
                    "root": request.root,
                }
                if request.dest is not None:
                    item["dest"] = request.dest
            elif isinstance(request, schema.PredictParams):
                item = request.to_dict()
            else:
                item = dict(request)
            items.append(item)
        return schema.PredictionBatch.from_dict(
            self.call("predict_many", {"model": model, "requests": items})
        )

    def estimate(self, **params: Any) -> EstimateReply:
        """Server-side estimation; see :class:`repro.api.schema.EstimateParams`
        for the keyword menu (model, profile, nodes, seed, reps, quick,
        empirical, register_as)."""
        result = self.call("estimate", params)
        return EstimateReply(
            outcome=schema.EstimateOutcome.from_dict(result),
            registered_as=str(result.get("registered_as", "")),
        )

    def optimize(
        self,
        model: str,
        sizes: Sequence[float],
        root: int = 0,
        safety: float = 0.9,
    ) -> schema.GatherOptimization:
        return schema.GatherOptimization.from_dict(self.call("optimize", {
            "model": model, "sizes": list(sizes), "root": root,
            "safety": safety,
        }))

    def health(self) -> dict:
        return self.call("health")

    def obs(self) -> dict:
        return self.call("obs")

    def drain(self) -> dict:
        return self.call("drain")
