"""The NDJSON wire protocol of the prediction service.

One request per line, one response line per request, UTF-8 JSON with a
trailing ``\\n`` (newline-delimited JSON).  A request is::

    {"id": 1, "verb": "predict", "params": {...}, "schema_version": 3}

``id`` is echoed verbatim in the response (string, integer or null);
``params`` is the ``to_dict()`` form of the verb's request dataclass in
:mod:`repro.api.schema` (the envelope keys ``kind``/``schema_version``
may be omitted — :meth:`from_dict` fills them in).  A response is one
of::

    {"id": 1, "ok": true,  "result": {...}, "schema_version": 3}
    {"id": 1, "ok": false, "error": {"code": ..., "message": ...},
     "schema_version": 3}

where ``result`` is again a schema-v3 document and ``error`` is the
taxonomy payload of :func:`repro.api.errors.error_payload` — the same
codes :mod:`repro.api` raises in-process.  Requests longer than
:data:`MAX_LINE_BYTES` are rejected (the stream cannot be resynchronized
after an oversized line, so the server answers with ``id: null`` and
closes the connection).

Everything here is a pure function over bytes/str — no I/O — so the
framing is testable without a socket.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.api.errors import InternalError, InvalidRequest, error_payload
from repro.api.schema import SCHEMA_VERSION

__all__ = [
    "MAX_LINE_BYTES",
    "VERBS",
    "Request",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_request",
    "encode_response",
    "peek_id",
]

#: Hard cap on one request line (1 MiB); past it the stream is broken.
MAX_LINE_BYTES = 1 << 20

#: Every verb the server answers.  ``health``/``obs``/``drain`` are
#: handled inline by the server; the rest are queued onto workers.
VERBS = (
    "drain",
    "estimate",
    "health",
    "obs",
    "optimize",
    "predict",
    "predict_many",
)

RequestId = Union[str, int, None]


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    id: RequestId
    verb: str
    params: Mapping[str, Any]


def _dumps(doc: Mapping[str, Any]) -> bytes:
    # Compact separators keep the common predict reply well under one
    # network segment; ensure_ascii guarantees the line has no raw
    # newline bytes regardless of payload strings.
    return json.dumps(doc, separators=(",", ":"), ensure_ascii=True).encode() + b"\n"


def encode_request(verb: str, params: Mapping[str, Any],
                   request_id: RequestId = None) -> bytes:
    """One request line (client side)."""
    return _dumps({
        "id": request_id, "verb": verb, "params": dict(params),
        "schema_version": SCHEMA_VERSION,
    })


def encode_response(request_id: RequestId, result: Mapping[str, Any]) -> bytes:
    """One success line (server side)."""
    return _dumps({
        "id": request_id, "ok": True, "result": result,
        "schema_version": SCHEMA_VERSION,
    })


def encode_error(request_id: RequestId, exc: BaseException) -> bytes:
    """One error line (server side); any exception maps onto the taxonomy."""
    return _dumps({
        "id": request_id, "ok": False, "error": error_payload(exc),
        "schema_version": SCHEMA_VERSION,
    })


def decode_request(line: Union[bytes, bytearray, str]) -> Request:
    """Parse and validate one request line.

    Raises :class:`~repro.api.errors.InvalidRequest` for every way a
    line can be wrong: oversized, not UTF-8, not JSON, not an object,
    wrong ``schema_version``, unknown ``verb``, non-object ``params``,
    non-scalar ``id``.
    """
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_LINE_BYTES:
            raise InvalidRequest(
                f"request line of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte limit"
            )
        try:
            text = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise InvalidRequest(f"request line is not valid UTF-8: {exc}") from exc
    else:
        text = line
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise InvalidRequest(f"request line is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise InvalidRequest(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    version = doc.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise InvalidRequest(
            f"unsupported schema_version {version!r} (this server speaks "
            f"{SCHEMA_VERSION})"
        )
    verb = doc.get("verb")
    if not isinstance(verb, str) or verb not in VERBS:
        raise InvalidRequest(f"unknown verb {verb!r}; supported: {list(VERBS)}")
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise InvalidRequest(
            f"params must be an object, got {type(params).__name__}"
        )
    request_id = doc.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise InvalidRequest("id must be a string, an integer or null")
    return Request(id=request_id, verb=verb, params=params)


def peek_id(line: Union[bytes, bytearray, str]) -> RequestId:
    """Best-effort ``id`` extraction from a line that failed to decode,
    so even an error reply for a malformed request can be correlated."""
    try:
        doc = json.loads(line if isinstance(line, str) else bytes(line).decode(
            "utf-8", errors="replace"))
    except ValueError:
        return None
    if isinstance(doc, dict):
        request_id = doc.get("id")
        if request_id is None or isinstance(request_id, (str, int)):
            return request_id
    return None


def decode_response(line: Union[bytes, bytearray, str],
                    preview_bytes: int = 120) -> dict[str, Any]:
    """Parse one response line (client side).

    Raises :class:`~repro.api.errors.InternalError` when the line is
    empty (connection closed) or unparseable; the caller decides what to
    do with ``ok: false`` payloads (see
    :meth:`repro.serve.client.ServiceClient.call`).
    """
    stripped = bytes(line).strip() if isinstance(line, (bytes, bytearray)) \
        else line.strip()
    if not stripped:
        raise InternalError("connection closed before a response arrived")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        preview: Any = line[:preview_bytes]
        raise InternalError(f"malformed response line {preview!r}: {exc}") from exc
    if not isinstance(doc, dict) or "ok" not in doc:
        raise InternalError(f"malformed response (no 'ok' field): {doc!r}")
    return doc
