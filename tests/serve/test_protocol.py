"""Tests for the NDJSON framing — pure functions, no sockets."""

import json

import pytest

from repro.api.errors import (
    InternalError,
    InvalidRequest,
    ModelNotLoaded,
    Overloaded,
)
from repro.api.schema import SCHEMA_VERSION
from repro.serve import protocol


# -- encoding ---------------------------------------------------------------------
def test_request_round_trip():
    line = protocol.encode_request("predict", {"model": "lmo", "nbytes": 1024},
                                   request_id=7)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    request = protocol.decode_request(line)
    assert request.id == 7
    assert request.verb == "predict"
    assert request.params == {"model": "lmo", "nbytes": 1024}


def test_encoded_lines_never_contain_raw_newlines():
    # A newline (or any non-ASCII byte) inside a payload string must not
    # break the one-line-per-message framing.
    line = protocol.encode_request("predict", {"model": "a\nb c"}, 1)
    assert line.count(b"\n") == 1 and line.endswith(b"\n")
    assert protocol.decode_request(line).params["model"] == "a\nb c"


def test_response_round_trip():
    line = protocol.encode_response("abc", {"kind": "prediction"})
    doc = protocol.decode_response(line)
    assert doc == {"id": "abc", "ok": True, "result": {"kind": "prediction"},
                   "crc": protocol.payload_checksum({"kind": "prediction"}),
                   "schema_version": SCHEMA_VERSION}


# -- resilience envelope keys -----------------------------------------------------
def test_deadline_and_idempotency_round_trip():
    line = protocol.encode_request("predict", {}, 5, deadline_ms=250,
                                   idempotency_key="c7e1-42")
    request = protocol.decode_request(line)
    assert request.deadline_ms == 250.0
    assert request.idempotency_key == "c7e1-42"
    # Omitted keys decode as None (and are not emitted on the wire).
    plain = protocol.encode_request("predict", {}, 5)
    assert b"deadline_ms" not in plain and b"idempotency_key" not in plain
    decoded = protocol.decode_request(plain)
    assert decoded.deadline_ms is None and decoded.idempotency_key is None


@pytest.mark.parametrize("line, match", [
    (b'{"verb": "predict", "deadline_ms": 0}\n', "deadline_ms"),
    (b'{"verb": "predict", "deadline_ms": -5}\n', "deadline_ms"),
    (b'{"verb": "predict", "deadline_ms": true}\n', "deadline_ms"),
    (b'{"verb": "predict", "deadline_ms": "soon"}\n', "deadline_ms"),
    (b'{"verb": "predict", "deadline_ms": NaN}\n', "deadline_ms"),
    (b'{"verb": "predict", "idempotency_key": ""}\n', "idempotency_key"),
    (b'{"verb": "predict", "idempotency_key": 7}\n', "idempotency_key"),
])
def test_decode_request_rejects_bad_resilience_keys(line, match):
    with pytest.raises(InvalidRequest, match=match):
        protocol.decode_request(line)


def test_decode_request_rejects_oversized_idempotency_key():
    key = "k" * (protocol.MAX_IDEMPOTENCY_KEY_CHARS + 1)
    line = protocol.encode_request("predict", {}, 1, idempotency_key=key)
    with pytest.raises(InvalidRequest, match="idempotency_key"):
        protocol.decode_request(line)


def test_payload_checksum_is_key_order_independent():
    a = {"x": 1.5, "y": {"b": 2, "a": [1, 2]}}
    b = {"y": {"a": [1, 2], "b": 2}, "x": 1.5}
    assert protocol.payload_checksum(a) == protocol.payload_checksum(b)
    assert protocol.payload_checksum(a) != protocol.payload_checksum({"x": 1.5})


def test_decode_response_detects_corruption():
    line = protocol.encode_response(1, {"kind": "prediction", "seconds": 1.25})
    # Flip one digit inside the float — still perfectly valid JSON, but
    # the checksum must catch it.
    corrupt = line.replace(b"1.25", b"1.35")
    assert corrupt != line
    with pytest.raises(protocol.WireError, match="crc mismatch"):
        protocol.decode_response(corrupt)
    # The untampered line passes.
    assert protocol.decode_response(line)["result"]["seconds"] == 1.25


def test_decode_response_checks_error_payload_crc_too():
    line = protocol.encode_error(2, InvalidRequest("bad nbytes"))
    corrupt = line.replace(b"bad nbytes", b"mad nbytes")
    with pytest.raises(protocol.WireError, match="crc mismatch"):
        protocol.decode_response(corrupt)
    assert protocol.decode_response(line)["error"]["code"] == "invalid_request"


def test_decode_response_without_crc_is_accepted():
    # Backwards compatibility: a stamp-free reply (older server) decodes.
    doc = protocol.decode_response(b'{"id": 1, "ok": true, "result": {}}\n')
    assert doc["ok"] is True


def test_encode_error_carries_the_taxonomy_payload():
    for exc, code in [
        (InvalidRequest("bad"), "invalid_request"),
        (ModelNotLoaded("gone"), "model_not_loaded"),
        (Overloaded("full"), "overloaded"),
        (RuntimeError("boom"), "internal_error"),
        (ValueError("nope"), "invalid_request"),
        (LookupError("nope"), "model_not_loaded"),
    ]:
        doc = json.loads(protocol.encode_error(3, exc))
        assert doc["ok"] is False
        assert doc["id"] == 3
        assert doc["error"]["code"] == code
        assert doc["schema_version"] == SCHEMA_VERSION


# -- request validation -----------------------------------------------------------
def test_envelope_defaults_are_filled_in():
    request = protocol.decode_request(b'{"verb": "health"}\n')
    assert request.id is None
    assert request.params == {}


def test_decode_request_accepts_str_and_bytearray():
    raw = '{"id": "x", "verb": "obs", "params": {}}'
    assert protocol.decode_request(raw).id == "x"
    assert protocol.decode_request(bytearray(raw.encode())).id == "x"


@pytest.mark.parametrize("line, match", [
    (b"\xff\xfe{}", "not valid UTF-8"),
    (b"{not json}\n", "not valid JSON"),
    (b"[1, 2]\n", "must be a JSON object"),
    (b'{"verb": "predict", "schema_version": 2}\n', "unsupported schema_version"),
    (b'{"verb": "launch_missiles"}\n', "unknown verb"),
    (b'{"verb": 7}\n', "unknown verb"),
    (b'{"verb": "predict", "params": [1]}\n', "params must be an object"),
    (b'{"verb": "predict", "id": [1]}\n', "id must be"),
    (b'{"verb": "predict", "id": 1.5}\n', "id must be"),
])
def test_decode_request_rejects(line, match):
    with pytest.raises(InvalidRequest, match=match):
        protocol.decode_request(line)


def test_decode_request_rejects_oversized_line():
    line = b'{"verb": "predict", "params": {"pad": "' + \
        b"x" * protocol.MAX_LINE_BYTES + b'"}}\n'
    with pytest.raises(InvalidRequest, match="exceeds"):
        protocol.decode_request(line)


def test_every_verb_decodes():
    for verb in protocol.VERBS:
        assert protocol.decode_request(
            protocol.encode_request(verb, {}, 1)
        ).verb == verb


# -- id correlation for broken lines ----------------------------------------------
def test_peek_id_recovers_id_from_valid_json():
    assert protocol.peek_id(b'{"id": 42, "verb": "launch_missiles"}\n') == 42
    assert protocol.peek_id(b'{"id": "r-1", "schema_version": 99}\n') == "r-1"


def test_peek_id_is_none_for_garbage():
    assert protocol.peek_id(b"{not json}\n") is None
    assert protocol.peek_id(b"\xff\xfe\n") is None
    assert protocol.peek_id(b'{"id": [1]}\n') is None
    assert protocol.peek_id(b"[]\n") is None


# -- response validation ----------------------------------------------------------
def test_decode_response_empty_line_means_closed_connection():
    with pytest.raises(InternalError, match="connection closed"):
        protocol.decode_response(b"")
    with pytest.raises(InternalError, match="connection closed"):
        protocol.decode_response("  \n")


def test_decode_response_rejects_garbage():
    with pytest.raises(InternalError, match="malformed response"):
        protocol.decode_response(b"{nope\n")
    with pytest.raises(InternalError, match="no 'ok' field"):
        protocol.decode_response(b'{"id": 1}\n')
    with pytest.raises(InternalError, match="no 'ok' field"):
        protocol.decode_response(b"[1]\n")


# -- trace envelope key -----------------------------------------------------------
def test_trace_header_round_trips():
    header = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
    line = protocol.encode_request("health", {}, 1, trace=header)
    assert protocol.decode_request(line).trace == header
    # Absent by default: untraced requests pay no envelope bytes.
    bare = protocol.encode_request("health", {}, 1)
    assert b"trace" not in bare
    assert protocol.decode_request(bare).trace is None


def test_non_string_trace_degrades_to_untraced():
    # A garbage trace value must never invalidate the request itself.
    doc = json.loads(protocol.encode_request("health", {}, 1))
    doc["trace"] = 12345
    request = protocol.decode_request(json.dumps(doc))
    assert request.verb == "health" and request.trace is None


def test_encode_error_merges_correlation_fields():
    line = protocol.encode_error(3, ModelNotLoaded("nope"), extra={
        "request_id": 3, "trace_id": "a" * 32, "skipped": None,
    })
    doc = protocol.decode_response(line)  # crc covers the merged fields
    assert doc["error"]["request_id"] == 3
    assert doc["error"]["trace_id"] == "a" * 32
    assert "skipped" not in doc["error"]  # None values are dropped
    # setdefault semantics: taxonomy keys are never clobbered.
    clobber = protocol.encode_error(4, ModelNotLoaded("nope"),
                                    extra={"code": "hijacked"})
    assert protocol.decode_response(clobber)["error"]["code"] != "hijacked"
