"""Figure 4: linear scatter — observation vs all models' predictions.

The paper's headline scatter result: the LMO prediction (formula (4))
tracks the observation including the overall slope; PLogP is competitive
for medium sizes; heterogeneous-Hockney (sequential) and LogGP are far
off because their linear-scatter formulas serialize everything.  The
observation shows a leap at 64 KB (LAM's eager/rendezvous threshold) that
repeats and converges back to the same slope.
"""

from __future__ import annotations

from repro.experiments.common import (
    SIZES_FULL,
    SIZES_QUICK,
    ExperimentResult,
    Series,
    get_model_suite,
    observation_benchmark,
    paper_cluster,
    prediction_series,
)

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 4 (series in seconds, sizes in bytes)."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    bench = observation_benchmark(cluster, quick)

    observed = Series(
        "observed", sizes,
        tuple(bench.measure("scatter", "linear", m).mean for m in sizes),
    )
    predictions = {
        "lmo": suite.lmo,
        "het-hockney": suite.hockney_het,
        "loggp": suite.loggp,
        "plogp": suite.plogp,
    }
    series = [observed] + [
        prediction_series(name, model, "scatter", "linear", sizes)
        for name, model in predictions.items()
    ]
    result = ExperimentResult(
        experiment_id="fig4",
        title="Linear scatter: observation vs LMO, het-Hockney, LogGP, PLogP",
        series=series,
    )
    errors = {
        name: result.get(name).mean_relative_error(observed) for name in predictions
    }
    below_leap = [m for m in sizes if m <= 64 * 1024]
    lmo_small = Series(
        "lmo-small", tuple(below_leap),
        tuple(result.get("lmo").at(m) for m in below_leap),
    ).mean_relative_error(
        Series("obs-small", tuple(below_leap), tuple(observed.at(m) for m in below_leap))
    )
    plogp_small = Series(
        "plogp-small", tuple(below_leap),
        tuple(result.get("plogp").at(m) for m in below_leap),
    ).mean_relative_error(
        Series("obs-small", tuple(below_leap), tuple(observed.at(m) for m in below_leap))
    )
    pre_leap = below_leap[-1]
    result.checks = {
        "LMO is the most accurate model overall": errors["lmo"] == min(errors.values()),
        "LMO is within 25% of the observation below the leap": lmo_small < 0.25,
        "PLogP is competitive (within 60%) below the leap (paper: 'same accuracy "
        "for medium size messages')": plogp_small < 0.6,
        "het-Hockney (sequential) is pessimistic by >2x below the leap": (
            result.get("het-hockney").at(pre_leap) > 2 * observed.at(pre_leap)
        ),
        "the observation leaps at the 64 KB eager threshold": _has_leap(observed),
    }
    result.notes.append(
        "mean relative errors: "
        + ", ".join(f"{name} {err:.1%}" for name, err in sorted(errors.items()))
    )
    return result


def _has_leap(observed: Series) -> bool:
    """Slope across the 64 KB boundary far exceeds the slope below it."""
    below = [m for m in observed.sizes if m <= 64 * 1024]
    above = [m for m in observed.sizes if m > 64 * 1024]
    if len(below) < 2 or not above:
        return False
    m0, m1 = below[-2], below[-1]
    slope_below = (observed.at(m1) - observed.at(m0)) / (m1 - m0)
    m2 = above[0]
    slope_cross = (observed.at(m2) - observed.at(m1)) / (m2 - m1)
    return slope_cross > 1.5 * slope_below


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
