"""Crash-safe supervision for the prediction daemon.

:class:`Supervisor` runs the server as a child process and keeps it
answering:

* a **watchdog** probes the ``health`` verb every
  ``health_interval`` seconds; a child that stops answering (wedged
  event loop, deadlocked worker) for ``health_misses`` consecutive
  probes — or never answers within ``startup_grace`` — is killed with
  SIGKILL and treated as a crash;
* a crashed child (nonzero exit, killed by a signal, ``kill -9`` from
  outside) is **restarted** after an exponential backoff
  (``backoff_base * backoff_multiplier ** n``, capped at
  ``backoff_max``); the backoff resets once a child proves healthy;
* a **crash loop** — ``restart_limit`` crashes inside a sliding
  ``restart_window`` seconds — makes the supervisor give up with the
  distinct exit code :data:`CRASH_LOOP_EXIT` instead of burning CPU
  restarting a server that can never come up (bad model file, port
  held by someone else, broken snapshot path);
* a child that exits **zero** (graceful drain via SIGTERM or the
  ``drain`` verb) ends supervision normally — intentional shutdown is
  not a crash.

Restart-survivability of *state* is the server's side of the contract:
``ServeConfig.snapshot_path`` makes the model registry overlay durable
(fsynced atomic snapshot, written before a registration is
acknowledged), so every model registered before a ``kill -9`` is
re-served by the restarted child.  The supervisor only has to point
every incarnation at the same snapshot file.

Everything is observable: ``supervisor_restarts_total`` counts
restarts, the ``supervisor_crash_loop`` gauge goes to 1 when the
supervisor gives up, and each lifecycle step emits an event — the
``service_crash_loop`` alert rule watches the gauge.

Exposed on the CLI as ``repro serve --supervised`` (docs/service.md).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs import flight as _flight
from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.serve.client import ServiceClient

__all__ = ["CRASH_LOOP_EXIT", "Supervisor", "SupervisorConfig", "resolve_port"]

#: Exit code when supervision gives up on a crash-looping child —
#: distinct from the child's own exit codes so process managers can
#: tell "the service is misconfigured" from "the service failed once".
CRASH_LOOP_EXIT = 86


def resolve_port(host: str = "127.0.0.1") -> int:
    """Pre-resolve an ephemeral port so every restarted child binds the
    *same* endpoint (clients reconnect to one address across crashes)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return int(sock.getsockname()[1])


@dataclass(frozen=True)
class SupervisorConfig:
    """One supervised service: the child argv and the watchdog knobs."""

    #: Child argv, e.g. ``[sys.executable, "-m", "repro.cli", "serve", ...]``.
    #: Must serve on the endpoint below with a *concrete* port.
    command: Sequence[str]
    host: str = "127.0.0.1"
    port: int = 7725
    unix_path: Optional[str] = None
    #: Seconds between health probes.
    health_interval: float = 0.5
    #: Per-probe connect/call timeout.
    health_timeout: float = 2.0
    #: Seconds a fresh child gets to answer its first probe.
    startup_grace: float = 20.0
    #: Consecutive failed probes (after being healthy) before the child
    #: is declared wedged and killed.
    health_misses: int = 3
    #: Crashes within ``restart_window`` seconds that end supervision.
    restart_limit: int = 5
    restart_window: float = 60.0
    backoff_base: float = 0.2
    backoff_max: float = 5.0
    backoff_multiplier: float = 2.0
    #: Flight-recorder directory: each child incarnation gets a spill
    #: file here (exported as REPRO_FLIGHT_SPILL); after reaping a
    #: crashed or wedged child the supervisor promotes the spill into a
    #: durable ``flight-<n>-<reason>.json`` dump — the black box a
    #: ``kill -9`` post-mortem reads (``repro obs flight inspect``).
    flight_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.command:
            raise ValueError("command must be a non-empty argv")
        if self.restart_limit < 1:
            raise ValueError("restart_limit must be >= 1")
        if self.restart_window <= 0 or self.health_interval <= 0:
            raise ValueError("restart_window and health_interval must be > 0")
        if self.health_misses < 1:
            raise ValueError("health_misses must be >= 1")


# Watch outcomes.
_EXITED = "exited"
_WEDGED = "wedged"
_STOPPED = "stopped"


@dataclass
class Supervisor:
    """Run, watch, restart; give up only on a crash loop."""

    config: SupervisorConfig
    restarts: int = 0
    gave_up: bool = False
    child: Optional[subprocess.Popen] = field(default=None, repr=False)
    incarnation: int = 0
    #: Flight dumps recovered from dead children (newest last).
    flight_dumps: list = field(default_factory=list, repr=False)
    _stop: threading.Event = field(default_factory=threading.Event, repr=False)
    _crashes: deque = field(default_factory=deque, repr=False)
    _spill: Optional[str] = field(default=None, repr=False)

    # -- probing --------------------------------------------------------------------
    def _probe(self) -> bool:
        cfg = self.config
        try:
            with ServiceClient(host=cfg.host, port=cfg.port,
                               unix_path=cfg.unix_path,
                               timeout=cfg.health_timeout) as client:
                client.health()
            return True
        except Exception:  # noqa: BLE001 - any failure is a missed probe
            return False

    def _watch(self, child: subprocess.Popen) -> tuple[str, bool]:
        """Block until the child exits, wedges, or stop() is called.
        Returns (outcome, was_ever_healthy)."""
        cfg = self.config
        first_deadline = time.monotonic() + cfg.startup_grace
        healthy_once = False
        misses = 0
        while True:
            if self._stop.is_set():
                return _STOPPED, healthy_once
            if child.poll() is not None:
                return _EXITED, healthy_once
            if self._probe():
                healthy_once = True
                misses = 0
            elif healthy_once:
                misses += 1
                if misses >= cfg.health_misses:
                    return _WEDGED, healthy_once
            elif time.monotonic() > first_deadline:
                return _WEDGED, healthy_once
            self._stop.wait(cfg.health_interval)

    # -- lifecycle ------------------------------------------------------------------
    def _spawn(self) -> subprocess.Popen:
        # Hand the active trace down to the child (fresh span id per
        # incarnation) so a restarted server's ``service_started`` event
        # carries the same trace id as the supervisor's restart events.
        env = None
        ctx = _trace.current()
        if ctx is not None:
            env = dict(os.environ)
            env[_trace.ENV_VAR] = ctx.child().to_traceparent()
        self.incarnation += 1
        if self.config.flight_dir is not None:
            # One spill per incarnation: a restart must not overwrite the
            # black box of the child we are about to post-mortem.
            os.makedirs(self.config.flight_dir, exist_ok=True)
            self._spill = os.path.join(
                self.config.flight_dir, f"child-{self.incarnation}.spill")
            if env is None:
                env = dict(os.environ)
            env[_flight.ENV_SPILL] = self._spill
        child = subprocess.Popen(list(self.config.command), env=env)
        self.child = child
        self._event("info", "supervisor_child_started", pid=child.pid,
                    incarnation=self.incarnation)
        return child

    def _recover_flight(self, child: subprocess.Popen, reason: str) -> None:
        """Promote the dead child's spill into a durable dump (best effort)."""
        spill = self._spill
        if spill is None or self.config.flight_dir is None:
            return
        if not os.path.exists(spill):
            return
        out = os.path.join(self.config.flight_dir,
                           f"flight-{self.incarnation}-{reason}.json")
        try:
            _flight.recover_spill(
                spill, out, reason=reason,
                extra={"supervisor": {
                    "pid": os.getpid(), "child_pid": child.pid,
                    "returncode": child.returncode,
                    "incarnation": self.incarnation,
                }},
            )
        except (OSError, ValueError) as exc:
            # Torn spill (child died mid-sync) or unwritable dir: note it,
            # keep supervising — the restart matters more than forensics.
            self._event("warning", "supervisor_flight_unreadable",
                        spill=spill, error=str(exc))
            return
        self.flight_dumps.append(out)
        self._event("info", "supervisor_flight_dumped", path=out,
                    reason=reason, pid=child.pid)
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.counter(
                "supervisor_flight_dumps_total",
                help="flight recorder dumps recovered from dead children",
                reason=reason,
            ).inc()

    def _kill(self, child: subprocess.Popen, grace: float = 10.0) -> None:
        """SIGTERM (the child drains), then SIGKILL if it lingers."""
        if child.poll() is not None:
            return
        child.terminate()
        try:
            child.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()

    def stop(self) -> None:
        """Graceful stop from another thread or a signal handler."""
        self._stop.set()

    def run(self) -> int:
        """Supervise until graceful shutdown (0), a crash loop
        (:data:`CRASH_LOOP_EXIT`), or :meth:`stop`."""
        cfg = self.config
        consecutive = 0
        while True:
            child = self._spawn()
            outcome, was_healthy = self._watch(child)
            if outcome == _STOPPED:
                self._kill(child)
                self._event("info", "supervisor_stopped", pid=child.pid)
                return 0
            if outcome == _WEDGED:
                # Not answering health: nothing graceful left to try.
                child.kill()
                child.wait()
                self._event("warning", "supervisor_child_wedged",
                            pid=child.pid, healthy_once=was_healthy)
                self._recover_flight(child, "wedged")
            returncode = child.returncode
            if outcome == _EXITED and returncode == 0:
                # Graceful drain (SIGTERM / drain verb): intentional.
                self._event("info", "supervisor_child_drained", pid=child.pid)
                return 0
            if outcome == _EXITED:
                # Crashed (or killed from outside): the spill is all the
                # telemetry that child will ever surrender.
                self._recover_flight(child, "crashed")
            now = time.monotonic()
            self._crashes.append(now)
            while self._crashes and now - self._crashes[0] > cfg.restart_window:
                self._crashes.popleft()
            self._event("warning", "supervisor_child_crashed",
                        pid=child.pid, returncode=returncode,
                        crashes_in_window=len(self._crashes))
            if len(self._crashes) >= cfg.restart_limit:
                self.gave_up = True
                self._gauge("supervisor_crash_loop", 1.0)
                self._event(
                    "error", "supervisor_gave_up",
                    crashes=len(self._crashes), window=cfg.restart_window,
                )
                return CRASH_LOOP_EXIT
            consecutive = 0 if was_healthy else consecutive + 1
            backoff = min(cfg.backoff_max,
                          cfg.backoff_base * cfg.backoff_multiplier ** consecutive)
            self.restarts += 1
            self._counter("supervisor_restarts_total")
            if self._stop.wait(backoff):
                return 0

    def run_under_signals(self) -> int:
        """:meth:`run` with SIGTERM/SIGINT routed to :meth:`stop` —
        what ``repro serve --supervised`` calls from the main thread."""
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_args: self.stop()
            )
        try:
            return self.run()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # -- telemetry ------------------------------------------------------------------
    @staticmethod
    def _event(level: str, name: str, **fields: object) -> None:
        tel = _obs.ACTIVE
        if tel is not None:
            ctx = _trace.current()
            if ctx is not None and "trace_id" not in fields:
                fields["trace_id"] = ctx.trace_id
            getattr(tel.events, level)(name, **fields)

    @staticmethod
    def _counter(name: str) -> None:
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.counter(
                name, help="supervised child restarts").inc()

    @staticmethod
    def _gauge(name: str, value: float) -> None:
        tel = _obs.ACTIVE
        if tel is not None:
            tel.registry.gauge(
                name, help="1 when supervision gave up on a crash loop"
            ).set(value)
