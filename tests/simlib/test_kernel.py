"""Unit tests for the DES kernel: clock, events, processes, conditions."""

import pytest

from repro.simlib import Event, Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    times = []

    def proc(sim):
        yield sim.timeout(2.5)
        times.append(sim.now)
        yield sim.timeout(1.0)
        times.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert times == [2.5, 3.5]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["payload"]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append((name, sim.now))

    sim.spawn(proc(sim, "a", 2.0))
    sim.spawn(proc(sim, "b", 1.0))
    sim.run()
    assert order == [("b", 1.0), ("a", 2.0)]


def test_simultaneous_events_fire_in_spawn_order():
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in "abcd":
        sim.spawn(proc(sim, name))
    sim.run()
    assert order == list("abcd")


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    evt = sim.event()
    got = []

    def waiter(sim):
        value = yield evt
        got.append((sim.now, value))

    def trigger(sim):
        yield sim.timeout(3.0)
        evt.succeed(42)

    sim.spawn(waiter(sim))
    sim.spawn(trigger(sim))
    sim.run()
    assert got == [(3.0, 42)]


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_propagates_into_process():
    sim = Simulator()
    evt = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    def trigger(sim):
        yield sim.timeout(1.0)
        evt.fail(ValueError("boom"))

    sim.spawn(waiter(sim))
    sim.spawn(trigger(sim))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_return_value_via_run_until():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "done"

    result = sim.run(until=sim.spawn(proc(sim)))
    assert result == "done"


def test_process_is_event_waitable_by_other_process():
    sim = Simulator()
    got = []

    def child(sim):
        yield sim.timeout(2.0)
        return 7

    def parent(sim):
        value = yield sim.spawn(child(sim))
        got.append((sim.now, value))

    sim.spawn(parent(sim))
    sim.run()
    assert got == [(2.0, 7)]


def test_yield_already_fired_event_resumes_immediately():
    sim = Simulator()
    got = []

    def proc(sim):
        evt = sim.event()
        evt.succeed("early")
        yield sim.timeout(1.0)
        value = yield evt  # fired long ago
        got.append((sim.now, value))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(1.0, "early")]


def test_unhandled_process_exception_crashes_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.spawn(proc(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_watched_process_exception_delivered_to_waiter():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("child failed")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["child failed"]


def test_yielding_non_event_is_error():
    sim = Simulator()

    def proc(sim):
        yield 42

    sim.spawn(proc(sim))
    with pytest.raises(SimulationError, match="must yield Event"):
        sim.run()


def test_run_until_time_stops_and_sets_clock():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.spawn(proc(sim))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_run_until_event_raises_if_starved():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(until=evt)


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt("wake up")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, victim))
    sim.run()
    assert log == [(1.0, "wake up")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_is_alive_transitions():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.spawn(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_all_of_waits_for_every_event():
    sim = Simulator()
    got = []

    def proc(sim):
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
        got.append((sim.now, values))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(3.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def proc(sim):
        values = yield sim.all_of([])
        got.append(values)

    sim.spawn(proc(sim))
    sim.run()
    assert got == [[]]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        got.append((sim.now, value))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(1.0, "fast")]


def test_peek_reports_next_event_time():
    sim = Simulator()

    def empty(sim):
        return
        yield  # pragma: no cover - makes this a generator

    sim.spawn(empty(sim))
    sim.run()
    assert sim.peek() == float("inf")


def test_many_processes_scale_and_order():
    sim = Simulator()
    results = []

    def proc(sim, i):
        yield sim.timeout(float(i % 7))
        results.append(i)

    for i in range(500):
        sim.spawn(proc(sim, i))
    sim.run()
    assert sorted(results) == list(range(500))
    # Within equal delays, spawn order is preserved.
    same_delay = [i for i in results if i % 7 == 3]
    assert same_delay == sorted(same_delay)


def test_event_value_raises_stored_exception():
    sim = Simulator()
    evt = Event(sim)
    evt.fail(KeyError("k"))
    sim.run()
    with pytest.raises(KeyError):
        _ = evt.value


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    caught = []

    def failer(sim):
        yield sim.timeout(1.0)
        raise ValueError("child boom")

    def waiter(sim):
        try:
            yield sim.all_of([sim.timeout(5.0), sim.spawn(failer(sim))])
        except ValueError as exc:
            caught.append((sim.now, str(exc)))

    sim.spawn(waiter(sim))
    sim.run()
    assert caught == [(1.0, "child boom")]


def test_any_of_ignores_later_events_after_first():
    sim = Simulator()
    got = []

    def waiter(sim):
        value = yield sim.any_of([sim.timeout(1.0, "first"), sim.timeout(2.0, "second")])
        got.append(value)
        yield sim.timeout(5.0)  # outlive the second timeout

    sim.spawn(waiter(sim))
    sim.run()
    assert got == ["first"]


def test_step_on_empty_queue_raises_simulation_error():
    sim = Simulator()
    with pytest.raises(SimulationError, match="no events scheduled"):
        sim.step()
    # The clock is untouched by the failed step.
    assert sim.now == 0.0
