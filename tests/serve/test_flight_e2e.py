"""The black-box acceptance flight: kill -9 a supervised daemon mid-load
and read the story back out of the wreckage.

The child mirrors its flight recorder to a supervisor-assigned spill
file on every request (``--flight-sync-interval 0``); SIGKILL gives it
no chance to say goodbye.  The supervisor reaps the corpse, promotes the
spill into a durable flight dump, and ``repro obs flight inspect`` shows
the last ``serve.request`` spans — stamped with the trace id the caller
was propagating when the lights went out.
"""

import io
import os
import random
import signal
import sys
import threading
import time
from contextlib import redirect_stdout

import pytest

from repro import api
from repro.cli import main as cli_main
from repro.obs import flight as _flight
from repro.obs import trace as _trace
from repro.serve.client import ResilientClient, RetryPolicy
from repro.serve.supervisor import Supervisor, SupervisorConfig, resolve_port

from tests.serve.conftest import KB, make_model

pytestmark = pytest.mark.resilience

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..",
                                   "src"))


@pytest.fixture()
def model_file(tmp_path):
    path = tmp_path / "lmo.json"
    api.save_model(make_model(), str(path))
    return str(path)


def test_kill9_leaves_a_readable_flight_dump(model_file, tmp_path,
                                             monkeypatch):
    flight_dir = str(tmp_path / "flight")
    port = resolve_port()
    command = [sys.executable, "-m", "repro.cli", "serve",
               "--host", "127.0.0.1", "--port", str(port),
               "--model", f"lmo={model_file}", "--workers", "1",
               "--flight-sync-interval", "0"]
    supervisor = Supervisor(SupervisorConfig(
        command=command, port=port,
        health_interval=0.1, backoff_base=0.05, backoff_max=0.5,
        restart_limit=5, restart_window=60.0,
        flight_dir=flight_dir,
    ))
    monkeypatch.setenv("PYTHONPATH", SRC)

    thread = threading.Thread(target=supervisor.run, daemon=True)
    thread.start()
    ctx = _trace.new_context(random.Random(11))
    token = _trace.activate(ctx)
    client = ResilientClient(
        host="127.0.0.1", port=port, timeout=5.0,
        retry=RetryPolicy(max_retries=40, base_delay=0.05, max_delay=0.5,
                          seed=3),
    )
    try:
        # Load with a live trace context: every wire hop carries ctx's
        # trace id, and the child's recorder spills after each request.
        for i in range(5):
            client.predict("lmo", "scatter", "linear", float(KB << i))

        victim = supervisor.child
        assert victim is not None
        spill = os.path.join(flight_dir, "child-1.spill")
        assert os.path.exists(spill)  # the supervisor assigned it via env
        os.kill(victim.pid, signal.SIGKILL)

        # The same client rides through the restart; service recovered.
        client.predict("lmo", "scatter", "linear", 64.0 * KB)
        deadline = time.monotonic() + 30.0
        while not supervisor.flight_dumps and time.monotonic() < deadline:
            time.sleep(0.05)
    finally:
        _trace.restore(token)
        client.close()
        supervisor.stop()
        thread.join(timeout=30.0)
    assert not thread.is_alive()

    # -- the dump: durable, provenance-stamped, trace-correlated ---------
    assert supervisor.flight_dumps
    dump_path = supervisor.flight_dumps[0]
    assert os.path.basename(dump_path) == "flight-1-crashed.json"
    payload = _flight.load_any(dump_path)
    assert payload["reason"] == "crashed"
    assert payload["recovered"]["reason"] == "crashed"
    assert payload["supervisor"]["incarnation"] == 1
    assert payload["supervisor"]["returncode"] == -signal.SIGKILL

    spans = _flight.telemetry_of(payload)["spans"]
    served = [s for s in spans if s["name"] == "serve.request"]
    assert served, f"no serve.request spans in {dump_path}"
    assert any(s.get("trace_id") == ctx.trace_id for s in served)

    # -- and the operator path: repro obs flight inspect ------------------
    out = io.StringIO()
    with redirect_stdout(out):
        code = cli_main(["obs", "flight", "inspect", dump_path])
    text = out.getvalue()
    assert code == 0
    assert "serve.request" in text
    assert ctx.trace_id in text
    assert "crashed" in text
