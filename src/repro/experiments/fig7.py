"""Figure 7: LMO model-based optimization of linear gather.

"Fig. 7 shows the performance of a simple optimized version of gather
that was implemented on top of its native counterpart by splitting the
messages of medium size and performing a series of gathers in order to
avoid the escalations.  Using the empirical parameters of the LMO model
for linear gather, we gained 10 times better performance."

We sweep the medium region, running the native linear gather and the
split-optimized gather built from the estimated empirical parameters.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    KB,
    ExperimentResult,
    Series,
    get_model_suite,
    paper_cluster,
)
from repro.mpi import run_ranks
from repro.mpi.collectives import linear
from repro.optimize import optimized_gather

__all__ = ["run"]

SIZES_FULL = tuple(int(m * KB) for m in (8, 16, 24, 32, 40, 48, 56, 64))
SIZES_QUICK = tuple(int(m * KB) for m in (16, 32, 48))


def _run_gather(cluster, factory, nbytes: int, root: int = 0) -> float:
    programs = {
        rank: (lambda comm, f=factory: f(comm, root, nbytes)) for rank in range(cluster.n)
    }
    results = run_ranks(cluster, programs)
    return max(res.finish for res in results.values())


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 7 (series in seconds, sizes in bytes)."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    irregularity = suite.lmo.gather_irregularity
    assert irregularity is not None
    reps = 6 if quick else 12

    native_mean, optimized_mean, native_max = [], [], []
    for m in sizes:
        native = [
            _run_gather(cluster, lambda c, r, n: linear.gather(c, r, n), m)
            for _ in range(reps)
        ]
        optimized = [
            _run_gather(
                cluster, lambda c, r, n: optimized_gather(c, r, n, irregularity), m
            )
            for _ in range(reps)
        ]
        native_mean.append(float(np.mean(native)))
        native_max.append(float(np.max(native)))
        optimized_mean.append(float(np.mean(optimized)))

    result = ExperimentResult(
        experiment_id="fig7",
        title="Native linear gather vs LMO model-based optimized gather",
        series=[
            Series("native-mean", sizes, tuple(native_mean)),
            Series("native-max", sizes, tuple(native_max)),
            Series("optimized-mean", sizes, tuple(optimized_mean)),
        ],
    )
    medium = [m for m in sizes if irregularity.m1 < m <= irregularity.m2]
    speedups = {
        m: native_mean[idx] / optimized_mean[idx]
        for idx, m in enumerate(sizes)
        if m in medium
    }
    best = max(speedups.values()) if speedups else 0.0
    result.checks = {
        "the optimization helps at every medium size": all(
            ratio > 1.0 for ratio in speedups.values()
        ),
        "peak speedup in the escalation region is large (>5x)": best > 5.0,
        "optimized gather never pays an RTO (stays below 100 ms)": all(
            value < 0.1 for value in optimized_mean
        ),
    }
    result.notes.append(
        "speedup per medium size: "
        + ", ".join(f"{m // KB}K: {ratio:.1f}x" for m, ratio in sorted(speedups.items()))
        + f" (paper: ~10x)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
