"""Supervision: crash-loop detection, graceful endings, watchdog
kills, and full kill-9 recovery of a real supervised daemon."""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import api
from repro.serve.client import ResilientClient, RetryPolicy
from repro.serve.supervisor import (
    CRASH_LOOP_EXIT,
    Supervisor,
    SupervisorConfig,
    resolve_port,
)

from tests.serve.conftest import KB, make_model

pytestmark = pytest.mark.resilience

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..",
                                   "src"))


def _fast(command, **overrides):
    defaults = dict(
        command=command, port=resolve_port(),
        health_interval=0.05, health_timeout=0.5, startup_grace=0.5,
        restart_limit=3, restart_window=30.0,
        backoff_base=0.01, backoff_max=0.05,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def test_config_validates():
    with pytest.raises(ValueError):
        SupervisorConfig(command=[])
    with pytest.raises(ValueError):
        SupervisorConfig(command=["x"], restart_limit=0)
    with pytest.raises(ValueError):
        SupervisorConfig(command=["x"], health_misses=0)


def test_resolve_port_is_bindable():
    import socket
    port = resolve_port()
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", port))


def test_crash_loop_gives_up_with_the_distinct_exit_code():
    supervisor = Supervisor(_fast(
        [sys.executable, "-c", "import sys; sys.exit(3)"]))
    start = time.monotonic()
    code = supervisor.run()
    assert code == CRASH_LOOP_EXIT
    assert supervisor.gave_up
    assert supervisor.restarts == 2  # limit=3 crashes => 2 restarts granted
    assert time.monotonic() - start < 30.0


def test_zero_exit_ends_supervision_normally():
    supervisor = Supervisor(_fast([sys.executable, "-c", "pass"]))
    assert supervisor.run() == 0
    assert not supervisor.gave_up
    assert supervisor.restarts == 0


def test_wedged_child_is_killed_and_counted_as_a_crash():
    # Runs forever but never serves health: the watchdog declares it
    # wedged after startup_grace, SIGKILLs it, and crash-loops out.
    supervisor = Supervisor(_fast(
        [sys.executable, "-c", "import time; time.sleep(600)"],
        restart_limit=2))
    start = time.monotonic()
    assert supervisor.run() == CRASH_LOOP_EXIT
    assert supervisor.gave_up
    assert time.monotonic() - start < 60.0


def test_stop_terminates_a_running_child():
    supervisor = Supervisor(_fast(
        [sys.executable, "-c", "import time; time.sleep(600)"],
        startup_grace=600.0))
    codes = []
    thread = threading.Thread(target=lambda: codes.append(supervisor.run()))
    thread.start()
    deadline = time.monotonic() + 10.0
    while supervisor.child is None and time.monotonic() < deadline:
        time.sleep(0.01)
    assert supervisor.child is not None
    supervisor.stop()
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    assert codes == [0]
    assert supervisor.child.poll() is not None  # no orphan left behind


@pytest.fixture()
def model_file(tmp_path):
    path = tmp_path / "lmo.json"
    api.save_model(make_model(), str(path))
    return str(path)


def test_kill9_recovery_restores_registered_models(model_file, tmp_path,
                                                   monkeypatch):
    """The tentpole invariant, end to end: register a model, kill -9
    the serving child, and the restarted child still serves it — from
    the fsynced snapshot, through the same supervised endpoint."""
    snapshot = str(tmp_path / "registry.json")
    port = resolve_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    command = [sys.executable, "-m", "repro.cli", "serve",
               "--host", "127.0.0.1", "--port", str(port),
               "--model", f"lmo={model_file}", "--workers", "1",
               "--snapshot", snapshot, "--no-telemetry"]
    supervisor = Supervisor(SupervisorConfig(
        command=command, port=port,
        health_interval=0.1, backoff_base=0.05, backoff_max=0.5,
        restart_limit=5, restart_window=60.0,
    ))
    # The child inherits this process's environment; make sure it can
    # import repro however pytest itself was launched.
    monkeypatch.setenv("PYTHONPATH", env["PYTHONPATH"])

    thread = threading.Thread(target=supervisor.run, daemon=True)
    thread.start()
    client = ResilientClient(
        host="127.0.0.1", port=port, timeout=5.0,
        retry=RetryPolicy(max_retries=40, base_delay=0.05, max_delay=0.5,
                          seed=2),
    )
    try:
        before = client.predict("lmo", "scatter", "linear", 64 * KB)
        reply = client.call("estimate", {
            "model": "lmo", "nodes": 4, "seed": 1, "reps": 1,
            "quick": True, "register_as": "precious",
        })
        assert reply["registered_as"] == "precious"
        victim = supervisor.child
        assert victim is not None
        os.kill(victim.pid, signal.SIGKILL)

        # Same client object rides through the restart transparently.
        after = client.predict("lmo", "scatter", "linear", 64 * KB)
        assert after == before
        models = client.health()["models"]
        assert "precious" in models and "lmo" in models
        assert supervisor.restarts >= 1
    finally:
        client.close()
        supervisor.stop()
        thread.join(timeout=30.0)
    assert not thread.is_alive()


def test_cli_supervised_banner_and_crash_loop(tmp_path):
    """`repro serve --supervised` end to end: banner first, then — with
    a model path that cannot load — the crash loop exit code 86."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--supervised",
         "--port", "0", "--model", f"broken={tmp_path}/missing.json",
         "--restart-limit", "2", "--restart-window", "30",
         "--no-telemetry"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("supervising on 127.0.0.1:"), banner
        code = proc.wait(timeout=120)
        assert code == CRASH_LOOP_EXIT
        assert "crash loop" in proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
