"""Grid benchmarking: operations x algorithms x sizes, rendered as a table.

The front-end MPIBlib-style workflow: measure a whole menu in one go and
print a comparison table — the raw material behind algorithm-switching
decisions and behind every figure of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.benchlib.driver import BenchmarkPoint, CollectiveBenchmark
from repro.cluster.machine import SimulatedCluster
from repro.mpi.collectives import ALGORITHMS
from repro.stats import MeasurementPolicy

__all__ = ["BenchmarkSuite", "SuiteResult"]

KB = 1024
DEFAULT_SIZES = (1 * KB, 16 * KB, 128 * KB)

#: Operations whose algorithms need a combine callable to run.
_NEEDS_COMBINE = {"reduce", "allreduce", "reduce_scatter"}


@dataclass
class SuiteResult:
    """All measured points of one suite run."""

    points: dict[tuple[str, str, int], BenchmarkPoint] = field(default_factory=dict)

    def predictions(self, model) -> dict[tuple[str, str, int], float]:
        """Model predictions for every measured point, one batched call.

        Points the model has no formula for (e.g. barrier) are omitted.
        """
        from repro.predict_service import PredictRequest, available_algorithms, predict_many

        supported = set(available_algorithms(model))
        keys = [key for key in self.points if (key[0], key[1]) in supported]
        requests = [PredictRequest(op, algo, float(m)) for (op, algo, m) in keys]
        values = predict_many(model, requests)
        return {key: float(value) for key, value in zip(keys, values)}

    def prediction_errors(self, model) -> dict[tuple[str, str, int], float]:
        """Relative error |predicted - measured| / measured per point."""
        return {
            key: abs(predicted - self.points[key].mean) / self.points[key].mean
            for key, predicted in self.predictions(model).items()
            if self.points[key].mean > 0
        }

    def record_residuals(self, models: dict[str, object]) -> int:
        """Feed every (prediction, measurement) pair to the residual monitor.

        One batched prediction pass per model; pairs land in the active
        telemetry session's ``residual_*`` metrics
        (:mod:`repro.obs.insight.residuals`) keyed by model name and
        ``operation/algorithm``.  A no-op returning 0 when telemetry is
        off.  Returns the number of pairs ingested.
        """
        from repro.obs.insight.residuals import ResidualMonitor

        monitor = ResidualMonitor()
        ingested = 0
        for name, model in models.items():
            for (op, algo, nbytes), predicted in self.predictions(model).items():
                record = monitor.record(
                    name, f"{op}/{algo}", nbytes, predicted,
                    self.points[(op, algo, nbytes)].mean,
                )
                if record is not None:
                    ingested += 1
        return ingested

    def best_algorithm(self, operation: str, nbytes: int) -> str:
        """The measured winner for one (operation, size)."""
        candidates = {
            algo: point.mean
            for (op, algo, m), point in self.points.items()
            if op == operation and m == nbytes
        }
        if not candidates:
            raise KeyError(f"no measurements for {operation} at {nbytes} bytes")
        return min(candidates, key=candidates.__getitem__)

    def render(self) -> str:
        """Comparison table: one row per (operation, algorithm)."""
        sizes = sorted({m for (_op, _algo, m) in self.points})
        rows = sorted({(op, algo) for (op, algo, _m) in self.points})
        header = f"{'operation':<15} {'algorithm':<20}" + "".join(
            f"{m // KB:>8}K" for m in sizes
        )
        lines = [header]
        for op, algo in rows:
            cells = []
            for m in sizes:
                point = self.points.get((op, algo, m))
                star = ""
                if point is not None and self.best_algorithm(op, m) == algo:
                    star = "*"
                cells.append(
                    f"{point.mean * 1e3:>7.2f}{star or ' '}" if point else f"{'-':>8}"
                )
            lines.append(f"{op:<15} {algo:<20}" + "".join(cells))
        lines.append("(milliseconds; * marks the measured winner per size)")
        return "\n".join(lines)


class BenchmarkSuite:
    """Measure many collectives on one cluster with one policy."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        policy: Optional[MeasurementPolicy] = None,
        timing_method: str = "global",
    ):
        self.bench = CollectiveBenchmark(
            cluster,
            policy=policy if policy is not None else MeasurementPolicy(max_reps=10),
            timing_method=timing_method,
        )

    @property
    def cluster(self) -> SimulatedCluster:
        return self.bench.cluster

    def run(
        self,
        operations: Optional[Sequence[str]] = None,
        sizes: Sequence[int] = DEFAULT_SIZES,
        skip_power_of_two_only: bool = True,
    ) -> SuiteResult:
        """Measure every registered algorithm of the chosen operations.

        Algorithms that cannot run on this cluster (power-of-two-only on
        a non-power-of-two size, etc.) are skipped when
        ``skip_power_of_two_only`` is set, else raise.
        """
        chosen = set(operations) if operations is not None else {
            op for op, _algo in ALGORITHMS
        }
        chosen -= {"scatterv", "gatherv"}  # need per-rank counts, not one size
        result = SuiteResult()
        for (operation, algorithm) in sorted(ALGORITHMS):
            if operation not in chosen:
                continue
            for nbytes in sizes:
                kwargs = {}
                if operation in _NEEDS_COMBINE:
                    kwargs["combine"] = lambda a, b: a
                if operation == "barrier" and nbytes != sizes[0]:
                    continue  # size-independent: measure once
                try:
                    point = self.bench.measure(operation, algorithm, int(nbytes),
                                               **kwargs)
                except ValueError:
                    if skip_power_of_two_only:
                        continue
                    raise
                result.points[(operation, algorithm, int(nbytes))] = point
        return result
