"""An unbounded message store with filtered gets (mailbox primitive).

:class:`Store` is the rendezvous point used by the MPI layer for message
matching: senders ``put`` envelopes, receivers ``get`` with a predicate
(source / tag match).  Puts never block; gets block until a matching item
is available.  Matching is FIFO among items satisfying the predicate,
which mirrors MPI's non-overtaking guarantee per (source, tag).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simlib.kernel import URGENT, Event, Simulator

__all__ = ["Store"]


class _Get(Event):
    __slots__ = ("predicate",)

    def __init__(self, sim: Simulator, predicate: Callable[[Any], bool]):
        super().__init__(sim)
        self.predicate = predicate


class Store:
    """Unbounded FIFO store with predicate-filtered retrieval."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: list[Any] = []
        self._getters: list[_Get] = []

    # -- inspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def peek(self, predicate: Optional[Callable[[Any], bool]] = None) -> Optional[Any]:
        """First item matching ``predicate`` (or any), without removing it."""
        for item in self._items:
            if predicate is None or predicate(item):
                return item
        return None

    # -- operations ---------------------------------------------------------
    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the first waiting getter that matches."""
        for idx, getter in enumerate(self._getters):
            if getter.predicate(item):
                del self._getters[idx]
                getter.succeed(item, priority=URGENT)
                return
        self._items.append(item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event firing with the first item matching ``predicate``."""
        pred = predicate if predicate is not None else (lambda _item: True)
        for idx, item in enumerate(self._items):
            if pred(item):
                del self._items[idx]
                evt = Event(self.sim)
                evt.succeed(item, priority=URGENT)
                return evt
        getter = _Get(self.sim, pred)
        self._getters.append(getter)
        return getter
