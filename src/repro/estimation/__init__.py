"""Parameter estimation for every supported communication model.

The centerpiece is :func:`~repro.estimation.lmo_est.estimate_extended_lmo`
(paper Sec. IV, eqs. 6-12): roundtrips + one-to-two collective experiments,
per-triplet closed-form solves, and redundancy averaging — with serial or
parallel (non-overlapping) experiment schedules.
"""

from repro.estimation.breakers import (
    BreakerBoard,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)
from repro.estimation.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    CampaignStatus,
    campaign_status,
    cluster_fingerprint,
)
from repro.estimation.empirical import (
    GatherSweep,
    ScatterLeap,
    detect_gather_irregularity,
    detect_scatter_leap,
    sweep_collective,
)
from repro.estimation.drift import DriftReport, detect_model_drift, spot_check_pairs
from repro.estimation.engines import AnalyticEngine, DESEngine, ExperimentEngine
from repro.estimation.experiments import (
    Experiment,
    one_to_two,
    overhead_recv,
    overhead_send,
    roundtrip,
    saturation,
)
from repro.estimation.hockney_est import (
    HockneyEstimationResult,
    estimate_heterogeneous_hockney,
    estimate_hockney,
    estimate_hockney_series,
)
from repro.estimation.sensitivity import ProbeSensitivity, probe_sensitivity
from repro.estimation.lmo_est import (
    LMOEstimationResult,
    all_triplets,
    estimate_extended_lmo,
    estimate_original_lmo,
    star_triplets,
)
from repro.estimation.logp_est import LogPEstimationResult, estimate_loggp, estimate_logp
from repro.estimation.journal import (
    CampaignJournal,
    FingerprintMismatch,
    JournalCorruption,
    JournalError,
    JournalReplay,
    ScheduleMismatch,
    replay,
)
from repro.estimation.maintainer import HealthRecord, MaintainerPolicy, ModelMaintainer
from repro.estimation.parallel import (
    AnalyticEngineRecipe,
    ChaosKill,
    DESEngineRecipe,
    EngineRecipe,
    LeasePolicy,
    ParallelCampaign,
    ParallelConfig,
    merge_worker_journals,
    parallel_shards_exist,
    parallel_status,
    recipe_for_cluster,
    worker_journal_paths,
)
from repro.estimation.robust import (
    EstimationFailure,
    RetryPolicy,
    RobustLMOResult,
    RobustRunStats,
    estimate_extended_lmo_robust,
    run_schedule_robust,
)
from repro.estimation.plogp_est import PLogPEstimationResult, adaptive_sizes, estimate_plogp
from repro.estimation.scheduling import (
    pack_rounds,
    pair_rounds,
    run_schedule,
    run_schedule_adaptive,
    triplet_rounds,
)

__all__ = [
    "AnalyticEngine",
    "AnalyticEngineRecipe",
    "BreakerBoard",
    "BreakerPolicy",
    "BreakerState",
    "Campaign",
    "CampaignConfig",
    "CampaignJournal",
    "CampaignResult",
    "CampaignStatus",
    "ChaosKill",
    "CircuitBreaker",
    "DESEngine",
    "DESEngineRecipe",
    "DriftReport",
    "EngineRecipe",
    "FingerprintMismatch",
    "JournalCorruption",
    "JournalError",
    "JournalReplay",
    "ScheduleMismatch",
    "EstimationFailure",
    "Experiment",
    "ExperimentEngine",
    "GatherSweep",
    "HealthRecord",
    "HockneyEstimationResult",
    "ProbeSensitivity",
    "LMOEstimationResult",
    "LeasePolicy",
    "LogPEstimationResult",
    "MaintainerPolicy",
    "ModelMaintainer",
    "PLogPEstimationResult",
    "ParallelCampaign",
    "ParallelConfig",
    "RetryPolicy",
    "RobustLMOResult",
    "RobustRunStats",
    "ScatterLeap",
    "adaptive_sizes",
    "all_triplets",
    "campaign_status",
    "cluster_fingerprint",
    "detect_gather_irregularity",
    "detect_model_drift",
    "detect_scatter_leap",
    "estimate_extended_lmo",
    "estimate_extended_lmo_robust",
    "estimate_original_lmo",
    "estimate_heterogeneous_hockney",
    "estimate_hockney",
    "estimate_hockney_series",
    "estimate_loggp",
    "estimate_logp",
    "estimate_plogp",
    "merge_worker_journals",
    "one_to_two",
    "overhead_recv",
    "overhead_send",
    "pack_rounds",
    "pair_rounds",
    "parallel_shards_exist",
    "parallel_status",
    "probe_sensitivity",
    "recipe_for_cluster",
    "replay",
    "roundtrip",
    "run_schedule",
    "run_schedule_adaptive",
    "run_schedule_robust",
    "saturation",
    "spot_check_pairs",
    "star_triplets",
    "sweep_collective",
    "triplet_rounds",
    "worker_journal_paths",
]
