"""Tests for cluster specifications (Table I reconstruction)."""

import pytest

from repro.cluster import (
    TABLE1_NODE_TYPES,
    ClusterSpec,
    homogeneous_cluster,
    random_cluster,
    table1_cluster,
)


def test_table1_has_sixteen_nodes():
    assert table1_cluster().n == 16


def test_table1_has_seven_node_types():
    assert len(table1_cluster().node_type_counts) == 7


def test_table1_type_multiplicities_match_paper():
    counts = [count for _node, count in table1_cluster().node_type_counts]
    assert counts == [2, 6, 2, 1, 1, 1, 3]


def test_table1_models_match_paper():
    models = [node.model for node, _count in TABLE1_NODE_TYPES]
    assert models == [
        "Dell Poweredge SC1425",
        "Dell Poweredge 750",
        "IBM E-server 326",
        "IBM X-Series 306",
        "HP Proliant DL 320 G3",
        "HP Proliant DL 320 G3",
        "HP Proliant DL 140 G2",
    ]


def test_table1_celeron_has_smallest_cache_and_slowest_fsb():
    celeron = next(n for n, _c in TABLE1_NODE_TYPES if "Celeron" in n.processor)
    assert celeron.l2_cache_kb == 256
    assert celeron.fsb_mhz == 533


def test_table1_is_heterogeneous():
    assert not table1_cluster().is_homogeneous()


def test_effective_ghz_rewards_opteron_architecture():
    opteron = next(n for n, _c in TABLE1_NODE_TYPES if "Opteron" in n.processor)
    celeron = next(n for n, _c in TABLE1_NODE_TYPES if "Celeron" in n.processor)
    assert opteron.effective_ghz > celeron.effective_ghz


def test_cluster_requires_two_nodes():
    node = TABLE1_NODE_TYPES[0][0]
    with pytest.raises(ValueError):
        ClusterSpec((node,))


def test_homogeneous_cluster():
    spec = homogeneous_cluster(8)
    assert spec.n == 8
    assert spec.is_homogeneous()


def test_random_cluster_deterministic_per_seed():
    assert random_cluster(10, seed=3).nodes == random_cluster(10, seed=3).nodes
    assert random_cluster(10, seed=3).nodes != random_cluster(10, seed=4).nodes


def test_describe_mentions_every_type():
    text = table1_cluster().describe()
    for node, _count in TABLE1_NODE_TYPES:
        assert node.model in text
    assert "16 nodes" in text
