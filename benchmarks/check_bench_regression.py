#!/usr/bin/env python3
"""Gate CI on microbenchmark regressions against committed baselines.

The bench job stashes the repo's committed ``BENCH_*.json`` files (the
baselines), re-runs the microbenchmarks (which overwrite those files at
the repo root), then runs this script to compare the two sets.  A timing
metric that got more than ``--tolerance`` slower (default 25%) than its
committed baseline fails the job.

Only wall-clock style metrics are compared — everything in
``_GATED_METRICS`` is lower-is-better seconds (or nanoseconds).  Ratio
metrics like ``overhead_fraction`` are asserted by the benchmarks
themselves; counts and metadata are ignored here.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline-dir .bench-baseline --current-dir . [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: file name -> lower-is-better timing metrics gated against the baseline.
_GATED_METRICS: dict[str, tuple[str, ...]] = {
    "BENCH_prediction.json": ("batch_seconds",),
    "BENCH_obs.json": ("guard_ns",),
    "BENCH_insight.json": ("render_seconds", "ingest_seconds"),
    "BENCH_kernel_profile.json": ("wall_seconds_per_million_events",),
}


def _load(path: Path) -> dict:
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path} is not a JSON object")
    return doc


def compare(baseline_dir: Path, current_dir: Path, tolerance: float) -> int:
    """Print a comparison table; return the number of regressions."""
    regressions = 0
    checked = 0
    for name, metrics in sorted(_GATED_METRICS.items()):
        base_path = baseline_dir / name
        cur_path = current_dir / name
        if not base_path.exists():
            print(f"  {name}: no committed baseline — skipped")
            continue
        if not cur_path.exists():
            print(f"  {name}: benchmark produced no result — skipped")
            continue
        baseline = _load(base_path)
        current = _load(cur_path)
        for metric in metrics:
            if metric not in baseline or metric not in current:
                print(f"  {name}:{metric}: missing on one side — skipped")
                continue
            base_v = float(baseline[metric])
            cur_v = float(current[metric])
            if base_v <= 0:
                print(f"  {name}:{metric}: non-positive baseline — skipped")
                continue
            ratio = cur_v / base_v
            checked += 1
            verdict = "ok"
            if ratio > 1.0 + tolerance:
                verdict = f"REGRESSION (> {tolerance:.0%} slower)"
                regressions += 1
            print(f"  {name}:{metric}: {base_v:.6g} -> {cur_v:.6g} "
                  f"({ratio - 1.0:+.1%}) {verdict}")
    if checked == 0:
        print("  warning: nothing was compared — check the directories")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path, required=True,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir", type=Path, default=Path("."),
                        help="directory holding the fresh results (default .)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be non-negative")

    print(f"benchmark regression check (tolerance {args.tolerance:.0%}):")
    regressions = compare(args.baseline_dir, args.current_dir, args.tolerance)
    if regressions:
        print(f"{regressions} benchmark metric(s) regressed")
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
