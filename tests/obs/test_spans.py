"""Unit tests for wall-clock span tracing and the runtime switchboard."""

import json
import random

import pytest

from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.obs.export import chrome_trace
from repro.obs.spans import Span, SpanRecorder


def test_span_nesting_tracks_parents():
    rec = SpanRecorder()
    with rec.span("outer") as outer:
        assert rec.current() is outer
        with rec.span("inner", index=3) as inner:
            assert inner.parent_id == outer.span_id
    assert rec.current() is None
    finished = rec.finished()
    assert [s.name for s in finished] == ["inner", "outer"]  # completion order
    assert finished[0].attrs == {"index": 3}
    assert all(s.end is not None and s.duration >= 0 for s in finished)


def test_span_records_exception_and_propagates():
    rec = SpanRecorder()
    with pytest.raises(RuntimeError):
        with rec.span("doomed"):
            raise RuntimeError("boom")
    (span,) = rec.finished("doomed")
    assert span.attrs["error"] == "RuntimeError"
    assert span.end is not None


def test_exception_in_nested_span_restores_parent():
    rec = SpanRecorder()
    with rec.span("outer") as outer:
        with pytest.raises(ValueError):
            with rec.span("inner"):
                raise ValueError("x")
        # The parent must be current again — a later sibling re-parents
        # onto it, not onto the finished (failed) inner span.
        assert rec.current() is outer
        with rec.span("sibling") as sibling:
            assert sibling.parent_id == outer.span_id


def test_parent_restored_even_when_exit_machinery_fails(monkeypatch):
    """Regression: a failure *inside* ``__exit__`` (a broken clock, here)
    must still reset the context variable, or every later span in this
    task silently re-parents onto a finished span."""
    rec = SpanRecorder()
    with rec.span("outer") as outer:
        inner_ctx = rec.span("inner")
        inner_ctx.__enter__()

        def broken_clock():
            raise RuntimeError("clock exploded")

        monkeypatch.setattr(rec, "clock", broken_clock)
        with pytest.raises(RuntimeError, match="clock exploded"):
            inner_ctx.__exit__(None, None, None)
        monkeypatch.undo()
        assert rec.current() is outer


def test_span_stamped_with_active_trace_id():
    rec = SpanRecorder()
    ctx = _trace.new_context(random.Random(1))
    with _trace.use(ctx):
        with rec.span("traced"):
            pass
    with rec.span("untraced"):
        pass
    traced, untraced = rec.finished()
    assert traced.trace_id == ctx.trace_id
    assert untraced.trace_id is None
    assert "trace_id" not in untraced.to_dict()
    clone = Span.from_dict(traced.to_dict())
    assert clone.trace_id == ctx.trace_id


def test_ring_buffer_drops_oldest_and_counts():
    rec = SpanRecorder(capacity=2)
    for i in range(4):
        with rec.span(f"s{i}"):
            pass
    assert rec.dropped == 2
    assert [s.name for s in rec.finished()] == ["s2", "s3"]
    rec.clear()
    assert rec.finished() == [] and rec.dropped == 0


def test_span_dict_roundtrip():
    rec = SpanRecorder()
    with rec.span("unit", index=7):
        pass
    (span,) = rec.finished()
    clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
    assert clone.name == span.name
    assert clone.span_id == span.span_id
    assert clone.attrs == {"index": 7}
    assert clone.end == pytest.approx(span.end)


def test_runtime_span_is_noop_when_disabled():
    assert _obs.ACTIVE is None
    ctx = _obs.span("anything", k=1)
    # Shared singleton, allocates nothing per call.
    assert ctx is _obs.span("other")
    with ctx:
        pass


def test_runtime_enable_disable_and_fresh():
    tel = _obs.enable()
    assert _obs.active() is tel
    assert _obs.enable() is tel  # idempotent: layered callers share one
    with _obs.span("campaign.unit", index=0):
        pass
    assert len(tel.spans.finished("campaign.unit")) == 1
    fresh = _obs.enable(fresh=True)
    assert fresh is not tel
    assert fresh.spans.finished() == []
    _obs.disable()
    assert _obs.ACTIVE is None


def test_suppressed_mutes_hooks_then_restores():
    tel = _obs.enable(fresh=True)
    with _obs.suppressed():
        assert _obs.ACTIVE is None
        with _obs.span("replayed"):
            pass
    assert _obs.ACTIVE is tel
    assert tel.spans.finished() == []


def test_chrome_trace_merges_wall_and_sim_time():
    rec = SpanRecorder()
    with rec.span("campaign.unit", index=1):
        pass

    class FakeInterval:
        lane = "cpu0"
        label = "hold"
        start = 0.5
        duration = 0.25

    class FakeTracer:
        intervals = [FakeInterval()]

        def lanes(self):
            return ["cpu0"]

    doc = json.loads(chrome_trace(rec.to_dicts(), tracer=FakeTracer()))
    events = doc["traceEvents"]
    pids = {e["pid"] for e in events}
    assert pids == {0, 1}  # wall spans on pid 0, one sim lane on pid 1
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert names == {"wall-clock spans", "sim:cpu0"}
    sim = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
    assert sim[0]["ts"] == pytest.approx(0.5e6)
    assert sim[0]["dur"] == pytest.approx(0.25e6)
